//! End-to-end smoke test of the TCP server: ephemeral port, concurrent
//! clients speaking the length-prefixed protocol, losslessness asserted
//! against the single-request fused loop, cancellation, and both metrics
//! endpoints.

use std::sync::Arc;

use aasd::nn::{Decoder, DecoderConfig};
use aasd::serve::{Client, Engine, EngineConfig, EngineModel, Server};
use aasd::specdec::speculative_greedy_with_budget_ws;
use aasd::tensor::Workspace;

fn start_server() -> Server {
    start_server_cfg(false)
}

fn start_server_cfg(async_pipeline: bool) -> Server {
    let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
    let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
    let engine = Engine::new(
        EngineModel::Text { target, draft },
        EngineConfig {
            slots: 2,
            workers: 1,
            max_queue: 16,
            async_pipeline,
            ..EngineConfig::default()
        },
    );
    Server::start(engine, "127.0.0.1:0").expect("bind ephemeral port")
}

/// Three concurrent clients submit speculative requests over TCP; every
/// completion must equal the one-shot fused loop on the same models.
#[test]
fn concurrent_clients_get_lossless_completions() {
    let server = start_server();
    let addr = server.addr();
    let prompts: [Vec<u32>; 3] = [vec![3, 7, 1, 9], vec![5, 2], vec![8, 8, 8]];

    let streams: Vec<(Vec<u32>, Vec<u32>)> = std::thread::scope(|s| {
        let handles: Vec<_> = prompts
            .iter()
            .map(|prompt| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let plist = prompt
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    let id = c
                        .submit(&format!("SUB mode=spec gamma=4 budget=20 prompt={plist}"))
                        .expect("io")
                        .expect("admitted");
                    let (status, tokens) = c.wait_done(id).expect("poll");
                    assert_eq!(status, "done");
                    (prompt.clone(), tokens)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let target = Decoder::new(DecoderConfig::tiny(40), 10);
    let draft = Decoder::new(DecoderConfig::tiny(40), 20);
    let mut ws = Workspace::new();
    for (prompt, got) in &streams {
        let (want, _) = speculative_greedy_with_budget_ws(&target, &draft, prompt, 20, 4, &mut ws);
        assert_eq!(*got, want, "served stream for {prompt:?} != fused loop");
    }
}

/// Protocol errors come back as ERR frames without killing the connection;
/// cancel works over the wire; metrics render in both formats.
#[test]
fn protocol_errors_cancel_and_metrics() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).expect("connect");

    // Parse and validation errors keep the connection alive.
    assert!(c.roundtrip("GIBBERISH").unwrap().starts_with("ERR "));
    assert!(
        c.roundtrip("SUB mode=spec budget=8 prompt=1")
            .unwrap()
            .starts_with("ERR "),
        "spec without gamma"
    );
    assert!(
        c.roundtrip("SUB mode=spec gamma=3 budget=8 prompt=999")
            .unwrap()
            .starts_with("ERR "),
        "token outside vocab"
    );
    assert!(c.roundtrip("POLL 424242").unwrap().starts_with("ERR "));
    assert!(c.roundtrip("CANCEL 424242").unwrap().starts_with("ERR "));

    // Cancel a request over the wire. A tiny model drains its whole budget
    // faster than a second client roundtrip, so the CANCEL frame must already
    // be sitting in the connection buffer when the SUB is processed: learn
    // the sequential id counter from a warm-up request, then pipeline
    // SUB+CANCEL back-to-back and retry the race. A request that still
    // finishes first must report ERR on cancel and "done" on poll.
    use aasd::serve::proto::{read_frame, write_frame};
    let warm = c
        .submit("SUB mode=spec gamma=3 budget=2 prompt=5")
        .expect("io")
        .expect("admitted");
    let _ = c.wait_done(warm).expect("poll");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut cancelled = false;
    for next in warm + 1..=warm + 20 {
        write_frame(
            &mut stream,
            "SUB mode=spec gamma=3 budget=120 prompt=3,7,1,9",
        )
        .unwrap();
        write_frame(&mut stream, &format!("CANCEL {next}")).unwrap();
        let sub = read_frame(&mut stream).unwrap().expect("sub reply");
        assert_eq!(sub, format!("OK {next}"), "ids must be sequential");
        let reply = read_frame(&mut stream).unwrap().expect("cancel reply");
        if reply == format!("OK {next}") {
            let (status, _) = c.wait_done(next).expect("poll");
            assert_eq!(status, "cancelled");
            cancelled = true;
            break;
        }
        assert!(
            reply.starts_with("ERR "),
            "unexpected cancel reply: {reply}"
        );
        let (status, _) = c.wait_done(next).expect("poll");
        assert_eq!(status, "done");
    }
    assert!(cancelled, "pipelined cancel never beat a budget-120 decode");

    // A fresh request still completes after the cancel.
    let id2 = c
        .submit("SUB mode=spec gamma=3 budget=10 prompt=5,2")
        .expect("io")
        .expect("admitted");
    let (status2, tokens2) = c.wait_done(id2).expect("poll");
    assert_eq!(status2, "done");
    assert_eq!(tokens2.len(), 10);

    // Metrics endpoints reflect the traffic: warm-up + ≥1 raced submit +
    // id2 were admitted, and exactly one cancel landed.
    let text = c.roundtrip("METRICS").unwrap();
    let submitted: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("aasd_requests_submitted_total "))
        .expect("submitted counter present")
        .trim()
        .parse()
        .unwrap();
    assert!(submitted >= 3, "{text}");
    assert!(text.contains("aasd_requests_cancelled_total 1"), "{text}");
    let json = c.roundtrip("METRICS_JSON").unwrap();
    assert!(json.contains("\"completed\":"), "{json}");
    // Hand-rolled JSON must at least be brace-balanced.
    let opens = json.matches('{').count();
    assert_eq!(opens, json.matches('}').count());
}

/// Admission control over the wire: when queue + slots are saturated the
/// server answers BUSY, and the client can retry later successfully.
#[test]
fn busy_then_retry() {
    let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
    let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
    let engine = Engine::new(
        EngineModel::Text { target, draft },
        EngineConfig {
            slots: 1,
            workers: 1,
            max_queue: 1,
            ..EngineConfig::default()
        },
    );
    let server = Server::start(engine, "127.0.0.1:0").expect("bind");

    // Pipeline a burst of submits — write every frame before reading any
    // reply, so they reach the server back-to-back (microseconds apart)
    // while the first request is still decoding. With one slot and queue
    // cap 1, the burst must overflow into BUSY.
    use aasd::serve::proto::{read_frame, write_frame};
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    const BURST: usize = 30;
    for _ in 0..BURST {
        write_frame(&mut stream, "SUB mode=spec gamma=3 budget=100 prompt=1,2,3").unwrap();
    }
    let mut ids = Vec::new();
    let mut busy = 0usize;
    for _ in 0..BURST {
        let reply = read_frame(&mut stream).unwrap().expect("reply");
        match reply.strip_prefix("OK ") {
            Some(id) => ids.push(id.parse::<u64>().unwrap()),
            None => {
                assert_eq!(reply, "BUSY");
                busy += 1;
            }
        }
    }
    assert!(busy > 0, "queue cap 1 never produced BUSY");
    assert_eq!(ids.len() + busy, BURST);
    let mut c = Client::connect(server.addr()).expect("connect");
    // Everything admitted still finishes, after which a retry is accepted.
    for id in ids {
        let (status, _) = c.wait_done(id).unwrap();
        assert_eq!(status, "done");
    }
    let id = c
        .submit("SUB mode=spec gamma=3 budget=5 prompt=4")
        .unwrap()
        .expect("retry after drain should be admitted");
    let (status, tokens) = c.wait_done(id).unwrap();
    assert_eq!(status, "done");
    assert_eq!(tokens.len(), 5);
}

/// Shutdown drains cleanly: in-flight requests end in a terminal state and
/// the server threads join without hanging.
#[test]
fn shutdown_drains_in_flight_requests() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).expect("connect");
    let id = c
        .submit("SUB mode=spec gamma=3 budget=60 prompt=3,7,1,9")
        .expect("io")
        .expect("admitted");
    let engine = Arc::clone(server.engine());
    let mut server = server;
    server.shutdown();
    // After shutdown the request is terminal (done if it beat the drain,
    // cancelled otherwise) — never stuck queued/running.
    let (status, _) = engine.poll(id).expect("handle survives shutdown");
    assert!(matches!(
        status,
        aasd::serve::Status::Done | aasd::serve::Status::Cancelled
    ));
}

/// Async-pipeline server end to end: lossless completions over TCP, and a
/// SHUTDOWN that lands mid-speculation still drains within its bound —
/// every request terminal, the per-session draft threads joined rather
/// than leaked parked on their rings.
#[test]
fn async_server_shutdown_joins_draft_workers() {
    let server = start_server_cfg(true);
    let addr = server.addr();

    // Warm-up: one completed request proves the async sched thread serves
    // traffic and matches the fused loop.
    let mut c = Client::connect(addr).expect("connect");
    let id = c
        .submit("SUB mode=spec gamma=4 budget=20 prompt=3,7,1,9")
        .expect("io")
        .expect("admitted");
    let (status, tokens) = c.wait_done(id).expect("poll");
    assert_eq!(status, "done");
    let target = Decoder::new(DecoderConfig::tiny(40), 10);
    let draft = Decoder::new(DecoderConfig::tiny(40), 20);
    let mut ws = Workspace::new();
    let (want, _) =
        speculative_greedy_with_budget_ws(&target, &draft, &[3, 7, 1, 9], 20, 4, &mut ws);
    assert_eq!(tokens, want, "async-served stream != fused loop");

    // Load the server with long-budget requests so SHUTDOWN arrives while
    // sessions are mid-speculation with live draft threads.
    let ids: Vec<u64> = (0..4)
        .map(|i| {
            c.submit(&format!(
                "SUB mode=spec gamma=3 budget=120 prompt={},7,1,9",
                3 + i
            ))
            .expect("io")
            .expect("admitted")
        })
        .collect();
    let engine = Arc::clone(server.engine());
    let started = std::time::Instant::now();
    let mut server = server;
    server.shutdown();
    // Bounded drain: the sched thread cancels, joins every draft thread
    // (5 s cap per drain), and exits. Well under the cap in practice.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "shutdown took {:?}",
        started.elapsed()
    );
    for id in ids {
        let (status, _) = engine.poll(id).expect("handle survives shutdown");
        assert!(
            matches!(
                status,
                aasd::serve::Status::Done | aasd::serve::Status::Cancelled
            ),
            "request {id} left non-terminal: {status:?}"
        );
    }
}
