//! Cross-crate integration tests through the `aasd` facade: the greedy
//! speculative loop must be lossless (token-identical to the autoregressive
//! reference) on seeded tiny decoders, for mismatched draft/target pairs
//! across block sizes and generation lengths.

use aasd::nn::{Decoder, DecoderConfig};
use aasd::specdec::{autoregressive_greedy, speculative_greedy};
use aasd::tensor::Rng;

fn model(seed: u64, vocab: usize) -> Decoder {
    Decoder::new(DecoderConfig::tiny(vocab), seed)
}

#[test]
fn speculative_loop_is_token_identical_to_autoregressive() {
    let vocab = 64;
    let mut rng = Rng::new(0xFACADE);
    for case in 0..6 {
        let target = model(100 + case, vocab);
        let draft = model(200 + case, vocab);
        let prompt_len = 2 + rng.below(8);
        let prompt: Vec<u32> = (0..prompt_len).map(|_| rng.below(vocab) as u32).collect();
        let max_new = 10 + rng.below(40);
        let gamma = 1 + rng.below(6);

        let reference = autoregressive_greedy(&target, &prompt, max_new);
        let (spec, stats) = speculative_greedy(&target, &draft, &prompt, max_new, gamma);

        assert_eq!(
            spec, reference,
            "losslessness violated (case {case}, γ={gamma}, max_new={max_new})"
        );
        assert!(stats.blocks > 0);
        assert!(stats.acceptance_rate() <= 1.0);
        assert!(stats.block_efficiency() >= 1.0);
        assert!(stats.block_efficiency() <= (gamma + 1) as f64 + 1e-9);
    }
}

#[test]
fn self_draft_degenerates_to_perfect_acceptance() {
    let target = model(7, 32);
    let prompt = [1u32, 5, 9];
    let reference = autoregressive_greedy(&target, &prompt, 25);
    let (spec, stats) = speculative_greedy(&target, &target, &prompt, 25, 4);
    assert_eq!(spec, reference);
    assert_eq!(
        stats.accepted, stats.drafted,
        "self-draft must fully accept"
    );
    // Perfect acceptance ⇒ τ hits its γ+1 ceiling on every full block.
    assert!(stats.block_efficiency() > 4.0);
}

#[test]
fn facade_reexports_compose() {
    // Smoke: every layer of the stack is reachable through the facade and
    // produces shape-consistent results.
    let mut rng = aasd::tensor::Rng::new(1);
    let a = aasd::tensor::Tensor::randn(&mut rng, 4, 8, 1.0);
    let b = aasd::tensor::Tensor::randn(&mut rng, 8, 3, 1.0);
    let c = a.matmul(&b);
    assert_eq!((c.rows, c.cols), (4, 3));

    let m = model(3, 16);
    let mut cache = m.new_cache();
    let logits = m.forward_infer(&[1, 2, 3], &mut cache);
    assert_eq!((logits.rows, logits.cols), (3, 16));
    assert_eq!(cache.len(), 3);
    assert!(!aasd::VERSION.is_empty());
}
