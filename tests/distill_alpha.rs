//! The paper's headline claim, end to end: distilling a small draft model
//! against a frozen target *raises the empirical acceptance rate α* of
//! greedy speculative decoding. Nothing below hard-codes α — the draft is
//! genuinely trained with the `aasd-train` stack and α is re-measured with
//! the `aasd-specdec` harness on held-out prompts, so the improvement is an
//! emergent property of the gradients being right and the loop accounting
//! being honest.

use aasd::nn::{Decoder, DecoderConfig};
use aasd::specdec::measure_acceptance;
use aasd::tensor::Rng;
use aasd::train::{distill, Adam, DistillConfig, Schedule};

fn draft_config(vocab: usize, max_seq: usize) -> DecoderConfig {
    DecoderConfig {
        vocab,
        dim: 16,
        n_heads: 2,
        n_layers: 1,
        ff_hidden: 32,
        max_seq,
        rope_theta: 10_000.0,
    }
}

#[test]
fn distilled_draft_strictly_beats_untrained_draft_alpha() {
    let vocab = 24;
    let target = Decoder::new(DecoderConfig::tiny(vocab), 0xA11);
    let untrained = Decoder::new(draft_config(vocab, target.cfg.max_seq), 0xD0A);

    // Held-out evaluation prompts: a different seed stream than the
    // distillation prompts, so α is measured off the training data.
    let mut rng = Rng::new(0xE7A1);
    let prompts: Vec<Vec<u32>> = (0..6)
        .map(|_| (0..5).map(|_| rng.below(vocab) as u32).collect())
        .collect();
    let (max_new, gamma) = (24, 4);

    let before = measure_acceptance(&target, &untrained, &prompts, max_new, gamma);

    let mut trained = untrained.clone();
    let mut opt = Adam::new();
    let cfg = DistillConfig {
        steps: 150,
        prompt_len: 4,
        gen_len: 12,
        schedule: Schedule::Cosine {
            base: 3e-2,
            floor: 3e-3,
            total: 150,
        },
        temperature: 1.0,
        seed: 0x5EED,
    };
    let losses = distill(&mut trained, &target, &mut opt, &cfg);
    assert!(
        losses.last().unwrap() < &losses[0],
        "distillation loss did not drop: {} -> {}",
        losses[0],
        losses.last().unwrap()
    );

    let after = measure_acceptance(&target, &trained, &prompts, max_new, gamma);

    // Identical decode budget on both sides, and the accounting invariant.
    assert_eq!(before.generated, after.generated);
    assert!(after.accepted <= after.drafted);

    let (a0, a1) = (before.acceptance_rate(), after.acceptance_rate());
    println!("alpha untrained = {a0:.4}, distilled = {a1:.4}");
    assert!(
        a1 > a0,
        "distillation failed to raise acceptance rate: α {a0:.4} -> {a1:.4}"
    );
}
