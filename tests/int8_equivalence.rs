//! Int8 kernel-policy equivalence: quantizing a model's projections must
//! (a) keep the fused logits within the per-row absmax error model of the
//! f32 path, and (b) preserve the speculative-decoding losslessness
//! guarantee — spec ≡ AR token identity — for both text-only and
//! multimodal sessions, including mixed draft/target policies.
//!
//! ci.sh runs this suite twice: once under `AASD_KERNEL=scalar` and once on
//! the host's best SIMD tier, so the int8 path is pinned on every dispatch
//! route it can take.

use aasd::mm::{
    draft_for, mm_autoregressive_ws, mm_speculative_ws, Ablation, Image, KvProjector, LlavaSim,
    LlavaSimConfig,
};
use aasd::nn::{Decoder, DecoderConfig, KernelPolicy};
use aasd::specdec::{autoregressive_greedy_with_budget_ws, speculative_greedy_with_budget_ws};
use aasd::tensor::{Rng, Workspace};

fn model(seed: u64, vocab: usize) -> Decoder {
    Decoder::new(DecoderConfig::tiny(vocab), seed)
}

/// Max |int8 − f32| logit gap over a decode run stays within a bound set by
/// the per-row absmax quantization error model (measured ≈0.053 on this
/// config; asserted at ~5× margin so kernel bugs trip it, noise does not).
#[test]
fn int8_logit_drift_is_bounded() {
    let f32_model = model(0xD1F7, 48);
    let mut q_model = f32_model.clone();
    q_model.set_kernel_policy(KernelPolicy::Int8);

    let mut rng = Rng::new(0x5EED);
    let tokens: Vec<u32> = (0..24).map(|_| rng.below(48) as u32).collect();
    let vocab = 48;

    let mut ws_a = Workspace::new();
    let mut ws_b = Workspace::new();
    let mut cache_a = f32_model.new_cache();
    let mut cache_b = q_model.new_cache();
    let mut la = vec![0.0f32; vocab];
    let mut lb = vec![0.0f32; vocab];
    let mut drift = 0.0f32;
    for &tok in &tokens {
        f32_model.forward_infer_ws(&[tok], &mut cache_a, &mut ws_a, &mut la);
        q_model.forward_infer_ws(&[tok], &mut cache_b, &mut ws_b, &mut lb);
        for (a, b) in la.iter().zip(&lb) {
            drift = drift.max((a - b).abs());
        }
    }
    assert!(drift > 0.0, "int8 path suspiciously identical to f32");
    assert!(drift < 0.25, "int8 logit drift {drift} exceeds error model");
}

/// Text sessions: speculative decoding on an `Int8` target must be
/// token-identical to autoregressive decoding on the same `Int8` target —
/// for every draft policy (the draft's kernels cannot affect losslessness,
/// only acceptance).
#[test]
fn spec_equals_ar_under_int8_text() {
    let mut target = model(0x7A6, 40);
    target.set_kernel_policy(KernelPolicy::Int8);
    let draft_f32 = model(0xD4A, 40);
    let mut draft_q = draft_f32.clone();
    draft_q.set_kernel_policy(KernelPolicy::Int8);

    let mut ws = Workspace::new();
    let prompt = [3u32, 11, 7, 29];
    let budget = 32;
    let reference = autoregressive_greedy_with_budget_ws(&target, &prompt, budget, &mut ws);
    assert_eq!(reference.len(), budget);

    for draft in [&draft_f32, &draft_q] {
        for gamma in [1usize, 3, 5] {
            let (out, stats) =
                speculative_greedy_with_budget_ws(&target, draft, &prompt, budget, gamma, &mut ws);
            assert_eq!(
                out,
                reference,
                "γ={gamma} draft={}: int8 losslessness violated",
                draft.kernel_policy().name()
            );
            assert_eq!(stats.generated, budget);
        }
    }
}

/// Multimodal sessions: hybrid-cache speculative decoding on an `Int8`
/// LlavaSim target equals fused autoregressive decoding on the same model.
#[test]
fn spec_equals_ar_under_int8_multimodal() {
    let cfg = LlavaSimConfig::tiny(36, 96);
    let mut mm_model = LlavaSim::new(cfg.clone(), 0x178);
    mm_model.set_kernel_policy(KernelPolicy::Int8);
    assert_eq!(mm_model.kernel_policy(), KernelPolicy::Int8);
    let mut draft = draft_for(&cfg, 0xBEE);
    draft.set_kernel_policy(KernelPolicy::Int8);
    let proj = KvProjector::new(
        0xC0,
        draft.cfg.n_layers,
        cfg.lm.n_layers,
        cfg.n_img(),
        cfg.k_slots(),
    );

    let mut ws = Workspace::new();
    let img = Image::synthetic(&mut Rng::new(5), cfg.vision.n_patches, cfg.vision.patch_dim);
    let prompt = [7u32, 21, 2, 13];
    let budget = 28;
    let reference = mm_autoregressive_ws(&mm_model, &img, &prompt, budget, &mut ws);
    assert_eq!(reference.len(), budget);

    for gamma in [1usize, 3, 5] {
        let (out, _) = mm_speculative_ws(
            &mm_model,
            &draft,
            Some(&proj),
            Ablation::projector(),
            &img,
            &prompt,
            budget,
            gamma,
            &mut ws,
        );
        assert_eq!(out, reference, "γ={gamma}: int8 mm losslessness violated");
    }
}
