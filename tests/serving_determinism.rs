//! Scheduler determinism: the engine's continuous batching must never
//! change what any request decodes. Same models + same submission order ⇒
//! every request's token stream is identical whether sessions are stepped
//! inline by one worker or fanned across four scoped threads — and
//! identical to the single-request fused loops.
//!
//! This is the property that makes the serving benchmark meaningful: the
//! spec-vs-AR comparison measures scheduling and verification cost, never
//! output drift.

use std::sync::Arc;

use aasd::mm::{draft_for, Ablation, Image, KvProjector, LlavaSim, LlavaSimConfig};
use aasd::nn::{Decoder, DecoderConfig};
use aasd::serve::{DecodeMode, Engine, EngineConfig, EngineModel, Request, Status};
use aasd::specdec::speculative_greedy_with_budget_ws;
use aasd::tensor::{Rng, Workspace};

/// A mixed workload: varying prompts, budgets, γ, and decode modes.
fn workload(n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let len = 2 + i % 4;
            let prompt: Vec<u32> = (0..len).map(|j| ((i * 13 + j * 7) % 40) as u32).collect();
            Request {
                prompt,
                max_new: 8 + (i * 5) % 20,
                mode: if i % 4 == 3 {
                    DecodeMode::Autoregressive
                } else {
                    DecodeMode::Speculative { gamma: 2 + i % 4 }
                },
                image_seed: None,
            }
        })
        .collect()
}

fn run_text_engine(workers: usize, reqs: &[Request]) -> Vec<(Status, Vec<u32>)> {
    run_text_engine_cfg(workers, false, reqs)
}

fn run_text_engine_cfg(
    workers: usize,
    async_pipeline: bool,
    reqs: &[Request],
) -> Vec<(Status, Vec<u32>)> {
    let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
    let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
    let engine = Engine::new(
        EngineModel::Text { target, draft },
        EngineConfig {
            slots: 3,
            workers,
            max_queue: 64,
            async_pipeline,
            ..EngineConfig::default()
        },
    );
    let handles: Vec<_> = reqs
        .iter()
        .map(|r| engine.submit(r.clone()).expect("admitted"))
        .collect();
    engine.run_until_idle();
    handles.iter().map(|h| h.snapshot()).collect()
}

/// 1 worker vs 4 workers: byte-identical streams for every request.
#[test]
fn worker_count_never_changes_token_streams() {
    let reqs = workload(10);
    let one = run_text_engine(1, &reqs);
    let four = run_text_engine(4, &reqs);
    assert_eq!(one.len(), four.len());
    for (i, (a, b)) in one.iter().zip(&four).enumerate() {
        assert_eq!(a.0, Status::Done, "request {i} not done");
        assert_eq!(a, b, "request {i} diverged between 1 and 4 workers");
    }
    // And both match the single-request fused loop (ground truth).
    let target = Decoder::new(DecoderConfig::tiny(40), 10);
    let draft = Decoder::new(DecoderConfig::tiny(40), 20);
    let mut ws = Workspace::new();
    for (i, req) in reqs.iter().enumerate() {
        if let DecodeMode::Speculative { gamma } = req.mode {
            let (want, _) = speculative_greedy_with_budget_ws(
                &target,
                &draft,
                &req.prompt,
                req.max_new,
                gamma,
                &mut ws,
            );
            assert_eq!(one[i].1, want, "request {i} != fused loop");
        }
    }
}

/// Re-running the same submission order reproduces the same streams
/// (no hidden clock/thread-id dependence anywhere in the decode path).
#[test]
fn rerun_is_reproducible() {
    let reqs = workload(6);
    assert_eq!(run_text_engine(2, &reqs), run_text_engine(2, &reqs));
}

/// Tree-structured speculation on the sync scheduler is held to the same
/// bar: worker-count independent, reproducible, and stream-identical to
/// the linear engine — losslessness means tree and chain commit the same
/// tokens, so flipping `tree_speculation` must be invisible in the output.
#[test]
fn tree_speculation_streams_match_linear_at_any_worker_count() {
    let run_tree = |workers: usize, reqs: &[Request]| {
        let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
        let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
        let engine = Engine::new(
            EngineModel::Text { target, draft },
            EngineConfig {
                slots: 3,
                workers,
                max_queue: 64,
                tree_speculation: true,
                ..EngineConfig::default()
            },
        );
        let handles: Vec<_> = reqs
            .iter()
            .map(|r| engine.submit(r.clone()).expect("admitted"))
            .collect();
        engine.run_until_idle();
        handles.iter().map(|h| h.snapshot()).collect::<Vec<_>>()
    };
    let reqs = workload(10);
    let linear = run_text_engine(1, &reqs);
    for workers in [1usize, 4] {
        let tree = run_tree(workers, &reqs);
        assert_eq!(linear.len(), tree.len());
        for (i, (l, t)) in linear.iter().zip(&tree).enumerate() {
            assert_eq!(t.0, Status::Done, "tree request {i} not done");
            assert_eq!(
                l.1, t.1,
                "request {i} diverged between linear and tree engines ({workers} workers)"
            );
        }
    }
    assert_eq!(run_tree(2, &reqs), run_tree(2, &reqs), "tree rerun drifted");
}

/// The async draft/target pipeline is held to the same bar: at 1, 2, and
/// 4 target workers — with a free-running draft thread racing each verify
/// leg — every stream is byte-identical to the synchronous scheduler and
/// to the fused loops. Only token streams are compared: speculation
/// *statistics* legitimately vary with interleaving; committed tokens
/// must not.
#[test]
fn async_pipeline_streams_match_sync_at_any_worker_count() {
    let reqs = workload(10);
    let sync = run_text_engine(1, &reqs);
    for workers in [1usize, 2, 4] {
        let async_run = run_text_engine_cfg(workers, true, &reqs);
        assert_eq!(sync.len(), async_run.len());
        for (i, (s, a)) in sync.iter().zip(&async_run).enumerate() {
            assert_eq!(a.0, Status::Done, "async request {i} not done");
            assert_eq!(
                s.1, a.1,
                "request {i} diverged between sync and async ({workers} workers)"
            );
        }
    }
    // Ground truth: the sync baseline itself matches the fused loop.
    let target = Decoder::new(DecoderConfig::tiny(40), 10);
    let draft = Decoder::new(DecoderConfig::tiny(40), 20);
    let mut ws = Workspace::new();
    for (i, req) in reqs.iter().enumerate() {
        if let DecodeMode::Speculative { gamma } = req.mode {
            let (want, _) = speculative_greedy_with_budget_ws(
                &target,
                &draft,
                &req.prompt,
                req.max_new,
                gamma,
                &mut ws,
            );
            assert_eq!(sync[i].1, want, "request {i} != fused loop");
        }
    }
}

/// Async reruns are reproducible at the stream level despite genuinely
/// nondeterministic draft/verify interleaving.
#[test]
fn async_rerun_reproduces_streams() {
    let reqs = workload(6);
    let a = run_text_engine_cfg(2, true, &reqs);
    let b = run_text_engine_cfg(2, true, &reqs);
    assert_eq!(a, b);
}

/// Multimodal sessions are equally scheduler-independent: hybrid-cache
/// speculative requests served at 4 workers match `mm_speculative_ws`.
#[test]
fn multimodal_streams_are_worker_independent() {
    use aasd::mm::mm_speculative_ws;
    let cfg = LlavaSimConfig::tiny(40, 96);
    let model = Arc::new(LlavaSim::new(cfg.clone(), 0xC0));
    let draft = Arc::new(draft_for(&cfg, 0xC1));
    let projector = Arc::new(KvProjector::new(
        0xC2,
        draft.cfg.n_layers,
        cfg.lm.n_layers,
        cfg.n_img(),
        cfg.k_slots(),
    ));
    let reqs: Vec<Request> = (0..4u64)
        .map(|i| Request {
            prompt: vec![3 + i as u32, 11, (5 + i * 3) as u32 % 40],
            max_new: 12 + (i as usize) * 3,
            mode: DecodeMode::Speculative { gamma: 3 },
            image_seed: Some(100 + i),
        })
        .collect();
    let run = |workers: usize, async_pipeline: bool| {
        let engine = Engine::new(
            EngineModel::Multimodal {
                model: Arc::clone(&model),
                draft: Arc::clone(&draft),
                projector: Arc::clone(&projector),
                ablation: Ablation::projector(),
            },
            EngineConfig {
                slots: 2,
                workers,
                max_queue: 16,
                async_pipeline,
                ..EngineConfig::default()
            },
        );
        let handles: Vec<_> = reqs
            .iter()
            .map(|r| engine.submit(r.clone()).expect("admitted"))
            .collect();
        engine.run_until_idle();
        handles.iter().map(|h| h.snapshot()).collect::<Vec<_>>()
    };
    let one = run(1, false);
    let four = run(4, false);
    assert_eq!(one, four);
    // The async pipeline serves the same multimodal streams.
    assert_eq!(one, run(1, true));
    assert_eq!(one, run(4, true));
    let mut ws = Workspace::new();
    for (req, (status, tokens)) in reqs.iter().zip(&one) {
        assert_eq!(*status, Status::Done);
        let img = Image::synthetic(
            &mut Rng::new(req.image_seed.unwrap()),
            cfg.vision.n_patches,
            cfg.vision.patch_dim,
        );
        let (want, _) = mm_speculative_ws(
            &model,
            &draft,
            Some(&projector),
            Ablation::projector(),
            &img,
            &req.prompt,
            req.max_new,
            3,
            &mut ws,
        );
        assert_eq!(*tokens, want, "served mm stream != fused mm loop");
    }
}
