//! KV-cache capacity boundaries under the fused speculative loop, with and
//! without a vision prefix. The fused loop's contract is
//! `cache.len() + budget <= max_seq + 1` (the final emitted token is never
//! fed back); these tests pin the exact frontier: filling the cache to the
//! last row, rolling back rejected drafts at the boundary, and the
//! multimodal case where vision prefix + prompt leave almost no room.

use aasd::mm::{
    draft_for, mm_autoregressive_ws, mm_speculative_ws, Ablation, Image, LlavaSim, LlavaSimConfig,
};
use aasd::nn::{Decoder, DecoderConfig};
use aasd::specdec::{
    autoregressive_greedy_seeded_ws, autoregressive_greedy_with_budget,
    speculative_greedy_seeded_ws, speculative_greedy_with_budget_ws,
};
use aasd::tensor::{Rng, Workspace};

fn prompt(rng: &mut Rng, len: usize, vocab: usize) -> Vec<u32> {
    (0..len).map(|_| rng.below(vocab) as u32).collect()
}

/// Text-only: a prompt that fills the cache to `max_seq - 1` leaves room
/// for exactly one fed-back token, so the maximal budget is 2 and every
/// block must take the g = 0 plain-decode fallback.
#[test]
fn prompt_one_below_max_seq_forces_plain_decode_blocks() {
    let cfg = DecoderConfig::tiny(32);
    let target = Decoder::new(cfg.clone(), 0x90);
    let draft = Decoder::new(cfg.clone(), 0x91);
    let mut rng = Rng::new(1);
    let p = prompt(&mut rng, cfg.max_seq - 1, 32);
    let budget = 2; // max_seq + 1 - prompt_len
    let mut ws = Workspace::new();
    let reference = autoregressive_greedy_with_budget(&target, &p, budget);
    let (out, stats) = speculative_greedy_with_budget_ws(&target, &draft, &p, budget, 5, &mut ws);
    assert_eq!(out, reference);
    assert_eq!(stats.drafted, 0, "no room to draft at the boundary");
    assert_eq!(stats.blocks, 1, "one plain-decode block");
}

/// Rollback at the boundary: run a spec loop whose LAST block sits flush
/// against the cache frontier with an adversarial draft, so rejected rows
/// are truncated at the very end of the buffer, then assert both caches
/// finish within capacity and the output is still lossless.
#[test]
fn rollback_at_cache_frontier_is_lossless() {
    let cfg = DecoderConfig::tiny(32);
    let target = Decoder::new(cfg.clone(), 0x92);
    // An independent draft disagrees almost everywhere -> maximal rollback.
    let draft = Decoder::new(cfg.clone(), 0x93);
    let mut ws = Workspace::new();
    let mut rng = Rng::new(2);
    for gamma in [2usize, 3, 5] {
        let p = prompt(&mut rng, 6, 32);
        let budget = cfg.max_seq + 1 - p.len(); // run to the very frontier
        let reference = autoregressive_greedy_with_budget(&target, &p, budget);
        let (out, stats) =
            speculative_greedy_with_budget_ws(&target, &draft, &p, budget, gamma, &mut ws);
        assert_eq!(out, reference, "γ={gamma}");
        assert_eq!(out.len(), budget);
        assert!(
            stats.accepted < stats.drafted,
            "γ={gamma}: need rejections to exercise boundary rollback"
        );
    }
}

/// Multimodal: vision prefix + prompt fill the target cache to exactly
/// `max_seq`, leaving a feasible budget of exactly 1 — the pending token is
/// emitted with no decode step and no draft involvement.
#[test]
fn vision_prefix_plus_prompt_exactly_filling_cache_allows_budget_one() {
    let cfg = LlavaSimConfig::tiny(32, 48);
    let model = LlavaSim::new(cfg.clone(), 0x94);
    let draft = draft_for(&cfg, 0x95);
    let mut rng = Rng::new(3);
    let p = prompt(&mut rng, cfg.lm.max_seq - cfg.n_img(), 32); // fills to max_seq
    let mut ws = Workspace::new();
    let reference = mm_autoregressive_ws(&model, &img(&cfg, 7), &p, 1, &mut ws);
    assert_eq!(reference.len(), 1);
    let (out, stats) = mm_speculative_ws(
        &model,
        &draft,
        None,
        Ablation::no_vision(),
        &img(&cfg, 7),
        &p,
        1,
        3,
        &mut ws,
    );
    assert_eq!(out, reference);
    assert_eq!(stats.blocks, 0, "budget 1 is prefill-decided, no blocks");
    assert_eq!(stats.prefill_tokens, 1);
}

/// Multimodal boundary sweep: with the vision prefix consuming part of the
/// window, budgets run flush to `max_seq + 1 - n_img - prompt_len` across
/// ablations — lossless at the frontier in every configuration.
#[test]
fn hybrid_cache_boundary_sweep_is_lossless() {
    let cfg = LlavaSimConfig::tiny(32, 48);
    let model = LlavaSim::new(cfg.clone(), 0x96);
    let draft = draft_for(&cfg, 0x97);
    let mut rng = Rng::new(4);
    let mut ws = Workspace::new();
    for slack in [2usize, 4, 7] {
        let p = prompt(&mut rng, cfg.lm.max_seq - cfg.n_img() - slack, 32);
        let budget = slack + 1; // exactly the feasible maximum
        let image = img(&cfg, 10 + slack as u64);
        let reference = mm_autoregressive_ws(&model, &image, &p, budget, &mut ws);
        for abl in [Ablation::raw_vision(), Ablation::no_vision()] {
            let (out, stats) =
                mm_speculative_ws(&model, &draft, None, abl, &image, &p, budget, 3, &mut ws);
            assert_eq!(out, reference, "slack={slack} {abl:?}");
            assert_eq!(stats.generated, budget);
        }
    }
}

/// The seeded-loop budget contract itself: a budget one past the feasible
/// frontier must panic (for both seeded loops), and the maximal budget must
/// not.
#[test]
fn seeded_loop_budget_contract_at_the_frontier() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let cfg = DecoderConfig::tiny(32);
    let target = Decoder::new(cfg.clone(), 0x98);
    let mut rng = Rng::new(5);
    let p = prompt(&mut rng, cfg.max_seq - 3, 32);

    let run_ar = |budget: usize| {
        let mut ws = Workspace::new();
        let mut cache = target.new_cache();
        target.forward_infer(&p, &mut cache);
        autoregressive_greedy_seeded_ws(&target, &mut cache, 7, budget, &mut ws)
    };
    let run_spec = |budget: usize| {
        let mut ws = Workspace::new();
        let mut t_cache = target.new_cache();
        let mut d_cache = target.new_cache();
        target.forward_infer(&p, &mut t_cache);
        target.forward_infer(&p, &mut d_cache);
        speculative_greedy_seeded_ws(
            &target,
            &target,
            &mut t_cache,
            &mut d_cache,
            7,
            budget,
            2,
            &mut ws,
        )
    };
    let feasible = cfg.max_seq + 1 - p.len();
    assert_eq!(run_ar(feasible).len(), feasible);
    assert_eq!(run_spec(feasible).0.len(), feasible);
    assert!(catch_unwind(AssertUnwindSafe(|| run_ar(feasible + 1))).is_err());
    assert!(catch_unwind(AssertUnwindSafe(|| run_spec(feasible + 1))).is_err());
}

fn img(cfg: &LlavaSimConfig, seed: u64) -> Image {
    Image::synthetic(
        &mut Rng::new(seed),
        cfg.vision.n_patches,
        cfg.vision.patch_dim,
    )
}

/// Async split-half speculation at the lease-capacity frontier: the draft
/// leg free-runs until its pool lease is full (`AtCapacity`, one fed-back
/// token shy of the leased budget), then the verify leg rejects its very
/// first proposal — the rollback must restore the draft cache to exactly
/// the corrected frontier, the remaining decode must stay lossless, and
/// both leases must return every block to their pools.
#[test]
fn async_rollback_at_lease_capacity_frontier_leaks_nothing() {
    use aasd::nn::KvPool;
    use aasd::specdec::{DraftAhead, DraftStep, SpscRing, VerifyHalf};
    use aasd::tensor::argmax;

    let cfg = DecoderConfig::tiny(32);
    let target = Decoder::new(cfg.clone(), 0x92);
    // An independent draft: adversarial proposals, maximal rollback.
    let draft = Decoder::new(cfg.clone(), 0x93);
    let mut ws = Workspace::new();
    let mut rng = Rng::new(2);
    let p = prompt(&mut rng, 6, 32);
    let budget = cfg.max_seq + 1 - p.len(); // run to the very frontier
    let reference = autoregressive_greedy_with_budget(&target, &p, budget);

    // Engine-shaped budget-collapsed leases: capacity = prefix + budget − 1.
    let t_pool = KvPool::new(cfg.n_layers, cfg.dim, 16, 10);
    let d_pool = KvPool::new(cfg.n_layers, cfg.dim, 16, 10);
    let lease_cap = p.len() + budget - 1;
    let mut t_cache = t_pool.try_lease(lease_cap).expect("target lease");
    let mut d_cache = d_pool.try_lease(lease_cap).expect("draft lease");
    let mut logits = ws.take(p.len() * cfg.vocab);
    target.forward_infer_ws(&p, &mut t_cache, &mut ws, &mut logits);
    let pending = argmax(&logits[(p.len() - 1) * cfg.vocab..]) as u32;
    draft.forward_infer_ws(&p, &mut d_cache, &mut ws, &mut logits);
    ws.give(logits);

    // Ring and depth cap sized past the lease so only the KV frontier can
    // stop the draft.
    let ring = SpscRing::new(budget);
    let mut da = DraftAhead::new(&mut d_cache, pending);
    let mut produced = 0usize;
    loop {
        match da.step(&draft, &mut d_cache, &ring, budget, &mut ws) {
            DraftStep::Produced => produced += 1,
            DraftStep::AtCapacity => break,
            s => panic!("unexpected draft step before the frontier: {s:?}"),
        }
    }
    // One fed-back token shy of the leased budget: the lease is full.
    assert_eq!(produced, budget - 1, "speculated to the lease frontier");
    assert_eq!(d_cache.len(), d_cache.capacity(), "the lease is full");
    assert_eq!(d_cache.len(), cfg.max_seq);

    // First verify block: the adversarial draft's first proposal is wrong,
    // so the block commits exactly one corrected token and rolls back.
    let mut verify = VerifyHalf::new(&target, &t_cache, p.len(), pending, budget, 5);
    let r1 = verify.try_step_block(&target, &mut t_cache, &ring, &mut ws);
    assert!(r1.progressed && r1.rolled_back, "position-0 rejection");
    assert_eq!(
        r1.committed, 1,
        "rejection at position 0 commits only the fix"
    );
    // The draft honors the rollback before producing anything else, and the
    // restore lands exactly at the corrected frontier: prefix + the one
    // token the verify leg accepted from the chain start.
    assert!(matches!(
        da.step(&draft, &mut d_cache, &ring, budget, &mut ws),
        DraftStep::RolledBack
    ));
    assert_eq!(d_cache.len(), p.len() + 1, "exact restore at the frontier");

    // Drive both halves to completion; the stream must equal the AR chain.
    while !verify.is_done() {
        while matches!(
            da.step(&draft, &mut d_cache, &ring, budget, &mut ws),
            DraftStep::Produced | DraftStep::RolledBack
        ) {}
        verify.try_step_block(&target, &mut t_cache, &ring, &mut ws);
    }
    let (out, stats) = verify.into_parts();
    assert_eq!(out, reference, "frontier rollback must stay lossless");
    assert_eq!(out.len(), budget);
    assert!(stats.accepted < stats.drafted, "rejections were exercised");

    // No pool block leaks: dropping the leases returns every block.
    drop(t_cache);
    drop(d_cache);
    assert_eq!(t_pool.free_blocks(), t_pool.total_blocks());
    assert_eq!(d_pool.free_blocks(), d_pool.total_blocks());
}

/// Branch checkpoints at the lease-capacity frontier: fork an
/// engine-shaped lease exactly at its full capacity, write divergent rows
/// into parent and fork past the copy-on-write boundary, and assert the
/// two branches never see each other's rows — then drop both and require
/// every block back in the pool.
#[test]
fn fork_at_lease_capacity_frontier_isolates_siblings() {
    use aasd::nn::KvPool;

    let (n_layers, dim, bs) = (2usize, 8usize, 4usize);
    let pool = KvPool::new(n_layers, dim, bs, 12);
    let cap = 2 * bs; // two-block lease, forked when its first block is full
    let mut parent = pool.try_lease(cap).expect("parent lease");

    // Fill the parent to the block boundary — the frontier where a fork's
    // shared prefix ends exactly at a block edge.
    for pos in 0..bs {
        for l in 0..n_layers {
            let row = vec![(l * 100 + pos) as f32; dim];
            let mut layer = parent.layer_mut(l);
            layer.append(&row, &row);
        }
    }
    let cp = parent.checkpoint();
    let mut fork = parent
        .try_fork_from_checkpoint(&cp, cap)
        .expect("fork within pool capacity");
    assert_eq!(fork.len(), bs, "fork starts at the checkpoint frontier");

    // Divergent continuations: parent and fork each append a full block of
    // distinct rows at the same positions.
    for pos in 0..bs {
        for l in 0..n_layers {
            let p_row = vec![1000.0 + (l * 10 + pos) as f32; dim];
            let f_row = vec![-(1000.0 + (l * 10 + pos) as f32); dim];
            parent.layer_mut(l).append(&p_row, &p_row);
            fork.layer_mut(l).append(&f_row, &f_row);
        }
    }
    // The shared prefix is bitwise-identical through both handles; the
    // divergent tails never bleed across branches.
    for l in 0..n_layers {
        let pl = parent.layer(l);
        let fl = fork.layer(l);
        for pos in 0..bs {
            assert_eq!(pl.key(pos), fl.key(pos), "shared prefix differs");
        }
        for pos in bs..2 * bs {
            assert!(pl.key(pos)[0] > 0.0, "parent row overwritten");
            assert!(fl.key(pos)[0] < 0.0, "fork row overwritten");
        }
    }

    // Exhaustion at the fork site: grab the rest of the pool, then a fork
    // that needs a fresh tail block must fail cleanly (None, not panic).
    let hog = pool.try_lease(pool.free_blocks() * bs);
    assert!(hog.is_some());
    assert!(
        parent.try_fork_from_checkpoint(&cp, cap).is_none(),
        "fork must decline when the free list is empty"
    );
    drop(hog);

    // All blocks return once both branches drop (shared prefix blocks flow
    // back when the LAST owner releases them).
    drop(fork);
    drop(parent);
    assert_eq!(pool.free_blocks(), pool.total_blocks());
}
