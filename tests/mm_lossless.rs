//! Losslessness of multimodal speculative decoding: for LlavaSim targets,
//! hybrid-cache speculative decoding must be token-identical to fused
//! autoregressive decoding on image+text prompts — across γ, model seeds,
//! ablation switches, and with a *trained* projector. This extends the
//! text-only guarantee of `speculative_lossless.rs` to the `aasd-mm` stack.

use aasd::mm::{
    distill_hybrid, draft_for, mm_autoregressive_ws, mm_speculative_ws, Ablation,
    HybridDistillConfig, Image, KvProjector, LlavaSim, LlavaSimConfig,
};
use aasd::tensor::{Rng, Workspace};

fn image(cfg: &LlavaSimConfig, seed: u64) -> Image {
    Image::synthetic(
        &mut Rng::new(seed),
        cfg.vision.n_patches,
        cfg.vision.patch_dim,
    )
}

#[test]
fn llava_speculative_is_lossless_across_gammas_seeds_and_ablations() {
    let mut ws = Workspace::new();
    for model_seed in [0x11u64, 0x22] {
        let cfg = LlavaSimConfig::tiny(36, 96);
        let model = LlavaSim::new(cfg.clone(), model_seed);
        let draft = draft_for(&cfg, model_seed ^ 0xFF);
        let proj = KvProjector::new(
            model_seed ^ 0xA,
            draft.cfg.n_layers,
            cfg.lm.n_layers,
            cfg.n_img(),
            cfg.k_slots(),
        );
        let mut rng = Rng::new(model_seed);
        let prompt: Vec<u32> = (0..5).map(|_| rng.below(36) as u32).collect();
        let img = image(&cfg, model_seed + 3);
        let budget = 30;
        let reference = mm_autoregressive_ws(&model, &img, &prompt, budget, &mut ws);
        assert_eq!(reference.len(), budget);

        for gamma in [1usize, 3, 5] {
            for abl in [
                Ablation::projector(),
                Ablation::raw_vision(),
                Ablation::no_vision(),
                Ablation {
                    use_vision_projector: false,
                    drop_vision_kv: false,
                    drop_text_kv: true,
                },
            ] {
                let (out, stats) = mm_speculative_ws(
                    &model,
                    &draft,
                    Some(&proj),
                    abl,
                    &img,
                    &prompt,
                    budget,
                    gamma,
                    &mut ws,
                );
                assert_eq!(
                    out, reference,
                    "seed={model_seed:#x} γ={gamma} {abl:?}: lossless violated"
                );
                assert_eq!(stats.generated, budget);
                assert!(stats.block_efficiency() <= (gamma + 1) as f64 + 1e-12);
            }
        }
    }
}

/// Training must not break losslessness: after hybrid distillation the
/// (now-aligned) draft + projector still reproduce the autoregressive
/// output exactly — only α/τ may change.
#[test]
fn trained_projector_stays_lossless() {
    let cfg = LlavaSimConfig::tiny(30, 96);
    let model = LlavaSim::new(cfg.clone(), 0x33);
    let mut draft = draft_for(&cfg, 0x34);
    let mut proj = KvProjector::new(
        0x35,
        draft.cfg.n_layers,
        cfg.lm.n_layers,
        cfg.n_img(),
        cfg.k_slots(),
    );
    let tcfg = HybridDistillConfig::smoke(16, 0x36);
    distill_hybrid(
        &model,
        &mut draft,
        Some(&mut proj),
        Ablation::projector(),
        &tcfg,
    );

    let mut ws = Workspace::new();
    let img = image(&cfg, 9);
    let prompt = [7u32, 21, 2];
    let budget = 28;
    let reference = mm_autoregressive_ws(&model, &img, &prompt, budget, &mut ws);
    for gamma in [2usize, 4] {
        let (out, _) = mm_speculative_ws(
            &model,
            &draft,
            Some(&proj),
            Ablation::projector(),
            &img,
            &prompt,
            budget,
            gamma,
            &mut ws,
        );
        assert_eq!(out, reference, "trained projector broke losslessness");
    }
}
