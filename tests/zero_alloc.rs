//! Proof that steady-state single-token decode on the fused workspace path
//! performs **zero heap allocations**.
//!
//! A counting global allocator wraps `System` and tallies every
//! `alloc`/`realloc`/`alloc_zeroed` **made by the test's own thread**. After
//! one warm-up pass (which populates the workspace pool with every scratch
//! size the step needs), a window of decode steps must leave the counter
//! untouched. This is the allocator-level ground truth behind
//! `Workspace::fresh_allocs` staying flat.
//!
//! The counter is thread-filtered because the libtest harness's main thread
//! shares the process allocator and allocates on its own schedule — its
//! first *blocking* channel receive lazily initializes an mpmc thread-local
//! `Context` (two heap allocations), and whether that lands inside the
//! measurement window is a scheduling race. The const-initialized
//! thread-local flag below reads without allocating, so opting the test
//! thread in is itself invisible to the counter.
//!
//! This file must stay a single-test binary: the filter keys on "the thread
//! that set the flag", and a second test sharing the binary would race to
//! set it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use aasd::nn::{Decoder, DecoderConfig, KernelPolicy};
use aasd::tensor::Workspace;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// True only on the thread under measurement. `const`-initialized so
    /// reading it from inside the allocator never triggers a lazy TLS
    /// initialization (which could itself allocate and recurse).
    static COUNTED: Cell<bool> = const { Cell::new(false) };
}

fn on_counted_thread() -> bool {
    // `try_with` instead of `with`: the allocator can run during TLS
    // teardown of other threads, where accessing a destroyed key would
    // panic. Those threads are never the measured one — default to false.
    COUNTED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if on_counted_thread() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if on_counted_thread() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if on_counted_thread() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_decode_step_performs_zero_heap_allocations() {
    COUNTED.with(|c| c.set(true));
    let model = Decoder::new(DecoderConfig::tiny(50), 0x2E80);
    let mut cache = model.new_cache();
    let mut ws = Workspace::new();
    // The profiler's fixed arrays make it heap-free even when enabled; keep
    // it on to pin that property at the allocator level too.
    ws.prof.enable();
    // Prefill + a few warm-up decode steps populate the pool with every
    // scratch size a single-token step requests.
    let prompt = [1u32, 2, 3, 4];
    let mut prefill = vec![0.0f32; prompt.len() * model.cfg.vocab];
    model.forward_infer_ws(&prompt, &mut cache, &mut ws, &mut prefill);
    let mut logits = vec![0.0f32; model.cfg.vocab];
    let mut tok = 5u32;
    for _ in 0..3 {
        model.forward_infer_ws(&[tok], &mut cache, &mut ws, &mut logits);
        tok = aasd::tensor::argmax(&logits) as u32;
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let pool_before = ws.fresh_allocs();
    for _ in 0..32 {
        model.forward_infer_ws(&[tok], &mut cache, &mut ws, &mut logits);
        tok = aasd::tensor::argmax(&logits) as u32;
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state decode steps hit the allocator {} times",
        after - before
    );
    assert_eq!(ws.fresh_allocs(), pool_before, "workspace pool grew");

    // Phase 2 (same single test — see the binary-level constraint above):
    // the int8 kernel path must hold the identical guarantee. Its extra
    // per-call activation-quantization scratch comes from the workspace's
    // i8 pool, so after its own warm-up the quantized step is equally
    // allocation-free.
    let mut q_model = model.clone();
    q_model.set_kernel_policy(KernelPolicy::Int8);
    let mut q_cache = q_model.new_cache();
    q_model.forward_infer_ws(&prompt, &mut q_cache, &mut ws, &mut prefill);
    for _ in 0..3 {
        q_model.forward_infer_ws(&[tok], &mut q_cache, &mut ws, &mut logits);
        tok = aasd::tensor::argmax(&logits) as u32;
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let pool_before = ws.fresh_allocs();
    for _ in 0..32 {
        q_model.forward_infer_ws(&[tok], &mut q_cache, &mut ws, &mut logits);
        tok = aasd::tensor::argmax(&logits) as u32;
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state int8 decode steps hit the allocator {} times",
        after - before
    );
    assert_eq!(ws.fresh_allocs(), pool_before, "int8 workspace pool grew");
}
