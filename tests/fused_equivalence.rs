//! The fused workspace decode path must compute the same function as both
//! reference paths, across the same block-split patterns the attention
//! property tests use: one big prefill (`[t]`), token-by-token (`[1; t]`),
//! and mixed speculative-verify-shaped blocks.
//!
//! Tolerances follow the existing precedent: the fused path only
//! reassociates the residual adds relative to `forward_infer` (tight bound),
//! while `forward_full` recomputes attention with different kernels
//! (looser bound, same as the seed's incremental-vs-full test).

use aasd::nn::{Decoder, DecoderConfig};
use aasd::specdec::{
    autoregressive_greedy_with_budget, autoregressive_greedy_with_budget_ws,
    speculative_greedy_with_budget_ws,
};
use aasd::tensor::{Rng, Workspace};

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[test]
fn fused_path_matches_both_references_across_splits() {
    let model = Decoder::new(DecoderConfig::tiny(50), 0xF00D);
    let mut rng = Rng::new(0x5EED);
    let t = 13usize;
    let tokens: Vec<u32> = (0..t).map(|_| rng.below(50) as u32).collect();
    let vocab = model.cfg.vocab;

    let full = model.forward_full(&tokens);

    let mut ws = Workspace::new();
    for splits in [vec![t], vec![1; t], vec![5, 1, 4, 3]] {
        assert_eq!(splits.iter().sum::<usize>(), t);
        let mut cache_ref = model.new_cache();
        let mut cache_ws = model.new_cache();
        let mut fused_all = Vec::new();
        let mut at = 0;
        for blk in splits {
            let toks = &tokens[at..at + blk];
            let reference = model.forward_infer(toks, &mut cache_ref);
            let mut fused = vec![0.0f32; blk * vocab];
            model.forward_infer_ws(toks, &mut cache_ws, &mut ws, &mut fused);
            assert!(
                max_abs_diff(&fused, &reference.data) < 1e-4,
                "fused vs forward_infer diverged at offset {at}"
            );
            fused_all.extend_from_slice(&fused);
            at += blk;
        }
        assert!(
            max_abs_diff(&fused_all, &full.data) < 2e-3,
            "fused vs forward_full diverged"
        );
    }
}

/// End-to-end: the fused speculative loop and fused autoregressive loop are
/// token-identical to the allocating autoregressive reference.
#[test]
fn fused_loops_are_lossless_end_to_end() {
    let target = Decoder::new(DecoderConfig::tiny(50), 0xAB);
    let draft = Decoder::new(DecoderConfig::tiny(50), 0xCD);
    let mut rng = Rng::new(0xE2E);
    let mut ws = Workspace::new();
    for _ in 0..3 {
        let p_len = 2 + rng.below(6);
        let prompt: Vec<u32> = (0..p_len).map(|_| rng.below(50) as u32).collect();
        let budget = 25;
        let reference = autoregressive_greedy_with_budget(&target, &prompt, budget);
        let ar_ws = autoregressive_greedy_with_budget_ws(&target, &prompt, budget, &mut ws);
        assert_eq!(ar_ws, reference, "fused AR loop lossy");
        for gamma in [2, 4] {
            let (spec, stats) =
                speculative_greedy_with_budget_ws(&target, &draft, &prompt, budget, gamma, &mut ws);
            assert_eq!(spec, reference, "fused speculative loop lossy (γ={gamma})");
            assert_eq!(stats.generated, spec.len());
        }
    }
}
