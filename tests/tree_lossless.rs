//! Tree-structured speculation through the `aasd` facade: every tree shape
//! must be token-identical to the autoregressive reference (greedy
//! verification accepts a node only when it IS the target argmax, so the
//! committed root-to-leaf path is the AR chain by induction), branching
//! factor 1 must collapse to the linear session byte for byte, the
//! property must hold identically on every compiled kernel tier, and the
//! serving engine's tree mode must reproduce the fused loops.

use aasd::nn::{Decoder, DecoderConfig};
use aasd::specdec::{
    autoregressive_greedy_with_budget, speculative_greedy_seeded_ws, speculative_tree_seeded_ws,
    AcceptanceCalibrator, SpecStats, TreeConfig,
};
use aasd::tensor::{argmax, best_supported, set_backend, Backend, Rng, Workspace};

fn model(seed: u64, vocab: usize) -> Decoder {
    Decoder::new(DecoderConfig::tiny(vocab), seed)
}

fn prompt(rng: &mut Rng, len: usize, vocab: usize) -> Vec<u32> {
    (0..len).map(|_| rng.below(vocab) as u32).collect()
}

/// Prefill both caches on `p` and return the pending token.
fn seed(
    target: &Decoder,
    draft: &Decoder,
    p: &[u32],
    ws: &mut Workspace,
) -> (aasd::nn::KvCache, aasd::nn::KvCache, u32) {
    let mut t_cache = target.new_cache();
    let mut d_cache = draft.new_cache();
    let mut logits = ws.take(p.len() * target.cfg.vocab);
    target.forward_infer_ws(p, &mut t_cache, ws, &mut logits);
    let pending = argmax(&logits[(p.len() - 1) * target.cfg.vocab..]) as u32;
    ws.give(logits);
    let mut d_logits = ws.take(p.len() * draft.cfg.vocab);
    draft.forward_infer_ws(p, &mut d_cache, ws, &mut d_logits);
    ws.give(d_logits);
    (t_cache, d_cache, pending)
}

fn tree_cfg(bf: usize, depth: usize, cal: Option<AcceptanceCalibrator>) -> TreeConfig {
    TreeConfig {
        branch_factor: bf,
        max_depth: depth,
        prob_floor: 0.05,
        calibrator: cal,
        branch_threshold: 0.25,
    }
}

/// Every (branch factor, depth, gate) shape over independent draft/target
/// pairs reproduces the autoregressive stream exactly.
#[test]
fn every_tree_shape_matches_autoregressive() {
    let vocab = 48;
    let mut rng = Rng::new(0x7EE);
    let mut ws = Workspace::new();
    for case in 0..3u64 {
        let target = model(300 + case, vocab);
        let draft = model(400 + case, vocab);
        let p = prompt(&mut rng, 3 + case as usize, vocab);
        let budget = 20;
        let reference = autoregressive_greedy_with_budget(&target, &p, budget);
        for bf in [1usize, 2, 3] {
            for depth in [0usize, 2] {
                for cal in [None, Some(AcceptanceCalibrator::neutral())] {
                    let (mut tc, mut dc, pending) = seed(&target, &draft, &p, &mut ws);
                    let (out, stats) = speculative_tree_seeded_ws(
                        &target,
                        &draft,
                        &mut tc,
                        &mut dc,
                        pending,
                        budget,
                        4,
                        tree_cfg(bf, depth, cal),
                        0,
                        &mut ws,
                    );
                    assert_eq!(out, reference, "case {case} bf={bf} depth={depth}");
                    assert_eq!(stats.generated, budget);
                    assert!(stats.block_efficiency() >= 1.0);
                }
            }
        }
    }
}

/// Branching factor 1 IS the linear session: identical stream AND
/// identical speculation counters — the tree code path adds nothing.
#[test]
fn branching_factor_one_collapses_to_the_linear_session() {
    let vocab = 48;
    let mut rng = Rng::new(0x7EF);
    let mut ws = Workspace::new();
    let target = model(310, vocab);
    let draft = model(410, vocab);
    for gamma in [1usize, 3, 5] {
        let p = prompt(&mut rng, 4, vocab);
        let (mut tc, mut dc, pending) = seed(&target, &draft, &p, &mut ws);
        let (lin_out, lin_stats) = speculative_greedy_seeded_ws(
            &target, &draft, &mut tc, &mut dc, pending, 24, gamma, &mut ws,
        );
        let (mut tc2, mut dc2, pending2) = seed(&target, &draft, &p, &mut ws);
        let (tree_out, tree_stats): (Vec<u32>, SpecStats) = speculative_tree_seeded_ws(
            &target,
            &draft,
            &mut tc2,
            &mut dc2,
            pending2,
            24,
            gamma,
            TreeConfig::linear(),
            0,
            &mut ws,
        );
        assert_eq!(tree_out, lin_out, "γ={gamma} stream diverged");
        assert_eq!(tree_stats, lin_stats, "γ={gamma} stats diverged");
    }
}

/// The committed stream is identical on the scalar tier and the best
/// runtime-dispatched tier (the kernels are f32-bitwise-identical, so the
/// tree's accept walk must make the same decisions on both).
#[test]
fn tree_streams_are_identical_across_kernel_tiers() {
    let vocab = 48;
    let target = model(320, vocab);
    let draft = model(420, vocab);
    let p = [3u32, 9, 17, 4];
    let run = || {
        let mut ws_local = Workspace::new();
        let (mut tc, mut dc, pending) = seed(&target, &draft, &p, &mut ws_local);
        speculative_tree_seeded_ws(
            &target,
            &draft,
            &mut tc,
            &mut dc,
            pending,
            22,
            4,
            tree_cfg(2, 0, Some(AcceptanceCalibrator::neutral())),
            0,
            &mut ws_local,
        )
    };
    let prev = aasd::tensor::backend();
    set_backend(Backend::Scalar).expect("scalar tier always available");
    let scalar = run();
    set_backend(best_supported()).expect("best tier is supported by definition");
    let best = run();
    let _ = set_backend(prev);
    assert_eq!(scalar, best, "tree decode diverged across kernel tiers");
}

/// The serving engine's tree mode (sync scheduler, `tree_speculation`)
/// serves the same streams as the fused linear loop — losslessness means
/// tree and chain agree on every committed token.
#[test]
fn engine_tree_mode_reproduces_fused_streams() {
    use aasd::serve::{DecodeMode, Engine, EngineConfig, EngineModel, Request, Status};
    use aasd::specdec::speculative_greedy_with_budget_ws;
    use std::sync::Arc;

    let target = Arc::new(model(10, 40));
    let draft = Arc::new(model(20, 40));
    let reqs: Vec<Request> = (0..6)
        .map(|i| Request {
            prompt: (0..(2 + i % 3))
                .map(|j| ((i * 11 + j * 5) % 40) as u32)
                .collect(),
            max_new: 10 + (i * 3) % 12,
            mode: DecodeMode::Speculative { gamma: 2 + i % 3 },
            image_seed: None,
        })
        .collect();
    let run = |workers: usize| {
        let engine = Engine::new(
            EngineModel::Text {
                target: Arc::clone(&target),
                draft: Arc::clone(&draft),
            },
            EngineConfig {
                slots: 2,
                workers,
                max_queue: 16,
                tree_speculation: true,
                ..EngineConfig::default()
            },
        );
        let handles: Vec<_> = reqs
            .iter()
            .map(|r| engine.submit(r.clone()).expect("admitted"))
            .collect();
        engine.run_until_idle();
        handles.iter().map(|h| h.snapshot()).collect::<Vec<_>>()
    };
    let one = run(1);
    assert_eq!(one, run(4), "tree engine diverged across worker counts");
    let mut ws = Workspace::new();
    for (req, (status, tokens)) in reqs.iter().zip(&one) {
        assert_eq!(*status, Status::Done);
        let DecodeMode::Speculative { gamma } = req.mode else {
            unreachable!()
        };
        let (want, _) = speculative_greedy_with_budget_ws(
            &target,
            &draft,
            &req.prompt,
            req.max_new,
            gamma,
            &mut ws,
        );
        assert_eq!(*tokens, want, "tree-served stream != fused linear loop");
    }
}
