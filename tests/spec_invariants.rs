//! Property-style sweep over the speculative decoding loop: across random
//! target/draft pairs, γ values, budgets, and prompts (including prompts
//! flush against the context window), every [`SpecStats`] invariant must
//! hold and the output must stay lossless.

use aasd::nn::{Decoder, DecoderConfig};
use aasd::specdec::{autoregressive_greedy_with_budget, speculative_greedy_with_budget, SpecStats};
use aasd::tensor::Rng;

fn model(seed: u64) -> Decoder {
    Decoder::new(DecoderConfig::tiny(32), seed)
}

fn random_prompt(rng: &mut Rng, len: usize, vocab: usize) -> Vec<u32> {
    (0..len).map(|_| rng.below(vocab) as u32).collect()
}

fn check_invariants(stats: &SpecStats, out: &[u32], gamma: usize, case: &str) {
    assert!(
        stats.accepted <= stats.drafted,
        "{case}: accepted {} > drafted {}",
        stats.accepted,
        stats.drafted
    );
    assert_eq!(
        stats.generated,
        out.len(),
        "{case}: generated counter disagrees with emitted tokens"
    );
    assert!(
        stats.acceptance_rate() <= 1.0 + 1e-12,
        "{case}: α {} > 1",
        stats.acceptance_rate()
    );
    assert!(
        stats.block_efficiency() <= (gamma + 1) as f64 + 1e-12,
        "{case}: τ {} > γ+1",
        stats.block_efficiency()
    );
    if !out.is_empty() {
        assert!(stats.blocks >= 1, "{case}: tokens emitted without a block");
        assert!(
            stats.block_efficiency() >= 1.0 - 1e-12,
            "{case}: τ {} < 1",
            stats.block_efficiency()
        );
    }
}

#[test]
fn spec_stats_invariants_hold_across_random_runs() {
    let mut rng = Rng::new(0x51AB);
    let max_seq = DecoderConfig::tiny(32).max_seq;
    for case_idx in 0..24 {
        let target = model(100 + rng.below(6) as u64);
        let draft = model(200 + rng.below(6) as u64);
        let gamma = 1 + rng.below(6);

        // Alternate between interior prompts and prompts flush against the
        // context window, where the extended budget forces the g = 0 path.
        let boundary = case_idx % 3 == 0;
        let prompt_len = if boundary {
            max_seq - 1 - rng.below(6)
        } else {
            1 + rng.below(20)
        };
        let prompt = random_prompt(&mut rng, prompt_len, 32);
        let max_budget = max_seq + 1 - prompt_len;
        let budget = if boundary {
            max_budget
        } else {
            1 + rng.below(30.min(max_budget))
        };

        let case = format!("case {case_idx}: prompt_len={prompt_len} γ={gamma} budget={budget}");
        let reference = autoregressive_greedy_with_budget(&target, &prompt, budget);
        let (out, stats) = speculative_greedy_with_budget(&target, &draft, &prompt, budget, gamma);
        assert_eq!(out, reference, "{case}: lossless violated");
        assert_eq!(out.len(), budget, "{case}: budget not filled");
        check_invariants(&stats, &out, gamma, &case);
    }
}

#[test]
fn self_draft_maximises_every_counter() {
    let target = model(7);
    let (out, stats) = speculative_greedy_with_budget(&target, &target, &[3, 1, 4], 25, 4);
    check_invariants(&stats, &out, 4, "self-draft");
    assert_eq!(
        stats.accepted, stats.drafted,
        "self-draft must fully accept"
    );
    assert!((stats.acceptance_rate() - 1.0).abs() < 1e-12);
}
