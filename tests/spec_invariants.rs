//! Property-style sweep over the speculative decoding loop: across random
//! target/draft pairs, γ values, budgets, and prompts (including prompts
//! flush against the context window), every [`SpecStats`] invariant must
//! hold and the output must stay lossless.

use aasd::nn::{Decoder, DecoderConfig};
use aasd::specdec::{
    autoregressive_greedy_with_budget, speculative_greedy_with_budget,
    speculative_greedy_with_budget_ws, SpecStats,
};
use aasd::tensor::{Rng, Workspace};

fn model(seed: u64) -> Decoder {
    Decoder::new(DecoderConfig::tiny(32), seed)
}

fn random_prompt(rng: &mut Rng, len: usize, vocab: usize) -> Vec<u32> {
    (0..len).map(|_| rng.below(vocab) as u32).collect()
}

fn check_invariants(stats: &SpecStats, out: &[u32], gamma: usize, case: &str) {
    assert!(
        stats.accepted <= stats.drafted,
        "{case}: accepted {} > drafted {}",
        stats.accepted,
        stats.drafted
    );
    assert_eq!(
        stats.generated,
        out.len(),
        "{case}: generated counter disagrees with emitted tokens"
    );
    assert!(
        stats.acceptance_rate() <= 1.0 + 1e-12,
        "{case}: α {} > 1",
        stats.acceptance_rate()
    );
    assert!(
        stats.block_efficiency() <= (gamma + 1) as f64 + 1e-12,
        "{case}: τ {} > γ+1",
        stats.block_efficiency()
    );
    if !out.is_empty() {
        assert!(stats.blocks >= 1, "{case}: tokens emitted without a block");
        assert!(
            stats.block_efficiency() >= 1.0 - 1e-12,
            "{case}: τ {} < 1",
            stats.block_efficiency()
        );
    }
}

#[test]
fn spec_stats_invariants_hold_across_random_runs() {
    let mut rng = Rng::new(0x51AB);
    let max_seq = DecoderConfig::tiny(32).max_seq;
    for case_idx in 0..24 {
        let target = model(100 + rng.below(6) as u64);
        let draft = model(200 + rng.below(6) as u64);
        let gamma = 1 + rng.below(6);

        // Alternate between interior prompts and prompts flush against the
        // context window, where the extended budget forces the g = 0 path.
        let boundary = case_idx % 3 == 0;
        let prompt_len = if boundary {
            max_seq - 1 - rng.below(6)
        } else {
            1 + rng.below(20)
        };
        let prompt = random_prompt(&mut rng, prompt_len, 32);
        let max_budget = max_seq + 1 - prompt_len;
        let budget = if boundary {
            max_budget
        } else {
            1 + rng.below(30.min(max_budget))
        };

        let case = format!("case {case_idx}: prompt_len={prompt_len} γ={gamma} budget={budget}");
        let reference = autoregressive_greedy_with_budget(&target, &prompt, budget);
        let (out, stats) = speculative_greedy_with_budget(&target, &draft, &prompt, budget, gamma);
        assert_eq!(out, reference, "{case}: lossless violated");
        assert_eq!(out.len(), budget, "{case}: budget not filled");
        check_invariants(&stats, &out, gamma, &case);
    }
}

/// The fused loop's variant of [`check_invariants`]: the initial pending
/// token is prefill-decided (`prefill_tokens == 1`), so a budget-1 run emits
/// a token with zero blocks and τ only kicks in once a block has run.
fn check_fused_invariants(stats: &SpecStats, out: &[u32], gamma: usize, case: &str) {
    assert!(
        stats.accepted <= stats.drafted,
        "{case}: accepted > drafted"
    );
    assert_eq!(stats.generated, out.len(), "{case}: generated != emitted");
    assert_eq!(
        stats.prefill_tokens,
        usize::from(!out.is_empty()),
        "{case}: fused loop must record exactly one prefill token"
    );
    assert!(
        stats.block_efficiency() <= (gamma + 1) as f64 + 1e-12,
        "{case}: τ {} > γ+1",
        stats.block_efficiency()
    );
    if out.len() > stats.prefill_tokens {
        assert!(stats.blocks >= 1, "{case}: verified tokens without a block");
        assert!(
            stats.block_efficiency() >= 1.0 - 1e-12,
            "{case}: τ {} < 1",
            stats.block_efficiency()
        );
    }
}

/// KV-capacity boundary sweep for the FUSED loop: prompts within γ of
/// `max_seq` force the room clamp and the g = 0 fallback, budgets run flush
/// to the `max_seq + 1` frontier, and rollback happens at the cache
/// boundary. Lossless and bounded everywhere.
#[test]
fn fused_loop_boundary_sweep_stays_lossless_and_bounded() {
    let mut rng = Rng::new(0xF05D);
    let max_seq = DecoderConfig::tiny(32).max_seq;
    let mut ws = Workspace::new();
    for gamma in [2usize, 5] {
        // Prompts from γ+2 below the window up to flush against it.
        for slack in 1..=gamma + 2 {
            let prompt_len = max_seq - slack;
            let prompt = random_prompt(&mut rng, prompt_len, 32);
            let target = model(300 + slack as u64);
            let draft = model(400 + slack as u64);
            let budget = max_seq + 1 - prompt_len; // fill to the frontier
            let case = format!("fused boundary: slack={slack} γ={gamma} budget={budget}");
            let reference = autoregressive_greedy_with_budget(&target, &prompt, budget);
            let (out, stats) =
                speculative_greedy_with_budget_ws(&target, &draft, &prompt, budget, gamma, &mut ws);
            assert_eq!(out, reference, "{case}: lossless violated");
            assert_eq!(out.len(), budget, "{case}: budget not filled");
            check_fused_invariants(&stats, &out, gamma, &case);
        }
    }
}

#[test]
fn self_draft_maximises_every_counter() {
    let target = model(7);
    let (out, stats) = speculative_greedy_with_budget(&target, &target, &[3, 1, 4], 25, 4);
    check_invariants(&stats, &out, 4, "self-draft");
    assert_eq!(
        stats.accepted, stats.drafted,
        "self-draft must fully accept"
    );
    assert!((stats.acceptance_rate() - 1.0).abs() < 1e-12);
}
