//! Workload determinism and label-consistency gates (PR 10, satellite).
//!
//! The `aasd-data` streams must be **bit-identical** across machines and
//! `AASD_KERNEL` tiers — the renderer and grammar use plain scalar f32
//! arithmetic only, never the dispatched SIMD kernels, so a golden FNV
//! fingerprint pins the entire (image, prompt, reference) stream. `ci.sh`
//! re-runs this test under every kernel tier; a hash change on any tier
//! means data generation silently forked from the committed streams and
//! every committed α/τ number stops being reproducible.

use aasd::data::{grammar, stream_hash, Split, Workload, WorkloadKind};

const SEED: u64 = 0xDA7A_BA5E;
const N_PATCHES: usize = 16;
const PATCH_DIM: usize = 27;

fn wl(kind: WorkloadKind) -> Workload {
    Workload::new(kind, SEED, N_PATCHES, PATCH_DIM)
}

/// Golden stream fingerprints, frozen when PR 10 landed. These must never
/// change on any machine or kernel tier: the committed BENCH_PR10.json
/// numbers were measured on exactly these streams.
#[test]
fn stream_hashes_match_golden_values() {
    const GOLDEN: [(WorkloadKind, Split, u64); 6] = [
        (WorkloadKind::WildSim, Split::Train, 0xb65a_8d15_0f05_f5e1),
        (WorkloadKind::WildSim, Split::Heldout, 0xe2b7_b1a7_de81_2cd8),
        (
            WorkloadKind::CocoCapSim,
            Split::Train,
            0xac93_9537_001a_17ee,
        ),
        (
            WorkloadKind::CocoCapSim,
            Split::Heldout,
            0x89b9_acd1_68a0_1af8,
        ),
        (WorkloadKind::SqaSim, Split::Train, 0x9515_35ca_9464_6431),
        (WorkloadKind::SqaSim, Split::Heldout, 0xf74d_f35f_fd81_352f),
    ];
    for (kind, split, want) in GOLDEN {
        let got = stream_hash(&wl(kind).take(split, 8));
        assert_eq!(
            got,
            want,
            "stream fingerprint drifted: {} {:?} got {got:#018x}",
            kind.name(),
            split
        );
    }
}

/// Same seed ⇒ the same stream, sample for sample, however it is accessed
/// (random access vs iteration, fresh vs reused workload value).
#[test]
fn streams_are_replayable() {
    for kind in WorkloadKind::ALL {
        let a = wl(kind);
        let b = wl(kind);
        for (i, s) in a.iter(Split::Heldout).take(6).enumerate() {
            let r = b.sample(Split::Heldout, i as u64);
            assert_eq!(s.prompt, r.prompt);
            assert_eq!(s.reference, r.reference);
            assert_eq!(s.image.content_hash(), r.image.content_hash());
        }
    }
}

/// Label consistency: every sample's (prompt, reference) pair must be
/// exactly what the grammar emits for that sample's scene — the text is a
/// pure function of the image content, which is the whole point of the
/// synthetic world. Checked property-style over many samples of every
/// workload and split.
#[test]
fn references_are_ground_truth_for_their_scene() {
    for kind in WorkloadKind::ALL {
        let w = wl(kind);
        for split in [Split::Train, Split::Heldout] {
            for s in w.take(split, 24) {
                let mut candidates = vec![
                    (
                        grammar::caption_prompt(),
                        grammar::caption_reference(&s.scene),
                    ),
                    grammar::cot(&s.scene),
                    grammar::vqa_largest(&s.scene),
                ];
                for color in aasd::data::Color::ALL {
                    candidates.push(grammar::vqa_count(&s.scene, color));
                }
                assert!(
                    candidates.contains(&(s.prompt.clone(), s.reference.clone())),
                    "{} {:?}: reference is not the grammar's output for its \
                     scene: {:?} -> {:?}",
                    kind.name(),
                    split,
                    grammar::detokenize(&s.prompt),
                    grammar::detokenize(&s.reference),
                );
            }
        }
    }
}

/// The specialized workloads stay on-task; WildSim really mixes families.
#[test]
fn workload_kinds_have_their_advertised_task_mix() {
    for s in wl(WorkloadKind::CocoCapSim).take(Split::Heldout, 8) {
        assert_eq!(s.prompt, grammar::caption_prompt());
    }
    for s in wl(WorkloadKind::SqaSim).take(Split::Heldout, 8) {
        assert_eq!(
            (s.prompt.clone(), s.reference.clone()),
            grammar::cot(&s.scene)
        );
    }
    let prompts: std::collections::HashSet<Vec<u32>> = wl(WorkloadKind::WildSim)
        .take(Split::Heldout, 32)
        .into_iter()
        .map(|s| s.prompt)
        .collect();
    assert!(
        prompts.len() >= 3,
        "WildSim should mix at least 3 prompt kinds"
    );
}
