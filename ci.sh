#!/usr/bin/env bash
# CI gate for the AASD reproduction. Run from the repo root:
#   ./ci.sh           # full gate: build, tests, fmt, clippy
#   ./ci.sh --quick   # tier-1 only: release build + tests
#
# The container is offline; everything here is std-only and must work
# without registry access.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> gradient-check suite (aasd-autograd + whole-decoder FD)"
    cargo test -q -p aasd-autograd
    cargo test -q -p aasd-nn whole_decoder_gradients_pass_fd_check

    echo "==> distillation smoke test (train stack end-to-end)"
    cargo test -q -p aasd-train distill_smoke_run_lowers_mean_loss
    cargo test -q -p aasd --test distill_alpha

    echo "==> zero-allocation decode proof (counting global allocator)"
    cargo test -q -p aasd --test zero_alloc

    echo "==> multimodal stack (LlavaSim + projector + hybrid-cache verify)"
    cargo test -q -p aasd-mm
    cargo test -q -p aasd --test mm_lossless
    cargo test -q -p aasd --test kv_boundary

    echo "==> serving stack (engine scheduling + TCP server smoke)"
    cargo test -q -p aasd-serve
    cargo test -q -p aasd --test serving_determinism
    # Ephemeral-port TCP server: 3 concurrent clients over the wire, every
    # completion asserted token-identical to the fused single-request loop.
    cargo test -q -p aasd --test server_smoke

    echo "==> paged-pool gate: serving determinism + mm losslessness on both kernel tiers"
    # The block-paged KV pool, vision cache, and adaptive-gamma controller
    # must never change a served token: run the worker-count determinism
    # suite and the multimodal losslessness suite pinned to the scalar
    # reference and again on the host's best backend, so a paging bug that
    # only reproduces under one dispatch tier cannot slip through.
    AASD_KERNEL=scalar cargo test -q -p aasd --test serving_determinism
    AASD_KERNEL=scalar cargo test -q -p aasd --test mm_lossless
    cargo test -q -p aasd --test serving_determinism
    cargo test -q -p aasd --test mm_lossless

    echo "==> pipeline gate: async scheduler determinism + shutdown drain on both kernel tiers"
    # The async draft/target pipeline (free-running draft threads + SPSC
    # rings) must stream byte-identically to the sync scheduler at 1/2/4
    # target workers, and SHUTDOWN must join every draft thread within its
    # bound. Run the determinism + server suites pinned to the scalar
    # reference and again on the host's best backend, plus the 2-thread
    # ring stress under AASD_THREADS variations — a memory-ordering bug
    # that only reproduces under one interleaving budget cannot slip
    # through silently.
    AASD_KERNEL=scalar cargo test -q -p aasd --test serving_determinism async
    AASD_KERNEL=scalar cargo test -q -p aasd --test server_smoke async
    cargo test -q -p aasd --test serving_determinism async
    cargo test -q -p aasd --test server_smoke async
    for t in 1 4 8; do
        AASD_THREADS=$t cargo test -q --release -p aasd-specdec spsc_stress_hash_chain_with_rollbacks
    done

    echo "==> tree gate: tree speculation losslessness + serving determinism on both kernel tiers"
    # Tree-structured speculation must commit exactly the autoregressive
    # stream for every tree shape, collapse byte-identically to the linear
    # session at branching factor 1, and serve the same tokens through the
    # engine's tree mode — on the scalar reference tier and on the host's
    # best backend, so a tree-attention masking bug that only reproduces
    # under one dispatch tier cannot slip through. (The perf-snapshot smoke
    # below additionally runs the tree bench section, whose τ gate asserts
    # the tree beats the best linear/adaptive-γ configuration at an equal
    # verified-rows budget.)
    AASD_KERNEL=scalar cargo test -q -p aasd --test tree_lossless
    AASD_KERNEL=scalar cargo test -q -p aasd --test serving_determinism tree
    cargo test -q -p aasd --test tree_lossless
    cargo test -q -p aasd --test serving_determinism tree
    cargo test -q -p aasd-specdec tree

    echo "==> kernel gate: equivalence suite on forced-scalar and host-best tiers"
    # The SIMD/int8 kernel layer must be lossless on every dispatch tier the
    # host supports. Run the tensor kernel tests plus the int8 spec≡AR suite
    # twice: once pinned to the scalar reference, once on the host's best
    # backend (the default), so a tier-specific bug cannot slip through on a
    # machine where that tier happens to be the default.
    AASD_KERNEL=scalar cargo test -q -p aasd-tensor
    AASD_KERNEL=scalar cargo test -q -p aasd --test int8_equivalence
    cargo test -q -p aasd-tensor
    cargo test -q -p aasd --test int8_equivalence

    echo "==> workload gate: aasd-data streams bit-identical on both kernel tiers"
    # The synthetic workloads must be pure scalar arithmetic: the golden
    # stream fingerprints in tests/workload_determinism.rs have to match on
    # the forced-scalar tier and on the host's best backend, or every
    # committed α/τ number stops being reproducible across machines.
    AASD_KERNEL=scalar cargo test -q -p aasd --test workload_determinism
    cargo test -q -p aasd --test workload_determinism

    echo "==> table1 smoke gate: draft-zoo ordering + per-stream losslessness"
    # Reduced grid (γ=3 only, short training, few held-out pairs): the
    # binary hard-asserts that every speculative stream is token-identical
    # to autoregressive decoding and that the AASD draft's α is strictly
    # above all four baselines on every workload. The full grid (γ∈{3,5},
    # BENCH_PR10.json) stays out of CI — run it manually via
    #   cargo run --release -p aasd-bench --bin table1
    cargo run --release -q -p aasd-bench --bin table1 -- /tmp/table1_smoke.json --smoke

    echo "==> perf snapshot smoke (every bench section; decode-step + pipeline-throughput regressions vs latest BENCH_PR*.json are hard failures)"
    cargo run --release -q -p aasd-bench --bin perf_snapshot -- /tmp/bench_smoke.json --smoke

    echo "==> cargo fmt --check"
    cargo fmt --check

    echo "==> cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "CI gate passed."
