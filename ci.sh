#!/usr/bin/env bash
# CI gate for the AASD reproduction. Run from the repo root:
#   ./ci.sh           # full gate: build, tests, fmt, clippy
#   ./ci.sh --quick   # tier-1 only: release build + tests
#
# The container is offline; everything here is std-only and must work
# without registry access.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --check

    echo "==> cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "CI gate passed."
