//! The hybrid-cache speculative decode path: multimodal target prefill,
//! draft-cache seeding per ablation switch, then the seeded fused
//! speculative loop from `aasd-specdec`. Because verification is greedy,
//! every ablation is **lossless** — the switches only move α/τ, never the
//! output tokens.

use crate::llava::{LlavaSim, LlavaSimConfig};
use crate::projector::{seed_raw_vision, KvProjector};
use crate::vision::Image;
use aasd_nn::{Decoder, DecoderConfig, KvCache};
use aasd_specdec::{
    autoregressive_greedy_seeded_ws, speculative_greedy_seeded_ws, speculative_tree_seeded_ws,
    SpecStats, TreeConfig,
};
use aasd_tensor::Workspace;

/// What the draft's cache is seeded with before the speculative loop.
///
/// Semantics (checked in this order):
/// * `drop_vision_kv` — the draft gets **no** vision prefix at all; its text
///   positions start at 0 and its proposals cannot depend on the image.
///   Overrides `use_vision_projector`.
/// * `use_vision_projector` — the draft prefix is the [`KvProjector`]'s
///   `k_slots` learned rows (the AASD hybrid cache). Off → the prefix is the
///   target's raw `n_img` vision KV rows copied verbatim.
/// * `drop_text_kv` — the draft is *not* prefilled on the text prompt; it
///   enters the loop with only its vision prefix (tokens generated during
///   decoding still accumulate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ablation {
    pub use_vision_projector: bool,
    pub drop_vision_kv: bool,
    pub drop_text_kv: bool,
}

impl Ablation {
    /// The full AASD configuration: projected vision KV ∥ text KV.
    pub fn projector() -> Self {
        Self {
            use_vision_projector: true,
            drop_vision_kv: false,
            drop_text_kv: false,
        }
    }

    /// Raw (unprojected) target vision KV ∥ text KV.
    pub fn raw_vision() -> Self {
        Self {
            use_vision_projector: false,
            drop_vision_kv: false,
            drop_text_kv: false,
        }
    }

    /// Text-only draft context (the "blind draft" baseline).
    pub fn no_vision() -> Self {
        Self {
            use_vision_projector: false,
            drop_vision_kv: true,
            drop_text_kv: false,
        }
    }
}

impl Default for Ablation {
    fn default() -> Self {
        Self::projector()
    }
}

/// The standard draft for a LlavaSim target: same vocabulary, width, head
/// count, and context window as the target LM, but a single layer with a
/// dim-sized FFN — roughly an order of magnitude cheaper per token. Sharing
/// the width is what lets the KV projector be a pure row compression.
pub fn draft_for(cfg: &LlavaSimConfig, seed: u64) -> Decoder {
    draft_for_depth(cfg, 1, seed)
}

/// [`draft_for`] with an explicit depth: still width-shared (the projector
/// requirement) with a dim-sized FFN, but `n_layers` blocks. Depth ≥ 2
/// matters on structured grammars — copying a token seen earlier in the
/// stream (an induction head) needs two attention layers, and a draft that
/// cannot copy caps its own α on any workload with self-referencing text.
/// [`crate::projector::layer_map`] spreads the draft layers over the
/// target's for KV seeding.
pub fn draft_for_depth(cfg: &LlavaSimConfig, n_layers: usize, seed: u64) -> Decoder {
    assert!(n_layers >= 1 && n_layers <= cfg.lm.n_layers);
    Decoder::new(
        DecoderConfig {
            n_layers,
            ff_hidden: cfg.lm.dim,
            ..cfg.lm.clone()
        },
        seed,
    )
}

/// Seed an empty draft cache's vision prefix per the ablation switches and
/// return the prefix length (0, `k_slots`, or `n_img`).
pub fn seed_draft_prefix(
    model: &LlavaSim,
    projector: Option<&KvProjector>,
    ablation: Ablation,
    t_cache: &KvCache,
    d_cache: &mut KvCache,
) -> usize {
    assert!(d_cache.is_empty(), "draft cache must be empty to seed");
    if ablation.drop_vision_kv {
        return 0;
    }
    if ablation.use_vision_projector {
        let proj = projector.expect("use_vision_projector requires a KvProjector");
        proj.seed_draft_cache(t_cache, d_cache);
        proj.k_slots
    } else {
        seed_raw_vision(t_cache, d_cache, model.n_img());
        model.n_img()
    }
}

/// Fused multimodal autoregressive decoding: vision+text prefill, then the
/// seeded greedy loop. The token-level ground truth every speculative
/// configuration must reproduce.
pub fn mm_autoregressive_ws(
    model: &LlavaSim,
    image: &Image,
    prompt: &[u32],
    budget: usize,
    ws: &mut Workspace,
) -> Vec<u32> {
    let mut cache = model.lm.new_cache();
    let pending = model.prefill_ws(image, prompt, &mut cache, ws);
    autoregressive_greedy_seeded_ws(&model.lm, &mut cache, pending, budget, ws)
}

/// Fused multimodal speculative decoding over the hybrid cache.
///
/// Target side: vision prefix (positions `0..n_img`) then the text prompt.
/// Draft side: the ablation-selected vision prefix, then (unless
/// `drop_text_kv`) a text prefill. The two caches then advance in lockstep
/// through [`speculative_greedy_seeded_ws`], which tolerates their length
/// asymmetry. Token-identical to [`mm_autoregressive_ws`] by greedy
/// verification, for every ablation.
#[allow(clippy::too_many_arguments)]
pub fn mm_speculative_ws(
    model: &LlavaSim,
    draft: &Decoder,
    projector: Option<&KvProjector>,
    ablation: Ablation,
    image: &Image,
    prompt: &[u32],
    budget: usize,
    gamma: usize,
    ws: &mut Workspace,
) -> (Vec<u32>, SpecStats) {
    let mut t_cache = model.lm.new_cache();
    let pending = model.prefill_ws(image, prompt, &mut t_cache, ws);

    let mut d_cache = draft.new_cache();
    seed_draft_prefix(model, projector, ablation, &t_cache, &mut d_cache);
    if !ablation.drop_text_kv {
        let mut d_logits = ws.take(prompt.len() * draft.cfg.vocab);
        draft.forward_infer_ws(prompt, &mut d_cache, ws, &mut d_logits);
        ws.give(d_logits);
    }

    speculative_greedy_seeded_ws(
        &model.lm,
        draft,
        &mut t_cache,
        &mut d_cache,
        pending,
        budget,
        gamma,
        ws,
    )
}

/// [`mm_speculative_ws`] with **tree-structured** speculation: identical
/// prefill and hybrid-cache seeding, but the block loop drafts a token tree
/// and verifies it in one tree-attention target pass
/// ([`speculative_tree_seeded_ws`]). The target's vision prefix length is
/// passed as the visual-attention boundary, so the session's acceptance
/// calibrator sees a live modality feature. Lossless for every ablation and
/// tree shape; byte-identical to [`mm_speculative_ws`] at branching
/// factor 1.
#[allow(clippy::too_many_arguments)]
pub fn mm_speculative_tree_ws(
    model: &LlavaSim,
    draft: &Decoder,
    projector: Option<&KvProjector>,
    ablation: Ablation,
    image: &Image,
    prompt: &[u32],
    budget: usize,
    gamma: usize,
    tree: TreeConfig,
    ws: &mut Workspace,
) -> (Vec<u32>, SpecStats) {
    let mut t_cache = model.lm.new_cache();
    let pending = model.prefill_ws(image, prompt, &mut t_cache, ws);

    let mut d_cache = draft.new_cache();
    seed_draft_prefix(model, projector, ablation, &t_cache, &mut d_cache);
    if !ablation.drop_text_kv {
        let mut d_logits = ws.take(prompt.len() * draft.cfg.vocab);
        draft.forward_infer_ws(prompt, &mut d_cache, ws, &mut d_logits);
        ws.give(d_logits);
    }

    speculative_tree_seeded_ws(
        &model.lm,
        draft,
        &mut t_cache,
        &mut d_cache,
        pending,
        budget,
        gamma,
        tree,
        model.n_img(),
        ws,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aasd_tensor::Rng;

    fn setup() -> (LlavaSim, Decoder, KvProjector, Image, Vec<u32>) {
        let cfg = LlavaSimConfig::tiny(40, 96);
        let model = LlavaSim::new(cfg.clone(), 0xB0);
        let draft = draft_for(&cfg, 0xB1);
        let proj = KvProjector::new(
            0xB2,
            draft.cfg.n_layers,
            cfg.lm.n_layers,
            cfg.n_img(),
            cfg.k_slots(),
        );
        let img = Image::synthetic(&mut Rng::new(5), cfg.vision.n_patches, cfg.vision.patch_dim);
        let prompt = vec![3u32, 11, 25, 7];
        (model, draft, proj, img, prompt)
    }

    /// Every ablation combination must be lossless: the speculative output
    /// equals the autoregressive output token for token.
    #[test]
    fn all_ablations_are_lossless() {
        let (model, draft, proj, img, prompt) = setup();
        let mut ws = Workspace::new();
        let budget = 24;
        let reference = mm_autoregressive_ws(&model, &img, &prompt, budget, &mut ws);
        assert_eq!(reference.len(), budget);

        let ablations = [
            Ablation::projector(),
            Ablation::raw_vision(),
            Ablation::no_vision(),
            Ablation {
                use_vision_projector: true,
                drop_vision_kv: false,
                drop_text_kv: true,
            },
            Ablation {
                use_vision_projector: false,
                drop_vision_kv: true,
                drop_text_kv: true,
            },
        ];
        for abl in ablations {
            for gamma in [1usize, 3, 5] {
                let (out, stats) = mm_speculative_ws(
                    &model,
                    &draft,
                    Some(&proj),
                    abl,
                    &img,
                    &prompt,
                    budget,
                    gamma,
                    &mut ws,
                );
                assert_eq!(out, reference, "lossless violated: {abl:?} γ={gamma}");
                assert_eq!(stats.generated, budget);
                assert_eq!(stats.prefill_tokens, 1);
                assert!(
                    stats.block_efficiency() <= (gamma + 1) as f64 + 1e-9,
                    "τ bound violated: {abl:?} γ={gamma}"
                );
            }
        }
    }

    /// The draft caches really are asymmetric: projector prefix is shorter
    /// than raw, raw matches the target's vision slice, no-vision is empty.
    #[test]
    fn prefix_lengths_match_ablation() {
        let (model, draft, proj, img, prompt) = setup();
        let mut ws = Workspace::new();
        let mut t_cache = model.lm.new_cache();
        model.prefill_ws(&img, &prompt, &mut t_cache, &mut ws);

        let mut c = draft.new_cache();
        let p = seed_draft_prefix(&model, Some(&proj), Ablation::projector(), &t_cache, &mut c);
        assert_eq!((p, c.len()), (model.cfg.k_slots(), model.cfg.k_slots()));

        let mut c = draft.new_cache();
        let p = seed_draft_prefix(&model, None, Ablation::raw_vision(), &t_cache, &mut c);
        assert_eq!((p, c.len()), (model.n_img(), model.n_img()));

        let mut c = draft.new_cache();
        let p = seed_draft_prefix(&model, None, Ablation::no_vision(), &t_cache, &mut c);
        assert_eq!((p, c.len()), (0, 0));
    }

    /// Tree speculation over the hybrid cache stays lossless for every
    /// ablation and branch shape, measures a live visual-mass feature, and
    /// at branching factor 1 reproduces the linear loop's stream AND stats.
    #[test]
    fn tree_speculation_is_lossless_over_the_hybrid_cache() {
        let (model, draft, proj, img, prompt) = setup();
        let mut ws = Workspace::new();
        let budget = 24;
        let reference = mm_autoregressive_ws(&model, &img, &prompt, budget, &mut ws);
        for abl in [Ablation::projector(), Ablation::no_vision()] {
            for bf in [1usize, 2, 3] {
                let cfg = TreeConfig {
                    branch_factor: bf,
                    max_depth: 0,
                    prob_floor: 0.05,
                    calibrator: None,
                    branch_threshold: 0.5,
                };
                let (out, stats) = mm_speculative_tree_ws(
                    &model,
                    &draft,
                    Some(&proj),
                    abl,
                    &img,
                    &prompt,
                    budget,
                    5,
                    cfg,
                    &mut ws,
                );
                assert_eq!(out, reference, "tree lossless violated: {abl:?} bf={bf}");
                assert_eq!(stats.generated, budget);
                if bf == 1 {
                    let (lin_out, lin_stats) = mm_speculative_ws(
                        &model,
                        &draft,
                        Some(&proj),
                        abl,
                        &img,
                        &prompt,
                        budget,
                        5,
                        &mut ws,
                    );
                    assert_eq!(out, lin_out, "bf=1 stream diverged: {abl:?}");
                    assert_eq!(stats, lin_stats, "bf=1 stats diverged: {abl:?}");
                }
            }
        }
    }

    /// A self-draft (draft = target LM) with the raw vision prefix sees
    /// exactly the target's cache state, so every proposal is accepted.
    #[test]
    fn self_draft_with_raw_prefix_accepts_everything() {
        let cfg = LlavaSimConfig::tiny(40, 96);
        let model = LlavaSim::new(cfg.clone(), 0xB5);
        let img = Image::synthetic(&mut Rng::new(8), cfg.vision.n_patches, cfg.vision.patch_dim);
        let prompt = [2u32, 9, 33];
        let mut ws = Workspace::new();
        let (out, stats) = mm_speculative_ws(
            &model,
            &model.lm,
            None,
            Ablation::raw_vision(),
            &img,
            &prompt,
            20,
            4,
            &mut ws,
        );
        let reference = mm_autoregressive_ws(&model, &img, &prompt, 20, &mut ws);
        assert_eq!(out, reference);
        assert_eq!(stats.accepted, stats.drafted, "self-draft must fully agree");
        assert!(stats.acceptance_rate() > 0.999);
    }
}
