//! Vision tower for LlavaSim: a patch-embedding ViT with bidirectional
//! pre-norm blocks, plus the 2-layer MLP connector that maps patch features
//! into the LM's text-embedding space.
//!
//! The ViT deliberately differs from the text decoder in the two ways that
//! matter architecturally: attention is **bidirectional** (no causal mask —
//! every patch sees every patch) and position information comes from a
//! **learned additive embedding** instead of RoPE. Blocks reuse the
//! `aasd-nn` `Linear`/`RmsNorm`/`Mlp` layers so the whole stack shares one
//! set of kernels.

use aasd_nn::{Linear, Mlp, RmsNorm};
use aasd_tensor::{silu, Rng, Tensor};

/// A synthetic "image": pre-patchified pixel rows `[n_patches, patch_dim]`.
/// The reproduction has no pixel pipeline; seeded random patch tensors stand
/// in for real images, and the target's output genuinely depends on them
/// (the vision prefix conditions every text logit), which is all the
/// alignment experiments need.
#[derive(Debug, Clone)]
pub struct Image {
    pub patches: Tensor,
}

impl Image {
    /// Deterministic synthetic image from a seed stream.
    ///
    /// Patches are **spatially redundant**, like real images: each patch is
    /// a random mixture of `n_patches/4` shared basis patches plus a little
    /// independent noise, so the patch matrix is approximately low-rank.
    /// This is the property the paper's vision KV projector monetizes — a
    /// learned `k × n` row compression can only be near-lossless if the `n`
    /// vision rows actually share structure. I.i.d. patches (rank
    /// `n_patches`) would make *any* compression destroy image information
    /// and quietly turn the projector ablation into a strawman.
    pub fn synthetic(rng: &mut Rng, n_patches: usize, patch_dim: usize) -> Self {
        let rank = (n_patches / 4).max(1).min(n_patches);
        let basis = Tensor::randn(rng, rank, patch_dim, 1.0);
        // Mixing weights scaled so patch entries keep ~unit variance.
        let weights = Tensor::randn(rng, n_patches, rank, 1.0 / (rank as f32).sqrt());
        let mut patches = weights.matmul(&basis);
        for v in patches.data.iter_mut() {
            *v += 0.1 * rng.normal();
        }
        Self { patches }
    }

    /// Content hash over the raw patch bits (FNV-1a over each `f32`'s bit
    /// pattern, shape-salted). Two images hash equal iff their patch
    /// tensors are bit-identical — exactly the condition under which a
    /// cached vision prefill is reusable, since the whole vision tower is
    /// a deterministic function of the patch bits. The serving vision
    /// cache keys on this.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        mix(self.patches.rows as u64);
        mix(self.patches.cols as u64);
        for &v in &self.patches.data {
            mix(v.to_bits() as u64);
        }
        h
    }
}

/// Hyperparameters for the vision tower.
#[derive(Debug, Clone)]
pub struct VisionConfig {
    /// Patches per image — the vision-prefix length `n_img` in the LM.
    pub n_patches: usize,
    /// Flattened pixels per patch.
    pub patch_dim: usize,
    pub dim: usize,
    pub n_heads: usize,
    pub n_layers: usize,
    pub ff_hidden: usize,
}

/// One pre-norm ViT block: `x + attn(norm(x))`, then `x + mlp(norm(x))`,
/// with full (unmasked, un-roped) multi-head self-attention.
#[derive(Debug, Clone)]
pub struct VitBlock {
    pub attn_norm: RmsNorm,
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub mlp_norm: RmsNorm,
    pub mlp: Mlp,
    n_heads: usize,
    head_dim: usize,
}

impl VitBlock {
    pub fn new(rng: &mut Rng, cfg: &VisionConfig) -> Self {
        assert!(
            cfg.dim.is_multiple_of(cfg.n_heads),
            "vision dim must divide into heads"
        );
        Self {
            attn_norm: RmsNorm::new(cfg.dim),
            wq: Linear::new(rng, cfg.dim, cfg.dim),
            wk: Linear::new(rng, cfg.dim, cfg.dim),
            wv: Linear::new(rng, cfg.dim, cfg.dim),
            wo: Linear::new(rng, cfg.dim, cfg.dim),
            mlp_norm: RmsNorm::new(cfg.dim),
            mlp: Mlp::new(rng, cfg.dim, cfg.ff_hidden),
            n_heads: cfg.n_heads,
            head_dim: cfg.dim / cfg.n_heads,
        }
    }

    /// Bidirectional multi-head self-attention over all `t` rows.
    fn attention(&self, x: &Tensor) -> Tensor {
        let (t, dim) = (x.rows, x.cols);
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut ctx = Tensor::zeros(t, dim);
        for h in 0..self.n_heads {
            let span = |r: usize| r * dim + h * self.head_dim;
            let mut qh = Tensor::zeros(t, self.head_dim);
            let mut kh = Tensor::zeros(t, self.head_dim);
            let mut vh = Tensor::zeros(t, self.head_dim);
            for i in 0..t {
                qh.row_mut(i)
                    .copy_from_slice(&q.data[span(i)..span(i) + self.head_dim]);
                kh.row_mut(i)
                    .copy_from_slice(&k.data[span(i)..span(i) + self.head_dim]);
                vh.row_mut(i)
                    .copy_from_slice(&v.data[span(i)..span(i) + self.head_dim]);
            }
            let mut s = qh.matmul_transposed(&kh); // [t, t], no mask
            for sv in &mut s.data {
                *sv *= scale;
            }
            s.softmax_rows_inplace();
            let oh = s.matmul(&vh);
            for i in 0..t {
                ctx.data[span(i)..span(i) + self.head_dim].copy_from_slice(oh.row(i));
            }
        }
        self.wo.forward(&ctx)
    }

    pub fn forward(&self, x: &mut Tensor) {
        let a = self.attention(&self.attn_norm.forward(x));
        for (xv, av) in x.data.iter_mut().zip(&a.data) {
            *xv += av;
        }
        let m = self.mlp.forward(&self.mlp_norm.forward(x));
        for (xv, mv) in x.data.iter_mut().zip(&m.data) {
            *xv += mv;
        }
    }
}

/// Patch-embedding ViT: `patches·W_embed + pos`, then `n_layers` pre-norm
/// bidirectional blocks and a final norm. Output is `[n_patches, dim]`.
#[derive(Debug, Clone)]
pub struct VisionEncoder {
    pub cfg: VisionConfig,
    pub patch_embed: Linear,
    /// Learned absolute position embedding `[n_patches, dim]`.
    pub pos_embed: Tensor,
    pub blocks: Vec<VitBlock>,
    pub final_norm: RmsNorm,
}

impl VisionEncoder {
    pub fn new(cfg: VisionConfig, rng: &mut Rng) -> Self {
        let patch_embed = Linear::new(rng, cfg.patch_dim, cfg.dim);
        let pos_embed = Tensor::randn(rng, cfg.n_patches, cfg.dim, 0.02);
        let blocks = (0..cfg.n_layers)
            .map(|_| VitBlock::new(&mut rng.fork(), &cfg))
            .collect();
        let final_norm = RmsNorm::new(cfg.dim);
        Self {
            cfg,
            patch_embed,
            pos_embed,
            blocks,
            final_norm,
        }
    }

    /// Encode an image into `[n_patches, dim]` patch features.
    pub fn forward(&self, image: &Image) -> Tensor {
        assert_eq!(image.patches.rows, self.cfg.n_patches, "patch count");
        assert_eq!(image.patches.cols, self.cfg.patch_dim, "patch width");
        let mut x = self.patch_embed.forward(&image.patches);
        for (xv, pv) in x.data.iter_mut().zip(&self.pos_embed.data) {
            *xv += pv;
        }
        for block in &self.blocks {
            block.forward(&mut x);
        }
        self.final_norm.forward(&x)
    }

    /// Parameter count (for bench cost accounting).
    pub fn n_params(&self) -> usize {
        let per_block: usize = self
            .blocks
            .iter()
            .map(|b| {
                b.wq.w.data.len()
                    + b.wk.w.data.len()
                    + b.wv.w.data.len()
                    + b.wo.w.data.len()
                    + b.mlp.w1.w.data.len()
                    + b.mlp.w2.w.data.len()
                    + b.mlp.w3.w.data.len()
                    + b.attn_norm.gain.len()
                    + b.mlp_norm.gain.len()
            })
            .sum();
        self.patch_embed.w.data.len()
            + self.pos_embed.data.len()
            + per_block
            + self.final_norm.gain.len()
    }
}

/// The LLaVA-style connector: a 2-layer silu MLP projecting vision features
/// `[n, vision_dim]` into the LM's embedding space `[n, lm_dim]`.
#[derive(Debug, Clone)]
pub struct Connector {
    pub w1: Linear,
    pub w2: Linear,
}

impl Connector {
    pub fn new(rng: &mut Rng, vision_dim: usize, hidden: usize, lm_dim: usize) -> Self {
        Self {
            w1: Linear::new(rng, vision_dim, hidden),
            w2: Linear::new(rng, hidden, lm_dim),
        }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = self.w1.forward(x);
        for v in &mut h.data {
            *v = silu(*v);
        }
        self.w2.forward(&h)
    }

    pub fn n_params(&self) -> usize {
        self.w1.w.data.len() + self.w2.w.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> VisionConfig {
        VisionConfig {
            n_patches: 8,
            patch_dim: 12,
            dim: 16,
            n_heads: 2,
            n_layers: 2,
            ff_hidden: 32,
        }
    }

    #[test]
    fn encoder_shape_and_determinism() {
        let mut rng = Rng::new(1);
        let enc = VisionEncoder::new(cfg(), &mut rng);
        let img = Image::synthetic(&mut Rng::new(7), 8, 12);
        let a = enc.forward(&img);
        let b = enc.forward(&img);
        assert_eq!((a.rows, a.cols), (8, 16));
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn different_images_give_different_features() {
        let mut rng = Rng::new(2);
        let enc = VisionEncoder::new(cfg(), &mut rng);
        let a = enc.forward(&Image::synthetic(&mut Rng::new(1), 8, 12));
        let b = enc.forward(&Image::synthetic(&mut Rng::new(2), 8, 12));
        let diff = a
            .data
            .iter()
            .zip(&b.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(diff > 1e-3, "encoder collapsed distinct images");
    }

    /// Bidirectional attention: perturbing the LAST patch must change the
    /// FIRST patch's feature (a causal tower would leave it untouched).
    #[test]
    fn attention_is_bidirectional() {
        let mut rng = Rng::new(3);
        let enc = VisionEncoder::new(cfg(), &mut rng);
        let img1 = Image::synthetic(&mut Rng::new(5), 8, 12);
        let mut img2 = img1.clone();
        for v in img2.patches.row_mut(7) {
            *v += 3.0;
        }
        let a = enc.forward(&img1);
        let b = enc.forward(&img2);
        let first_diff = a
            .row(0)
            .iter()
            .zip(b.row(0))
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(first_diff > 1e-4, "patch 0 ignored patch 7");
    }

    #[test]
    fn connector_maps_into_lm_space() {
        let mut rng = Rng::new(4);
        let conn = Connector::new(&mut rng, 16, 24, 32);
        let x = Tensor::randn(&mut rng, 8, 16, 1.0);
        let y = conn.forward(&x);
        assert_eq!((y.rows, y.cols), (8, 32));
    }
}
