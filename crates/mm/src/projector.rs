//! The AASD KV projector: learned per-layer matrices `W_K, W_V ∈ R^{k×n_img}`
//! that compress the **vision slice** of the target's KV cache into `k`
//! rows, which are then prepended to the draft's cache so the draft attends
//! over `[projected vision KV ∥ its own text KV]` — the hybrid cache.
//!
//! Because the draft shares the LM width with the target (it is cheaper via
//! depth/FFN, not width), the projection is a pure *row* compression: for
//! draft layer `l`, the projected keys are `W_K[l] · K_vis` where `K_vis` is
//! the `[n_img, dim]` vision slice of target layer `layer_map[l]`'s cache.
//! The target's vision keys are stored post-RoPE; the projector learns to
//! map them into whatever geometry helps the draft, so no de-rotation is
//! needed — consistency between training and inference is what matters, and
//! both read the same rows.

use aasd_nn::KvCache;
use aasd_tensor::{Rng, Tensor};

/// Spread `draft_layers` draft layers over `target_layers` target layers:
/// draft layer `l` reads target layer `(l+1)·T/D − 1`. A 1-layer draft reads
/// the target's **last** layer — matching the paper's use of the deepest
/// (most semantic) vision KV for the draft.
pub fn layer_map(draft_layers: usize, target_layers: usize) -> Vec<usize> {
    assert!(draft_layers >= 1 && target_layers >= 1);
    assert!(draft_layers <= target_layers, "draft deeper than target");
    (1..=draft_layers)
        .map(|l| l * target_layers / draft_layers - 1)
        .collect()
}

/// Learned per-draft-layer vision-KV compressors.
#[derive(Debug, Clone)]
pub struct KvProjector {
    /// Projected rows per layer (`k` in the paper, `k ≪ n_img`).
    pub k_slots: usize,
    /// Vision-prefix length in the target cache.
    pub n_img: usize,
    /// Per draft layer: key compressor `[k_slots, n_img]`.
    pub wk: Vec<Tensor>,
    /// Per draft layer: value compressor `[k_slots, n_img]`.
    pub wv: Vec<Tensor>,
    /// Which target layer each draft layer reads (see [`layer_map`]).
    pub map: Vec<usize>,
}

impl KvProjector {
    /// Init as block-average pooling plus small noise: before any training
    /// the projected rows are mean-pooled vision KV, a sane starting point
    /// that already carries image signal.
    pub fn new(
        seed: u64,
        draft_layers: usize,
        target_layers: usize,
        n_img: usize,
        k_slots: usize,
    ) -> Self {
        assert!(k_slots >= 1 && k_slots <= n_img, "need 1 <= k <= n_img");
        let mut rng = Rng::new(seed);
        let map = layer_map(draft_layers, target_layers);
        let mut pooled = || {
            let mut w = Tensor::zeros(k_slots, n_img);
            for s in 0..k_slots {
                // Slot s averages patches [lo, hi): contiguous spans that
                // cover all n_img patches.
                let lo = s * n_img / k_slots;
                let hi = (s + 1) * n_img / k_slots;
                let inv = 1.0 / (hi - lo) as f32;
                for j in lo..hi {
                    w.row_mut(s)[j] = inv;
                }
            }
            for v in &mut w.data {
                *v += 0.02 * rng.normal();
            }
            w
        };
        let wk = (0..draft_layers).map(|_| pooled()).collect();
        let wv = (0..draft_layers).map(|_| pooled()).collect();
        Self {
            k_slots,
            n_img,
            wk,
            wv,
            map,
        }
    }

    /// Project target layer `map[l]`'s vision KV for draft layer `l`:
    /// returns `(keys, values)`, each `[k_slots, dim]` row-major.
    pub fn project(&self, t_cache: &KvCache, l: usize) -> (Tensor, Tensor) {
        let src = t_cache.layer(self.map[l]);
        assert!(src.len() >= self.n_img, "target cache lacks vision prefix");
        let dim = t_cache.dim();
        let mut kvis = Tensor::zeros(self.n_img, dim);
        let mut vvis = Tensor::zeros(self.n_img, dim);
        for pos in 0..self.n_img {
            kvis.row_mut(pos).copy_from_slice(src.key(pos));
            vvis.row_mut(pos).copy_from_slice(src.value(pos));
        }
        (self.wk[l].matmul(&kvis), self.wv[l].matmul(&vvis))
    }

    /// Seed an **empty** draft cache with the projected vision prefix:
    /// appends `k_slots` rows to every draft layer. The rows are stored raw
    /// (not re-rotated) — draft text tokens will then RoPE at positions
    /// `k_slots..`, exactly as the training-time graph ropes them.
    pub fn seed_draft_cache(&self, t_cache: &KvCache, d_cache: &mut KvCache) {
        assert!(d_cache.is_empty(), "draft cache must be empty to seed");
        assert_eq!(d_cache.n_layers(), self.wk.len(), "draft layer count");
        for l in 0..d_cache.n_layers() {
            let (pk, pv) = self.project(t_cache, l);
            let mut layer = d_cache.layer_mut(l);
            for r in 0..self.k_slots {
                layer.append(pk.row(r), pv.row(r));
            }
        }
    }

    /// Visit every trainable parameter slice in canonical order: per layer,
    /// `wk` then `wv`. The hybrid distillation loop appends these slots
    /// after the draft's own parameter slots.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut [f32])) {
        for l in 0..self.wk.len() {
            f(&format!("projector.{l}.wk"), &mut self.wk[l].data);
            f(&format!("projector.{l}.wv"), &mut self.wv[l].data);
        }
    }

    pub fn n_param_tensors(&self) -> usize {
        2 * self.wk.len()
    }
}

/// The raw-vision ablation's seeding path: copy the target's vision KV rows
/// **unprojected** into the draft cache (`n_img` rows per layer, target
/// layer chosen by [`layer_map`]). Draft text then ropes at positions
/// `n_img..`, which coincides with the target's own text offset.
pub fn seed_raw_vision(t_cache: &KvCache, d_cache: &mut KvCache, n_img: usize) {
    assert!(d_cache.is_empty(), "draft cache must be empty to seed");
    let map = layer_map(d_cache.n_layers(), t_cache.n_layers());
    for (l, &src_l) in map.iter().enumerate() {
        let src = t_cache.layer(src_l);
        assert!(src.len() >= n_img, "target cache lacks vision prefix");
        let mut dst = d_cache.layer_mut(l);
        for pos in 0..n_img {
            dst.append(src.key(pos), src.value(pos));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aasd_nn::{Decoder, DecoderConfig};

    #[test]
    fn layer_map_spreads_and_ends_at_last() {
        assert_eq!(layer_map(1, 4), vec![3]);
        assert_eq!(layer_map(2, 4), vec![1, 3]);
        assert_eq!(layer_map(4, 4), vec![0, 1, 2, 3]);
        assert_eq!(layer_map(3, 5), vec![0, 2, 4]);
    }

    fn seeded_target_cache() -> (Decoder, aasd_nn::KvCache) {
        let target = Decoder::new(DecoderConfig::tiny(30), 0x71);
        let mut cache = target.new_cache();
        let toks: Vec<u32> = (0..12).map(|i| (i * 7 % 30) as u32).collect();
        target.forward_infer(&toks, &mut cache);
        (target, cache)
    }

    #[test]
    fn projected_seed_has_k_rows_per_layer() {
        let (target, t_cache) = seeded_target_cache();
        let draft_cfg = DecoderConfig {
            n_layers: 1,
            ff_hidden: 32,
            ..target.cfg.clone()
        };
        let draft = Decoder::new(draft_cfg, 0x72);
        let proj = KvProjector::new(9, 1, target.cfg.n_layers, 8, 2);
        let mut d_cache = draft.new_cache();
        proj.seed_draft_cache(&t_cache, &mut d_cache);
        assert_eq!(d_cache.len(), 2);
    }

    /// With exact one-hot pooling rows (no noise), a k = n_img "projector"
    /// reproduces the raw copy — the two seeding paths agree.
    #[test]
    fn identity_projector_matches_raw_seed() {
        let (target, t_cache) = seeded_target_cache();
        let n_img = 8;
        let draft_cfg = DecoderConfig {
            n_layers: 1,
            ff_hidden: 32,
            ..target.cfg.clone()
        };
        let draft = Decoder::new(draft_cfg, 0x73);
        let mut proj = KvProjector::new(1, 1, target.cfg.n_layers, n_img, n_img);
        // Overwrite the noisy init with the exact identity.
        for w in proj.wk.iter_mut().chain(proj.wv.iter_mut()) {
            w.data.fill(0.0);
            for s in 0..n_img {
                w.row_mut(s)[s] = 1.0;
            }
        }
        let mut a = draft.new_cache();
        proj.seed_draft_cache(&t_cache, &mut a);
        let mut b = draft.new_cache();
        seed_raw_vision(&t_cache, &mut b, n_img);
        assert_eq!(a.len(), b.len());
        for l in 0..a.n_layers() {
            for pos in 0..n_img {
                let dk: f32 = a
                    .layer(l)
                    .key(pos)
                    .iter()
                    .zip(b.layer(l).key(pos))
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0, f32::max);
                assert!(dk < 1e-5, "layer {l} pos {pos} key diff {dk}");
            }
        }
    }

    #[test]
    fn visitor_counts_slots() {
        let mut proj = KvProjector::new(1, 2, 4, 8, 2);
        let mut n = 0;
        proj.visit_params_mut(&mut |_, _| n += 1);
        assert_eq!(n, proj.n_param_tensors());
        assert_eq!(n, 4);
    }
}
