//! LlavaSim: the simulated LLaVA-architecture target model — vision tower →
//! connector → the `aasd-nn` decoder LM, with the vision prefix entering the
//! LM through the embeds inference path (`forward_infer_embeds_ws`) so the
//! image occupies KV positions `0..n_img` and text starts at `n_img`,
//! exactly as in training.

use crate::vision::{Connector, Image, VisionConfig, VisionEncoder};
use aasd_nn::{Decoder, DecoderConfig, KvCache};
use aasd_tensor::{argmax, Rng, Tensor, Workspace};

/// Hyperparameters for a full LlavaSim model.
#[derive(Debug, Clone)]
pub struct LlavaSimConfig {
    pub vision: VisionConfig,
    /// Hidden width of the 2-layer MLP connector.
    pub connector_hidden: usize,
    pub lm: DecoderConfig,
}

impl LlavaSimConfig {
    /// Smallest config exercising every code path; used by tests.
    pub fn tiny(vocab: usize, max_seq: usize) -> Self {
        Self {
            vision: VisionConfig {
                n_patches: 8,
                patch_dim: 12,
                dim: 16,
                n_heads: 2,
                n_layers: 1,
                ff_hidden: 32,
            },
            connector_hidden: 24,
            lm: DecoderConfig {
                vocab,
                dim: 32,
                n_heads: 4,
                n_layers: 2,
                ff_hidden: 64,
                max_seq,
                rope_theta: 10_000.0,
            },
        }
    }

    /// The "7B-shaped" simulation target: small enough to race on one core,
    /// big enough that per-token weight traffic dominates.
    pub fn sim_7b(vocab: usize, max_seq: usize) -> Self {
        Self {
            vision: VisionConfig {
                n_patches: 16,
                patch_dim: 27,
                dim: 48,
                n_heads: 4,
                n_layers: 2,
                ff_hidden: 96,
            },
            connector_hidden: 96,
            lm: DecoderConfig {
                vocab,
                dim: 128,
                n_heads: 8,
                n_layers: 3,
                ff_hidden: 256,
                max_seq,
                rope_theta: 10_000.0,
            },
        }
    }

    /// The "13B-shaped" simulation target: same vocabulary and patch count
    /// as [`LlavaSimConfig::sim_7b`] but a deeper/wider tower and LM, so the
    /// two presets reproduce the paper's per-forward cost asymmetry (the
    /// bench asserts `sim_13b` is strictly slower per forward).
    pub fn sim_13b(vocab: usize, max_seq: usize) -> Self {
        Self {
            vision: VisionConfig {
                n_patches: 16,
                patch_dim: 27,
                dim: 64,
                n_heads: 4,
                n_layers: 3,
                ff_hidden: 128,
            },
            connector_hidden: 128,
            lm: DecoderConfig {
                vocab,
                dim: 192,
                n_heads: 8,
                n_layers: 5,
                ff_hidden: 384,
                max_seq,
                rope_theta: 10_000.0,
            },
        }
    }

    /// Vision-prefix length in the LM cache.
    pub fn n_img(&self) -> usize {
        self.vision.n_patches
    }

    /// Rows the KV projector compresses the vision slice into (k ≪ n_img).
    pub fn k_slots(&self) -> usize {
        (self.vision.n_patches / 4).max(1)
    }
}

/// The simulated multimodal target model.
#[derive(Debug, Clone)]
pub struct LlavaSim {
    pub cfg: LlavaSimConfig,
    pub vision: VisionEncoder,
    pub connector: Connector,
    pub lm: Decoder,
}

impl LlavaSim {
    /// Deterministic init from a seed (vision, connector, and LM draw from
    /// forked streams, so the parts are independent).
    pub fn new(cfg: LlavaSimConfig, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let vision = VisionEncoder::new(cfg.vision.clone(), &mut rng.fork());
        let connector = Connector::new(
            &mut rng.fork(),
            cfg.vision.dim,
            cfg.connector_hidden,
            cfg.lm.dim,
        );
        let lm = Decoder::new(cfg.lm.clone(), rng.next_u64());
        Self {
            cfg,
            vision,
            connector,
            lm,
        }
    }

    pub fn n_img(&self) -> usize {
        self.cfg.n_img()
    }

    /// Switch the language model's fused-path kernel family (see
    /// [`Decoder::set_kernel_policy`]). The vision tower and connector run
    /// only during prefill — a one-time cost per request — so they stay on
    /// the f32 kernels under either policy.
    pub fn set_kernel_policy(&mut self, policy: aasd_nn::KernelPolicy) {
        self.lm.set_kernel_policy(policy);
    }

    /// The kernel family the LM's fused decode path currently runs.
    pub fn kernel_policy(&self) -> aasd_nn::KernelPolicy {
        self.lm.kernel_policy()
    }

    /// Vision tower + connector: image → `[n_img, lm.dim]` embedding rows
    /// ready to enter the decoder where token embeddings would.
    pub fn encode_image(&self, image: &Image) -> Tensor {
        self.connector.forward(&self.vision.forward(image))
    }

    /// Multimodal prefill on the fused path: push the vision prefix through
    /// the embeds path (KV positions `0..n_img`), then the text prompt
    /// (positions `n_img..`), and return the first target-decided *pending*
    /// token. Afterwards `cache` holds `n_img + prompt.len()` positions —
    /// ready for the seeded decode loops in `aasd-specdec`.
    pub fn prefill_ws(
        &self,
        image: &Image,
        prompt: &[u32],
        cache: &mut KvCache,
        ws: &mut Workspace,
    ) -> u32 {
        assert!(
            self.n_img() + prompt.len() <= self.cfg.lm.max_seq,
            "vision prefix + prompt exceed max_seq"
        );
        self.prefill_vision_ws(image, cache, ws);
        self.prefill_text_ws(prompt, cache, ws)
    }

    /// The vision leg of [`LlavaSim::prefill_ws`] alone: tower + connector +
    /// the `n_img`-position embeds pass into an **empty** cache. Split out
    /// so the serving vision cache can run it once per distinct image and
    /// share the resulting KV prefix across sessions.
    pub fn prefill_vision_ws(&self, image: &Image, cache: &mut KvCache, ws: &mut Workspace) {
        assert!(cache.is_empty(), "vision prefix must be at position 0");
        let n = self.n_img();
        let embeds = self.encode_image(image);
        let mut img_logits = ws.take(n * self.cfg.lm.vocab);
        self.lm
            .forward_infer_embeds_ws(&embeds.data, n, cache, ws, &mut img_logits);
        ws.give(img_logits);
    }

    /// The text leg of [`LlavaSim::prefill_ws`] alone: prompt forward over a
    /// cache already holding the `n_img` vision positions (freshly computed
    /// or mapped in from the vision cache — the two are bit-identical), and
    /// the first target-decided pending token.
    pub fn prefill_text_ws(&self, prompt: &[u32], cache: &mut KvCache, ws: &mut Workspace) -> u32 {
        assert!(!prompt.is_empty(), "empty prompt");
        assert_eq!(cache.len(), self.n_img(), "text must start at n_img");
        let vocab = self.cfg.lm.vocab;
        let mut logits = ws.take(prompt.len() * vocab);
        self.lm.forward_infer_ws(prompt, cache, ws, &mut logits);
        let pending = argmax(&logits[(prompt.len() - 1) * vocab..]) as u32;
        ws.give(logits);
        pending
    }

    /// Total parameter count across vision, connector, and LM.
    pub fn n_params(&self) -> usize {
        self.vision.n_params() + self.connector.n_params() + self.lm.n_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_image_lands_in_lm_space() {
        let model = LlavaSim::new(LlavaSimConfig::tiny(40, 64), 0xA5);
        let img = Image::synthetic(&mut Rng::new(3), 8, 12);
        let e = model.encode_image(&img);
        assert_eq!((e.rows, e.cols), (model.n_img(), model.cfg.lm.dim));
    }

    /// The fused prefill must agree with the allocating composition of the
    /// embeds path and the token path — same pending token, same cache
    /// length, and a continuation step must agree too.
    #[test]
    fn prefill_ws_matches_allocating_composition() {
        let model = LlavaSim::new(LlavaSimConfig::tiny(40, 64), 0xA6);
        let img = Image::synthetic(&mut Rng::new(9), 8, 12);
        let prompt = [3u32, 17, 5, 29];

        let mut ws = Workspace::new();
        let mut cache_ws = model.lm.new_cache();
        let pending = model.prefill_ws(&img, &prompt, &mut cache_ws, &mut ws);

        let embeds = model.encode_image(&img);
        let mut cache = model.lm.new_cache();
        model.lm.forward_infer_embeds(&embeds, &mut cache);
        let logits = model.lm.forward_infer(&prompt, &mut cache);
        let want = argmax(logits.row(logits.rows - 1)) as u32;
        assert_eq!(pending, want);
        assert_eq!(cache_ws.len(), cache.len());
        assert_eq!(cache_ws.len(), model.n_img() + prompt.len());

        let a = model.lm.forward_infer(&[pending], &mut cache);
        let mut b = vec![0.0f32; model.cfg.lm.vocab];
        model
            .lm
            .forward_infer_ws(&[pending], &mut cache_ws, &mut ws, &mut b);
        let diff = a
            .row(0)
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-4, "continuation diverged: {diff}");
    }

    /// The target's text logits must depend on the image — otherwise the
    /// multimodal alignment experiments would be measuring nothing.
    #[test]
    fn text_logits_depend_on_image() {
        let model = LlavaSim::new(LlavaSimConfig::tiny(40, 64), 0xA7);
        let prompt = [1u32, 2, 3];
        let mut ws = Workspace::new();
        let mut pendings = Vec::new();
        for seed in 0..8u64 {
            let img = Image::synthetic(&mut Rng::new(seed), 8, 12);
            let mut cache = model.lm.new_cache();
            pendings.push(model.prefill_ws(&img, &prompt, &mut cache, &mut ws));
        }
        assert!(
            pendings.iter().any(|p| *p != pendings[0]),
            "pending token identical across 8 images: {pendings:?}"
        );
    }

    #[test]
    fn preset_cost_asymmetry_in_params() {
        let a = LlavaSim::new(LlavaSimConfig::sim_7b(64, 128), 1);
        let b = LlavaSim::new(LlavaSimConfig::sim_13b(64, 128), 1);
        assert!(b.n_params() > a.n_params());
        assert_eq!(a.n_img(), b.n_img(), "presets must share the prefix length");
    }
}
