//! Hybrid-cache distillation: train the draft — and, in the full AASD
//! configuration, the [`KvProjector`] jointly with it — to match the
//! multimodal target's next-token distribution on the target's own greedy
//! rollouts over synthetic image+text prompts.
//!
//! The student graph mirrors the *inference* path exactly:
//! * text tokens are roped at positions offset by the draft's vision-prefix
//!   length (`Rope::tables_range(p, t)`), because at decode time the prefix
//!   occupies cache positions `0..p`;
//! * the prefix K/V rows enter attention un-rotated via
//!   `Tape::concat_rows` + `Tape::prefix_causal_attention`, the tape twins
//!   of `LayerKv::append` + cached attention over a pre-seeded prefix;
//! * in the projector configuration the prefix rows are
//!   `W_K[l]·K_vis` tape products, so gradients flow into the projector —
//!   this is what makes the hybrid cache *trainable* end to end.
//!
//! `student_logits` is property-tested against the live inference path: the
//! tape's logits must equal `Decoder::forward_infer` over a seeded cache.

use crate::hybrid::Ablation;
use crate::llava::LlavaSim;
use crate::projector::KvProjector;
use crate::vision::Image;
use aasd_autograd::{Tape, VarId};
use aasd_nn::{Decoder, KvCache};
use aasd_tensor::{Rng, Tensor, Workspace};
use aasd_train::{random_prompt, rollout_inputs, sharpen_to_probs, Adam, Optimizer, Schedule};

/// Per-draft-layer prefix K/V rows, as constants or as tape products.
enum PrefixRows {
    /// No vision prefix (`drop_vision_kv`).
    None,
    /// Frozen rows (raw-vision ablation): `[p, dim]` constants per layer.
    Frozen(Vec<(Tensor, Tensor)>),
    /// Projector rows: the `[n_img, dim]` vision KV constants per layer;
    /// the graph multiplies them by the projector leaves.
    Projected(Vec<(Tensor, Tensor)>),
}

/// Extract target layer `src`'s vision KV slice as `[n_img, dim]` tensors.
fn vision_slice(t_cache: &KvCache, src: usize, n_img: usize) -> (Tensor, Tensor) {
    let layer = t_cache.layer(src);
    assert!(layer.len() >= n_img, "target cache lacks vision prefix");
    let dim = t_cache.dim();
    let mut k = Tensor::zeros(n_img, dim);
    let mut v = Tensor::zeros(n_img, dim);
    for pos in 0..n_img {
        k.row_mut(pos).copy_from_slice(layer.key(pos));
        v.row_mut(pos).copy_from_slice(layer.value(pos));
    }
    (k, v)
}

/// Build the hybrid-cache student forward on `tape`: the draft decoder over
/// `tokens`, roped at positions `prefix_len..prefix_len+t`, attending over
/// the given prefix rows. Returns the `[t, vocab]` logits node, the draft
/// parameter leaves (canonical `visit_params_mut` order), and the projector
/// parameter leaves (canonical [`KvProjector::visit_params_mut`] order,
/// empty unless `PrefixRows::Projected`).
fn student_logits(
    tape: &mut Tape,
    draft: &Decoder,
    projector: Option<&KvProjector>,
    tokens: &[u32],
    prefix_len: usize,
    prefix: &PrefixRows,
) -> (VarId, Vec<VarId>, Vec<VarId>) {
    let t = tokens.len();
    let dim = draft.cfg.dim;
    assert!(prefix_len + t <= draft.cfg.max_seq, "exceeds draft max_seq");
    let (cos, sin) = draft.rope.tables_range(prefix_len, t);

    // Projector leaves first (ids are position-independent), collected in
    // visitor order: per layer wk, wv.
    let mut proj_params = Vec::new();
    if let PrefixRows::Projected(_) = prefix {
        let proj = projector.expect("projected prefix requires a KvProjector");
        for l in 0..proj.wk.len() {
            proj_params.push(tape.leaf(proj.wk[l].clone()));
            proj_params.push(tape.leaf(proj.wv[l].clone()));
        }
    }

    let embed = tape.leaf(draft.embed.table.clone());
    let mut params = vec![embed];
    let mut x = tape.embed_gather(embed, tokens);
    for (l, block) in draft.blocks.iter().enumerate() {
        let attn_gain = tape.leaf(Tensor::from_vec(block.attn_norm.gain.clone(), 1, dim));
        let wq = tape.leaf(block.attn.wq.w.clone());
        let wk = tape.leaf(block.attn.wk.w.clone());
        let wv = tape.leaf(block.attn.wv.w.clone());
        let wo = tape.leaf(block.attn.wo.w.clone());
        let mlp_gain = tape.leaf(Tensor::from_vec(block.mlp_norm.gain.clone(), 1, dim));
        let w1 = tape.leaf(block.mlp.w1.w.clone());
        let w2 = tape.leaf(block.mlp.w2.w.clone());
        let w3 = tape.leaf(block.mlp.w3.w.clone());
        params.extend([attn_gain, wq, wk, wv, wo, mlp_gain, w1, w2, w3]);

        let h = tape.rms_norm(x, attn_gain, block.attn_norm.eps);
        let q = tape.matmul(h, wq);
        let k = tape.matmul(h, wk);
        let v = tape.matmul(h, wv);
        let q = tape.rope(q, draft.cfg.n_heads, cos.clone(), sin.clone());
        let k = tape.rope(k, draft.cfg.n_heads, cos.clone(), sin.clone());
        let a = match prefix {
            PrefixRows::None => tape.causal_attention(q, k, v, draft.cfg.n_heads),
            PrefixRows::Frozen(rows) => {
                let pk = tape.leaf(rows[l].0.clone());
                let pv = tape.leaf(rows[l].1.clone());
                let kk = tape.concat_rows(pk, k);
                let vv = tape.concat_rows(pv, v);
                tape.prefix_causal_attention(q, kk, vv, draft.cfg.n_heads, prefix_len)
            }
            PrefixRows::Projected(slices) => {
                let kvis = tape.leaf(slices[l].0.clone());
                let vvis = tape.leaf(slices[l].1.clone());
                let pk = tape.matmul(proj_params[2 * l], kvis);
                let pv = tape.matmul(proj_params[2 * l + 1], vvis);
                let kk = tape.concat_rows(pk, k);
                let vv = tape.concat_rows(pv, v);
                tape.prefix_causal_attention(q, kk, vv, draft.cfg.n_heads, prefix_len)
            }
        };
        let a = tape.matmul(a, wo);
        x = tape.add(x, a);

        let h = tape.rms_norm(x, mlp_gain, block.mlp_norm.eps);
        let gate = tape.matmul(h, w1);
        let up = tape.matmul(h, w3);
        let gate = tape.silu(gate);
        let gu = tape.mul(gate, up);
        let m = tape.matmul(gu, w2);
        x = tape.add(x, m);
    }
    let final_gain = tape.leaf(Tensor::from_vec(draft.final_norm.gain.clone(), 1, dim));
    let head = tape.leaf(draft.lm_head.w.clone());
    params.push(final_gain);
    params.push(head);
    let xn = tape.rms_norm(x, final_gain, draft.final_norm.eps);
    let logits = tape.matmul(xn, head);
    (logits, params, proj_params)
}

/// Assemble the [`PrefixRows`] the student graph needs for one example, per
/// the ablation switches (mirrors [`seed_draft_prefix`]).
fn prefix_rows_for(
    draft_layers: usize,
    projector: Option<&KvProjector>,
    ablation: Ablation,
    t_cache: &KvCache,
    n_img: usize,
) -> (usize, PrefixRows) {
    if ablation.drop_vision_kv {
        return (0, PrefixRows::None);
    }
    if ablation.use_vision_projector {
        let proj = projector.expect("use_vision_projector requires a KvProjector");
        let slices = (0..draft_layers)
            .map(|l| vision_slice(t_cache, proj.map[l], n_img))
            .collect();
        (proj.k_slots, PrefixRows::Projected(slices))
    } else {
        let map = crate::projector::layer_map(draft_layers, t_cache.n_layers());
        let rows = map
            .iter()
            .map(|&src| vision_slice(t_cache, src, n_img))
            .collect();
        (n_img, PrefixRows::Frozen(rows))
    }
}

/// Configuration for [`distill_hybrid`].
#[derive(Debug, Clone)]
pub struct HybridDistillConfig {
    /// Optimisation steps (one image + rollout each).
    pub steps: usize,
    /// Random text-prompt length per step.
    pub prompt_len: usize,
    /// Greedy continuation length the target generates per step.
    pub gen_len: usize,
    pub schedule: Schedule,
    /// Distillation temperature (< 1 sharpens toward the target's argmax,
    /// the quantity greedy acceptance actually measures).
    pub temperature: f32,
    /// Seed for the image/prompt stream. Train ablation variants with the
    /// SAME seed so they see identical data.
    pub seed: u64,
}

impl HybridDistillConfig {
    /// A short deterministic run sized for tests and smoke benches.
    pub fn smoke(steps: usize, seed: u64) -> Self {
        Self {
            steps,
            prompt_len: 4,
            gen_len: 14,
            schedule: Schedule::Cosine {
                base: 2e-2,
                floor: 2e-3,
                total: steps,
            },
            temperature: 0.2,
            seed,
        }
    }
}

/// The target's vision-conditioned next-token distribution over `tokens`:
/// `[t, vocab]` temperature-sharpened probability rows. This is the frozen
/// teacher matrix every multimodal distillation loop (hybrid AASD and the
/// baseline zoo) pins its student against.
pub fn mm_teacher_probs(
    model: &LlavaSim,
    image: &Image,
    tokens: &[u32],
    temperature: f32,
) -> Tensor {
    mm_teacher_scored(model, image, tokens, temperature).0
}

/// [`mm_teacher_probs`] plus the scored target cache: the returned cache
/// holds the vision prefix ∥ **all** `tokens` rows, so its last-layer text
/// K/V slices are exactly the target hidden states the `TdAttention`
/// alignment loss attends over.
pub fn mm_teacher_scored(
    model: &LlavaSim,
    image: &Image,
    tokens: &[u32],
    temperature: f32,
) -> (Tensor, KvCache) {
    let embeds = model.encode_image(image);
    let mut cache = model.lm.new_cache();
    model.lm.forward_infer_embeds(&embeds, &mut cache);
    let logits = model.lm.forward_infer(tokens, &mut cache);
    (sharpen_to_probs(logits, temperature), cache)
}

/// The per-layer `[n_img, dim]` vision K/V rows of `vlm`'s **own** LM over
/// `image` (identity layer map). This is the frozen prefix a `TinyVlm`
/// baseline student trains behind — its training-time twin of
/// `prefill_vision_ws`, used by the `aasd-baselines` zoo.
pub fn own_vision_rows(vlm: &LlavaSim, image: &Image) -> Vec<(Tensor, Tensor)> {
    let embeds = vlm.encode_image(image);
    let mut cache = vlm.lm.new_cache();
    vlm.lm.forward_infer_embeds(&embeds, &mut cache);
    (0..vlm.cfg.lm.n_layers)
        .map(|l| vision_slice(&cache, l, vlm.n_img()))
        .collect()
}

/// Tape forward of `lm` over `tokens` behind a frozen per-layer K/V prefix
/// (`prefix[l]` are layer `l`'s `[p, dim]` rows; an empty slice means no
/// prefix at all). Returns the `[t, vocab]` logits node plus the parameter
/// leaves in canonical `visit_params_mut` order — the bridge that lets the
/// baseline zoo train text-behind-vision students through the generic
/// `aasd-train` machinery.
pub fn frozen_prefix_logits(
    tape: &mut Tape,
    lm: &Decoder,
    tokens: &[u32],
    prefix: &[(Tensor, Tensor)],
) -> (VarId, Vec<VarId>) {
    let (prefix_len, rows) = if prefix.is_empty() {
        (0, PrefixRows::None)
    } else {
        assert_eq!(prefix.len(), lm.cfg.n_layers, "one K/V pair per layer");
        (prefix[0].0.rows, PrefixRows::Frozen(prefix.to_vec()))
    };
    let (logits, params, proj) = student_logits(tape, lm, None, tokens, prefix_len, &rows);
    debug_assert!(proj.is_empty());
    (logits, params)
}

/// Target-Draft Attention alignment term (DESIGN.md §2.8): during
/// distillation, an auxiliary head runs the draft's first-block queries
/// through [`Tape::td_attention`] — attending over the **target's** text
/// K/V rows outside the window and the draft's own rows inside it — and
/// adds `weight ×` the KL of that branch's logits to the main loss. Pulling
/// this branch toward the teacher aligns the draft's attention geometry
/// with the target's hidden states, exactly the regime speculation decodes
/// in (old context = target-verified, recent `window` tokens = draft).
#[derive(Debug, Clone, Copy)]
pub struct TdAlignConfig {
    /// Draft window `w ≥ 1`: positions `i−w < j ≤ i` use draft K/V, older
    /// positions use target K/V. Matching the speculation depth γ is the
    /// natural choice.
    pub window: usize,
    /// Multiplier on the auxiliary KL before it is added to the main loss.
    pub weight: f32,
}

/// One (image, prompt) training sample drawn per distillation step. The
/// default stream is synthetic; `aasd-data` workloads plug in here.
pub type DistillSource<'a> = &'a mut dyn FnMut(usize, &mut Rng) -> (Image, Vec<u32>);

/// Hybrid-cache distillation (the AASD alignment recipe, multimodal
/// flavour): per step, draw a synthetic image and random prompt, let the
/// frozen target greedily continue, and train the draft — plus the
/// projector when `ablation.use_vision_projector` — to match the target's
/// (vision-conditioned) next-token distribution via sequence KL. Returns
/// per-step pre-update losses.
pub fn distill_hybrid(
    model: &LlavaSim,
    draft: &mut Decoder,
    projector: Option<&mut KvProjector>,
    ablation: Ablation,
    cfg: &HybridDistillConfig,
) -> Vec<f32> {
    let (n_img, patch_dim) = (model.n_img(), model.cfg.vision.patch_dim);
    let (vocab, prompt_len) = (model.cfg.lm.vocab, cfg.prompt_len);
    let mut source = move |_step: usize, rng: &mut Rng| {
        let image = Image::synthetic(rng, n_img, patch_dim);
        let prompt = random_prompt(rng, prompt_len, vocab);
        (image, prompt)
    };
    distill_hybrid_with(model, draft, projector, ablation, cfg, None, &mut source)
}

/// [`distill_hybrid`] with a pluggable sample source and an optional
/// [`TdAlignConfig`] auxiliary loss. The source is drawn once per step with
/// the loop's seeded RNG; `aasd-data` workloads and the baseline zoo feed
/// real (image, prompt) pairs through here, and the full AASD draft enables
/// the TdAttention alignment term.
pub fn distill_hybrid_with(
    model: &LlavaSim,
    draft: &mut Decoder,
    mut projector: Option<&mut KvProjector>,
    ablation: Ablation,
    cfg: &HybridDistillConfig,
    td: Option<TdAlignConfig>,
    source: DistillSource<'_>,
) -> Vec<f32> {
    let vocab = model.cfg.lm.vocab;
    assert_eq!(draft.cfg.vocab, vocab, "draft/target vocab mismatch");
    assert_eq!(
        draft.cfg.dim, model.cfg.lm.dim,
        "projector needs equal dims"
    );
    let n_img = model.n_img();
    let mut rng = Rng::new(cfg.seed);
    let mut ws = Workspace::new();
    let mut opt = Adam::new();
    let mut losses = Vec::with_capacity(cfg.steps);
    let n_draft_slots = draft.n_param_tensors();
    let max_text = model.cfg.lm.max_seq - n_img;

    for step in 0..cfg.steps {
        // -- teacher side: sample, rollout, vision-conditioned probs ------
        let (image, prompt) = source(step, &mut rng);
        assert!(!prompt.is_empty(), "empty prompt from distill source");
        assert!(
            n_img + prompt.len() + cfg.gen_len <= model.cfg.lm.max_seq,
            "rollout exceeds target context"
        );
        let mut t_cache = model.lm.new_cache();
        let pending = model.prefill_ws(&image, &prompt, &mut t_cache, &mut ws);
        let tokens = rollout_inputs(
            &model.lm,
            &mut t_cache,
            &prompt,
            pending,
            cfg.gen_len,
            max_text,
            &mut ws,
        );
        let (teacher, scored) = mm_teacher_scored(model, &image, &tokens, cfg.temperature);

        // The rollout above consumed t_cache past the prefix; the student
        // prefix must come from a cache holding prefix + text only — any
        // state ≥ n_img rows works since we slice rows 0..n_img, which the
        // rollout never touched (truncate is O(1) and appends happen past
        // the committed frontier).
        let (prefix_len, prefix) = prefix_rows_for(
            draft.cfg.n_layers,
            projector.as_deref(),
            ablation,
            &t_cache,
            n_img,
        );

        // -- student side: tape forward, KL (+ TD align), joint update ----
        let mut tape = Tape::new();
        let (logits, params, proj_params) = student_logits(
            &mut tape,
            draft,
            projector.as_deref(),
            &tokens,
            prefix_len,
            &prefix,
        );
        let mut loss = tape.kl_div(logits, teacher.clone());
        if let Some(td) = td {
            let aux = td_align_loss(
                &mut tape, draft, &params, &tokens, &scored, n_img, teacher, td,
            );
            loss = tape.add(loss, aux);
        }
        losses.push(tape.value(loss).data[0]);
        let grads = tape.backward(loss);

        let lr = cfg.schedule.lr(step);
        opt.begin_step(lr);
        let mut slot = 0usize;
        draft.visit_params_mut(&mut |_, param| {
            if let Some(g) = grads.get(params[slot]) {
                opt.update(slot, param, &g.data);
            }
            slot += 1;
        });
        debug_assert_eq!(slot, n_draft_slots);
        if !proj_params.is_empty() {
            let proj = projector.as_deref_mut().expect("projector present");
            let mut p_slot = 0usize;
            proj.visit_params_mut(&mut |_, param| {
                if let Some(g) = grads.get(proj_params[p_slot]) {
                    opt.update(n_draft_slots + p_slot, param, &g.data);
                }
                p_slot += 1;
            });
        }
    }
    losses
}

/// Build the TdAttention alignment branch on the SAME tape as the main KL
/// loss, reusing the draft's parameter leaves from [`student_logits`] (leaf
/// layout: `params[0]` = embed, block-`l` leaves at `1 + 9l` =
/// `[attn_gain, wq, wk, wv, wo, mlp_gain, w1, w2, w3]`, then final_gain and
/// head), so gradients from both losses accumulate at the shared weights.
/// The target side enters as frozen leaves: the scored cache's last-layer
/// text K/V rows at positions `n_img..n_img+t`.
#[allow(clippy::too_many_arguments)]
fn td_align_loss(
    tape: &mut Tape,
    draft: &Decoder,
    params: &[VarId],
    tokens: &[u32],
    scored: &KvCache,
    n_img: usize,
    teacher: Tensor,
    td: TdAlignConfig,
) -> VarId {
    let t = tokens.len();
    let dim = draft.cfg.dim;
    let n_heads = draft.cfg.n_heads;
    let (cos, sin) = draft.rope.tables_range(0, t);

    // Target text K/V from the deepest scored layer: rows n_img..n_img+t.
    let last = scored.n_layers() - 1;
    let layer = scored.layer(last);
    assert!(layer.len() >= n_img + t, "scored cache lacks text rows");
    let mut tk = Tensor::zeros(t, dim);
    let mut tv = Tensor::zeros(t, dim);
    for i in 0..t {
        tk.row_mut(i).copy_from_slice(layer.key(n_img + i));
        tv.row_mut(i).copy_from_slice(layer.value(n_img + i));
    }
    let tk = tape.leaf(tk);
    let tv = tape.leaf(tv);

    // Draft Q/K/V from the first block's projections over shared leaves.
    let (embed, attn_gain, wq, wk, wv, wo) = (
        params[0], params[1], params[2], params[3], params[4], params[5],
    );
    let x0 = tape.embed_gather(embed, tokens);
    let h = tape.rms_norm(x0, attn_gain, draft.blocks[0].attn_norm.eps);
    let q = tape.matmul(h, wq);
    let dk = tape.matmul(h, wk);
    let dv = tape.matmul(h, wv);
    let q = tape.rope(q, n_heads, cos.clone(), sin.clone());
    let dk = tape.rope(dk, n_heads, cos, sin);
    let ctx = tape.td_attention(q, tk, tv, dk, dv, n_heads, td.window);
    let o = tape.matmul(ctx, wo);
    let x1 = tape.add(x0, o);

    // Straight to the shared head: final norm + lm_head leaves.
    let final_gain = params[params.len() - 2];
    let head = params[params.len() - 1];
    let xn = tape.rms_norm(x1, final_gain, draft.final_norm.eps);
    let logits = tape.matmul(xn, head);
    let kl = tape.kl_div(logits, teacher);
    tape.scale(kl, td.weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::{draft_for, seed_draft_prefix};
    use crate::llava::LlavaSimConfig;

    fn setup() -> (LlavaSim, Decoder, KvProjector, Image, Vec<u32>, KvCache) {
        let cfg = LlavaSimConfig::tiny(30, 96);
        let model = LlavaSim::new(cfg.clone(), 0xC0);
        let draft = draft_for(&cfg, 0xC1);
        let proj = KvProjector::new(
            0xC2,
            draft.cfg.n_layers,
            cfg.lm.n_layers,
            cfg.n_img(),
            cfg.k_slots(),
        );
        let img = Image::synthetic(&mut Rng::new(4), cfg.vision.n_patches, cfg.vision.patch_dim);
        let prompt = vec![5u32, 19, 2, 28, 11];
        let mut ws = Workspace::new();
        let mut t_cache = model.lm.new_cache();
        model.prefill_ws(&img, &prompt, &mut t_cache, &mut ws);
        (model, draft, proj, img, prompt, t_cache)
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    /// THE consistency test: for every ablation, the tape-built student
    /// logits must equal the draft's live inference logits over a cache
    /// seeded by the corresponding inference-path seeding — training and
    /// decoding see the same function.
    #[test]
    fn student_graph_matches_inference_path() {
        let (model, draft, proj, _img, prompt, t_cache) = setup();
        for abl in [
            Ablation::projector(),
            Ablation::raw_vision(),
            Ablation::no_vision(),
        ] {
            // Inference side: seed the draft cache, feed the tokens.
            let mut d_cache = draft.new_cache();
            seed_draft_prefix(&model, Some(&proj), abl, &t_cache, &mut d_cache);
            let want = draft.forward_infer(&prompt, &mut d_cache);

            // Training side: tape graph with the same prefix.
            let (prefix_len, prefix) = prefix_rows_for(
                draft.cfg.n_layers,
                Some(&proj),
                abl,
                &t_cache,
                model.n_img(),
            );
            let mut tape = Tape::new();
            let (logits, _, _) =
                student_logits(&mut tape, &draft, Some(&proj), &prompt, prefix_len, &prefix);
            let got = tape.value(logits);
            let diff = max_abs_diff(&got.data, &want.data);
            assert!(diff < 1e-3, "train/inference mismatch for {abl:?}: {diff}");
        }
    }

    /// Joint distillation must reduce the KL loss, and in the projector
    /// configuration must actually move the projector weights.
    #[test]
    fn distill_hybrid_learns_and_updates_projector() {
        let (model, mut draft, mut proj, _, _, _) = setup();
        let wk_before = proj.wk[0].data.clone();
        let cfg = HybridDistillConfig::smoke(20, 0xD1);
        let losses = distill_hybrid(
            &model,
            &mut draft,
            Some(&mut proj),
            Ablation::projector(),
            &cfg,
        );
        assert_eq!(losses.len(), 20);
        let head: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = losses[15..].iter().sum::<f32>() / 5.0;
        assert!(
            tail < head,
            "hybrid distillation loss did not trend down: {head} -> {tail}"
        );
        assert!(
            max_abs_diff(&proj.wk[0].data, &wk_before) > 1e-6,
            "projector weights never updated"
        );
    }

    /// The TdAttention alignment term must leave the loss finite and still
    /// trend down, and a frozen-prefix baseline graph must match the live
    /// inference path over the same own-vision prefix.
    #[test]
    fn distill_hybrid_with_td_alignment_trains() {
        let (model, mut draft, mut proj, _, _, _) = setup();
        let cfg = HybridDistillConfig::smoke(16, 0xD7);
        let (n_img, patch_dim) = (model.n_img(), model.cfg.vision.patch_dim);
        let vocab = model.cfg.lm.vocab;
        let mut source = move |_s: usize, rng: &mut Rng| {
            (
                Image::synthetic(rng, n_img, patch_dim),
                random_prompt(rng, 4, vocab),
            )
        };
        let td = TdAlignConfig {
            window: 3,
            weight: 0.5,
        };
        let losses = distill_hybrid_with(
            &model,
            &mut draft,
            Some(&mut proj),
            Ablation::projector(),
            &cfg,
            Some(td),
            &mut source,
        );
        assert_eq!(losses.len(), 16);
        assert!(losses.iter().all(|l| l.is_finite() && *l >= -1e-5));
        let head: f32 = losses[..4].iter().sum::<f32>() / 4.0;
        let tail: f32 = losses[12..].iter().sum::<f32>() / 4.0;
        assert!(
            tail < head,
            "TD-aligned distillation did not trend down: {head} -> {tail}"
        );
    }

    /// `frozen_prefix_logits` over a VLM's own vision rows must equal that
    /// VLM's live inference logits after a vision prefill — the baseline
    /// zoo's training graph sees the same function its decoding uses.
    #[test]
    fn frozen_prefix_logits_matches_own_vision_inference() {
        let (model, _, _, img, prompt, _) = setup();
        let rows = own_vision_rows(&model, &img);
        let mut cache = model.lm.new_cache();
        let embeds = model.encode_image(&img);
        model.lm.forward_infer_embeds(&embeds, &mut cache);
        let want = model.lm.forward_infer(&prompt, &mut cache);
        let mut tape = Tape::new();
        let (logits, params) = frozen_prefix_logits(&mut tape, &model.lm, &prompt, &rows);
        assert_eq!(params.len(), model.lm.n_param_tensors());
        let diff = max_abs_diff(&tape.value(logits).data, &want.data);
        assert!(
            diff < 1e-3,
            "frozen-prefix train/inference mismatch: {diff}"
        );
    }

    /// The no-vision ablation must also train (it is the baseline leg of
    /// the Table-2 comparison) without needing a projector at all.
    #[test]
    fn distill_hybrid_no_vision_runs_without_projector() {
        let (model, mut draft, _, _, _, _) = setup();
        let cfg = HybridDistillConfig::smoke(8, 0xD2);
        let losses = distill_hybrid(&model, &mut draft, None, Ablation::no_vision(), &cfg);
        assert_eq!(losses.len(), 8);
        assert!(losses.iter().all(|l| l.is_finite()));
    }
}
