//! `aasd-mm` — the multimodal core of the AASD reproduction.
//!
//! AASD (Align Speculative Decoding) accelerates multimodal LLM inference
//! by giving a small draft model an *aligned view* of the target's
//! multimodal context. This crate supplies every piece of that pipeline on
//! the pure-Rust stack:
//!
//! * [`vision`] — [`Image`] (synthetic patch tensors), the bidirectional
//!   pre-norm ViT [`VisionEncoder`], and the 2-layer MLP [`Connector`] into
//!   text-embedding space;
//! * [`llava`] — [`LlavaSim`], the simulated LLaVA-architecture target
//!   (vision ∥ text through the `aasd-nn` decoder via the embeds path),
//!   with `sim_7b`/`sim_13b` presets whose per-forward cost asymmetry the
//!   bench asserts;
//! * [`projector`] — the [`KvProjector`]: learned `W_K, W_V` compressing
//!   the vision slice of the target's per-layer KV into `k` rows;
//! * [`hybrid`] — the [`Ablation`] switches (`use_vision_projector`,
//!   `drop_vision_kv`, `drop_text_kv`) and the hybrid-cache decode paths
//!   [`mm_autoregressive_ws`] / [`mm_speculative_ws`], built on the seeded
//!   fused loops in `aasd-specdec`;
//! * [`train`] — [`distill_hybrid`]: joint draft+projector KL distillation
//!   on synthetic image+text rollouts, with the student graph
//!   property-tested to equal the inference path (rope offsets,
//!   `concat_rows`, `prefix_causal_attention`).
//!
//! Everything is lossless by construction (greedy verification), so the
//! ablation switches move α/τ — measured, never asserted — while the output
//! tokens stay identical to autoregressive decoding.

pub mod hybrid;
pub mod llava;
pub mod projector;
pub mod train;
pub mod vision;

pub use hybrid::{
    draft_for, draft_for_depth, mm_autoregressive_ws, mm_speculative_tree_ws, mm_speculative_ws,
    seed_draft_prefix, Ablation,
};
pub use llava::{LlavaSim, LlavaSimConfig};
pub use projector::{layer_map, seed_raw_vision, KvProjector};
pub use train::{
    distill_hybrid, distill_hybrid_with, frozen_prefix_logits, mm_teacher_probs, mm_teacher_scored,
    own_vision_rows, DistillSource, HybridDistillConfig, TdAlignConfig,
};
pub use vision::{Connector, Image, VisionConfig, VisionEncoder, VitBlock};
