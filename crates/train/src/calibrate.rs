//! Training for the tree-speculation **acceptance calibrator**: a logistic
//! head `σ(w·f + b)` over per-candidate features (draft probability,
//! distribution peak, depth, visual-attention mass) predicting whether the
//! target will accept a drafted token. Examples come straight from
//! [`TreeSession`](aasd_specdec::TreeSession) runs with example collection
//! enabled, so the head is fitted on exactly the distribution it will gate
//! at serve time.
//!
//! The model is tiny (5 parameters) and convex, so the gradient is written
//! out by hand — `∂ℓ/∂w = (σ(z) − y)·f`, `∂ℓ/∂b = σ(z) − y` for the
//! log-loss — and pushed through the existing [`Optimizer`] stack as a
//! single parameter slot.

use crate::Optimizer;
use aasd_specdec::{AcceptanceCalibrator, AcceptanceExample, CALIBRATOR_FEATURES};

/// Fit a calibrator on labelled acceptance examples by full-batch logistic
/// regression: `steps` optimizer steps at learning rate `lr`, starting from
/// the neutral prior. Returns the fitted head and the per-step mean
/// log-loss (before each update).
///
/// Panics if `examples` is empty — an unobserved head should stay at
/// [`AcceptanceCalibrator::neutral`] instead of being "fitted" to nothing.
pub fn fit_acceptance_calibrator(
    examples: &[AcceptanceExample],
    steps: usize,
    lr: f32,
    opt: &mut dyn Optimizer,
) -> (AcceptanceCalibrator, Vec<f32>) {
    assert!(!examples.is_empty(), "no acceptance examples to fit");
    // One flat slot: [w0, w1, w2, w3, b].
    let mut theta = [0.0f32; CALIBRATOR_FEATURES + 1];
    let prior = AcceptanceCalibrator::neutral();
    theta[..CALIBRATOR_FEATURES].copy_from_slice(&prior.w);
    theta[CALIBRATOR_FEATURES] = prior.b;

    let inv_n = 1.0 / examples.len() as f32;
    let mut losses = Vec::with_capacity(steps);
    let mut grad = [0.0f32; CALIBRATOR_FEATURES + 1];
    for _ in 0..steps {
        grad.fill(0.0);
        let mut loss = 0.0f32;
        for ex in examples {
            let z: f32 = theta[..CALIBRATOR_FEATURES]
                .iter()
                .zip(&ex.features)
                .map(|(w, x)| w * x)
                .sum::<f32>()
                + theta[CALIBRATOR_FEATURES];
            let p = 1.0 / (1.0 + (-z).exp());
            // Clamped log-loss keeps a saturated head finite.
            let pc = p.clamp(1e-7, 1.0 - 1e-7);
            loss -= ex.label * pc.ln() + (1.0 - ex.label) * (1.0 - pc).ln();
            let err = (p - ex.label) * inv_n;
            for (g, x) in grad[..CALIBRATOR_FEATURES].iter_mut().zip(&ex.features) {
                *g += err * x;
            }
            grad[CALIBRATOR_FEATURES] += err;
        }
        losses.push(loss * inv_n);
        opt.begin_step(lr);
        opt.update(0, &mut theta, &grad);
    }

    let mut w = [0.0f32; CALIBRATOR_FEATURES];
    w.copy_from_slice(&theta[..CALIBRATOR_FEATURES]);
    (
        AcceptanceCalibrator {
            w,
            b: theta[CALIBRATOR_FEATURES],
        },
        losses,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Adam;

    fn example(f: [f32; CALIBRATOR_FEATURES], label: f32) -> AcceptanceExample {
        AcceptanceExample { features: f, label }
    }

    /// Separable data (accept iff draft prob > 0.5) is fitted to near-zero
    /// loss, and predictions land on the right side of 0.5.
    #[test]
    fn fits_separable_acceptance_data() {
        let mut data = Vec::new();
        for i in 0..20 {
            let p = (i as f32 + 0.5) / 20.0;
            let label = if p > 0.5 { 1.0 } else { 0.0 };
            data.push(example([p, 0.8, 0.5, 0.2], label));
        }
        let mut opt = Adam::new();
        let (cal, losses) = fit_acceptance_calibrator(&data, 400, 0.05, &mut opt);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss did not shrink: {} -> {}",
            losses[0],
            losses.last().unwrap()
        );
        assert!(cal.accept(&[0.9, 0.8, 0.5, 0.2]));
        assert!(!cal.accept(&[0.1, 0.8, 0.5, 0.2]));
    }

    /// The modality feature is live: when acceptance depends on the
    /// visual-attention mass, the fitted head separates on it while the
    /// neutral prior (vis weight 0) cannot.
    #[test]
    fn learns_the_visual_mass_interaction() {
        let mut data = Vec::new();
        for i in 0..16 {
            let vis = (i as f32 + 0.5) / 16.0;
            let label = if vis > 0.5 { 1.0 } else { 0.0 };
            data.push(example([0.5, 0.6, 0.5, vis], label));
        }
        let prior = AcceptanceCalibrator::neutral();
        let p_lo = prior.predict(&[0.5, 0.6, 0.5, 0.1]);
        let p_hi = prior.predict(&[0.5, 0.6, 0.5, 0.9]);
        assert_eq!(p_lo, p_hi, "neutral prior is vis-blind by construction");
        let mut opt = Adam::new();
        let (cal, _) = fit_acceptance_calibrator(&data, 600, 0.05, &mut opt);
        assert!(
            cal.predict(&[0.5, 0.6, 0.5, 0.9]) > cal.predict(&[0.5, 0.6, 0.5, 0.1]) + 0.2,
            "fitted head must separate on visual mass: {cal:?}"
        );
    }

    #[test]
    #[should_panic(expected = "no acceptance examples")]
    fn empty_example_set_is_rejected() {
        let mut opt = Adam::new();
        fit_acceptance_calibrator(&[], 10, 0.1, &mut opt);
    }
}
