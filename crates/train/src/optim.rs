//! First-order optimizers. Both update one parameter tensor ("slot") at a
//! time in the canonical visitor order, so per-slot state (Adam's moments)
//! is keyed by slot index and grown lazily on first touch.

/// A stateful first-order optimizer.
///
/// The trainer calls [`Optimizer::begin_step`] once per optimisation step
/// with the scheduled learning rate, then [`Optimizer::update`] once per
/// parameter slot with that slot's live weights and gradient.
pub trait Optimizer {
    /// Start a new optimisation step at learning rate `lr`.
    fn begin_step(&mut self, lr: f32);
    /// Apply this step's update to one parameter tensor.
    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]);
}

/// Plain stochastic gradient descent: `θ ← θ − lr·g`.
#[derive(Debug, Default, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn update(&mut self, _slot: usize, param: &mut [f32], grad: &[f32]) {
        debug_assert_eq!(param.len(), grad.len());
        for (p, g) in param.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
///
/// Per-slot first/second moment buffers are allocated on first update of
/// that slot, so the optimizer needs no up-front knowledge of the model's
/// shape — it adapts to whatever the parameter visitor yields.
#[derive(Debug, Clone)]
pub struct Adam {
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    lr: f32,
    /// Completed steps (for bias correction); incremented by `begin_step`.
    t: u32,
    /// Per-slot `(m, v)` moment buffers.
    state: Vec<Option<(Vec<f32>, Vec<f32>)>>,
}

impl Adam {
    pub fn new() -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            lr: 0.0,
            t: 0,
            state: Vec::new(),
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self, lr: f32) {
        self.lr = lr;
        self.t += 1;
    }

    fn update(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        debug_assert_eq!(param.len(), grad.len());
        if slot >= self.state.len() {
            self.state.resize(slot + 1, None);
        }
        let (m, v) = self.state[slot]
            .get_or_insert_with(|| (vec![0.0; param.len()], vec![0.0; param.len()]));
        debug_assert_eq!(m.len(), param.len(), "slot {slot} changed size");
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..param.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            param[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = Σ xᵢ² from x = (3, −2): both optimizers must reach
    /// the origin, Adam despite the wildly different gradient scales below.
    fn quadratic_grad(x: &[f32]) -> Vec<f32> {
        x.iter().map(|v| 2.0 * v).collect()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut x = vec![3.0f32, -2.0];
        let mut opt = Sgd::new();
        for _ in 0..100 {
            let g = quadratic_grad(&x);
            opt.begin_step(0.1);
            opt.update(0, &mut x, &g);
        }
        assert!(x.iter().all(|v| v.abs() < 1e-3), "{x:?}");
    }

    #[test]
    fn adam_converges_on_badly_scaled_quadratic() {
        // f(x) = 100·x₀² + 0.01·x₁² — SGD at a safe lr crawls on x₁; Adam's
        // normalisation moves both coordinates at the same speed.
        let mut x = vec![1.0f32, 1.0];
        let mut opt = Adam::new();
        for _ in 0..400 {
            let g = vec![200.0 * x[0], 0.02 * x[1]];
            opt.begin_step(0.02);
            opt.update(0, &mut x, &g);
        }
        assert!(x[0].abs() < 1e-2 && x[1].abs() < 1e-2, "{x:?}");
    }

    #[test]
    fn adam_state_is_per_slot() {
        let mut opt = Adam::new();
        let mut a = vec![1.0f32; 3];
        let mut b = vec![1.0f32; 5];
        opt.begin_step(0.1);
        opt.update(0, &mut a, &[1.0; 3]);
        opt.update(1, &mut b, &[1.0; 5]);
        opt.begin_step(0.1);
        opt.update(0, &mut a, &[1.0; 3]);
        opt.update(1, &mut b, &[1.0; 5]);
        assert_eq!(opt.state.len(), 2);
        assert_eq!(opt.state[0].as_ref().unwrap().0.len(), 3);
        assert_eq!(opt.state[1].as_ref().unwrap().0.len(), 5);
    }
}
