//! Learning-rate schedules.

/// Learning rate as a function of the 0-based step index.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// The same rate every step.
    Constant(f32),
    /// Half-cosine decay from `base` at step 0 to `floor` at step
    /// `total` (and `floor` for every step after).
    Cosine { base: f32, floor: f32, total: usize },
}

impl Schedule {
    pub fn lr(&self, step: usize) -> f32 {
        match *self {
            Schedule::Constant(lr) => lr,
            Schedule::Cosine { base, floor, total } => {
                if total == 0 || step >= total {
                    return floor;
                }
                let progress = step as f32 / total as f32;
                floor + 0.5 * (base - floor) * (1.0 + (std::f32::consts::PI * progress).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = Schedule::Constant(0.3);
        assert_eq!(s.lr(0), 0.3);
        assert_eq!(s.lr(10_000), 0.3);
    }

    #[test]
    fn cosine_hits_endpoints_and_decreases() {
        let s = Schedule::Cosine {
            base: 1.0,
            floor: 0.1,
            total: 100,
        };
        assert!((s.lr(0) - 1.0).abs() < 1e-6);
        assert!((s.lr(50) - 0.55).abs() < 1e-6);
        assert_eq!(s.lr(100), 0.1);
        assert_eq!(s.lr(500), 0.1);
        let mut prev = f32::INFINITY;
        for step in 0..=100 {
            let lr = s.lr(step);
            assert!(lr <= prev + 1e-7, "not monotone at step {step}");
            prev = lr;
        }
    }

    #[test]
    fn degenerate_cosine_returns_floor() {
        let s = Schedule::Cosine {
            base: 1.0,
            floor: 0.25,
            total: 0,
        };
        assert_eq!(s.lr(0), 0.25);
    }
}
