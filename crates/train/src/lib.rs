//! `aasd-train` — the training stack that makes draft/target alignment an
//! *emergent* quantity instead of a seeded accident.
//!
//! AASD's core claim is that speculative-decoding speedups in MLLMs come
//! from *aligning* the draft model to the target, not from the draft's raw
//! quality. This crate supplies the pieces needed to reproduce that claim
//! end to end on the pure-Rust stack:
//!
//! * [`Optimizer`] with [`Sgd`] and [`Adam`] implementations, updating
//!   parameters slot-by-slot in the canonical visitor order of
//!   [`aasd_nn::Decoder::visit_params_mut`];
//! * [`Schedule`] — constant and cosine learning-rate decay;
//! * [`LossSpec`] — next-token cross-entropy and sequence-level KL
//!   distillation against frozen teacher probabilities;
//! * [`Trainable`] — the parameter-visitor trait bridging a model to the
//!   generic [`train_loop`];
//! * [`distill`] — self-data distillation: the target greedily generates
//!   continuations of seeded random prompts, and the draft is trained to
//!   match the target's full next-token distribution on those sequences.
//!
//! Everything is deterministic (SplitMix64 seeds, no external crates), so
//! the root integration test can assert that a distilled draft's empirical
//! acceptance rate α strictly beats the untrained draft's.

mod calibrate;
mod optim;
mod schedule;

pub use calibrate::fit_acceptance_calibrator;
pub use optim::{Adam, Optimizer, Sgd};
pub use schedule::Schedule;

use aasd_autograd::{Tape, VarId};
use aasd_nn::{Decoder, KvCache};
use aasd_specdec::autoregressive_greedy_seeded_ws;
use aasd_tensor::{argmax, softmax_rows, Rng, Tensor, Workspace};

/// What loss to attach to the `[t, vocab]` logits node of one example.
#[derive(Debug, Clone)]
pub enum LossSpec {
    /// Next-token cross-entropy: `targets[i]` is the label for logits row
    /// `i` (so `targets` is usually `inputs` shifted left by one).
    CrossEntropy { targets: Vec<u32> },
    /// Sequence-level KL divergence `KL(teacher ‖ student)` averaged over
    /// rows, against a frozen `[t, vocab]` teacher probability matrix.
    KlDistill { teacher_probs: Tensor },
}

/// One training example: an input token sequence plus the loss to minimise
/// on the logits it produces.
#[derive(Debug, Clone)]
pub struct Example {
    pub inputs: Vec<u32>,
    pub loss: LossSpec,
}

/// Parameter-visitor bridge between a model and the generic training loop.
///
/// `forward_train` must return parameter leaf ids in exactly the order
/// `visit_params_mut` yields slices — the trainer walks both in lockstep to
/// pair each gradient with its live weight buffer.
pub trait Trainable {
    /// Replay the model's forward pass on `tape`; return the logits node
    /// and the parameter leaf ids in canonical visitor order.
    fn forward_train(&self, tape: &mut Tape, tokens: &[u32]) -> (VarId, Vec<VarId>);
    /// Visit every trainable parameter slice in canonical order.
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut [f32]));
    /// Number of slices `visit_params_mut` yields.
    fn n_param_tensors(&self) -> usize;
}

impl Trainable for Decoder {
    fn forward_train(&self, tape: &mut Tape, tokens: &[u32]) -> (VarId, Vec<VarId>) {
        Decoder::forward_train(self, tape, tokens)
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut [f32])) {
        Decoder::visit_params_mut(self, f)
    }
    fn n_param_tensors(&self) -> usize {
        Decoder::n_param_tensors(self)
    }
}

/// One optimisation step: build a fresh tape, attach the example's loss,
/// backpropagate, and apply gradients through the optimizer. Returns the
/// scalar loss *before* the update.
pub fn train_step<M: Trainable>(
    model: &mut M,
    example: &Example,
    opt: &mut dyn Optimizer,
    lr: f32,
) -> f32 {
    let mut tape = Tape::new();
    let (logits, params) = model.forward_train(&mut tape, &example.inputs);
    let loss = match &example.loss {
        LossSpec::CrossEntropy { targets } => tape.cross_entropy(logits, targets),
        LossSpec::KlDistill { teacher_probs } => tape.kl_div(logits, teacher_probs.clone()),
    };
    let loss_value = tape.value(loss).data[0];
    let grads = tape.backward(loss);

    opt.begin_step(lr);
    let mut slot = 0usize;
    model.visit_params_mut(&mut |_, param| {
        if let Some(g) = grads.get(params[slot]) {
            opt.update(slot, param, &g.data);
        }
        slot += 1;
    });
    debug_assert_eq!(slot, params.len());
    loss_value
}

/// Run `steps` optimisation steps, pulling one example per step from
/// `next_example` and the learning rate from `schedule`. Returns the
/// per-step pre-update losses.
pub fn train_loop<M: Trainable>(
    model: &mut M,
    opt: &mut dyn Optimizer,
    schedule: &Schedule,
    steps: usize,
    next_example: &mut dyn FnMut(usize) -> Example,
) -> Vec<f32> {
    let mut losses = Vec::with_capacity(steps);
    for step in 0..steps {
        let ex = next_example(step);
        losses.push(train_step(model, &ex, opt, schedule.lr(step)));
    }
    losses
}

/// The teacher's full next-token distribution over `inputs`: row-wise
/// softmax of its `[t, vocab]` full-sequence logits. This is the frozen
/// matrix [`LossSpec::KlDistill`] pins the student against.
pub fn teacher_probs(teacher: &Decoder, inputs: &[u32]) -> Tensor {
    teacher_probs_with_temperature(teacher, inputs, 1.0)
}

/// [`teacher_probs`] with a distillation temperature (Hinton et al. 2015):
/// logits are divided by `temperature` before the softmax. `T < 1` sharpens
/// the target toward the teacher's argmax — useful when the teacher is
/// high-entropy and greedy agreement (not distribution matching) is the
/// quantity being optimised, as in speculative-decoding alignment.
pub fn teacher_probs_with_temperature(
    teacher: &Decoder,
    inputs: &[u32],
    temperature: f32,
) -> Tensor {
    sharpen_to_probs(teacher.forward_full(inputs), temperature)
}

/// Sample a seeded uniform random prompt — the synthetic prompt stream every
/// self-data distillation loop draws from.
pub fn random_prompt(rng: &mut Rng, len: usize, vocab: usize) -> Vec<u32> {
    (0..len).map(|_| rng.below(vocab) as u32).collect()
}

/// Prefill `prompt` into `cache` (which may already hold a prefix, e.g. a
/// multimodal vision prefix) on the fused zero-allocation path and return
/// the teacher's greedy frontier token — the `pending` input the seeded
/// rollout loops consume.
pub fn prefill_prompt_ws(
    teacher: &Decoder,
    prompt: &[u32],
    cache: &mut KvCache,
    ws: &mut Workspace,
) -> u32 {
    let vocab = teacher.cfg.vocab;
    let mut logits = ws.take(prompt.len() * vocab);
    teacher.forward_infer_ws(prompt, cache, ws, &mut logits);
    let pending = argmax(&logits[(prompt.len() - 1) * vocab..]) as u32;
    ws.give(logits);
    pending
}

/// The shared synthetic-rollout step used by every self-data distillation
/// loop — text [`distill`], the multimodal `distill_hybrid` in `aasd-mm`,
/// and the baseline-zoo trainers in `aasd-baselines`: greedily continue
/// `pending` over the pre-seeded teacher `cache`, clamping the continuation
/// to the cache's remaining room, and return `prompt ‖ generated` truncated
/// to `max_len` — the token sequence the student trains on.
pub fn rollout_inputs(
    teacher: &Decoder,
    cache: &mut KvCache,
    prompt: &[u32],
    pending: u32,
    gen_len: usize,
    max_len: usize,
    ws: &mut Workspace,
) -> Vec<u32> {
    // The seeded loop feeds back all but the final committed token, so the
    // feasible budget is the remaining room plus one (`ArSession` asserts).
    let room = teacher.cfg.max_seq.min(cache.capacity()) + 1 - cache.len();
    let gen = autoregressive_greedy_seeded_ws(teacher, cache, pending, gen_len.min(room), ws);
    let mut inputs = prompt.to_vec();
    inputs.extend_from_slice(&gen);
    inputs.truncate(max_len);
    inputs
}

/// Temperature-sharpen raw `[t, vocab]` teacher logits into the frozen
/// probability rows [`LossSpec::KlDistill`] consumes: divide by `T`, then
/// row-wise softmax. `T < 1` concentrates mass on the teacher's argmax —
/// the quantity greedy speculative acceptance actually measures.
pub fn sharpen_to_probs(mut logits: Tensor, temperature: f32) -> Tensor {
    assert!(temperature > 0.0, "temperature must be positive");
    if temperature != 1.0 {
        for v in &mut logits.data {
            *v /= temperature;
        }
    }
    softmax_rows(&mut logits.data, logits.cols);
    logits
}

/// Configuration for [`distill`].
#[derive(Debug, Clone)]
pub struct DistillConfig {
    /// Optimisation steps (one teacher-generated sequence each).
    pub steps: usize,
    /// Random prompt length fed to the teacher per step.
    pub prompt_len: usize,
    /// Greedy continuation length the teacher generates per step.
    pub gen_len: usize,
    /// Learning-rate schedule.
    pub schedule: Schedule,
    /// Distillation temperature for the teacher distribution (1.0 = match
    /// the raw distribution; < 1 sharpens toward the teacher's argmax).
    pub temperature: f32,
    /// Seed for the prompt stream.
    pub seed: u64,
}

impl DistillConfig {
    /// A short, deterministic run sized for tests and smoke benches.
    pub fn smoke(steps: usize, seed: u64) -> Self {
        Self {
            steps,
            prompt_len: 4,
            gen_len: 12,
            schedule: Schedule::Cosine {
                base: 3e-2,
                floor: 3e-3,
                total: steps,
            },
            temperature: 1.0,
            seed,
        }
    }
}

/// Self-data distillation (the AASD alignment recipe, greedy flavour): per
/// step, draw a seeded random prompt, let the frozen `target` greedily
/// continue it, and train `draft` to match the target's next-token
/// distribution over the whole sequence via sequence-level KL. Uses `opt`
/// for the updates and returns per-step losses.
///
/// Training on the target's *own* greedy rollouts concentrates the
/// student's capacity exactly where speculative decoding will interrogate
/// it, which is what makes the post-distillation acceptance rate α rise.
pub fn distill(
    draft: &mut Decoder,
    target: &Decoder,
    opt: &mut dyn Optimizer,
    cfg: &DistillConfig,
) -> Vec<f32> {
    let vocab = target.cfg.vocab;
    assert_eq!(draft.cfg.vocab, vocab, "draft/target vocab mismatch");
    let max_seq = draft.cfg.max_seq.min(target.cfg.max_seq);
    assert!(cfg.prompt_len >= 1 && cfg.prompt_len < max_seq);
    let mut rng = Rng::new(cfg.seed);
    let schedule = cfg.schedule.clone();
    // Teacher rollouts dominate each step's wall-clock; run them on the
    // fused zero-allocation decode path (token-identical to the reference).
    let mut ws = Workspace::new();
    let budget = cfg.gen_len.min(max_seq - cfg.prompt_len);
    let mut make = |_step: usize| -> Example {
        let prompt = random_prompt(&mut rng, cfg.prompt_len, vocab);
        let mut cache = target.new_cache();
        let pending = prefill_prompt_ws(target, &prompt, &mut cache, &mut ws);
        let inputs = rollout_inputs(
            target, &mut cache, &prompt, pending, budget, max_seq, &mut ws,
        );
        let teacher_probs = teacher_probs_with_temperature(target, &inputs, cfg.temperature);
        Example {
            inputs,
            loss: LossSpec::KlDistill { teacher_probs },
        }
    };
    train_loop(draft, opt, &schedule, cfg.steps, &mut make)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aasd_nn::DecoderConfig;

    fn micro(seed: u64) -> Decoder {
        Decoder::new(
            DecoderConfig {
                vocab: 12,
                dim: 8,
                n_heads: 2,
                n_layers: 1,
                ff_hidden: 16,
                max_seq: 24,
                rope_theta: 10_000.0,
            },
            seed,
        )
    }

    fn mean(xs: &[f32]) -> f32 {
        xs.iter().sum::<f32>() / xs.len() as f32
    }

    #[test]
    fn sgd_reduces_cross_entropy_on_fixed_batch() {
        let mut model = micro(7);
        let inputs = vec![1u32, 5, 3, 9, 2, 7];
        let targets = vec![5u32, 3, 9, 2, 7, 4];
        let ex = Example {
            inputs,
            loss: LossSpec::CrossEntropy { targets },
        };
        let mut opt = Sgd::new();
        let sched = Schedule::Constant(5e-2);
        let losses = train_loop(&mut model, &mut opt, &sched, 40, &mut |_| ex.clone());
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "SGD failed to fit a fixed batch: {} -> {}",
            losses[0],
            losses.last().unwrap()
        );
    }

    #[test]
    fn adam_reduces_cross_entropy_faster_than_sgd_here() {
        let inputs = vec![1u32, 5, 3, 9, 2, 7];
        let targets = vec![5u32, 3, 9, 2, 7, 4];
        let ex = Example {
            inputs,
            loss: LossSpec::CrossEntropy { targets },
        };
        let sched = Schedule::Constant(2e-2);
        let run = |opt: &mut dyn Optimizer| {
            let mut model = micro(7);
            train_loop(&mut model, opt, &sched, 30, &mut |_| ex.clone())
        };
        let sgd = run(&mut Sgd::new());
        let adam = run(&mut Adam::new());
        assert!(adam.last().unwrap() < &adam[0]);
        // Adam's per-parameter scaling should dominate on this tiny
        // ill-conditioned problem at a matched learning rate.
        assert!(
            adam.last().unwrap() <= sgd.last().unwrap(),
            "adam {} vs sgd {}",
            adam.last().unwrap(),
            sgd.last().unwrap()
        );
    }

    #[test]
    fn kl_distillation_pulls_student_toward_teacher() {
        let teacher = micro(11);
        let mut student = micro(99);
        let inputs = vec![2u32, 8, 1, 6, 4];
        let probs = teacher_probs(&teacher, &inputs);
        let ex = Example {
            inputs,
            loss: LossSpec::KlDistill {
                teacher_probs: probs,
            },
        };
        let mut opt = Adam::new();
        let sched = Schedule::Constant(1e-2);
        let losses = train_loop(&mut student, &mut opt, &sched, 60, &mut |_| ex.clone());
        // KL is non-negative and should shrink toward 0 on a fixed batch.
        assert!(losses.iter().all(|l| *l >= -1e-6));
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.3),
            "KL failed to shrink: {} -> {}",
            losses[0],
            losses.last().unwrap()
        );
    }

    #[test]
    fn distill_smoke_run_lowers_mean_loss() {
        let target = micro(21);
        let mut draft = micro(22);
        let mut opt = Adam::new();
        let cfg = DistillConfig::smoke(24, 0xD15);
        let losses = distill(&mut draft, &target, &mut opt, &cfg);
        assert_eq!(losses.len(), 24);
        let head = mean(&losses[..6]);
        let tail = mean(&losses[losses.len() - 6..]);
        assert!(
            tail < head * 0.8,
            "distillation loss did not trend down: head {head} tail {tail}"
        );
    }

    #[test]
    fn teacher_probs_rows_are_normalised() {
        let teacher = micro(31);
        let p = teacher_probs(&teacher, &[3, 1, 4]);
        assert_eq!((p.rows, p.cols), (3, teacher.cfg.vocab));
        for r in 0..p.rows {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
        }
    }

    #[test]
    fn trainable_is_object_safe_and_counts_slots() {
        let mut model = micro(1);
        let dyn_model: &mut dyn Trainable = &mut model;
        let mut n = 0;
        dyn_model.visit_params_mut(&mut |_, _| n += 1);
        assert_eq!(n, dyn_model.n_param_tensors());
    }
}
