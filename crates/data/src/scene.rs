//! Procedural shape scenes and their deterministic renderer.
//!
//! A [`Scene`] is a handful of colored shapes on a small grid; [`render`]
//! turns it into the `[n_patches, patch_dim]` float [`Image`] the LlavaSim
//! stack consumes. The renderer is what makes **image content determine
//! text**: every object contributes a spatial bump (a Gaussian over the
//! patch grid centered at its position) times a fixed color⊙shape signature
//! vector, so a model that reads the patches can recover exactly the facts
//! the grammar verbalizes — which colors, which shapes, how many, and which
//! is largest.
//!
//! Two properties are deliberate:
//! * **Low rank.** A scene holds at most [`MAX_OBJS`] objects, so the patch
//!   matrix is approximately rank ≤ `MAX_OBJS` plus small noise — the same
//!   spatial redundancy `Image::synthetic` documents, which is what the
//!   KV projector monetizes. A full-rank renderer would quietly turn the
//!   projector ablation into a strawman.
//! * **Scalar arithmetic only.** Rendering uses plain f32 ops (no
//!   dispatched kernels), so the emitted streams are bit-identical across
//!   `AASD_KERNEL` tiers — pinned by the golden-hash determinism test.

use aasd_mm::Image;
use aasd_tensor::{Rng, Tensor};

/// Object positions live on a `GRID × GRID` board.
pub const GRID: usize = 4;
/// A scene holds 1..=MAX_OBJS objects.
pub const MAX_OBJS: usize = 3;

/// Fixed global seed for the color/shape signature vectors — the stable
/// "visual language" every scene is drawn in, independent of the sample
/// stream seed so all workloads share one vocabulary of appearances.
const SIGNATURE_SEED: u64 = 0x5157_1A11_C0DE_D001;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Shape {
    Circle,
    Square,
    Triangle,
}

impl Shape {
    pub const ALL: [Shape; 3] = [Shape::Circle, Shape::Square, Shape::Triangle];
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Color {
    Red,
    Green,
    Blue,
    Yellow,
}

impl Color {
    pub const ALL: [Color; 4] = [Color::Red, Color::Green, Color::Blue, Color::Yellow];
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Size {
    Small,
    Large,
}

/// One object: a colored shape of a given size at a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Obj {
    pub shape: Shape,
    pub color: Color,
    pub size: Size,
    pub row: usize,
    pub col: usize,
}

/// A complete scene — the single source of truth both the renderer and the
/// grammar read, which is what makes labels consistent by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scene {
    pub objs: Vec<Obj>,
}

impl Scene {
    /// Draw a random scene from `rng`: 1..=MAX_OBJS objects with uniform
    /// shape/color/size/position.
    pub fn sample(rng: &mut Rng) -> Self {
        let n = 1 + rng.below(MAX_OBJS);
        let objs = (0..n)
            .map(|_| Obj {
                shape: Shape::ALL[rng.below(3)],
                color: Color::ALL[rng.below(4)],
                size: if rng.below(2) == 0 {
                    Size::Small
                } else {
                    Size::Large
                },
                row: rng.below(GRID),
                col: rng.below(GRID),
            })
            .collect();
        Scene { objs }
    }

    /// Count of objects with the given color.
    pub fn count_color(&self, color: Color) -> usize {
        self.objs.iter().filter(|o| o.color == color).count()
    }

    /// Count of objects in the (color, shape) group.
    pub fn count_group(&self, color: Color, shape: Shape) -> usize {
        self.objs
            .iter()
            .filter(|o| o.color == color && o.shape == shape)
            .count()
    }

    /// The largest object: maximal size, ties broken by canonical
    /// (color, shape) order then insertion order — fully deterministic.
    pub fn largest(&self) -> Obj {
        *self
            .objs
            .iter()
            .min_by_key(|o| (std::cmp::Reverse(o.size), o.color, o.shape))
            .expect("scene has at least one object")
    }
}

/// Deterministic signature vector for a (color, shape) pair: the fixed
/// appearance every object of that kind shares, drawn once from the global
/// signature seed.
fn signature(color: Color, shape: Shape, patch_dim: usize) -> Vec<f32> {
    let id = (color as u64) * 8 + shape as u64;
    let mut rng = Rng::new(SIGNATURE_SEED ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (0..patch_dim).map(|_| rng.normal()).collect()
}

/// Render `scene` into an `[n_patches, patch_dim]` image. Patch `p` sits at
/// grid cell `(p / side, p % side)` with `side = ceil(sqrt(n_patches))`;
/// each object adds `amp(p) · signature(color, shape)` where `amp` is a
/// Gaussian bump centered at the object's cell whose width and height scale
/// with its size. `noise_rng` adds small i.i.d. noise so patches are never
/// exactly rank-deficient (mirroring `Image::synthetic`).
pub fn render(scene: &Scene, n_patches: usize, patch_dim: usize, noise_rng: &mut Rng) -> Image {
    let side = (1..).find(|s| s * s >= n_patches).unwrap();
    let mut patches = Tensor::zeros(n_patches, patch_dim);
    for obj in &scene.objs {
        let sig = signature(obj.color, obj.shape, patch_dim);
        let (sigma, gain) = match obj.size {
            Size::Small => (0.6f32, 1.0f32),
            Size::Large => (1.1f32, 1.6f32),
        };
        // Object grid coords rescaled onto the patch grid.
        let oy = obj.row as f32 * (side as f32 - 1.0) / (GRID as f32 - 1.0);
        let ox = obj.col as f32 * (side as f32 - 1.0) / (GRID as f32 - 1.0);
        for p in 0..n_patches {
            let py = (p / side) as f32;
            let px = (p % side) as f32;
            let d2 = (py - oy) * (py - oy) + (px - ox) * (px - ox);
            let amp = gain * (-d2 / (2.0 * sigma * sigma)).exp();
            if amp < 1e-4 {
                continue;
            }
            let row = patches.row_mut(p);
            for (x, s) in row.iter_mut().zip(&sig) {
                *x += amp * s;
            }
        }
    }
    for x in patches.data.iter_mut() {
        *x += 0.05 * noise_rng.normal();
    }
    Image { patches }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_respects_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..100 {
            let s = Scene::sample(&mut rng);
            assert!(!s.objs.is_empty() && s.objs.len() <= MAX_OBJS);
            for o in &s.objs {
                assert!(o.row < GRID && o.col < GRID);
            }
        }
    }

    #[test]
    fn render_is_deterministic_and_content_sensitive() {
        let mut rng = Rng::new(9);
        let scene = Scene::sample(&mut rng);
        let a = render(&scene, 16, 27, &mut Rng::new(1));
        let b = render(&scene, 16, 27, &mut Rng::new(1));
        assert_eq!(a.content_hash(), b.content_hash());

        // Changing one object's color must change the pixels.
        let mut other = scene.clone();
        other.objs[0].color = match other.objs[0].color {
            Color::Red => Color::Green,
            _ => Color::Red,
        };
        let c = render(&other, 16, 27, &mut Rng::new(1));
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn largest_is_deterministic_under_ties() {
        let obj = |color, shape| Obj {
            shape,
            color,
            size: Size::Large,
            row: 0,
            col: 0,
        };
        let s = Scene {
            objs: vec![
                obj(Color::Blue, Shape::Square),
                obj(Color::Red, Shape::Circle),
            ],
        };
        // Canonical order: Red < Blue, Circle < Square.
        assert_eq!(s.largest().color, Color::Red);
    }
}
