//! The closed-vocabulary grammar: deterministic text about a [`Scene`].
//!
//! Every emitter is a pure function of the scene (plus, for VQA, the asked
//! color), so **fixed scene ⇒ fixed text** and any content perturbation
//! that changes a count, color, shape, or the largest object changes the
//! emitted tokens — the label-consistency property the workload tests pin.
//!
//! Tokens are indices into [`WORDS`]; [`VOCAB`] is the language-model
//! vocabulary size the Sim targets are built with.

use crate::scene::{Color, Scene, Shape};

/// The entire closed vocabulary. Token id = index into this array.
pub const WORDS: [&str; 32] = [
    // colors 0..4
    "red", "green", "blue", "yellow", // shapes 4..7
    "circle", "square", "triangle", // numbers 7..11
    "zero", "one", "two", "three", // glue 11..
    "the", "scene", "shows", "and", ".", ";", ":", "?", "there", "are", "how", "many", "objects",
    "which", "object", "is", "largest", "count", "step", "by", "total",
];

/// Vocabulary size for model construction.
pub const VOCAB: usize = WORDS.len();

/// Token id of a vocabulary word (panics on unknown words — the grammar is
/// closed by construction).
pub fn word(w: &str) -> u32 {
    WORDS
        .iter()
        .position(|x| *x == w)
        .unwrap_or_else(|| panic!("word {w:?} not in the closed vocabulary")) as u32
}

/// Render token ids back to text (debugging / docs).
pub fn detokenize(tokens: &[u32]) -> String {
    tokens
        .iter()
        .map(|&t| WORDS[t as usize])
        .collect::<Vec<_>>()
        .join(" ")
}

fn color_word(c: Color) -> u32 {
    c as u32
}

fn shape_word(s: Shape) -> u32 {
    4 + s as u32
}

fn num_word(n: usize) -> u32 {
    assert!(n <= 3, "counts are bounded by MAX_OBJS");
    7 + n as u32
}

/// Canonical (color, shape) groups with non-zero counts, in fixed
/// color-major order — the shared enumeration captions and CoT both use.
fn groups(scene: &Scene) -> Vec<(Color, Shape, usize)> {
    let mut out = Vec::new();
    for &c in &Color::ALL {
        for &s in &Shape::ALL {
            let n = scene.count_group(c, s);
            if n > 0 {
                out.push((c, s, n));
            }
        }
    }
    out
}

/// Captioning prompt: `the scene shows`.
pub fn caption_prompt() -> Vec<u32> {
    vec![word("the"), word("scene"), word("shows")]
}

/// Captioning reference: `<num> <color> <shape> [and <num> <color> <shape>]* .`
pub fn caption_reference(scene: &Scene) -> Vec<u32> {
    let mut out = Vec::new();
    for (i, (c, s, n)) in groups(scene).iter().enumerate() {
        if i > 0 {
            out.push(word("and"));
        }
        out.push(num_word(*n));
        out.push(color_word(*c));
        out.push(shape_word(*s));
    }
    out.push(word("."));
    out
}

/// VQA count task: `how many <color> objects ?` → `there are <num> .`
pub fn vqa_count(scene: &Scene, color: Color) -> (Vec<u32>, Vec<u32>) {
    let prompt = vec![
        word("how"),
        word("many"),
        color_word(color),
        word("objects"),
        word("?"),
    ];
    let reference = vec![
        word("there"),
        word("are"),
        num_word(scene.count_color(color)),
        word("."),
    ];
    (prompt, reference)
}

/// VQA superlative task: `which object is largest ?` → `the <color> <shape> .`
pub fn vqa_largest(scene: &Scene) -> (Vec<u32>, Vec<u32>) {
    let prompt = vec![
        word("which"),
        word("object"),
        word("is"),
        word("largest"),
        word("?"),
    ];
    let big = scene.largest();
    let reference = vec![
        word("the"),
        color_word(big.color),
        shape_word(big.shape),
        word("."),
    ];
    (prompt, reference)
}

/// Chain-of-thought counting: `count the objects step by step :` →
/// `<color> <shape> : <num> ; … total : <num> .` — the per-group tally
/// precedes the total, so the model must carry intermediate state.
pub fn cot(scene: &Scene) -> (Vec<u32>, Vec<u32>) {
    let prompt = vec![
        word("count"),
        word("the"),
        word("objects"),
        word("step"),
        word("by"),
        word("step"),
        word(":"),
    ];
    let mut reference = Vec::new();
    for (c, s, n) in groups(scene) {
        reference.extend([
            color_word(c),
            shape_word(s),
            word(":"),
            num_word(n),
            word(";"),
        ]);
    }
    reference.extend([
        word("total"),
        word(":"),
        num_word(scene.objs.len()),
        word("."),
    ]);
    (prompt, reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Obj, Size};

    fn scene() -> Scene {
        Scene {
            objs: vec![
                Obj {
                    shape: Shape::Circle,
                    color: Color::Red,
                    size: Size::Small,
                    row: 0,
                    col: 0,
                },
                Obj {
                    shape: Shape::Circle,
                    color: Color::Red,
                    size: Size::Large,
                    row: 2,
                    col: 3,
                },
                Obj {
                    shape: Shape::Square,
                    color: Color::Blue,
                    size: Size::Small,
                    row: 1,
                    col: 1,
                },
            ],
        }
    }

    #[test]
    fn words_are_unique() {
        for (i, a) in WORDS.iter().enumerate() {
            for b in &WORDS[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn caption_reads_correctly() {
        let r = caption_reference(&scene());
        assert_eq!(detokenize(&r), "two red circle and one blue square .");
    }

    #[test]
    fn vqa_and_cot_read_correctly() {
        let s = scene();
        let (p, r) = vqa_count(&s, Color::Red);
        assert_eq!(detokenize(&p), "how many red objects ?");
        assert_eq!(detokenize(&r), "there are two .");
        let (_, r) = vqa_count(&s, Color::Yellow);
        assert_eq!(detokenize(&r), "there are zero .");
        let (p, r) = vqa_largest(&s);
        assert_eq!(detokenize(&p), "which object is largest ?");
        assert_eq!(detokenize(&r), "the red circle .");
        let (p, r) = cot(&s);
        assert_eq!(detokenize(&p), "count the objects step by step :");
        assert_eq!(
            detokenize(&r),
            "red circle : two ; blue square : one ; total : three ."
        );
    }

    #[test]
    fn perturbing_scene_content_changes_text() {
        let a = scene();
        let mut b = a.clone();
        b.objs[2].color = Color::Green;
        assert_ne!(caption_reference(&a), caption_reference(&b));
        assert_ne!(cot(&a).1, cot(&b).1);
        // Fixed scene ⇒ fixed text.
        assert_eq!(caption_reference(&a), caption_reference(&a.clone()));
    }
}
