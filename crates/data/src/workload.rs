//! The three named workloads and their seeded deterministic sample streams.
//!
//! Each [`Workload`] is a pure function `(seed, split, index) → Sample`:
//! random access is O(1), iteration order is the index order, and two
//! workloads with the same parameters emit bit-identical streams on every
//! machine and every `AASD_KERNEL` tier (the renderer and grammar use plain
//! scalar arithmetic only). Train and held-out splits draw from disjoint
//! salted seed streams, so evaluation measures generalization to unseen
//! scenes, not memorization of the training indices.

use crate::grammar;
use crate::scene::{render, Color, Scene};
use aasd_mm::Image;
use aasd_tensor::Rng;

/// Which half of a workload a sample comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    Train,
    Heldout,
}

/// The paper's three evaluation datasets, simulated:
/// * `WildSim` — mixed instruction traffic (captions, VQA, CoT), the
///   LLaVA-in-the-Wild analogue;
/// * `CocoCapSim` — captioning only, the COCO-Caption analogue;
/// * `SqaSim` — chain-of-thought counting, the ScienceQA analogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    WildSim,
    CocoCapSim,
    SqaSim,
}

impl WorkloadKind {
    pub const ALL: [WorkloadKind; 3] = [
        WorkloadKind::WildSim,
        WorkloadKind::CocoCapSim,
        WorkloadKind::SqaSim,
    ];

    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::WildSim => "WildSim",
            WorkloadKind::CocoCapSim => "CocoCapSim",
            WorkloadKind::SqaSim => "SqaSim",
        }
    }
}

/// One evaluation triple: the rendered image, the text prompt, and the
/// grammar's ground-truth continuation. `scene` is kept for property tests.
#[derive(Debug, Clone)]
pub struct Sample {
    pub image: Image,
    pub prompt: Vec<u32>,
    pub reference: Vec<u32>,
    pub scene: Scene,
}

/// A seeded deterministic workload over (image, prompt, reference) triples.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub kind: WorkloadKind,
    pub seed: u64,
    pub n_patches: usize,
    pub patch_dim: usize,
}

impl Workload {
    pub fn new(kind: WorkloadKind, seed: u64, n_patches: usize, patch_dim: usize) -> Self {
        Self {
            kind,
            seed,
            n_patches,
            patch_dim,
        }
    }

    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// The per-sample RNG: a SplitMix64 stream keyed on (seed, split,
    /// index) via odd-constant mixing, so samples are O(1) random access
    /// and the two splits never share a stream.
    fn sample_rng(&self, split: Split, index: u64) -> Rng {
        let salt: u64 = match split {
            Split::Train => 0x7261_696e_5f73_616c,
            Split::Heldout => 0x6865_6c64_5f73_616c,
        };
        Rng::new(self.seed ^ salt ^ index.wrapping_add(1).wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// The `index`-th sample of `split` — pure and deterministic.
    pub fn sample(&self, split: Split, index: u64) -> Sample {
        let mut rng = self.sample_rng(split, index);
        let scene = Scene::sample(&mut rng);
        // Task choice consumes RNG *before* rendering so image noise stays
        // in lockstep with the task stream.
        let (prompt, reference) = match self.kind {
            WorkloadKind::CocoCapSim => (
                grammar::caption_prompt(),
                grammar::caption_reference(&scene),
            ),
            WorkloadKind::SqaSim => grammar::cot(&scene),
            WorkloadKind::WildSim => match rng.below(4) {
                0 => (
                    grammar::caption_prompt(),
                    grammar::caption_reference(&scene),
                ),
                1 => grammar::vqa_count(&scene, Color::ALL[rng.below(4)]),
                2 => grammar::vqa_largest(&scene),
                _ => grammar::cot(&scene),
            },
        };
        let image = render(&scene, self.n_patches, self.patch_dim, &mut rng);
        Sample {
            image,
            prompt,
            reference,
            scene,
        }
    }

    /// Iterator over `split` starting at index 0.
    pub fn iter(&self, split: Split) -> impl Iterator<Item = Sample> + '_ {
        (0u64..).map(move |i| self.sample(split, i))
    }

    /// The first `n` samples of `split` as a batch.
    pub fn take(&self, split: Split, n: usize) -> Vec<Sample> {
        self.iter(split).take(n).collect()
    }
}

/// FNV-1a over a token stream plus each image's content hash — the golden
/// stream fingerprint the cross-tier determinism test pins.
pub fn stream_hash(samples: &[Sample]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for s in samples {
        mix(s.image.content_hash());
        mix(s.prompt.len() as u64);
        for &t in &s.prompt {
            mix(t as u64);
        }
        mix(s.reference.len() as u64);
        for &t in &s.reference {
            mix(t as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(kind: WorkloadKind) -> Workload {
        Workload::new(kind, 0xDA7A, 16, 27)
    }

    #[test]
    fn samples_are_pure_functions_of_seed_split_index() {
        for kind in WorkloadKind::ALL {
            let w = wl(kind);
            let a = w.sample(Split::Train, 5);
            let b = w.sample(Split::Train, 5);
            assert_eq!(a.prompt, b.prompt);
            assert_eq!(a.reference, b.reference);
            assert_eq!(a.image.content_hash(), b.image.content_hash());
        }
    }

    #[test]
    fn splits_and_indices_differ() {
        let w = wl(WorkloadKind::WildSim);
        let train = stream_hash(&w.take(Split::Train, 8));
        let held = stream_hash(&w.take(Split::Heldout, 8));
        assert_ne!(train, held, "train/held-out streams must be disjoint");
        let shifted: Vec<Sample> = (1..9).map(|i| w.sample(Split::Train, i)).collect();
        assert_ne!(train, stream_hash(&shifted));
    }

    #[test]
    fn specialized_workloads_emit_their_task_only() {
        let cap = wl(WorkloadKind::CocoCapSim);
        for s in cap.take(Split::Train, 6) {
            assert_eq!(s.prompt, grammar::caption_prompt());
            assert_eq!(s.reference, grammar::caption_reference(&s.scene));
        }
        let sqa = wl(WorkloadKind::SqaSim);
        for s in sqa.take(Split::Train, 6) {
            assert_eq!((s.prompt, s.reference), grammar::cot(&s.scene));
        }
    }

    #[test]
    fn wildsim_mixes_tasks() {
        let w = wl(WorkloadKind::WildSim);
        let mut lens = std::collections::HashSet::new();
        for s in w.take(Split::Train, 24) {
            lens.insert(s.prompt.len());
        }
        assert!(lens.len() >= 2, "WildSim should mix task families");
    }

    #[test]
    fn tokens_stay_in_vocab() {
        for kind in WorkloadKind::ALL {
            for s in wl(kind).take(Split::Heldout, 12) {
                for &t in s.prompt.iter().chain(&s.reference) {
                    assert!((t as usize) < grammar::VOCAB);
                }
            }
        }
    }
}
