//! `aasd-data` — procedural multimodal workloads where **image content
//! determines text** (DESIGN.md §2.5).
//!
//! Real MLLM evaluation sets pair images with text that is *about* the
//! image; random-token benchmarks cannot measure whether a draft model's
//! acceptance rate generalizes, which is exactly the weakness PR 5 flagged
//! (α spanning 0.06–1.0 on random prompts). This crate closes that gap with
//! a fully synthetic but *learnable* world:
//!
//! * [`Scene`] — colored shapes with sizes and positions on a grid;
//! * [`render`] — deterministic scene → `[n_patches, patch_dim]`
//!   [`aasd_mm::Image`] rendering (Gaussian spatial bumps × fixed
//!   color⊙shape signatures: low-rank, scalar-arithmetic-only);
//! * [`grammar`] — a closed [`VOCAB`]-word grammar emitting captions, VQA
//!   answers, and chain-of-thought counting, every token a pure function of
//!   the scene;
//! * [`Workload`] — the three named evaluation sets ([`WorkloadKind`]:
//!   `WildSim` mixed, `CocoCapSim` captioning, `SqaSim` CoT), each a seeded
//!   deterministic O(1)-random-access stream of (image, prompt, reference)
//!   [`Sample`] triples with disjoint train/held-out [`Split`]s.
//!
//! Determinism is bit-exact across machines and `AASD_KERNEL` tiers —
//! pinned by `tests/workload_determinism.rs` at the workspace root via
//! [`stream_hash`] golden values.

pub mod grammar;
pub mod scene;
pub mod workload;

pub use grammar::{detokenize, word, VOCAB, WORDS};
pub use scene::{render, Color, Obj, Scene, Shape, Size, GRID, MAX_OBJS};
pub use workload::{stream_hash, Sample, Split, Workload, WorkloadKind};
