//! `aasd-baselines` — the draft-baseline zoo (DESIGN.md §2.9).
//!
//! Baseline drafts *without* target-KV conditioning are the comparison the
//! field actually makes against aligned speculative decoding (Gagrani et
//! al., "On Speculative Decoding for Multimodal LLMs"; MASSV's self-data
//! distillation recipe). This crate builds the four archetypes of Table 1
//! from the existing `aasd-train` machinery:
//!
//! | system    | student        | supervision                                |
//! |-----------|----------------|--------------------------------------------|
//! | FT-LLaMA  | text `TinyLm`  | cross-entropy on ground-truth references   |
//! | DT-LLaMA  | text `TinyLm`  | KL vs the target's own rollouts            |
//! | FT-LLaVA  | `TinyVlm`      | cross-entropy behind its own vision prefix |
//! | DT-LLaVA  | `TinyVlm`      | MASSV self-data distillation               |
//!
//! plus [`train_aasd_draft`] — the full AASD draft (KV-projector-seeded,
//! jointly distilled, TdAttention-aligned) — and [`eval_system`], the
//! shared lossless speculative evaluation harness that times the decode
//! legs (prefill excluded from both clocks) and asserts every speculative
//! stream token-identical to autoregressive decoding.
//!
//! The text drafts never see the image: their acceptance rate is bounded by
//! how much of the grammar is inferable from text alone, which is exactly
//! the gap the paper's Table 1 quantifies.

use aasd_autograd::Tape;
use aasd_data::{Sample, Split, Workload};
use aasd_mm::{
    distill_hybrid_with, draft_for_depth, frozen_prefix_logits, mm_teacher_probs, own_vision_rows,
    seed_draft_prefix, Ablation, HybridDistillConfig, KvProjector, LlavaSim, LlavaSimConfig,
    TdAlignConfig, VisionConfig,
};
use aasd_nn::{Decoder, DecoderConfig, KvCache};
use aasd_specdec::{autoregressive_greedy_seeded_ws, speculative_greedy_seeded_ws, SpecStats};
use aasd_tensor::Workspace;
use aasd_train::{
    prefill_prompt_ws, rollout_inputs, train_loop, Adam, Example, LossSpec, Optimizer, Schedule,
};
use std::time::Instant;

/// The `TinyLm` text-draft architecture (the LLaMA-68M/160M analogue): its
/// own width, sharing only the vocabulary with the target.
pub fn tiny_lm_config(vocab: usize, max_seq: usize) -> DecoderConfig {
    DecoderConfig {
        vocab,
        dim: 64,
        n_heads: 4,
        n_layers: 2,
        ff_hidden: 128,
        max_seq,
        rope_theta: 10_000.0,
    }
}

/// The `TinyVlm` multimodal-draft architecture (the LLaVA-tiny analogue):
/// a [`tiny_lm_config`] LM behind its own small vision tower, consuming the
/// same `[n_patches, patch_dim]` images as the target.
pub fn tiny_vlm_config(
    vocab: usize,
    max_seq: usize,
    n_patches: usize,
    patch_dim: usize,
) -> LlavaSimConfig {
    LlavaSimConfig {
        vision: VisionConfig {
            n_patches,
            patch_dim,
            dim: 32,
            n_heads: 2,
            n_layers: 1,
            ff_hidden: 64,
        },
        connector_hidden: 48,
        lm: tiny_lm_config(vocab, max_seq),
    }
}

/// Shared hyperparameters for the zoo trainers.
#[derive(Debug, Clone)]
pub struct ZooTrainConfig {
    /// Optimisation steps; step `i` consumes train-split sample `i`.
    pub steps: usize,
    /// Rollout length for the DT (distillation) recipes.
    pub gen_len: usize,
    pub schedule: Schedule,
    /// Distillation temperature (DT recipes only).
    pub temperature: f32,
    /// Model-init / optimizer seed.
    pub seed: u64,
}

impl ZooTrainConfig {
    /// A short deterministic run sized for tests and the table1 smoke gate.
    pub fn smoke(steps: usize, seed: u64) -> Self {
        Self {
            steps,
            gen_len: 16,
            schedule: Schedule::Cosine {
                base: 2e-2,
                floor: 2e-3,
                total: steps,
            },
            temperature: 0.2,
            seed,
        }
    }
}

/// Ground-truth token sequence of a sample: `prompt ‖ reference`, split into
/// (inputs, shifted targets) for next-token cross-entropy.
fn supervised_pair(sample: &Sample, max_seq: usize) -> (Vec<u32>, Vec<u32>) {
    let mut seq = sample.prompt.clone();
    seq.extend_from_slice(&sample.reference);
    seq.truncate(max_seq);
    let targets = seq[1..].to_vec();
    let inputs = seq[..seq.len() - 1].to_vec();
    (inputs, targets)
}

/// FT-LLaMA: finetune a text-only draft on the workload's ground-truth
/// (prompt ‖ reference) sequences with next-token cross-entropy. The image
/// is never seen — the draft must guess the scene from the prompt alone.
pub fn finetune_text(draft: &mut Decoder, workload: &Workload, cfg: &ZooTrainConfig) -> Vec<f32> {
    let max_seq = draft.cfg.max_seq;
    let mut opt = Adam::new();
    let schedule = cfg.schedule.clone();
    let mut make = |step: usize| -> Example {
        let sample = workload.sample(Split::Train, step as u64);
        let (inputs, targets) = supervised_pair(&sample, max_seq);
        Example {
            inputs,
            loss: LossSpec::CrossEntropy { targets },
        }
    };
    train_loop(draft, &mut opt, &schedule, cfg.steps, &mut make)
}

/// DT-LLaMA: distill a text-only draft on the multimodal target's own
/// greedy rollouts (vision-conditioned teacher, blind student) via
/// sequence-level KL.
pub fn distill_text_from_mm(
    draft: &mut Decoder,
    target: &LlavaSim,
    workload: &Workload,
    cfg: &ZooTrainConfig,
) -> Vec<f32> {
    assert_eq!(draft.cfg.vocab, target.cfg.lm.vocab, "vocab mismatch");
    let mut ws = Workspace::new();
    let mut opt = Adam::new();
    let schedule = cfg.schedule.clone();
    let max_text = (target.cfg.lm.max_seq - target.n_img()).min(draft.cfg.max_seq);
    let mut make = |step: usize| -> Example {
        let sample = workload.sample(Split::Train, step as u64);
        let mut t_cache = target.lm.new_cache();
        let pending = target.prefill_ws(&sample.image, &sample.prompt, &mut t_cache, &mut ws);
        let inputs = rollout_inputs(
            &target.lm,
            &mut t_cache,
            &sample.prompt,
            pending,
            cfg.gen_len,
            max_text,
            &mut ws,
        );
        let teacher_probs = mm_teacher_probs(target, &sample.image, &inputs, cfg.temperature);
        Example {
            inputs,
            loss: LossSpec::KlDistill { teacher_probs },
        }
    };
    train_loop(draft, &mut opt, &schedule, cfg.steps, &mut make)
}

/// FT-LLaVA (and target grounding): finetune a VLM's **language model** on
/// ground-truth references behind its own frozen-at-step vision prefix.
/// The vision tower and connector stay fixed; the per-layer vision K/V rows
/// are recomputed from the current LM each step, exactly mirroring the
/// inference path. Also used to ground the Sim targets on a workload so
/// that their rollouts speak the grammar.
pub fn finetune_vlm(vlm: &mut LlavaSim, workload: &Workload, cfg: &ZooTrainConfig) -> Vec<f32> {
    let max_text = vlm.cfg.lm.max_seq - vlm.n_img();
    let mut opt = Adam::new();
    let mut losses = Vec::with_capacity(cfg.steps);
    for step in 0..cfg.steps {
        let sample = workload.sample(Split::Train, step as u64);
        let (inputs, targets) = supervised_pair(&sample, max_text);
        let rows = own_vision_rows(vlm, &sample.image);
        let mut tape = Tape::new();
        let (logits, params) = frozen_prefix_logits(&mut tape, &vlm.lm, &inputs, &rows);
        let loss = tape.cross_entropy(logits, &targets);
        losses.push(tape.value(loss).data[0]);
        let grads = tape.backward(loss);
        opt.begin_step(cfg.schedule.lr(step));
        let mut slot = 0usize;
        vlm.lm.visit_params_mut(&mut |_, param| {
            if let Some(g) = grads.get(params[slot]) {
                opt.update(slot, param, &g.data);
            }
            slot += 1;
        });
    }
    losses
}

/// DT-LLaVA: MASSV-style self-data distillation — the target generates its
/// own continuations, and the VLM draft (own vision tower, own LM) matches
/// the target's distribution on them via sequence KL.
pub fn distill_vlm_from_mm(
    draft: &mut LlavaSim,
    target: &LlavaSim,
    workload: &Workload,
    cfg: &ZooTrainConfig,
) -> Vec<f32> {
    assert_eq!(draft.cfg.lm.vocab, target.cfg.lm.vocab, "vocab mismatch");
    let mut ws = Workspace::new();
    let mut opt = Adam::new();
    let max_text =
        (target.cfg.lm.max_seq - target.n_img()).min(draft.cfg.lm.max_seq - draft.n_img());
    let mut losses = Vec::with_capacity(cfg.steps);
    for step in 0..cfg.steps {
        let sample = workload.sample(Split::Train, step as u64);
        let mut t_cache = target.lm.new_cache();
        let pending = target.prefill_ws(&sample.image, &sample.prompt, &mut t_cache, &mut ws);
        let tokens = rollout_inputs(
            &target.lm,
            &mut t_cache,
            &sample.prompt,
            pending,
            cfg.gen_len,
            max_text,
            &mut ws,
        );
        let teacher = mm_teacher_probs(target, &sample.image, &tokens, cfg.temperature);
        let rows = own_vision_rows(draft, &sample.image);
        let mut tape = Tape::new();
        let (logits, params) = frozen_prefix_logits(&mut tape, &draft.lm, &tokens, &rows);
        let loss = tape.kl_div(logits, teacher);
        losses.push(tape.value(loss).data[0]);
        let grads = tape.backward(loss);
        opt.begin_step(cfg.schedule.lr(step));
        let mut slot = 0usize;
        draft.lm.visit_params_mut(&mut |_, param| {
            if let Some(g) = grads.get(params[slot]) {
                opt.update(slot, param, &g.data);
            }
            slot += 1;
        });
    }
    losses
}

/// The full AASD draft: a width-shared two-layer decoder seeded by the KV
/// projector's compressed target vision KV, jointly distilled on workload
/// samples with the TdAttention alignment term. Two layers match the
/// baseline drafts' depth (a one-layer draft cannot form induction heads,
/// so it cannot copy scene words already present in its own context — a
/// structural α ceiling the comparison should not conflate with alignment).
/// Returns (draft, projector).
pub fn train_aasd_draft(
    target: &LlavaSim,
    workload: &Workload,
    cfg: &ZooTrainConfig,
    td: TdAlignConfig,
) -> (Decoder, KvProjector) {
    let mut draft = draft_for_depth(&target.cfg, 2, cfg.seed ^ 0xA5D);
    // Width-aware LR: the shared zoo schedule is tuned for the dim-64
    // baselines; the width-shared draft inherits the target's dim, and Adam
    // at 2e-2 oscillates on the wider models. Scale by 64/dim (≤ 1).
    let width_scale = (64.0 / target.cfg.lm.dim as f32).min(1.0);
    let schedule = match cfg.schedule {
        Schedule::Constant(lr) => Schedule::Constant(lr * width_scale),
        Schedule::Cosine { base, floor, total } => Schedule::Cosine {
            base: base * width_scale,
            floor: floor * width_scale,
            total,
        },
    };
    let mut projector = KvProjector::new(
        cfg.seed ^ 0x9D0,
        draft.cfg.n_layers,
        target.cfg.lm.n_layers,
        target.cfg.n_img(),
        target.cfg.k_slots(),
    );
    let hcfg = HybridDistillConfig {
        steps: cfg.steps,
        prompt_len: 4, // unused: the source supplies real prompts
        gen_len: cfg.gen_len,
        schedule,
        temperature: cfg.temperature,
        seed: cfg.seed,
    };
    let wl = *workload;
    let mut source = move |step: usize, _rng: &mut aasd_tensor::Rng| {
        let s = wl.sample(Split::Train, step as u64);
        (s.image, s.prompt)
    };
    distill_hybrid_with(
        target,
        &mut draft,
        Some(&mut projector),
        Ablation::projector(),
        &hcfg,
        Some(td),
        &mut source,
    );
    (draft, projector)
}

/// One evaluated draft system: what it is determines how its cache is
/// seeded before the shared speculative loop runs.
// A handful of these exist per run, so the size skew between variants is
// irrelevant and boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum DraftSystem {
    /// FT/DT-LLaMA: a text-only draft; its cache holds the prompt alone.
    Text(Decoder),
    /// FT/DT-LLaVA: a multimodal draft; its cache holds its **own** vision
    /// prefix ∥ prompt.
    Vlm(LlavaSim),
    /// The full AASD draft: its cache is seeded from the **target's**
    /// projected vision KV ∥ prompt.
    Aasd {
        draft: Decoder,
        projector: KvProjector,
    },
}

impl DraftSystem {
    /// The decoder that actually proposes tokens in the speculative loop.
    pub fn draft_lm(&self) -> &Decoder {
        match self {
            DraftSystem::Text(d) => d,
            DraftSystem::Vlm(v) => &v.lm,
            DraftSystem::Aasd { draft, .. } => draft,
        }
    }

    /// Seed this system's draft cache for one request (prefill-side work,
    /// excluded from the decode clocks like the target's own prefill).
    fn seed_cache(
        &self,
        target: &LlavaSim,
        t_cache: &KvCache,
        sample: &Sample,
        ws: &mut Workspace,
    ) -> KvCache {
        let mut d_cache = self.draft_lm().new_cache();
        match self {
            DraftSystem::Text(draft) => {
                prefill_prompt_ws(draft, &sample.prompt, &mut d_cache, ws);
            }
            DraftSystem::Vlm(vlm) => {
                vlm.prefill_ws(&sample.image, &sample.prompt, &mut d_cache, ws);
            }
            DraftSystem::Aasd { draft, projector } => {
                seed_draft_prefix(
                    target,
                    Some(projector),
                    Ablation::projector(),
                    t_cache,
                    &mut d_cache,
                );
                prefill_prompt_ws(draft, &sample.prompt, &mut d_cache, ws);
            }
        }
        d_cache
    }
}

/// One evaluation cell: merged speculative stats plus both decode-leg
/// walltimes (prefill excluded on every arm).
#[derive(Debug, Clone, Default)]
pub struct EvalCell {
    pub stats: SpecStats,
    pub spec_decode_ns: u128,
    pub ar_decode_ns: u128,
}

impl EvalCell {
    /// CPU-walltime speedup ω of the speculative decode leg over the
    /// autoregressive one.
    pub fn cpu_speedup(&self) -> f64 {
        self.ar_decode_ns as f64 / self.spec_decode_ns.max(1) as f64
    }

    pub fn merge(&mut self, other: &EvalCell) {
        self.stats.merge(&other.stats);
        self.spec_decode_ns += other.spec_decode_ns;
        self.ar_decode_ns += other.ar_decode_ns;
    }
}

/// Evaluate one draft system on a batch of workload samples at a fixed
/// speculation depth: for each sample, run the timed autoregressive
/// reference and the timed speculative loop from identical prefills, assert
/// the streams token-identical (greedy speculative decoding is lossless by
/// construction — any divergence is a bug, not a quality tradeoff), and
/// merge the per-sample [`SpecStats`].
pub fn eval_system(
    target: &LlavaSim,
    system: &DraftSystem,
    samples: &[Sample],
    budget: usize,
    gamma: usize,
) -> EvalCell {
    let mut ws = Workspace::new();
    let mut cell = EvalCell::default();
    for sample in samples {
        // Autoregressive reference, decode leg timed.
        let mut t_cache = target.lm.new_cache();
        let pending = target.prefill_ws(&sample.image, &sample.prompt, &mut t_cache, &mut ws);
        let t0 = Instant::now();
        let ar =
            autoregressive_greedy_seeded_ws(&target.lm, &mut t_cache, pending, budget, &mut ws);
        cell.ar_decode_ns += t0.elapsed().as_nanos();

        // Speculative run from an identical prefill.
        let mut t_cache = target.lm.new_cache();
        let pending = target.prefill_ws(&sample.image, &sample.prompt, &mut t_cache, &mut ws);
        let mut d_cache = system.seed_cache(target, &t_cache, sample, &mut ws);
        let t0 = Instant::now();
        let (spec, stats) = speculative_greedy_seeded_ws(
            &target.lm,
            system.draft_lm(),
            &mut t_cache,
            &mut d_cache,
            pending,
            budget,
            gamma,
            &mut ws,
        );
        cell.spec_decode_ns += t0.elapsed().as_nanos();
        assert_eq!(
            spec, ar,
            "speculative stream diverged from autoregressive reference"
        );
        cell.stats.merge(&stats);
    }
    cell
}

#[cfg(test)]
mod tests {
    use super::*;
    use aasd_data::WorkloadKind;

    fn workload() -> Workload {
        Workload::new(WorkloadKind::WildSim, 0xBA5E, 8, 12)
    }

    fn target() -> LlavaSim {
        LlavaSim::new(LlavaSimConfig::tiny(aasd_data::VOCAB, 64), 0xB0)
    }

    fn mean(xs: &[f32]) -> f32 {
        xs.iter().sum::<f32>() / xs.len() as f32
    }

    #[test]
    fn finetune_text_lowers_loss_on_grammar() {
        let wl = workload();
        let mut draft = Decoder::new(tiny_lm_config(aasd_data::VOCAB, 64), 0xB1);
        let losses = finetune_text(&mut draft, &wl, &ZooTrainConfig::smoke(40, 0xB2));
        assert!(
            mean(&losses[32..]) < mean(&losses[..8]) * 0.8,
            "FT-LLaMA loss flat: {} -> {}",
            mean(&losses[..8]),
            mean(&losses[32..])
        );
    }

    #[test]
    fn finetune_vlm_lowers_loss_on_grammar() {
        let wl = workload();
        let mut vlm = LlavaSim::new(tiny_vlm_config(aasd_data::VOCAB, 64, 8, 12), 0xB3);
        let losses = finetune_vlm(&mut vlm, &wl, &ZooTrainConfig::smoke(30, 0xB4));
        assert!(
            mean(&losses[24..]) < mean(&losses[..6]),
            "FT-LLaVA loss flat"
        );
    }

    #[test]
    fn distillation_recipes_run_and_stay_finite() {
        let wl = workload();
        let tgt = target();
        let cfg = ZooTrainConfig::smoke(6, 0xB5);
        let mut text = Decoder::new(tiny_lm_config(aasd_data::VOCAB, 64), 0xB6);
        let l1 = distill_text_from_mm(&mut text, &tgt, &wl, &cfg);
        let mut vlm = LlavaSim::new(tiny_vlm_config(aasd_data::VOCAB, 64, 8, 12), 0xB7);
        let l2 = distill_vlm_from_mm(&mut vlm, &tgt, &wl, &cfg);
        assert!(l1.iter().chain(&l2).all(|l| l.is_finite() && *l >= -1e-5));
    }

    /// Every draft system must decode losslessly (spec ≡ AR) even when the
    /// drafts are untrained — losslessness never depends on alignment.
    #[test]
    fn eval_system_is_lossless_for_every_archetype() {
        let wl = workload();
        let tgt = target();
        let samples = wl.take(Split::Heldout, 2);
        let text = DraftSystem::Text(Decoder::new(tiny_lm_config(aasd_data::VOCAB, 64), 0xB8));
        let vlm = DraftSystem::Vlm(LlavaSim::new(
            tiny_vlm_config(aasd_data::VOCAB, 64, 8, 12),
            0xB9,
        ));
        let (draft, projector) = train_aasd_draft(
            &tgt,
            &wl,
            &ZooTrainConfig::smoke(2, 0xBA),
            TdAlignConfig {
                window: 2,
                weight: 0.3,
            },
        );
        let aasd = DraftSystem::Aasd { draft, projector };
        for system in [&text, &vlm, &aasd] {
            let cell = eval_system(&tgt, system, &samples, 12, 3);
            assert_eq!(cell.stats.generated, 2 * 12);
            assert!(cell.stats.drafted > 0);
            assert!(cell.spec_decode_ns > 0 && cell.ar_decode_ns > 0);
        }
    }
}
