//! Perf-trajectory snapshot harness: runs the kernel, decode, speculative,
//! training, multimodal, and serving benches and writes a machine-readable
//! JSON summary (default `BENCH_PR8.json`, override with the first CLI
//! arg). Future perf PRs regress against this file; earlier-PR sections are
//! kept so trajectories stay comparable.
//!
//! New in PR8:
//! * `pipeline` races the free-running async draft/target pipeline
//!   (per-session draft thread + SPSC ring, verify leg as sole commit
//!   authority) against the synchronous round-robin scheduler on the same
//!   speculative workload at 4 and 16 clients, workers=1 — and asserts
//!   every stream (including a 2-/4-worker async sweep) byte-identical to
//!   the fused AR chain;
//! * under `--smoke`, a second regression gate compares fresh async
//!   pipeline throughput per client level against the committed
//!   `pipeline` baseline (bar at 70%: wall-clock throughput is noisier
//!   than the decode-step floor).
//!
//! New in PR7:
//! * `paged_pool` measures the block-paged KV pool: the concurrent-session
//!   capacity multiplier at the PR5 arena size, the lease/release cycle
//!   cost, and the decode-step overhead of a leased (paged) cache vs a
//!   contiguous one — asserted bit-identical via the chunk-invariant
//!   attention kernels;
//! * `vision_cache` races the full vision prefill leg (tower + connector +
//!   embeds pass) against a shared-prefix cache hit (a copy-on-write block
//!   lease), the serving-layer win for repeated images;
//! * `adaptive_gamma` runs a mixed-α burst (half aligned draft, half
//!   untrained) under every fixed γ and under the per-session adaptive
//!   controller, and asserts the adaptive pass-count efficiency is at
//!   least the best fixed γ's;
//! * under `--smoke`, the decode-step regression check now auto-discovers
//!   the latest committed `BENCH_PR*.json` as its baseline and FAILS the
//!   run (non-zero exit → hard `ci.sh` failure) on any >25% regression,
//!   instead of printing a warning against a hard-coded `BENCH_PR5.json`.
//!   The gate compares the fresh *minimum* sample against the committed
//!   median: background load only inflates samples, so the floor is the
//!   load-robust signal, and a real code regression raises the floor too
//!   (the bar sits above the shared box's ~±15% run-to-run drift).
//!
//! New in PR6:
//! * `kernels` races the runtime-dispatched kernel tiers against each other
//!   with everything else held fixed: f32 scalar vs SSE2 vs AVX2 plus int8
//!   on the host's best tier, over a bare vecmat, the fused decode step at
//!   ctx ∈ {16, 64, 256, 512}, and the aligned γ=5 speculative e2e race.
//!   The ctx-512 rows carry `speedup_vs_pr5_scalar` against the frozen PR5
//!   fused median (the pre-SIMD kernels);
//! * under `--smoke`, the freshly measured fused decode-step medians are
//!   checked against `BENCH_PR5.json` and a WARNING is printed for any ctx
//!   more than 10% slower (a cheap CI tripwire, not an assert — smoke
//!   numbers are noisy);
//! * `decode_profile` op shares are now fractions of the top-level pipeline
//!   total (the int8 path's nested quantize/q8_vecmat spans would otherwise
//!   double-count).
//!
//! From PR5:
//! * `serving` pushes the aligned e2e draft through the `aasd-serve`
//!   continuous-batching engine: spec vs autoregressive serving at 1/4/16
//!   concurrent sessions, measuring throughput (tokens/s) and p50/p95 TTFT
//!   at the request handle, with every served completion asserted
//!   token-identical to the single-request fused loop.
//!
//! From PR4:
//! * `multimodal` races hybrid-cache speculative decoding on a LlavaSim
//!   target: the `sim_7b`/`sim_13b` prefill cost asymmetry is asserted,
//!   then three ablation configurations (learned KV projector / raw vision
//!   KV / dropped vision KV) are distilled with identical budgets and
//!   seeds, and α/τ/walltime are *measured* at γ ∈ {3, 5} — the
//!   Table-2-shaped ordering (projector > raw > dropped) is recorded in
//!   `ordering_ok`, not asserted, so a regression is visible, not hidden.
//!
//! From PR3:
//! * `decode_step` measures the fused zero-allocation `forward_infer_ws`
//!   path next to the allocating reference path it replaced;
//! * `decode_profile` breaks a ctx-512 decode step into per-op time via the
//!   workspace profiler;
//! * `end_to_end` distills the draft first (the paper's alignment step) and
//!   reports unaligned vs aligned speculative rows across a γ sweep on the
//!   pending-token-fold loop — the aligned rows are where speculative
//!   decoding actually beats autoregressive on this single-core box.
//!
//! Usage:
//!   cargo run --release -p aasd-bench --bin perf_snapshot [out.json] [--smoke]
//!
//! `--smoke` shrinks sample budgets and the distillation run so CI can
//! exercise every section in seconds (numbers are then indicative only).

use aasd_bench::{bench_with_budget, json, report, BenchResult};
use aasd_mm::{
    distill_hybrid, draft_for, mm_autoregressive_ws, mm_speculative_tree_ws, mm_speculative_ws,
    seed_draft_prefix, Ablation, HybridDistillConfig, Image, KvProjector, LlavaSim, LlavaSimConfig,
};
use aasd_nn::{Decoder, DecoderConfig, KernelPolicy, KvCache, KvPool};
use aasd_serve::{DecodeMode, Engine, EngineConfig, EngineModel, Request, Status};
use aasd_specdec::{
    autoregressive_greedy, autoregressive_greedy_with_budget_ws, speculative_greedy_with_budget_ws,
    verify_greedy, verify_greedy_sequential, AcceptanceCalibrator, AdaptiveGamma, SpecSession,
    SpecStats, TreeConfig, TreeSession,
};
use aasd_tensor::{
    argmax, backend, best_supported, hardware_threads, matmul_blocked_into, matmul_naive_into,
    matmul_parallel_into, quantize_row_i8, set_backend, vecmat_into, vecmat_q8_into, Backend, Op,
    QuantMatrix, Rng, Workspace,
};
use aasd_train::{
    distill, fit_acceptance_calibrator, teacher_probs, train_step, Adam, DistillConfig, Example,
    LossSpec, Schedule,
};
use std::sync::Arc;
use std::time::Instant;

/// PR5's fused ctx-512 decode-step median (ms), measured before the SIMD /
/// int8 kernel layer existed — i.e. on what is now the scalar tier. The
/// `kernels` section's acceptance bar (≥2× on the best path) races against
/// this frozen constant so the comparison survives re-benching.
const PR5_FUSED_CTX512_MS: f64 = 0.968288;

/// Highest-numbered committed `BENCH_PR<n>.json` in the working directory
/// **that contains `marker`**, skipping the snapshot currently being
/// written — so the regression gate always races against the latest landed
/// baseline and never has to be re-pointed by hand when a new PR freezes a
/// new snapshot. The PR number is compared **numerically** (BENCH_PR10
/// beats BENCH_PR9; a lexicographic scan would pick PR9), which the unit
/// test below pins with a two-digit fixture. The marker filter exists
/// because not every committed snapshot is a perf snapshot — PR 10's
/// `BENCH_PR10.json` is the table1 acceptance grid, with no `decode_step`
/// or `pipeline` section; without the filter it would become the baseline
/// and silently disable both regression gates.
fn latest_committed_snapshot(out_path: &str, marker: &str) -> Option<String> {
    latest_committed_snapshot_in(".", out_path, marker)
}

/// [`latest_committed_snapshot`] over an explicit directory (testable).
fn latest_committed_snapshot_in(dir: &str, out_path: &str, marker: &str) -> Option<String> {
    let mut candidates: Vec<(u32, String)> = Vec::new();
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        let Some(num) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse::<u32>().ok())
        else {
            continue;
        };
        if name == out_path {
            continue;
        }
        candidates.push((num, name));
    }
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    candidates.into_iter().map(|(_, name)| name).find(|name| {
        std::fs::read_to_string(std::path::Path::new(dir).join(name))
            .is_ok_and(|text| text.contains(marker))
    })
}

/// `--smoke` gate: scan the latest committed `BENCH_PR*.json` for the fused
/// decode-step medians and return a failure line for every ctx whose fresh
/// **minimum** sample breaches [`REGRESSION_SLACK`] over the committed
/// median. The gate compares the fresh floor, not the fresh median, on
/// purpose: background load on the shared box can only inflate samples, so
/// the min of even a short smoke run is a load-robust estimate of the
/// code's true cost, while a genuine code regression raises the floor
/// itself and still trips the bar. The caller prints the failures and exits
/// non-zero after the snapshot is written, which `ci.sh` (`set -e`)
/// escalates into a hard CI failure — a decode-path regression can no
/// longer land behind a warning nobody reads. Minimal text scan, no JSON
/// parser: the snapshot format is the one this binary writes.
fn decode_step_regressions(fresh: &[(usize, f64, f64)], out_path: &str) -> Vec<String> {
    /// Allowed slowdown of the fresh floor over the committed median before
    /// the gate fails. The shared 1-core box's *own* speed (frequency /
    /// cache state) drifts ~±10–15% between runs even with the min-sample
    /// trick, so a tight bar would flake on unchanged code; 25% sits safely
    /// above machine drift and far below any regression worth catching
    /// (kernel-level wins/losses on this path run 1.2×–2.3×).
    const REGRESSION_SLACK: f64 = 1.25;
    let mut failures = Vec::new();
    let Some(baseline_path) = latest_committed_snapshot(out_path, "\"decode_step\"") else {
        println!("(no committed BENCH_PR*.json found; skipping decode-step regression check)");
        return failures;
    };
    let Ok(text) = std::fs::read_to_string(&baseline_path) else {
        return failures;
    };
    let Some(start) = text.find("\"decode_step\"") else {
        return failures;
    };
    let section = &text[start
        ..text[start..]
            .find("\"decode_profile\"")
            .map_or(text.len(), |e| start + e)];
    for &(ctx, fresh_median_ms, fresh_min_ms) in fresh {
        let Some(at) = section.find(&format!("\"ctx\": {ctx},")) else {
            continue;
        };
        let tail = &section[at..];
        let Some(m) = tail.find("\"median_ms\": ") else {
            continue;
        };
        let rest = &tail[m + "\"median_ms\": ".len()..];
        let end = rest
            .find(|c: char| c != '.' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        let Ok(baseline_ms) = rest[..end].parse::<f64>() else {
            continue;
        };
        if fresh_min_ms > baseline_ms * REGRESSION_SLACK {
            failures.push(format!(
                "decode_step ctx {ctx} fused min {fresh_min_ms:.4} ms \
                 (median {fresh_median_ms:.4} ms) is {:.1}% slower than the \
                 {baseline_path} median ({baseline_ms:.4} ms)",
                (fresh_min_ms / baseline_ms - 1.0) * 100.0
            ));
        }
    }
    failures
}

/// `--smoke` gate for the async pipeline: compare fresh async serving
/// throughput per client level against the `pipeline` section of the
/// latest committed snapshot. Throughput is a wall-clock measure (noisier
/// than the decode-step floor the other gate uses), so the bar is
/// generous: fail only below 70% of the committed value. Machine drift on
/// the shared box runs ±15%; a real pipeline regression — lost
/// draft/verify overlap, ring stalls, rollback storms — costs far more
/// than 30%.
fn pipeline_regressions(fresh: &[(usize, f64)], out_path: &str) -> Vec<String> {
    const MIN_FRACTION: f64 = 0.70;
    let mut failures = Vec::new();
    let Some(baseline_path) = latest_committed_snapshot(out_path, "\"pipeline\"") else {
        return failures;
    };
    let Ok(text) = std::fs::read_to_string(&baseline_path) else {
        return failures;
    };
    let Some(start) = text.find("\"pipeline\"") else {
        println!("(no pipeline section in {baseline_path}; skipping pipeline regression check)");
        return failures;
    };
    let section = &text[start..];
    for &(clients, fresh_tps) in fresh {
        let Some(at) = section.find(&format!("\"clients\": {clients},")) else {
            continue;
        };
        let tail = &section[at..];
        let Some(a) = tail.find("\"async\"") else {
            continue;
        };
        let tail = &tail[a..];
        let Some(m) = tail.find("\"tokens_per_s\": ") else {
            continue;
        };
        let rest = &tail[m + "\"tokens_per_s\": ".len()..];
        let end = rest
            .find(|c: char| c != '.' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        let Ok(baseline_tps) = rest[..end].parse::<f64>() else {
            continue;
        };
        if fresh_tps < baseline_tps * MIN_FRACTION {
            failures.push(format!(
                "pipeline async throughput at {clients} clients ({fresh_tps:.1} tok/s) is \
                 {:.1}% below the {baseline_path} baseline ({baseline_tps:.1} tok/s)",
                (1.0 - fresh_tps / baseline_tps) * 100.0
            ));
        }
    }
    failures
}

/// Nearest-rank percentile on a sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

fn result_json(r: &BenchResult) -> String {
    json::object(&[
        json::field("median_ms", &json::num(r.median_ns / 1e6)),
        json::field("min_ms", &json::num(r.min_ns / 1e6)),
        json::field("samples", &r.samples.to_string()),
    ])
}

struct Harness {
    smoke: bool,
    budget_ns: u64,
    max_samples: usize,
}

impl Harness {
    fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> BenchResult {
        bench_with_budget(name, self.budget_ns, self.max_samples, &mut f)
    }
}

/// Multimodal session seeding shared by the tree-speculation section's
/// hand-driven sessions: target vision+text prefill, ablation-selected
/// draft vision prefix, draft text prefill. Exactly what
/// [`mm_speculative_ws`] / [`mm_speculative_tree_ws`] do before entering
/// their block loops, exposed so the section can drive [`SpecSession`] /
/// [`TreeSession`] directly (adaptive-γ baseline, example collection).
#[allow(clippy::too_many_arguments)]
fn mm_seed_caches(
    model: &LlavaSim,
    draft: &Decoder,
    projector: Option<&KvProjector>,
    ablation: Ablation,
    image: &Image,
    prompt: &[u32],
    ws: &mut Workspace,
) -> (KvCache, KvCache, u32) {
    let mut t_cache = model.lm.new_cache();
    let pending = model.prefill_ws(image, prompt, &mut t_cache, ws);
    let mut d_cache = draft.new_cache();
    seed_draft_prefix(model, projector, ablation, &t_cache, &mut d_cache);
    if !ablation.drop_text_kv {
        let mut d_logits = ws.take(prompt.len() * draft.cfg.vocab);
        draft.forward_infer_ws(prompt, &mut d_cache, ws, &mut d_logits);
        ws.give(d_logits);
    }
    (t_cache, d_cache, pending)
}

fn main() {
    let mut out_path = "BENCH_PR9.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let h = Harness {
        smoke,
        budget_ns: if smoke { 120_000_000 } else { 600_000_000 },
        max_samples: if smoke { 30 } else { 200 },
    };
    let mut sections: Vec<String> = Vec::new();

    sections.push(json::field(
        "meta",
        &json::object(&[
            json::field("snapshot", &json::string("PR9")),
            json::field("smoke", if smoke { "true" } else { "false" }),
            json::field("hardware_threads", &hardware_threads().to_string()),
            json::field("kernel_backend", &json::string(backend().name())),
            json::field(
                "kernel_best_supported",
                &json::string(best_supported().name()),
            ),
            json::field(
                "note",
                &json::string(
                    "std-only harness; medians over time-budgeted samples; \
                     decode rows use the fused zero-allocation workspace path \
                     on the active kernel backend (AASD_KERNEL overrides)",
                ),
            ),
        ]),
    ));

    // ---- matmul: naive vs blocked vs parallel --------------------------
    println!("== matmul kernels ==");
    let mut matmul_items = Vec::new();
    for n in [64usize, 128, 256] {
        let mut rng = Rng::new(n as u64);
        let a: Vec<f32> = (0..n * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut c = vec![0.0f32; n * n];
        let flops = 2.0 * (n as f64).powi(3);
        let naive = h.bench(&format!("matmul/naive/{n}"), || {
            matmul_naive_into(&mut c, &a, &b, n, n, n)
        });
        let blocked = h.bench(&format!("matmul/blocked/{n}"), || {
            matmul_blocked_into(&mut c, &a, &b, n, n, n)
        });
        let parallel = h.bench(&format!("matmul/parallel/{n}"), || {
            matmul_parallel_into(&mut c, &a, &b, n, n, n)
        });
        for r in [&naive, &blocked, &parallel] {
            report(r);
        }
        matmul_items.push(json::object(&[
            json::field("n", &n.to_string()),
            json::field("naive", &result_json(&naive)),
            json::field("blocked", &result_json(&blocked)),
            json::field("parallel", &result_json(&parallel)),
            json::field("gflops_blocked", &json::num(flops / blocked.median_ns)),
            json::field(
                "speedup_blocked_vs_naive",
                &json::num(naive.median_ns / blocked.median_ns),
            ),
            json::field(
                "speedup_parallel_vs_naive",
                &json::num(naive.median_ns / parallel.median_ns),
            ),
        ]));
    }
    sections.push(json::field("matmul", &json::array(&matmul_items)));

    // ---- decode step vs cache length: fused vs allocating ---------------
    println!("\n== decode step vs cache length (fused workspace path vs allocating) ==");
    let vocab = 512;
    let target = Decoder::new(DecoderConfig::bench_target(vocab, 1024), 0xD);
    let mut rng = Rng::new(1);
    let mut ws = Workspace::new();
    let mut step_logits = vec![0.0f32; vocab];
    let mut decode_items = Vec::new();
    let mut fused_steps: Vec<(usize, f64, f64)> = Vec::new();
    for ctx in [16usize, 64, 256, 512] {
        let prompt: Vec<u32> = (0..ctx).map(|_| rng.below(vocab) as u32).collect();
        let mut cache = target.new_cache();
        target.forward_infer(&prompt, &mut cache);
        let fused = h.bench(&format!("decode_step/fused/ctx_{ctx}"), || {
            cache.truncate(ctx);
            target.forward_infer_ws(&[7], &mut cache, &mut ws, &mut step_logits);
        });
        let alloc = h.bench(&format!("decode_step/alloc/ctx_{ctx}"), || {
            cache.truncate(ctx);
            target.forward_infer(&[7], &mut cache)
        });
        report(&fused);
        report(&alloc);
        fused_steps.push((ctx, fused.median_ns / 1e6, fused.min_ns / 1e6));
        decode_items.push(json::object(&[
            json::field("ctx", &ctx.to_string()),
            json::field("step", &result_json(&fused)),
            json::field("step_alloc", &result_json(&alloc)),
            json::field(
                "speedup_fused_vs_alloc",
                &json::num(alloc.median_ns / fused.median_ns),
            ),
        ]));
    }
    sections.push(json::field("decode_step", &json::array(&decode_items)));
    let mut regressions = if smoke {
        decode_step_regressions(&fused_steps, &out_path)
    } else {
        Vec::new()
    };

    // ---- per-op profile of a ctx-512 decode step ------------------------
    println!("\n== decode step per-op profile (ctx 512) ==");
    let ctx = 512usize;
    let prompt: Vec<u32> = (0..ctx).map(|_| rng.below(vocab) as u32).collect();
    let mut cache = target.new_cache();
    target.forward_infer(&prompt, &mut cache);
    // Warm the pool before enabling the profiler so warm-up allocation
    // noise never lands in the measured spans.
    target.forward_infer_ws(&[7], &mut cache, &mut ws, &mut step_logits);
    cache.truncate(ctx);
    ws.prof.enable();
    let prof_steps = if h.smoke { 20u64 } else { 200 };
    for _ in 0..prof_steps {
        cache.truncate(ctx);
        target.forward_infer_ws(&[7], &mut cache, &mut ws, &mut step_logits);
    }
    ws.prof.disable();
    // Shares are fractions of the top-level pipeline total: the pipeline
    // ops partition the step, while the nested quantize/q8_vecmat spans
    // (int8 path only) overlap their parents and would inflate a grand sum.
    let pipeline = ws.prof.pipeline_total_ns().max(1) as f64;
    let mut prof_items = Vec::new();
    for op in Op::ALL {
        let ms_per_step = ws.prof.total_ns(op) as f64 / prof_steps as f64 / 1e6;
        let share = ws.prof.total_ns(op) as f64 / pipeline;
        println!(
            "{:<12} {:>8.4} ms/step  {:>5.1}%  ({} calls/step)",
            op.name(),
            ms_per_step,
            share * 100.0,
            ws.prof.calls(op) / prof_steps
        );
        prof_items.push(json::object(&[
            json::field("op", &json::string(op.name())),
            json::field("ms_per_step", &json::num(ms_per_step)),
            json::field("share", &json::num(share)),
            json::field(
                "calls_per_step",
                &(ws.prof.calls(op) / prof_steps).to_string(),
            ),
        ]));
    }
    sections.push(json::field(
        "decode_profile",
        &json::object(&[
            json::field("ctx", &ctx.to_string()),
            json::field("steps", &prof_steps.to_string()),
            json::field(
                "total_ms_per_step",
                &json::num(pipeline / prof_steps as f64 / 1e6),
            ),
            json::field("ops", &json::array(&prof_items)),
        ]),
    ));

    // ---- batched vs sequential verify ----------------------------------
    println!("\n== batched vs sequential verify ==");
    let ctx = 128usize;
    let prompt: Vec<u32> = (0..ctx).map(|_| rng.below(vocab) as u32).collect();
    let mut cache = target.new_cache();
    let frontier_t = target.forward_infer(&prompt, &mut cache);
    let frontier = frontier_t.row(frontier_t.rows - 1).to_vec();
    let mut verify_items = Vec::new();
    for gamma in [3usize, 5, 8] {
        // Self-consistent draft block (fully accepted) so both paths do the
        // complete γ-token scoring work — see benches/verify.rs.
        let draft = autoregressive_greedy(&target, &prompt, gamma);
        let batched = h.bench(&format!("verify/batched/gamma_{gamma}"), || {
            cache.truncate(ctx);
            verify_greedy(&target, &mut cache, &frontier, &draft)
        });
        let sequential = h.bench(&format!("verify/sequential/gamma_{gamma}"), || {
            cache.truncate(ctx);
            verify_greedy_sequential(&target, &mut cache, &frontier, &draft)
        });
        report(&batched);
        report(&sequential);
        let ratio = sequential.median_ns / batched.median_ns;
        println!("  batched speedup at γ={gamma}: {ratio:.2}x");
        verify_items.push(json::object(&[
            json::field("gamma", &gamma.to_string()),
            json::field("batched", &result_json(&batched)),
            json::field("sequential", &result_json(&sequential)),
            json::field("speedup_batched_vs_sequential", &json::num(ratio)),
        ]));
    }
    sections.push(json::field("verify", &json::array(&verify_items)));

    // ---- end-to-end: aligned vs unaligned speculative vs autoregressive -
    //
    // The paper's pipeline, measured honestly on a CPU clock: distill the
    // draft against the frozen target (the AASD alignment step), then race
    // the fused speculative loop against the fused autoregressive loop on
    // the same prompt. The unaligned draft rows are expected to LOSE badly
    // (α ≈ 0 and every verify pass is wasted); the aligned rows are where
    // speculative decoding earns its keep. Vocab is kept small so the
    // alignment is learnable at bench scale; the target is the same
    // `bench_target` architecture as the decode sections.
    println!("\n== end-to-end: aligned vs unaligned speculative (fused loops) ==");
    let e2e_vocab = 32usize;
    let e2e_seq = 256usize;
    let e2e_target = Decoder::new(DecoderConfig::bench_target(e2e_vocab, e2e_seq), 0xD);
    let untrained = Decoder::new(DecoderConfig::bench_draft(e2e_vocab, e2e_seq), 0xF);

    let steps = if h.smoke { 60 } else { 600 };
    let cfg = DistillConfig {
        steps,
        prompt_len: 6,
        gen_len: 56,
        schedule: Schedule::Cosine {
            base: 5e-3,
            floor: 5e-4,
            total: steps,
        },
        // The random-weight teacher is high-entropy; sharpening its
        // distribution trains the draft toward greedy agreement, which is
        // exactly what acceptance measures.
        temperature: 0.15,
        seed: 0x5EED,
    };
    let mut aligned = untrained.clone();
    let mut opt = Adam::new();
    let t0 = Instant::now();
    let losses = distill(&mut aligned, &e2e_target, &mut opt, &cfg);
    println!(
        "distilled {steps} steps in {:.1}s  (KL {:.3} -> {:.3})",
        t0.elapsed().as_secs_f64(),
        losses[0],
        losses.last().unwrap()
    );

    let mut e2e_rng = Rng::new(0x2);
    let e2e_prompt: Vec<u32> = (0..8).map(|_| e2e_rng.below(e2e_vocab) as u32).collect();
    let e2e_budget = if h.smoke { 60 } else { 200 };

    let ar = h.bench("end_to_end/autoregressive", || {
        autoregressive_greedy_with_budget_ws(&e2e_target, &e2e_prompt, e2e_budget, &mut ws)
    });
    report(&ar);
    let reference =
        autoregressive_greedy_with_budget_ws(&e2e_target, &e2e_prompt, e2e_budget, &mut ws);

    let gammas: &[usize] = if h.smoke { &[3] } else { &[1, 2, 3, 5, 8] };
    let mut e2e_rows = Vec::new();
    for (label, draft) in [("untrained", &untrained), ("aligned", &aligned)] {
        for &gamma in gammas {
            let (out, stats) = speculative_greedy_with_budget_ws(
                &e2e_target,
                draft,
                &e2e_prompt,
                e2e_budget,
                gamma,
                &mut ws,
            );
            assert_eq!(out, reference, "losslessness violated: {label} γ={gamma}");
            let spec = h.bench(&format!("end_to_end/spec/{label}/gamma_{gamma}"), || {
                speculative_greedy_with_budget_ws(
                    &e2e_target,
                    draft,
                    &e2e_prompt,
                    e2e_budget,
                    gamma,
                    &mut ws,
                )
            });
            let speedup = ar.median_ns / spec.median_ns;
            println!(
                "{label:<10} γ={gamma}:  α={:.3}  τ={:.3}  {:.1} ms vs AR {:.1} ms  -> {speedup:.2}x",
                stats.acceptance_rate(),
                stats.block_efficiency(),
                spec.median_ns / 1e6,
                ar.median_ns / 1e6,
            );
            e2e_rows.push(json::object(&[
                json::field("draft", &json::string(label)),
                json::field("gamma", &gamma.to_string()),
                json::field("speculative", &result_json(&spec)),
                json::field("acceptance_rate", &json::num(stats.acceptance_rate())),
                json::field("block_efficiency", &json::num(stats.block_efficiency())),
                json::field("speedup_vs_autoregressive", &json::num(speedup)),
                json::field("lossless", "true"),
            ]));
        }
    }
    sections.push(json::field(
        "end_to_end",
        &json::object(&[
            json::field("vocab", &e2e_vocab.to_string()),
            json::field("prompt_len", &e2e_prompt.len().to_string()),
            json::field("new_tokens", &e2e_budget.to_string()),
            json::field("distill_steps", &steps.to_string()),
            json::field("autoregressive", &result_json(&ar)),
            json::field("rows", &json::array(&e2e_rows)),
            json::field(
                "note",
                &json::string(
                    "fused pending-token-fold loop vs fused autoregressive loop, \
                     same target; aligned = draft distilled against the target \
                     (self-data KL, temperature 0.15) before the race",
                ),
            ),
        ]),
    ));

    // ---- adaptive gamma: mixed-alpha burst, per-session depth control ---
    //
    // One serving population rarely has one α: some requests draft well
    // (aligned draft), some draft hopelessly. A burst alternates between
    // the distilled draft (high α) and the untrained one (α ≈ 0); a fixed
    // γ must pick one depth for both halves, while the adaptive controller
    // retunes each session from its own acceptance history. Scoring uses
    // the clock-free pass-count efficiency
    //   tokens / (target_passes + c · draft_passes)
    // with c the parameter-count cost ratio, so the comparison is
    // deterministic across hosts; losslessness is asserted against the
    // fused AR loop for every request under every policy.
    println!("\n== adaptive gamma: mixed-alpha burst ==");
    let cost_ratio = untrained.n_params() as f64 / e2e_target.n_params() as f64;
    let burst_budget = if h.smoke { 48 } else { 128 };
    let burst_prompts: Vec<Vec<u32>> = (0..6)
        .map(|i| {
            let mut r = Rng::new(0xB0 + i as u64);
            (0..8).map(|_| r.below(e2e_vocab) as u32).collect()
        })
        .collect();
    let burst_refs: Vec<Vec<u32>> = burst_prompts
        .iter()
        .map(|p| autoregressive_greedy_with_budget_ws(&e2e_target, p, burst_budget, &mut ws))
        .collect();
    let run_burst = |gamma0: usize, adaptive: bool, ws: &mut Workspace| -> SpecStats {
        let mut merged = SpecStats::default();
        for (i, prompt) in burst_prompts.iter().enumerate() {
            let draft = if i % 2 == 0 { &aligned } else { &untrained };
            let mut t_cache = e2e_target.new_cache();
            let mut d_cache = draft.new_cache();
            let vocab = e2e_target.cfg.vocab;
            let mut logits = ws.take(prompt.len() * vocab);
            e2e_target.forward_infer_ws(prompt, &mut t_cache, ws, &mut logits);
            let pending = argmax(&logits[(prompt.len() - 1) * vocab..]) as u32;
            ws.give(logits);
            let mut d_logits = ws.take(prompt.len() * vocab);
            draft.forward_infer_ws(prompt, &mut d_cache, ws, &mut d_logits);
            ws.give(d_logits);
            let mut session = SpecSession::new(
                &e2e_target,
                draft,
                &t_cache,
                &d_cache,
                pending,
                burst_budget,
                gamma0,
            );
            if adaptive {
                session.enable_adaptive_gamma(AdaptiveGamma::new(cost_ratio));
            }
            loop {
                let report = session.step_block(&e2e_target, draft, &mut t_cache, &mut d_cache, ws);
                if report.done {
                    break;
                }
            }
            let (tokens, stats) = session.into_parts();
            assert_eq!(
                tokens, burst_refs[i],
                "losslessness violated (adaptive={adaptive}, gamma0={gamma0}, request {i})"
            );
            merged.merge(&stats);
        }
        merged
    };
    let efficiency =
        |s: &SpecStats| s.generated as f64 / (s.blocks as f64 + cost_ratio * s.drafted as f64);
    let mut adaptive_rows = Vec::new();
    let mut best_fixed = f64::NEG_INFINITY;
    for &g in &[1usize, 2, 3, 5, 8] {
        let stats = run_burst(g, false, &mut ws);
        let eff = efficiency(&stats);
        best_fixed = best_fixed.max(eff);
        println!(
            "fixed γ={g}:  α={:.3}  τ={:.3}  efficiency={eff:.3}",
            stats.acceptance_rate(),
            stats.block_efficiency()
        );
        adaptive_rows.push(json::object(&[
            json::field("policy", &json::string(&format!("fixed_{g}"))),
            json::field("acceptance_rate", &json::num(stats.acceptance_rate())),
            json::field("block_efficiency", &json::num(stats.block_efficiency())),
            json::field("efficiency", &json::num(eff)),
        ]));
    }
    let stats = run_burst(3, true, &mut ws);
    let adaptive_eff = efficiency(&stats);
    println!(
        "adaptive:   α={:.3}  τ={:.3}  efficiency={adaptive_eff:.3}  (best fixed {best_fixed:.3})",
        stats.acceptance_rate(),
        stats.block_efficiency()
    );
    adaptive_rows.push(json::object(&[
        json::field("policy", &json::string("adaptive")),
        json::field("acceptance_rate", &json::num(stats.acceptance_rate())),
        json::field("block_efficiency", &json::num(stats.block_efficiency())),
        json::field("efficiency", &json::num(adaptive_eff)),
    ]));
    assert!(
        adaptive_eff >= best_fixed * 0.98,
        "adaptive gamma efficiency {adaptive_eff:.3} fell behind best fixed {best_fixed:.3}"
    );
    sections.push(json::field(
        "adaptive_gamma",
        &json::object(&[
            json::field("requests", &burst_prompts.len().to_string()),
            json::field("new_tokens_each", &burst_budget.to_string()),
            json::field("cost_ratio", &json::num(cost_ratio)),
            json::field("best_fixed_efficiency", &json::num(best_fixed)),
            json::field("adaptive_efficiency", &json::num(adaptive_eff)),
            json::field(
                "adaptive_vs_best_fixed",
                &json::num(adaptive_eff / best_fixed),
            ),
            json::field("rows", &json::array(&adaptive_rows)),
            json::field(
                "note",
                &json::string(
                    "mixed-alpha burst: even requests draft with the distilled model, \
                     odd with the untrained one; efficiency = tokens / (target_passes \
                     + cost_ratio * draft_passes); every run asserted token-identical \
                     to the fused AR loop",
                ),
            ),
        ]),
    ));

    // ---- kernels: f32 scalar vs SSE2 vs AVX2 vs int8 --------------------
    //
    // The PR6 tentpole raced head-to-head with everything else held fixed:
    // every supported f32 dispatch tier plus the int8 quantized path on the
    // host's best tier, over (a) a bare 256x512 vecmat, (b) the fused
    // zero-allocation decode step across cache lengths, and (c) the aligned
    // γ=5 speculative e2e race. The f32 tiers are bitwise-identical by
    // construction (identical per-element accumulation order), so only time
    // differs; the int8 rows run quantized clones of the same weights and
    // assert spec ≡ AR within their own tier. No cross-tier token asserts:
    // softmax reductions are lane-parallel, so tiers are only guaranteed
    // self-consistent (tests/int8_equivalence.rs pins each route).
    println!("\n== kernels: f32 scalar vs SIMD vs int8 ==");
    let default_bk = backend();
    let best = best_supported();
    let f32_tiers: Vec<Backend> = Backend::ALL
        .into_iter()
        .filter(|b| b.is_supported())
        .collect();

    // (a) bare vecmat, k=256 -> n=512 (the decode hot loop's shape class).
    let (kk, kn) = (256usize, 512usize);
    let mut k_rng = Rng::new(0xF00D);
    let kx: Vec<f32> = (0..kk).map(|_| k_rng.uniform(-1.0, 1.0)).collect();
    let kw: Vec<f32> = (0..kk * kn).map(|_| k_rng.uniform(-1.0, 1.0)).collect();
    let mut ky = vec![0.0f32; kn];
    let mut kernel_vecmat = Vec::new();
    for &bk in &f32_tiers {
        set_backend(bk).expect("supported tier");
        let r = h.bench(&format!("kernels/vecmat/f32/{}", bk.name()), || {
            vecmat_into(&mut ky, &kx, &kw, kk, kn)
        });
        report(&r);
        kernel_vecmat.push(json::object(&[
            json::field("config", &json::string(&format!("f32/{}", bk.name()))),
            json::field("vecmat", &result_json(&r)),
        ]));
    }
    set_backend(best).expect("best tier");
    let kqm = QuantMatrix::from_kxn(&kw, kk, kn);
    let mut kq = vec![0i8; kk];
    let r = h.bench(&format!("kernels/vecmat/int8/{}", best.name()), || {
        // Mirrors QuantLinear: activation quantization is part of the cost.
        let sx = quantize_row_i8(&kx, &mut kq);
        vecmat_q8_into(&mut ky, &kq, sx, &kqm)
    });
    report(&r);
    kernel_vecmat.push(json::object(&[
        json::field("config", &json::string(&format!("int8/{}", best.name()))),
        json::field("vecmat", &result_json(&r)),
    ]));

    // (b) fused decode step across cache lengths, per tier. The int8 config
    // decodes on a quantized clone of the same bench target; the ctx-512
    // rows carry the acceptance-bar speedup against the frozen PR5 median.
    let mut kernel_cfgs: Vec<(String, Backend, KernelPolicy)> = f32_tiers
        .iter()
        .map(|b| (format!("f32/{}", b.name()), *b, KernelPolicy::F32))
        .collect();
    kernel_cfgs.push((format!("int8/{}", best.name()), best, KernelPolicy::Int8));
    let q_target = {
        let mut m = target.clone();
        m.set_kernel_policy(KernelPolicy::Int8);
        m
    };
    let mut kernel_decode = Vec::new();
    let mut best_ctx512_speedup = 0.0f64;
    for (label, bk, policy) in &kernel_cfgs {
        set_backend(*bk).expect("supported tier");
        let model = if *policy == KernelPolicy::Int8 {
            &q_target
        } else {
            &target
        };
        let mut ctx_items = Vec::new();
        for ctx in [16usize, 64, 256, 512] {
            let prompt: Vec<u32> = (0..ctx).map(|_| rng.below(vocab) as u32).collect();
            let mut cache = model.new_cache();
            model.forward_infer(&prompt, &mut cache);
            let r = h.bench(&format!("kernels/decode_step/{label}/ctx_{ctx}"), || {
                cache.truncate(ctx);
                model.forward_infer_ws(&[7], &mut cache, &mut ws, &mut step_logits);
            });
            report(&r);
            let mut fields = vec![
                json::field("ctx", &ctx.to_string()),
                json::field("step", &result_json(&r)),
            ];
            if ctx == 512 {
                let speedup = PR5_FUSED_CTX512_MS / (r.median_ns / 1e6);
                best_ctx512_speedup = best_ctx512_speedup.max(speedup);
                println!("  {label}: ctx-512 speedup vs PR5 scalar = {speedup:.2}x");
                fields.push(json::field("speedup_vs_pr5_scalar", &json::num(speedup)));
            }
            ctx_items.push(json::object(&fields));
        }
        kernel_decode.push(json::object(&[
            json::field("config", &json::string(label)),
            json::field("rows", &json::array(&ctx_items)),
        ]));
    }

    // (c) aligned γ=5 speculative race per tier. Int8 quantizes both the
    // e2e target and the aligned draft; spec vs AR run on the SAME
    // tier+policy, so losslessness is assertable in-tier.
    let q_e2e_target = {
        let mut m = e2e_target.clone();
        m.set_kernel_policy(KernelPolicy::Int8);
        m
    };
    let q_aligned = {
        let mut m = aligned.clone();
        m.set_kernel_policy(KernelPolicy::Int8);
        m
    };
    let mut kernel_e2e = Vec::new();
    for (label, bk, policy) in &kernel_cfgs {
        set_backend(*bk).expect("supported tier");
        let (t_ref, d_ref) = if *policy == KernelPolicy::Int8 {
            (&q_e2e_target, &q_aligned)
        } else {
            (&e2e_target, &aligned)
        };
        let tier_ref =
            autoregressive_greedy_with_budget_ws(t_ref, &e2e_prompt, e2e_budget, &mut ws);
        let (out, _) =
            speculative_greedy_with_budget_ws(t_ref, d_ref, &e2e_prompt, e2e_budget, 5, &mut ws);
        assert_eq!(out, tier_ref, "in-tier losslessness violated: {label}");
        let kar = h.bench(&format!("kernels/e2e/ar/{label}"), || {
            autoregressive_greedy_with_budget_ws(t_ref, &e2e_prompt, e2e_budget, &mut ws)
        });
        let kspec = h.bench(&format!("kernels/e2e/spec_g5/{label}"), || {
            speculative_greedy_with_budget_ws(t_ref, d_ref, &e2e_prompt, e2e_budget, 5, &mut ws)
        });
        report(&kar);
        report(&kspec);
        let speedup = kar.median_ns / kspec.median_ns;
        println!("  {label}: spec γ=5 vs AR = {speedup:.2}x");
        kernel_e2e.push(json::object(&[
            json::field("config", &json::string(label)),
            json::field("autoregressive", &result_json(&kar)),
            json::field("speculative_g5", &result_json(&kspec)),
            json::field("speedup_spec_vs_ar", &json::num(speedup)),
            json::field("lossless_in_tier", "true"),
        ]));
    }
    set_backend(default_bk).expect("restore default backend");
    println!("best ctx-512 decode-step speedup vs PR5 scalar: {best_ctx512_speedup:.2}x");
    sections.push(json::field(
        "kernels",
        &json::object(&[
            json::field("host_best", &json::string(best.name())),
            json::field("vecmat", &json::array(&kernel_vecmat)),
            json::field("decode_step", &json::array(&kernel_decode)),
            json::field("end_to_end", &json::array(&kernel_e2e)),
            json::field("pr5_fused_ctx512_ms", &json::num(PR5_FUSED_CTX512_MS)),
            json::field(
                "best_ctx512_speedup_vs_pr5_scalar",
                &json::num(best_ctx512_speedup),
            ),
            json::field(
                "note",
                &json::string(
                    "f32 tiers are bitwise-identical by construction; int8 rows run \
                     quantized clones of the same weights and assert spec==AR within \
                     their own tier; PR5 baseline is the frozen pre-SIMD (scalar) \
                     fused ctx-512 median",
                ),
            ),
        ]),
    ));

    // ---- serving: continuous batching, speculative vs autoregressive ----
    //
    // The production question for AASD: does the aligned draft's speedup
    // survive a server? The aligned e2e draft is pushed through the
    // `aasd-serve` continuous-batching engine at 1/4/16 concurrent
    // sessions, spec vs plain autoregressive serving, same submission
    // burst. Every request replays the e2e section's prompt: the draft's
    // acceptance rate varies wildly across random prompts (0.06–1.0 at
    // this distillation budget — that generalization spread is the e2e /
    // alignment story, measured above), and the serving section isolates
    // the *scheduling* question instead: given the aligned workload, does
    // the engine preserve the speculative win? Throughput counts every
    // committed token over the drain wall clock; TTFT is measured at the
    // request handle (queue wait + prefill included), p50/p95 by nearest
    // rank over the exact per-request values. Every served stream is
    // asserted token-identical to the fused single-request loop — the
    // scheduler is not allowed to buy throughput with drift. Workers stay
    // at 1: on this single-core box the win must come from fewer target
    // passes, not thread parallelism.
    println!("\n== serving: continuous batching, spec vs autoregressive ==");
    let serve_target = Arc::new(e2e_target.clone());
    let serve_draft = Arc::new(aligned.clone());
    let serve_gamma = 5usize;
    let serve_budget = e2e_budget;
    let reqs_per_client = 2usize;
    let concurrency: &[usize] = if h.smoke { &[1, 4] } else { &[1, 4, 16] };
    let mut serving_items = Vec::new();
    for &clients in concurrency {
        let n_req = clients * reqs_per_client;
        let prompts: Vec<Vec<u32>> = vec![e2e_prompt.clone(); n_req];
        // Ground truth once: the fused AR loop. Spec serving is lossless,
        // so both modes must reproduce exactly this.
        let reference =
            autoregressive_greedy_with_budget_ws(&e2e_target, &e2e_prompt, serve_budget, &mut ws);
        let refs: Vec<&Vec<u32>> = prompts.iter().map(|_| &reference).collect();
        let mut mode_fields = vec![
            json::field("clients", &clients.to_string()),
            json::field("requests", &n_req.to_string()),
        ];
        let mut throughput = [0.0f64; 2];
        for (m_idx, (mode_name, mode)) in [
            (
                "speculative",
                DecodeMode::Speculative { gamma: serve_gamma },
            ),
            ("autoregressive", DecodeMode::Autoregressive),
        ]
        .into_iter()
        .enumerate()
        {
            let engine = Engine::new(
                EngineModel::Text {
                    target: Arc::clone(&serve_target),
                    draft: Arc::clone(&serve_draft),
                },
                EngineConfig {
                    slots: clients,
                    workers: 1,
                    max_queue: n_req,
                    ..EngineConfig::default()
                },
            );
            let t0 = Instant::now();
            let handles: Vec<_> = prompts
                .iter()
                .map(|p| {
                    engine
                        .submit(Request {
                            prompt: p.clone(),
                            max_new: serve_budget,
                            mode,
                            image_seed: None,
                        })
                        .expect("admitted")
                })
                .collect();
            engine.run_until_idle();
            let wall_s = t0.elapsed().as_secs_f64();
            let mut tokens_total = 0usize;
            let mut ttfts: Vec<f64> = Vec::new();
            for (i, handle) in handles.iter().enumerate() {
                let (status, tokens) = handle.snapshot();
                assert_eq!(status, Status::Done);
                assert_eq!(
                    &tokens, refs[i],
                    "served {mode_name} stream != fused loop (clients={clients}, req {i})"
                );
                tokens_total += tokens.len();
                ttfts.push(handle.ttft_ms().expect("first token recorded"));
            }
            ttfts.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let tokens_per_s = tokens_total as f64 / wall_s;
            throughput[m_idx] = tokens_per_s;
            let (p50, p95) = (percentile(&ttfts, 0.50), percentile(&ttfts, 0.95));
            println!(
                "{mode_name:<15} clients={clients:<2}  {tokens_per_s:>8.1} tok/s  \
                 TTFT p50 {p50:>7.1} ms  p95 {p95:>7.1} ms"
            );
            let mut fields = vec![
                json::field("tokens_per_s", &json::num(tokens_per_s)),
                json::field("wall_s", &json::num(wall_s)),
                json::field("ttft_p50_ms", &json::num(p50)),
                json::field("ttft_p95_ms", &json::num(p95)),
                json::field("lossless", "true"),
            ];
            if m_idx == 0 {
                fields.push(json::field("alpha", &json::num(engine.metrics().alpha())));
                fields.push(json::field("tau", &json::num(engine.metrics().tau())));
            }
            mode_fields.push(json::field(mode_name, &json::object(&fields)));
        }
        let speedup = throughput[0] / throughput[1];
        println!("  serving speedup spec vs AR at {clients} clients: {speedup:.2}x");
        mode_fields.push(json::field("speedup_spec_vs_ar", &json::num(speedup)));
        mode_fields.push(json::field(
            "spec_beats_ar",
            if throughput[0] >= throughput[1] {
                "true"
            } else {
                "false"
            },
        ));
        serving_items.push(json::object(&mode_fields));
    }
    sections.push(json::field(
        "serving",
        &json::object(&[
            json::field("gamma", &serve_gamma.to_string()),
            json::field("new_tokens_per_request", &serve_budget.to_string()),
            json::field("requests_per_client", &reqs_per_client.to_string()),
            json::field("levels", &json::array(&serving_items)),
            json::field(
                "note",
                &json::string(
                    "aligned e2e draft served by the aasd-serve continuous-batching \
                     engine, one speculative block per session per tick, workers=1; \
                     requests replay the e2e prompt so the comparison isolates \
                     scheduling rather than alignment generalization; TTFT includes \
                     queue wait + prefill; every served stream asserted \
                     token-identical to the fused single-request loop",
                ),
            ),
        ]),
    ));

    // ---- pipeline: async draft/target pipelining vs sync scheduler ------
    //
    // The same aligned speculative workload, served once by the
    // synchronous round-robin scheduler and once by the free-running async
    // pipeline (a dedicated draft thread per session speculating through
    // an SPSC ring while the target worker verifies). The measured runs
    // keep workers=1: on this single-core box the async win must come
    // from deeper verified blocks — fewer target weight sweeps per
    // committed token — not thread parallelism. Before measuring, the
    // async engine is also run at 2 and 4 target workers with every
    // stream asserted byte-identical to the fused AR chain: the shipped
    // benchmark itself pins the determinism contract, not just the unit
    // suite.
    println!("\n== pipeline: async draft/target pipelining vs sync scheduler ==");
    let pipe_concurrency: &[usize] = if h.smoke { &[4] } else { &[4, 16] };
    let mut pipeline_items = Vec::new();
    let mut pipe_fresh: Vec<(usize, f64)> = Vec::new();
    for &clients in pipe_concurrency {
        let n_req = clients * reqs_per_client;
        let prompts: Vec<Vec<u32>> = vec![e2e_prompt.clone(); n_req];
        let reference =
            autoregressive_greedy_with_budget_ws(&e2e_target, &e2e_prompt, serve_budget, &mut ws);
        let run = |async_pipeline: bool, workers: usize| -> (f64, f64, f64, u64) {
            let engine = Engine::new(
                EngineModel::Text {
                    target: Arc::clone(&serve_target),
                    draft: Arc::clone(&serve_draft),
                },
                EngineConfig {
                    slots: clients,
                    workers,
                    max_queue: n_req,
                    async_pipeline,
                    ..EngineConfig::default()
                },
            );
            let t0 = Instant::now();
            let handles: Vec<_> = prompts
                .iter()
                .map(|p| {
                    engine
                        .submit(Request {
                            prompt: p.clone(),
                            max_new: serve_budget,
                            mode: DecodeMode::Speculative { gamma: serve_gamma },
                            image_seed: None,
                        })
                        .expect("admitted")
                })
                .collect();
            engine.run_until_idle();
            let wall_s = t0.elapsed().as_secs_f64();
            let mut tokens_total = 0usize;
            let mut ttfts: Vec<f64> = Vec::new();
            for (i, handle) in handles.iter().enumerate() {
                let (status, tokens) = handle.snapshot();
                assert_eq!(status, Status::Done);
                assert_eq!(
                    tokens, reference,
                    "pipeline stream != fused loop \
                     (async={async_pipeline}, workers={workers}, clients={clients}, req {i})"
                );
                tokens_total += tokens.len();
                ttfts.push(handle.ttft_ms().expect("first token recorded"));
            }
            ttfts.sort_by(|a, b| a.partial_cmp(b).unwrap());
            (
                tokens_total as f64 / wall_s,
                percentile(&ttfts, 0.50),
                percentile(&ttfts, 0.95),
                engine.metrics().draft_rollbacks.get(),
            )
        };
        // Determinism sweep (streams asserted inside `run`).
        for workers in [2usize, 4] {
            let _ = run(true, workers);
        }
        let (async_tps, async_p50, async_p95, rollbacks) = run(true, 1);
        let (sync_tps, sync_p50, sync_p95, _) = run(false, 1);
        let speedup = async_tps / sync_tps;
        println!(
            "async pipeline   clients={clients:<2}  {async_tps:>8.1} tok/s  \
             TTFT p50 {async_p50:>7.1} ms  p95 {async_p95:>7.1} ms  \
             rollbacks {rollbacks}"
        );
        println!(
            "sync round-robin clients={clients:<2}  {sync_tps:>8.1} tok/s  \
             TTFT p50 {sync_p50:>7.1} ms  p95 {sync_p95:>7.1} ms"
        );
        println!("  pipeline speedup async vs sync at {clients} clients: {speedup:.2}x");
        pipeline_items.push(json::object(&[
            json::field("clients", &clients.to_string()),
            json::field("requests", &n_req.to_string()),
            json::field(
                "async",
                &json::object(&[
                    json::field("tokens_per_s", &json::num(async_tps)),
                    json::field("ttft_p50_ms", &json::num(async_p50)),
                    json::field("ttft_p95_ms", &json::num(async_p95)),
                    json::field("draft_rollbacks", &rollbacks.to_string()),
                ]),
            ),
            json::field(
                "sync",
                &json::object(&[
                    json::field("tokens_per_s", &json::num(sync_tps)),
                    json::field("ttft_p50_ms", &json::num(sync_p50)),
                    json::field("ttft_p95_ms", &json::num(sync_p95)),
                ]),
            ),
            json::field("speedup_async_vs_sync", &json::num(speedup)),
            json::field(
                "async_beats_sync",
                if async_tps >= sync_tps {
                    "true"
                } else {
                    "false"
                },
            ),
            json::field("ttft_p95_speedup", &json::num(sync_p95 / async_p95)),
            json::field("worker_sweep_lossless", "true"),
        ]));
        pipe_fresh.push((clients, async_tps));
    }
    sections.push(json::field(
        "pipeline",
        &json::object(&[
            json::field("gamma", &serve_gamma.to_string()),
            json::field("new_tokens_per_request", &serve_budget.to_string()),
            json::field("requests_per_client", &reqs_per_client.to_string()),
            json::field("levels", &json::array(&pipeline_items)),
            json::field(
                "note",
                &json::string(
                    "free-running async draft/target pipeline (per-session draft \
                     thread + SPSC ring, verify leg is sole commit authority) vs \
                     the synchronous round-robin scheduler on the identical \
                     speculative workload; measured at workers=1 so the win is \
                     deeper verified blocks, not parallelism; every run (including \
                     a 2- and 4-worker async sweep) asserted byte-identical to the \
                     fused AR chain",
                ),
            ),
        ]),
    ));
    if smoke {
        regressions.extend(pipeline_regressions(&pipe_fresh, &out_path));
    }

    // ---- multimodal: LlavaSim + KV projector + hybrid-cache spec --------
    //
    // The AASD pipeline end to end. sim_7b/sim_13b prefill costs pin the
    // per-forward asymmetry the paper's two model scales exhibit (asserted:
    // it is a structural property, not a measurement). Then three ablation
    // configurations are distilled with IDENTICAL budgets, data seeds, and
    // draft inits — learned KV projector, raw copied vision KV, and dropped
    // vision KV — and raced at γ ∈ {3, 5}. Block efficiency τ is merged
    // over a shared eval set; `ordering_ok` records whether the
    // Table-2-shaped ordering (projector > raw > dropped) emerged.
    println!("\n== multimodal: LlavaSim + KV projector + hybrid-cache speculative ==");
    let mm_vocab = 32usize;
    let mm_seq = 160usize;
    let cfg7 = LlavaSimConfig::sim_7b(mm_vocab, mm_seq);
    let m7 = LlavaSim::new(cfg7.clone(), 0xA5D);
    let m13 = LlavaSim::new(LlavaSimConfig::sim_13b(mm_vocab, mm_seq), 0xA5D);
    let mut mm_rng = Rng::new(0x1A);
    let mm_img = Image::synthetic(&mut mm_rng, cfg7.vision.n_patches, cfg7.vision.patch_dim);
    let mm_prompt: Vec<u32> = (0..8).map(|_| mm_rng.below(mm_vocab) as u32).collect();

    let cost7 = h.bench("multimodal/prefill/sim_7b", || {
        let mut c = m7.lm.new_cache();
        m7.prefill_ws(&mm_img, &mm_prompt, &mut c, &mut ws)
    });
    let img13 = Image::synthetic(&mut Rng::new(0x1A), 16, 27);
    let cost13 = h.bench("multimodal/prefill/sim_13b", || {
        let mut c = m13.lm.new_cache();
        m13.prefill_ws(&img13, &mm_prompt, &mut c, &mut ws)
    });
    report(&cost7);
    report(&cost13);
    assert!(
        cost13.median_ns > cost7.median_ns,
        "sim_13b must be strictly costlier per forward than sim_7b"
    );
    println!(
        "prefill cost asymmetry: sim_13b / sim_7b = {:.2}x  ({} vs {} params)",
        cost13.median_ns / cost7.median_ns,
        m13.n_params(),
        m7.n_params()
    );

    // Distill the three ablation legs from the SAME draft init on the SAME
    // data stream.
    let mm_steps = if h.smoke { 30 } else { 500 };
    let mm_tcfg = HybridDistillConfig {
        steps: mm_steps,
        prompt_len: 6,
        gen_len: 40,
        schedule: Schedule::Cosine {
            base: 4e-3,
            floor: 4e-4,
            total: mm_steps,
        },
        temperature: 0.15,
        seed: 0x5EED,
    };
    let draft0 = draft_for(&cfg7, 0xF);
    let legs: [(&str, Ablation); 3] = [
        ("projector", Ablation::projector()),
        ("raw_vision", Ablation::raw_vision()),
        ("no_vision", Ablation::no_vision()),
    ];
    let mut trained: Vec<(&str, Ablation, Decoder, Option<KvProjector>)> = Vec::new();
    for (name, abl) in legs {
        let mut draft = draft0.clone();
        let mut proj = abl.use_vision_projector.then(|| {
            KvProjector::new(
                0xBEEF,
                draft.cfg.n_layers,
                cfg7.lm.n_layers,
                cfg7.n_img(),
                cfg7.k_slots(),
            )
        });
        let t0 = Instant::now();
        let losses = distill_hybrid(&m7, &mut draft, proj.as_mut(), abl, &mm_tcfg);
        println!(
            "distilled {name:<10} {mm_steps} steps in {:.1}s  (KL {:.3} -> {:.3})",
            t0.elapsed().as_secs_f64(),
            losses[0],
            losses.last().unwrap()
        );
        trained.push((name, abl, draft, proj));
    }

    // Shared eval set: images and prompts the training stream never saw.
    // The eval budget matches the training `gen_len` — past it the draft
    // would decode at RoPE positions it never trained on, which adds
    // identical noise to every leg and washes out the ordering signal.
    let mm_budget = mm_tcfg.gen_len;
    let n_eval = if h.smoke { 3 } else { 16 };
    let mut eval_rng = Rng::new(0xE7A1);
    let eval_set: Vec<(Image, Vec<u32>)> = (0..n_eval)
        .map(|_| {
            let img = Image::synthetic(&mut eval_rng, cfg7.vision.n_patches, cfg7.vision.patch_dim);
            let prompt = (0..6).map(|_| eval_rng.below(mm_vocab) as u32).collect();
            (img, prompt)
        })
        .collect();

    let mm_ar = h.bench("multimodal/autoregressive/sim_7b", || {
        mm_autoregressive_ws(&m7, &eval_set[0].0, &eval_set[0].1, mm_budget, &mut ws)
    });
    report(&mm_ar);

    let mm_gammas: [usize; 2] = [3, 5];
    let mut mm_rows = Vec::new();
    // tau[leg][gamma_idx] for the ordering check.
    let mut tau = [[0.0f64; 2]; 3];
    for (leg_idx, (name, abl, draft, proj)) in trained.iter().enumerate() {
        for (g_idx, &gamma) in mm_gammas.iter().enumerate() {
            let mut merged = aasd_specdec::SpecStats::default();
            for (img, prompt) in &eval_set {
                let reference = mm_autoregressive_ws(&m7, img, prompt, mm_budget, &mut ws);
                let (out, stats) = mm_speculative_ws(
                    &m7,
                    draft,
                    proj.as_ref(),
                    *abl,
                    img,
                    prompt,
                    mm_budget,
                    gamma,
                    &mut ws,
                );
                assert_eq!(out, reference, "mm losslessness violated: {name} γ={gamma}");
                merged.merge(&stats);
            }
            tau[leg_idx][g_idx] = merged.block_efficiency();
            let spec = h.bench(&format!("multimodal/spec/{name}/gamma_{gamma}"), || {
                mm_speculative_ws(
                    &m7,
                    draft,
                    proj.as_ref(),
                    *abl,
                    &eval_set[0].0,
                    &eval_set[0].1,
                    mm_budget,
                    gamma,
                    &mut ws,
                )
            });
            let speedup = mm_ar.median_ns / spec.median_ns;
            println!(
                "{name:<10} γ={gamma}:  α={:.3}  τ={:.3}  {:.1} ms vs AR {:.1} ms  -> {speedup:.2}x",
                merged.acceptance_rate(),
                merged.block_efficiency(),
                spec.median_ns / 1e6,
                mm_ar.median_ns / 1e6,
            );
            mm_rows.push(json::object(&[
                json::field("config", &json::string(name)),
                json::field("gamma", &gamma.to_string()),
                json::field("speculative", &result_json(&spec)),
                json::field("acceptance_rate", &json::num(merged.acceptance_rate())),
                json::field("block_efficiency", &json::num(merged.block_efficiency())),
                json::field("speedup_vs_autoregressive", &json::num(speedup)),
                json::field("lossless", "true"),
            ]));
        }
    }
    let ordering_ok = (0..mm_gammas.len()).all(|g| tau[0][g] > tau[1][g] && tau[1][g] > tau[2][g]);
    println!(
        "table-2 ordering (projector > raw_vision > no_vision): {}",
        if ordering_ok { "HOLDS" } else { "VIOLATED" }
    );
    sections.push(json::field(
        "multimodal",
        &json::object(&[
            json::field("vocab", &mm_vocab.to_string()),
            json::field("max_seq", &mm_seq.to_string()),
            json::field("n_img", &cfg7.n_img().to_string()),
            json::field("k_slots", &cfg7.k_slots().to_string()),
            json::field("distill_steps", &mm_steps.to_string()),
            json::field("eval_prompts", &n_eval.to_string()),
            json::field("new_tokens", &mm_budget.to_string()),
            json::field(
                "prefill_cost",
                &json::object(&[
                    json::field("sim_7b", &result_json(&cost7)),
                    json::field("sim_13b", &result_json(&cost13)),
                    json::field(
                        "ratio_13b_vs_7b",
                        &json::num(cost13.median_ns / cost7.median_ns),
                    ),
                ]),
            ),
            json::field("autoregressive", &result_json(&mm_ar)),
            json::field("rows", &json::array(&mm_rows)),
            json::field("ordering_ok", if ordering_ok { "true" } else { "false" }),
            json::field(
                "note",
                &json::string(
                    "three ablation legs distilled from one draft init with identical \
                     budgets/seeds; block efficiency merged over a shared held-out eval \
                     set; ordering_ok = measured tau satisfies projector > raw vision KV \
                     > dropped vision KV at every gamma",
                ),
            ),
        ]),
    ));

    // ---- tree speculation: τ at an equal verified-rows budget -----------
    //
    // A linear γ-block verifies γ+1 rows per target pass (γ drafted + the
    // pending token). The tree session spends the SAME per-block row
    // budget on a token tree: the greedy chain plus calibrator-gated
    // sibling branches that catch the target's correction when the chain
    // dies early. The multimodal bench above shows per-prompt α swinging
    // wildly on these legs — exactly the volatility branches monetize: on
    // a low-α prompt the linear chain commits ~1 token/block while a
    // depth-1 sibling can still match the correction. Every tree stream is
    // asserted token-identical to the AR reference, branching factor 1 is
    // asserted byte-identical (stream AND stats) to the linear session,
    // and the section gate demands the best tree τ strictly beat the best
    // linear / adaptive-γ τ at the same rows-per-block budget.
    println!("\n== tree speculation (token tree vs linear chain, equal verified rows) ==");
    let (_, tree_abl, tree_draft, tree_proj) = &trained[0]; // projector leg
    let gamma_ratio = tree_draft.n_params() as f64 / m7.lm.n_params() as f64;

    // Calibration pass: collect target-adjudicated accept/reject examples
    // on calibration images drawn from an RNG stream disjoint from the
    // eval set, then fit the modality-aware logistic head with the
    // training stack. `branch_factor: 3, prob_floor: 0.02` over-proposes
    // on purpose so the head sees both labels.
    let mut cal_rng = Rng::new(0xCA11B);
    let mut cal_examples = Vec::new();
    for _ in 0..if h.smoke { 2 } else { 8 } {
        let img = Image::synthetic(&mut cal_rng, cfg7.vision.n_patches, cfg7.vision.patch_dim);
        let prompt: Vec<u32> = (0..6).map(|_| cal_rng.below(mm_vocab) as u32).collect();
        let (mut t_cache, mut d_cache, pending) = mm_seed_caches(
            &m7,
            tree_draft,
            tree_proj.as_ref(),
            *tree_abl,
            &img,
            &prompt,
            &mut ws,
        );
        let mut s = TreeSession::new(
            &m7.lm,
            tree_draft,
            &t_cache,
            &d_cache,
            pending,
            mm_budget,
            5,
            TreeConfig {
                branch_factor: 3,
                max_depth: 0,
                prob_floor: 0.02,
                calibrator: None,
                branch_threshold: 0.5,
            },
            m7.n_img(),
        );
        s.enable_example_collection();
        while !s.is_done() {
            s.step_block(&m7.lm, tree_draft, &mut t_cache, &mut d_cache, &mut ws);
        }
        cal_examples.extend(s.take_examples());
    }
    let mut cal_opt = Adam::new();
    let (fitted_cal, cal_losses) = fit_acceptance_calibrator(
        &cal_examples,
        if h.smoke { 150 } else { 400 },
        0.05,
        &mut cal_opt,
    );
    println!(
        "calibrator: {} examples, log-loss {:.4} -> {:.4}",
        cal_examples.len(),
        cal_losses[0],
        cal_losses.last().unwrap()
    );

    // AR references, computed once — every session below must reproduce
    // its prompt's stream exactly.
    let eval_refs: Vec<Vec<u32>> = eval_set
        .iter()
        .map(|(img, prompt)| mm_autoregressive_ws(&m7, img, prompt, mm_budget, &mut ws))
        .collect();

    // Linear AdaptiveGamma baseline: the strongest chain-shaped contender.
    let mut adaptive_merged = SpecStats::default();
    for ((img, prompt), reference) in eval_set.iter().zip(&eval_refs) {
        let (mut t_cache, mut d_cache, pending) = mm_seed_caches(
            &m7,
            tree_draft,
            tree_proj.as_ref(),
            *tree_abl,
            img,
            prompt,
            &mut ws,
        );
        let mut s = SpecSession::new(
            &m7.lm,
            tree_draft,
            &t_cache,
            &d_cache,
            pending,
            mm_budget,
            mm_gammas[0],
        );
        s.enable_adaptive_gamma(AdaptiveGamma::new(gamma_ratio));
        while !s.is_done() {
            s.step_block(&m7.lm, tree_draft, &mut t_cache, &mut d_cache, &mut ws);
        }
        let (out, stats) = s.into_parts();
        assert_eq!(&out, reference, "adaptive-γ losslessness violated");
        adaptive_merged.merge(&stats);
    }
    let tau_adaptive = adaptive_merged.block_efficiency();
    println!(
        "adaptive-γ linear:        α={:.3}  τ={:.3}",
        adaptive_merged.acceptance_rate(),
        tau_adaptive
    );

    // Branching factor 1 must be the linear session, byte for byte —
    // stream AND counters.
    for (img, prompt) in &eval_set {
        let (lin_out, lin_stats) = mm_speculative_ws(
            &m7,
            tree_draft,
            tree_proj.as_ref(),
            *tree_abl,
            img,
            prompt,
            mm_budget,
            5,
            &mut ws,
        );
        let (tree_out, tree_stats) = mm_speculative_tree_ws(
            &m7,
            tree_draft,
            tree_proj.as_ref(),
            *tree_abl,
            img,
            prompt,
            mm_budget,
            5,
            TreeConfig::linear(),
            &mut ws,
        );
        assert_eq!(tree_out, lin_out, "bf=1 tree stream diverged from linear");
        assert_eq!(
            tree_stats, lin_stats,
            "bf=1 tree stats diverged from linear"
        );
    }
    println!("bf=1 ≡ linear: byte-identical streams and stats over the eval set");

    // Sweep tree shapes at each linear γ's rows-per-block budget and keep
    // the best. `max_depth: 0` means depth = γ (chain-priority); a finite
    // depth caps the chain so breadth-first child recording spends the
    // freed rows on recovery branches. The branch gates sweep the fitted
    // calibrator at several thresholds — the row a branch displaces is a
    // chain extension worth ~α^depth, so the break-even acceptance
    // probability is far below 0.5 on deep trees — plus the floor-only
    // gate as the branch-happy extreme.
    let mut tree_rows = Vec::new();
    let mut best_tree: Option<(usize, &'static str, TreeConfig, f64, f64)> = None;
    let gates: [(&'static str, Option<AcceptanceCalibrator>, f32); 4] = [
        ("fitted@0.50", Some(fitted_cal.clone()), 0.50),
        ("fitted@0.15", Some(fitted_cal.clone()), 0.15),
        ("fitted@0.05", Some(fitted_cal.clone()), 0.05),
        ("floor", None, 0.5),
    ];
    for &gamma in &mm_gammas {
        let mut shapes: Vec<(usize, usize)> = vec![(2, 0), (3, 0), (2, gamma.saturating_sub(1))];
        if gamma > 3 {
            shapes.push((3, gamma - 2));
        }
        shapes.dedup();
        for (bf, depth) in shapes {
            for (gate_name, cal, threshold) in &gates {
                let tcfg = TreeConfig {
                    branch_factor: bf,
                    max_depth: depth,
                    prob_floor: 0.05,
                    calibrator: cal.clone(),
                    branch_threshold: *threshold,
                };
                let mut merged = SpecStats::default();
                for ((img, prompt), reference) in eval_set.iter().zip(&eval_refs) {
                    let (out, stats) = mm_speculative_tree_ws(
                        &m7,
                        tree_draft,
                        tree_proj.as_ref(),
                        *tree_abl,
                        img,
                        prompt,
                        mm_budget,
                        gamma,
                        tcfg.clone(),
                        &mut ws,
                    );
                    assert_eq!(
                        &out, reference,
                        "tree losslessness violated: γ={gamma} bf={bf} depth={depth} {gate_name}"
                    );
                    merged.merge(&stats);
                }
                let t = merged.block_efficiency();
                let a = merged.acceptance_rate();
                let rows = merged.drafted + merged.blocks;
                println!(
                    "tree γ={gamma} bf={bf} depth={depth} gate={gate_name:<12}:  α={a:.3}  τ={t:.3}  ({rows} verified rows)"
                );
                tree_rows.push(json::object(&[
                    json::field("gamma", &gamma.to_string()),
                    json::field("branch_factor", &bf.to_string()),
                    json::field("max_depth", &depth.to_string()),
                    json::field("gate", &json::string(gate_name)),
                    json::field("acceptance_rate", &json::num(a)),
                    json::field("block_efficiency", &json::num(t)),
                    json::field("verified_rows", &rows.to_string()),
                    json::field("lossless", "true"),
                ]));
                if best_tree.as_ref().is_none_or(|(.., bt, _)| t > *bt) {
                    best_tree = Some((gamma, gate_name, tcfg, t, a));
                }
            }
        }
    }
    let (bg, bgate, best_tcfg, btau, _balpha) = best_tree.expect("tree sweep is non-empty");
    let best_linear_tau = tau
        .iter()
        .flatten()
        .fold(tau_adaptive, |acc, &t| acc.max(t));
    println!(
        "best tree τ={btau:.3} (γ={bg} bf={} depth={} gate={bgate})  vs  best linear/adaptive τ={best_linear_tau:.3}",
        best_tcfg.branch_factor, best_tcfg.max_depth,
    );
    assert!(
        btau > best_linear_tau,
        "tree speculation must beat the best linear/adaptive τ at an equal \
         verified-rows budget: tree {btau:.4} vs linear {best_linear_tau:.4}"
    );
    let tree_bench = h.bench("multimodal/tree/best", || {
        mm_speculative_tree_ws(
            &m7,
            tree_draft,
            tree_proj.as_ref(),
            *tree_abl,
            &eval_set[0].0,
            &eval_set[0].1,
            mm_budget,
            bg,
            best_tcfg.clone(),
            &mut ws,
        )
    });
    report(&tree_bench);
    sections.push(json::field(
        "tree",
        &json::object(&[
            json::field(
                "calibration",
                &json::object(&[
                    json::field("examples", &cal_examples.len().to_string()),
                    json::field("logloss_start", &json::num(f64::from(cal_losses[0]))),
                    json::field(
                        "logloss_end",
                        &json::num(f64::from(*cal_losses.last().unwrap())),
                    ),
                ]),
            ),
            json::field(
                "adaptive_linear",
                &json::object(&[
                    json::field(
                        "acceptance_rate",
                        &json::num(adaptive_merged.acceptance_rate()),
                    ),
                    json::field("block_efficiency", &json::num(tau_adaptive)),
                    json::field("lossless", "true"),
                ]),
            ),
            json::field("rows", &json::array(&tree_rows)),
            json::field(
                "best",
                &json::object(&[
                    json::field("gamma", &bg.to_string()),
                    json::field("branch_factor", &best_tcfg.branch_factor.to_string()),
                    json::field("max_depth", &best_tcfg.max_depth.to_string()),
                    json::field("gate", &json::string(bgate)),
                    json::field("block_efficiency", &json::num(btau)),
                    json::field("timing", &result_json(&tree_bench)),
                ]),
            ),
            json::field("best_linear_tau", &json::num(best_linear_tau)),
            json::field("tree_beats_linear", "true"),
            json::field("bf1_byte_identical", "true"),
            json::field("lossless", "true"),
            json::field(
                "note",
                &json::string(
                    "token-tree speculation on the projector leg at the linear block's \
                     verified-rows budget (γ+1 rows per target pass); every stream \
                     asserted identical to the autoregressive reference; branching \
                     factor 1 asserted byte-identical to the linear session; the \
                     strict τ gate above fails the binary if the tree cannot beat \
                     the best linear/adaptive-γ configuration",
                ),
            ),
        ]),
    ));

    // ---- paged KV pool: capacity multiplier + decode-step parity --------
    //
    // The serving engine no longer gives every slot a max_seq-sized cache
    // pair: sessions lease exactly the blocks their prompt + budget needs
    // from one pre-allocated arena. Three measurements: (a) how many
    // short-request leases the PR5-sized arena (4 slots × max_seq 1024)
    // holds concurrently, (b) the lease/release cycle cost, and (c) the
    // decode-step cost on a paged cache vs a contiguous one — with the
    // step logits asserted bit-identical, which the chunk-invariant
    // attention kernels guarantee by construction.
    println!("\n== paged KV pool (block leases vs slot-owned caches) ==");
    let pool_bs = 16usize;
    let pr5_slots = 4usize;
    let pool = KvPool::new(
        target.cfg.n_layers,
        target.cfg.dim,
        pool_bs,
        pr5_slots * target.cfg.max_seq / pool_bs,
    );
    let short_lease = 128usize; // a prompt-64 / budget-65 session's lease
    let mut held = Vec::new();
    while let Some(c) = pool.try_lease(short_lease) {
        held.push(c);
    }
    let concurrent = held.len();
    drop(held);
    let multiplier = concurrent as f64 / pr5_slots as f64;
    println!(
        "arena of {pr5_slots} x max_seq {} holds {concurrent} concurrent \
         {short_lease}-position leases ({multiplier:.1}x the slot-owned count)",
        target.cfg.max_seq
    );
    let lease_cycle = h.bench("paged_pool/lease_release_cycle", || {
        let c = pool.try_lease(short_lease).unwrap();
        c.capacity()
    });
    report(&lease_cycle);

    let step_ctx = 512usize;
    let step_prompt: Vec<u32> = (0..step_ctx).map(|_| rng.below(vocab) as u32).collect();
    let mut paged = pool.try_lease(step_ctx + 8).unwrap();
    let mut flat = target.new_cache();
    let mut prefill_logits = ws.take(step_ctx * vocab);
    target.forward_infer_ws(&step_prompt, &mut paged, &mut ws, &mut prefill_logits);
    target.forward_infer_ws(&step_prompt, &mut flat, &mut ws, &mut prefill_logits);
    ws.give(prefill_logits);
    let mut paged_logits = vec![0.0f32; vocab];
    let mut flat_logits = vec![0.0f32; vocab];
    let paged_step = h.bench(&format!("paged_pool/step_paged/ctx_{step_ctx}"), || {
        paged.truncate(step_ctx);
        target.forward_infer_ws(&[7], &mut paged, &mut ws, &mut paged_logits);
    });
    let flat_step = h.bench(&format!("paged_pool/step_flat/ctx_{step_ctx}"), || {
        flat.truncate(step_ctx);
        target.forward_infer_ws(&[7], &mut flat, &mut ws, &mut flat_logits);
    });
    report(&paged_step);
    report(&flat_step);
    assert_eq!(
        paged_logits.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        flat_logits.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "paged decode step must be bit-identical to contiguous"
    );
    drop(paged);
    sections.push(json::field(
        "paged_pool",
        &json::object(&[
            json::field("block_size", &pool_bs.to_string()),
            json::field(
                "arena_positions",
                &(pr5_slots * target.cfg.max_seq).to_string(),
            ),
            json::field("short_lease_positions", &short_lease.to_string()),
            json::field("concurrent_short_leases", &concurrent.to_string()),
            json::field("capacity_multiplier_vs_pr5_slots", &json::num(multiplier)),
            json::field("lease_release_cycle", &result_json(&lease_cycle)),
            json::field("step_paged", &result_json(&paged_step)),
            json::field("step_flat", &result_json(&flat_step)),
            json::field(
                "paged_overhead",
                &json::num(paged_step.median_ns / flat_step.median_ns),
            ),
            json::field("step_bit_identical", "true"),
        ]),
    ));

    // ---- vision cache: shared-prefix hit vs full vision prefill ---------
    //
    // The serving engine keys cached vision KV prefixes by image content
    // hash; a hit leases the session cache on top of the cached blocks
    // (full blocks shared copy-on-write) instead of re-running the tower,
    // connector, and embeds pass. This races the two paths directly.
    println!("\n== vision cache: shared-prefix hit vs full vision prefill ==");
    let vcfg = LlavaSimConfig::sim_7b(256, 512);
    let vmodel = LlavaSim::new(vcfg.clone(), 0xB0);
    let v_n_img = vmodel.n_img();
    let vpool = KvPool::new(vcfg.lm.n_layers, vcfg.lm.dim, pool_bs, 64);
    let vimg = Image::synthetic(
        &mut Rng::new(42),
        vcfg.vision.n_patches,
        vcfg.vision.patch_dim,
    );
    let miss = h.bench("vision_cache/miss_vision_leg", || {
        let mut c = vpool.try_lease(v_n_img).unwrap();
        vmodel.prefill_vision_ws(&vimg, &mut c, &mut ws);
        c.len()
    });
    let mut cached_prefix = vpool.try_lease(v_n_img).unwrap();
    vmodel.prefill_vision_ws(&vimg, &mut cached_prefix, &mut ws);
    let hit = h.bench("vision_cache/hit_vision_leg", || {
        let c = vpool
            .try_lease_with_prefix(&cached_prefix, v_n_img + 64)
            .unwrap();
        c.len()
    });
    report(&miss);
    report(&hit);
    println!(
        "vision-leg hit is {:.0}x cheaper than the full prefill",
        miss.median_ns / hit.median_ns
    );
    sections.push(json::field(
        "vision_cache",
        &json::object(&[
            json::field("n_img", &v_n_img.to_string()),
            json::field("miss_vision_leg", &result_json(&miss)),
            json::field("hit_vision_leg", &result_json(&hit)),
            json::field(
                "speedup_hit_vs_miss",
                &json::num(miss.median_ns / hit.median_ns),
            ),
            json::field(
                "note",
                &json::string(
                    "miss = vision tower + connector + n_img-position embeds pass \
                     into a fresh lease; hit = copy-on-write lease on top of the \
                     cached prefix blocks (what the serving engine does per \
                     repeated image); the hit leg never touches the ViT",
                ),
            ),
        ]),
    ));

    // ---- training: one KL-distillation step on the draft ---------------
    println!("\n== distillation step (forward_train + backward + Adam) ==");
    let mut student = Decoder::new(DecoderConfig::bench_draft(vocab, 512), 0x7);
    let distill_teacher = Decoder::new(DecoderConfig::bench_target(vocab, 512), 0xD);
    let mut opt = Adam::new();
    let mut distill_items = Vec::new();
    for seq in [16usize, 32, 64] {
        let inputs: Vec<u32> = (0..seq).map(|_| rng.below(vocab) as u32).collect();
        // Teacher probs precomputed so the timed region is exactly the
        // student-side work a distillation step pays per sequence.
        let ex = Example {
            inputs: inputs.clone(),
            loss: LossSpec::KlDistill {
                teacher_probs: teacher_probs(&distill_teacher, &inputs),
            },
        };
        let r = h.bench(&format!("distill_step/seq_{seq}"), || {
            train_step(&mut student, &ex, &mut opt, 1e-4)
        });
        report(&r);
        distill_items.push(json::object(&[
            json::field("seq", &seq.to_string()),
            json::field("step", &result_json(&r)),
        ]));
    }
    sections.push(json::field("distill_step", &json::array(&distill_items)));

    let doc = json::object(&sections);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write snapshot");
    println!("\nwrote {out_path}");
    if !regressions.is_empty() {
        for r in &regressions {
            println!("REGRESSION: {r}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::latest_committed_snapshot_in;

    /// The regression gate's baseline discovery must compare the PR number
    /// **numerically**: once the repo accumulates ten snapshots, a
    /// lexicographic scan would pick `BENCH_PR9.json` over
    /// `BENCH_PR10.json` and silently race every future bench against a
    /// stale baseline.
    #[test]
    fn snapshot_discovery_compares_pr_numbers_numerically() {
        let dir = std::env::temp_dir().join(format!("aasd_bench_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in [
            "BENCH_PR9.json",
            "BENCH_PR10.json",
            "BENCH_PR2.json",
            "BENCH_PRx.json",
            "notes.txt",
        ] {
            std::fs::write(dir.join(name), "{\"decode_step\": []}\n").unwrap();
        }
        let dir = dir.to_str().unwrap().to_string();
        assert_eq!(
            latest_committed_snapshot_in(&dir, "BENCH_PR11.json", "\"decode_step\"").as_deref(),
            Some("BENCH_PR10.json"),
            "two-digit PR must beat one-digit PRs"
        );
        // The snapshot currently being written is never its own baseline.
        assert_eq!(
            latest_committed_snapshot_in(&dir, "BENCH_PR10.json", "\"decode_step\"").as_deref(),
            Some("BENCH_PR9.json")
        );
        assert_eq!(
            latest_committed_snapshot_in("/nonexistent", "x.json", ""),
            None
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A committed snapshot that isn't a perf snapshot (the table1 grid)
    /// must not become the regression baseline: the scanner walks back to
    /// the newest snapshot that actually has the section it needs.
    #[test]
    fn snapshot_discovery_skips_snapshots_without_marker() {
        let dir = std::env::temp_dir().join(format!("aasd_bench_grid_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_PR9.json"), "{\"decode_step\": []}\n").unwrap();
        std::fs::write(dir.join("BENCH_PR10.json"), "{\"table1\": []}\n").unwrap();
        let dir = dir.to_str().unwrap().to_string();
        assert_eq!(
            latest_committed_snapshot_in(&dir, "BENCH_PR11.json", "\"decode_step\"").as_deref(),
            Some("BENCH_PR9.json"),
            "table1 grid must be skipped for the decode_step baseline"
        );
        assert_eq!(
            latest_committed_snapshot_in(&dir, "BENCH_PR11.json", "\"table1\"").as_deref(),
            Some("BENCH_PR10.json")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
