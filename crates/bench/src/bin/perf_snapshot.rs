//! Perf-trajectory snapshot harness: runs the kernel, speculative-decode,
//! and training benches and writes a machine-readable JSON summary (default
//! `BENCH_PR2.json`, override with the first CLI arg). Future perf PRs
//! regress against this file; the PR1 sections are kept so trajectories
//! stay comparable.
//!
//! Usage: `cargo run --release -p aasd-bench --bin perf_snapshot [out.json]`

use aasd_bench::{bench, json, report, BenchResult};
use aasd_nn::{Decoder, DecoderConfig};
use aasd_specdec::{
    autoregressive_greedy, speculative_greedy, verify_greedy, verify_greedy_sequential,
};
use aasd_tensor::{
    hardware_threads, matmul_blocked_into, matmul_naive_into, matmul_parallel_into, Rng,
};
use aasd_train::{teacher_probs, train_step, Adam, Example, LossSpec};
use std::time::Instant;

fn result_json(r: &BenchResult) -> String {
    json::object(&[
        json::field("median_ms", &json::num(r.median_ns / 1e6)),
        json::field("min_ms", &json::num(r.min_ns / 1e6)),
        json::field("samples", &r.samples.to_string()),
    ])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let mut sections: Vec<String> = Vec::new();

    sections.push(json::field(
        "meta",
        &json::object(&[
            json::field("snapshot", &json::string("PR2")),
            json::field("hardware_threads", &hardware_threads().to_string()),
            json::field(
                "note",
                &json::string("std-only harness; medians over time-budgeted samples"),
            ),
        ]),
    ));

    // ---- matmul: naive vs blocked vs parallel --------------------------
    println!("== matmul kernels ==");
    let mut matmul_items = Vec::new();
    for n in [64usize, 128, 256] {
        let mut rng = Rng::new(n as u64);
        let a: Vec<f32> = (0..n * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut c = vec![0.0f32; n * n];
        let flops = 2.0 * (n as f64).powi(3);
        let naive = bench(&format!("matmul/naive/{n}"), || {
            matmul_naive_into(&mut c, &a, &b, n, n, n)
        });
        let blocked = bench(&format!("matmul/blocked/{n}"), || {
            matmul_blocked_into(&mut c, &a, &b, n, n, n)
        });
        let parallel = bench(&format!("matmul/parallel/{n}"), || {
            matmul_parallel_into(&mut c, &a, &b, n, n, n)
        });
        for r in [&naive, &blocked, &parallel] {
            report(r);
        }
        matmul_items.push(json::object(&[
            json::field("n", &n.to_string()),
            json::field("naive", &result_json(&naive)),
            json::field("blocked", &result_json(&blocked)),
            json::field("parallel", &result_json(&parallel)),
            json::field("gflops_blocked", &json::num(flops / blocked.median_ns)),
            json::field(
                "speedup_blocked_vs_naive",
                &json::num(naive.median_ns / blocked.median_ns),
            ),
            json::field(
                "speedup_parallel_vs_naive",
                &json::num(naive.median_ns / parallel.median_ns),
            ),
        ]));
    }
    sections.push(json::field("matmul", &json::array(&matmul_items)));

    // ---- decode step vs cache length -----------------------------------
    println!("\n== decode step vs cache length ==");
    let vocab = 512;
    let target = Decoder::new(DecoderConfig::bench_target(vocab, 1024), 0xD);
    let mut rng = Rng::new(1);
    let mut decode_items = Vec::new();
    for ctx in [16usize, 64, 256, 512] {
        let prompt: Vec<u32> = (0..ctx).map(|_| rng.below(vocab) as u32).collect();
        let mut cache = target.new_cache();
        target.forward_infer(&prompt, &mut cache);
        let r = bench(&format!("decode_step/ctx_{ctx}"), || {
            cache.truncate(ctx);
            target.forward_infer(&[7], &mut cache)
        });
        report(&r);
        decode_items.push(json::object(&[
            json::field("ctx", &ctx.to_string()),
            json::field("step", &result_json(&r)),
        ]));
    }
    sections.push(json::field("decode_step", &json::array(&decode_items)));

    // ---- batched vs sequential verify ----------------------------------
    println!("\n== batched vs sequential verify ==");
    let ctx = 128usize;
    let prompt: Vec<u32> = (0..ctx).map(|_| rng.below(vocab) as u32).collect();
    let mut cache = target.new_cache();
    let frontier_t = target.forward_infer(&prompt, &mut cache);
    let frontier = frontier_t.row(frontier_t.rows - 1).to_vec();
    let mut verify_items = Vec::new();
    for gamma in [3usize, 5, 8] {
        // Self-consistent draft block (fully accepted) so both paths do the
        // complete γ-token scoring work — see benches/verify.rs.
        let draft = autoregressive_greedy(&target, &prompt, gamma);
        let batched = bench(&format!("verify/batched/gamma_{gamma}"), || {
            cache.truncate(ctx);
            verify_greedy(&target, &mut cache, &frontier, &draft)
        });
        let sequential = bench(&format!("verify/sequential/gamma_{gamma}"), || {
            cache.truncate(ctx);
            verify_greedy_sequential(&target, &mut cache, &frontier, &draft)
        });
        report(&batched);
        report(&sequential);
        let ratio = sequential.median_ns / batched.median_ns;
        println!("  batched speedup at γ={gamma}: {ratio:.2}x");
        verify_items.push(json::object(&[
            json::field("gamma", &gamma.to_string()),
            json::field("batched", &result_json(&batched)),
            json::field("sequential", &result_json(&sequential)),
            json::field("speedup_batched_vs_sequential", &json::num(ratio)),
        ]));
    }
    sections.push(json::field("verify", &json::array(&verify_items)));

    // ---- end-to-end: speculative loop vs autoregressive ----------------
    println!("\n== end-to-end greedy generation (CPU clock) ==");
    let draft_model = Decoder::new(DecoderConfig::bench_draft(vocab, 512), 0xF);
    let e2e_target = Decoder::new(DecoderConfig::bench_target(vocab, 512), 0xD);
    let p: Vec<u32> = (0..32).map(|_| rng.below(vocab) as u32).collect();
    let max_new = 64;
    let gamma = 5;

    let t0 = Instant::now();
    let reference = autoregressive_greedy(&e2e_target, &p, max_new);
    let ar_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let (spec, stats) = speculative_greedy(&e2e_target, &draft_model, &p, max_new, gamma);
    let spec_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(spec, reference, "losslessness violated in harness run");

    let alpha = stats.acceptance_rate();
    let tau = stats.block_efficiency();
    println!("autoregressive: {ar_ms:.1} ms   speculative: {spec_ms:.1} ms");
    println!("alpha={alpha:.3}  tau={tau:.3}  (untrained draft; CPU compute-bound clock)");
    sections.push(json::field(
        "end_to_end",
        &json::object(&[
            json::field("max_new", &max_new.to_string()),
            json::field("gamma", &gamma.to_string()),
            json::field("autoregressive_ms", &json::num(ar_ms)),
            json::field("speculative_ms", &json::num(spec_ms)),
            json::field("acceptance_rate", &json::num(alpha)),
            json::field("block_efficiency", &json::num(tau)),
            json::field("lossless", "true"),
        ]),
    ));

    // ---- training: one KL-distillation step on the draft ---------------
    println!("\n== distillation step (forward_train + backward + Adam) ==");
    let mut student = Decoder::new(DecoderConfig::bench_draft(vocab, 512), 0x7);
    let mut opt = Adam::new();
    let mut distill_items = Vec::new();
    for seq in [16usize, 32, 64] {
        let inputs: Vec<u32> = (0..seq).map(|_| rng.below(vocab) as u32).collect();
        // Teacher probs precomputed so the timed region is exactly the
        // student-side work a distillation step pays per sequence.
        let ex = Example {
            inputs: inputs.clone(),
            loss: LossSpec::KlDistill {
                teacher_probs: teacher_probs(&e2e_target, &inputs),
            },
        };
        let r = bench(&format!("distill_step/seq_{seq}"), || {
            train_step(&mut student, &ex, &mut opt, 1e-4)
        });
        report(&r);
        distill_items.push(json::object(&[
            json::field("seq", &seq.to_string()),
            json::field("step", &result_json(&r)),
        ]));
    }
    sections.push(json::field("distill_step", &json::array(&distill_items)));

    let doc = json::object(&sections);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write snapshot");
    println!("\nwrote {out_path}");
}
