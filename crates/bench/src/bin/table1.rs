//! `table1` — the paper's headline acceptance table, reproduced end to end.
//!
//! For each target in {Sim7B, Sim13B}: ground the target's LM on WildSim
//! train data (random-init targets speak no grammar; the paper's targets
//! are pretrained), then train the five draft systems on the same WildSim
//! training stream with the same step budget:
//!
//! * FT-LLaMA — text-only draft, cross-entropy on ground-truth references;
//! * DT-LLaMA — text-only draft, KL vs the target's own rollouts;
//! * FT-LLaVA — small VLM draft, CE behind its own vision prefix;
//! * DT-LLaVA — small VLM draft, MASSV-style self-data distillation;
//! * AASD — width-shared draft, KV-projector-seeded, jointly distilled
//!   with the TdAttention alignment loss.
//!
//! Every (system, target, γ∈{3,5}, workload∈{WildSim, CocoCapSim, SqaSim})
//! cell is evaluated on **held-out** samples with per-stream losslessness
//! asserted (speculative output ≡ autoregressive output), and reported
//! under two clocks: measured CPU walltime and the calibrated memory-bound
//! [`DeviceClock`] parameterized by each model's real-world analogue byte
//! footprint (7B/13B targets, ~112M drafts, fp16). α and τ are
//! clock-independent counts.
//!
//! The binary **hard-asserts** the paper's qualitative result: AASD's α is
//! strictly above every baseline's on every workload (merged over targets
//! and γ). `--smoke` shrinks training/eval and drops γ=5 so `ci.sh` can
//! gate on the ordering cheaply; the full grid writes `BENCH_PR10.json`.
//!
//! Usage: `table1 [OUT_PATH] [--smoke]`

use aasd_baselines::{
    distill_text_from_mm, distill_vlm_from_mm, eval_system, finetune_text, finetune_vlm,
    tiny_lm_config, tiny_vlm_config, train_aasd_draft, DraftSystem, EvalCell, ZooTrainConfig,
};
use aasd_bench::json;
use aasd_data::{Split, Workload, WorkloadKind, VOCAB};
use aasd_mm::{LlavaSim, LlavaSimConfig, TdAlignConfig};
use aasd_nn::Decoder;
use aasd_specdec::{fp16_bytes, DeviceClock};

/// Shared context window: room for 16 vision rows + prompt + generation.
const MAX_SEQ: usize = 96;
/// Workload image geometry — must match the Sim targets' vision config.
const N_PATCHES: usize = 16;
const PATCH_DIM: usize = 27;

/// Real-world analogue parameter counts for the device clock: the Sim
/// targets stand in for LLaVA-7B/13B; every draft stands in for a
/// LLaMA-68M/160M-class model (~112M params, the two averaged).
const TARGET_7B_PARAMS: f64 = 7e9;
const TARGET_13B_PARAMS: f64 = 13e9;
const DRAFT_PARAMS: f64 = 112e6;

const SYSTEMS: [&str; 5] = ["FT-LLaMA", "DT-LLaMA", "FT-LLaVA", "DT-LLaVA", "AASD"];

struct Scale {
    ground_steps: usize,
    zoo_steps: usize,
    eval_pairs: usize,
    budget: usize,
    gammas: &'static [usize],
}

impl Scale {
    fn full() -> Self {
        Scale {
            ground_steps: 600,
            zoo_steps: 400,
            eval_pairs: 12,
            budget: 32,
            gammas: &[3, 5],
        }
    }

    fn smoke() -> Self {
        Scale {
            ground_steps: 300,
            zoo_steps: 200,
            eval_pairs: 5,
            budget: 20,
            gammas: &[3],
        }
    }
}

/// Train the five draft systems against one grounded target on the WildSim
/// training stream, all with the same step budget.
fn build_zoo(target: &LlavaSim, train: &Workload, scale: &Scale, seed: u64) -> Vec<DraftSystem> {
    let vocab = target.cfg.lm.vocab;
    let cfg = ZooTrainConfig::smoke(scale.zoo_steps, seed);

    println!("  training FT-LLaMA (text finetune)...");
    let mut ft_llama = Decoder::new(tiny_lm_config(vocab, MAX_SEQ), seed ^ 0xF1);
    finetune_text(&mut ft_llama, train, &cfg);

    println!("  training DT-LLaMA (text distill)...");
    let mut dt_llama = Decoder::new(tiny_lm_config(vocab, MAX_SEQ), seed ^ 0xD1);
    distill_text_from_mm(&mut dt_llama, target, train, &cfg);

    println!("  training FT-LLaVA (vlm finetune)...");
    let mut ft_llava = LlavaSim::new(
        tiny_vlm_config(vocab, MAX_SEQ, N_PATCHES, PATCH_DIM),
        seed ^ 0xF2,
    );
    finetune_vlm(&mut ft_llava, train, &cfg);

    println!("  training DT-LLaVA (MASSV self-data distill)...");
    let mut dt_llava = LlavaSim::new(
        tiny_vlm_config(vocab, MAX_SEQ, N_PATCHES, PATCH_DIM),
        seed ^ 0xD2,
    );
    distill_vlm_from_mm(&mut dt_llava, target, train, &cfg);

    println!("  training AASD draft (projector-seeded joint distill + TdAttention)...");
    let (draft, projector) = train_aasd_draft(
        target,
        train,
        &cfg,
        TdAlignConfig {
            window: 4,
            weight: 0.1,
        },
    );

    vec![
        DraftSystem::Text(ft_llama),
        DraftSystem::Text(dt_llama),
        DraftSystem::Vlm(ft_llava),
        DraftSystem::Vlm(dt_llava),
        DraftSystem::Aasd { draft, projector },
    ]
}

struct Cell {
    target: &'static str,
    target_params: f64,
    system: &'static str,
    workload: &'static str,
    gamma: usize,
    eval: EvalCell,
}

fn cell_json(c: &Cell, clock: &DeviceClock) -> String {
    let s = &c.eval.stats;
    let t_bytes = fp16_bytes(c.target_params);
    let d_bytes = fp16_bytes(DRAFT_PARAMS);
    json::object(&[
        json::field("target", &json::string(c.target)),
        json::field("system", &json::string(c.system)),
        json::field("workload", &json::string(c.workload)),
        json::field("gamma", &c.gamma.to_string()),
        json::field("alpha", &json::num(s.acceptance_rate())),
        json::field("tau", &json::num(s.block_efficiency())),
        json::field("omega_cpu", &json::num(c.eval.cpu_speedup())),
        json::field(
            "omega_device",
            &json::num(clock.speedup(t_bytes, d_bytes, s)),
        ),
        json::field("drafted", &s.drafted.to_string()),
        json::field("accepted", &s.accepted.to_string()),
        json::field("blocks", &s.blocks.to_string()),
        json::field("generated", &s.generated.to_string()),
        json::field(
            "spec_decode_ms",
            &json::num(c.eval.spec_decode_ns as f64 / 1e6),
        ),
        json::field("ar_decode_ms", &json::num(c.eval.ar_decode_ns as f64 / 1e6)),
        json::field(
            "device_spec_ms",
            &json::num(clock.spec_s(t_bytes, d_bytes, s) * 1e3),
        ),
        json::field("device_ar_ms", &json::num(clock.ar_s(t_bytes, s) * 1e3)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let clock = DeviceClock::a100();

    let train = Workload::new(WorkloadKind::WildSim, 0x7AB1E, N_PATCHES, PATCH_DIM);
    let targets: Vec<(&str, f64, LlavaSim)> = vec![
        (
            "Sim7B",
            TARGET_7B_PARAMS,
            LlavaSim::new(LlavaSimConfig::sim_7b(VOCAB, MAX_SEQ), 0x7B),
        ),
        (
            "Sim13B",
            TARGET_13B_PARAMS,
            LlavaSim::new(LlavaSimConfig::sim_13b(VOCAB, MAX_SEQ), 0x13B),
        ),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for (tname, tparams, mut target) in targets {
        println!(
            "== target {tname}: grounding LM on WildSim train ({} steps)",
            scale.ground_steps
        );
        // Width-aware grounding LR: the zoo schedule is tuned for dim-64
        // drafts; Adam at 2e-2 oscillates on the wider target LMs and
        // leaves their rollouts image-agnostic, which flatters blind
        // baselines and deflates the whole comparison.
        let mut ground = ZooTrainConfig::smoke(scale.ground_steps, 0x960D ^ tparams as u64);
        let width_scale = 64.0 / target.cfg.lm.dim as f32;
        ground.schedule = aasd_train::Schedule::Cosine {
            base: 2e-2 * width_scale,
            floor: 2e-3 * width_scale,
            total: scale.ground_steps,
        };
        finetune_vlm(&mut target, &train, &ground);
        let zoo = build_zoo(&target, &train, &scale, 0x5EED ^ tparams as u64);
        for kind in WorkloadKind::ALL {
            let wl = Workload::new(kind, 0xE7A1 ^ kind as u64, N_PATCHES, PATCH_DIM);
            let samples = wl.take(Split::Heldout, scale.eval_pairs);
            for &gamma in scale.gammas {
                for (system, name) in zoo.iter().zip(SYSTEMS) {
                    let eval = eval_system(&target, system, &samples, scale.budget, gamma);
                    println!(
                        "  {tname} {name:<8} {:<10} gamma={gamma}  alpha={:.3} tau={:.3} omega_dev={:.2}",
                        kind.name(),
                        eval.stats.acceptance_rate(),
                        eval.stats.block_efficiency(),
                        clock.speedup(
                            fp16_bytes(tparams),
                            fp16_bytes(DRAFT_PARAMS),
                            &eval.stats
                        ),
                    );
                    cells.push(Cell {
                        target: tname,
                        target_params: tparams,
                        system: name,
                        workload: kind.name(),
                        gamma,
                        eval,
                    });
                }
            }
        }
    }

    // The paper's qualitative claim, hard-asserted: per workload (merged
    // over targets and γ), AASD's α is strictly above every baseline's.
    let mut summary_items = Vec::new();
    for kind in WorkloadKind::ALL {
        let merged = |system: &str| -> EvalCell {
            let mut acc = EvalCell::default();
            for c in cells
                .iter()
                .filter(|c| c.system == system && c.workload == kind.name())
            {
                acc.merge(&c.eval);
            }
            acc
        };
        let aasd_alpha = merged("AASD").stats.acceptance_rate();
        let mut fields = vec![
            json::field("workload", &json::string(kind.name())),
            json::field("aasd_alpha", &json::num(aasd_alpha)),
        ];
        for &baseline in SYSTEMS.iter().filter(|s| **s != "AASD") {
            let alpha = merged(baseline).stats.acceptance_rate();
            println!(
                "{:<10} AASD alpha {aasd_alpha:.3} vs {baseline:<8} {alpha:.3}",
                kind.name()
            );
            assert!(
                aasd_alpha > alpha,
                "ordering violated on {}: AASD alpha {aasd_alpha:.4} !> {baseline} {alpha:.4}",
                kind.name()
            );
            fields.push(json::field(
                &format!("{}_alpha", baseline.to_lowercase().replace('-', "_")),
                &json::num(alpha),
            ));
        }
        summary_items.push(json::object(&fields));
    }
    println!("ordering OK: AASD alpha strictly highest on every workload; all streams lossless");

    let meta = json::object(&[
        json::field("snapshot", &json::string("PR10")),
        json::field("smoke", if smoke { "true" } else { "false" }),
        json::field("vocab", &VOCAB.to_string()),
        json::field("max_seq", &MAX_SEQ.to_string()),
        json::field("eval_pairs", &scale.eval_pairs.to_string()),
        json::field("budget", &scale.budget.to_string()),
        json::field("zoo_steps", &scale.zoo_steps.to_string()),
        json::field("ground_steps", &scale.ground_steps.to_string()),
        json::field(
            "device_clock",
            &json::object(&[
                json::field(
                    "bandwidth_bytes_per_s",
                    &json::num(clock.bandwidth_bytes_per_s),
                ),
                json::field("pass_overhead_s", &json::num(clock.pass_overhead_s)),
                json::field("target_7b_params", &json::num(TARGET_7B_PARAMS)),
                json::field("target_13b_params", &json::num(TARGET_13B_PARAMS)),
                json::field("draft_params", &json::num(DRAFT_PARAMS)),
            ]),
        ),
    ]);
    let grid: Vec<String> = cells.iter().map(|c| cell_json(c, &clock)).collect();
    let doc = json::object(&[json::field(
        "table1",
        &json::object(&[
            json::field("meta", &meta),
            json::field("summary", &json::array(&summary_items)),
            json::field("grid", &json::array(&grid)),
        ]),
    )]);
    std::fs::write(&out_path, doc + "\n").expect("write snapshot");
    println!("wrote {out_path} ({} cells)", cells.len());
}
