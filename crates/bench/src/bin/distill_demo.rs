//! End-to-end alignment demo at bench scale: distill a `bench_draft`-sized
//! student against a frozen `bench_target` teacher and report the measured
//! acceptance rate α of greedy speculative decoding before and after. This
//! is the AASD thesis as a real measurement — no α is hard-coded anywhere.
//!
//! Usage: `cargo run --release -p aasd-bench --bin distill_demo`

use aasd_nn::{Decoder, DecoderConfig};
use aasd_specdec::measure_acceptance;
use aasd_tensor::Rng;
use aasd_train::{distill, Adam, DistillConfig, Schedule};
use std::time::Instant;

fn main() {
    let (vocab, max_seq) = (64usize, 128usize);
    let target = Decoder::new(DecoderConfig::bench_target(vocab, max_seq), 0xBEE);
    let untrained = Decoder::new(DecoderConfig::bench_draft(vocab, max_seq), 0xDAF);
    println!(
        "target: {} params   draft: {} params",
        target.n_params(),
        untrained.n_params()
    );

    // Held-out prompts (seed stream disjoint from the distillation stream).
    let mut rng = Rng::new(0xE7A1);
    let prompts: Vec<Vec<u32>> = (0..4)
        .map(|_| (0..6).map(|_| rng.below(vocab) as u32).collect())
        .collect();
    let (max_new, gamma) = (40, 5);

    let before = measure_acceptance(&target, &untrained, &prompts, max_new, gamma);

    let steps = 600;
    let cfg = DistillConfig {
        steps,
        prompt_len: 4,
        gen_len: 28,
        schedule: Schedule::Cosine {
            base: 5e-3,
            floor: 5e-4,
            total: steps,
        },
        // The random-weight teacher is high-entropy at this scale, so the
        // raw distribution barely constrains its argmax; sharpen it —
        // greedy agreement is exactly what α measures.
        temperature: 0.2,
        seed: 0x5EED,
    };
    let mut trained = untrained.clone();
    let mut opt = Adam::new();
    let t0 = Instant::now();
    let losses = distill(&mut trained, &target, &mut opt, &cfg);
    let train_s = t0.elapsed().as_secs_f64();
    println!(
        "distilled {steps} steps in {train_s:.1}s   KL {:.4} -> {:.4}",
        losses[0],
        losses.last().unwrap()
    );

    let after = measure_acceptance(&target, &trained, &prompts, max_new, gamma);
    let (a0, a1) = (before.acceptance_rate(), after.acceptance_rate());
    println!(
        "alpha untrained = {a0:.4} (tau {:.3})   alpha distilled = {a1:.4} (tau {:.3})",
        before.block_efficiency(),
        after.block_efficiency()
    );
    assert_eq!(before.generated, after.generated, "uneven decode budgets");
    assert!(
        a1 > a0,
        "distillation failed to raise acceptance rate: {a0:.4} -> {a1:.4}"
    );
    println!("OK: distilled draft strictly beats untrained draft on held-out prompts");
}
