//! `aasd-bench` — micro-benchmark harness and perf-snapshot tooling.
//!
//! The build container has no registry access, so this is a std-only
//! criterion stand-in: warmup, a time-budgeted sample loop, and
//! median/min/mean statistics. The `benches/*.rs` targets (run via
//! `cargo bench -p aasd-bench`) print human-readable tables; the
//! `perf_snapshot` bin emits the machine-readable `BENCH_PR1.json`
//! trajectory file that future perf PRs regress against.

use std::hint::black_box;
use std::time::Instant;

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    /// Samples collected (each sample times one invocation).
    pub samples: usize,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
}

impl BenchResult {
    pub fn median_ms(&self) -> f64 {
        self.median_ns / 1e6
    }
}

/// Benchmark a closure: a few warmup runs, then sample until the time
/// budget (default 600 ms) or `max_samples` is exhausted. The closure's
/// result is `black_box`ed so the work cannot be optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchResult {
    bench_with_budget(name, 600_000_000, 200, &mut f)
}

pub fn bench_with_budget<T>(
    name: &str,
    budget_ns: u64,
    max_samples: usize,
    f: &mut impl FnMut() -> T,
) -> BenchResult {
    for _ in 0..3 {
        black_box(f());
    }
    let mut samples_ns: Vec<f64> = Vec::new();
    let started = Instant::now();
    while samples_ns.len() < max_samples
        && (samples_ns.len() < 5 || started.elapsed().as_nanos() < budget_ns as u128)
    {
        let t = Instant::now();
        black_box(f());
        samples_ns.push(t.elapsed().as_nanos() as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples_ns.len();
    let median_ns = if n % 2 == 1 {
        samples_ns[n / 2]
    } else {
        0.5 * (samples_ns[n / 2 - 1] + samples_ns[n / 2])
    };
    let mean_ns = samples_ns.iter().sum::<f64>() / n as f64;
    BenchResult {
        name: name.to_string(),
        samples: n,
        median_ns,
        mean_ns,
        min_ns: samples_ns[0],
    }
}

/// Print one result as an aligned human-readable row.
pub fn report(r: &BenchResult) {
    println!(
        "{:<44} {:>10.3} ms median  ({:>10.3} ms min, {} samples)",
        r.name,
        r.median_ns / 1e6,
        r.min_ns / 1e6,
        r.samples
    );
}

/// Minimal JSON value writer for the perf-snapshot output. The
/// implementation lives in the shared `aasd-json` crate (the serving
/// metrics endpoint uses the same writer); this re-export keeps the
/// historical `aasd_bench::json` import path working.
pub mod json {
    pub use aasd_json::*;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_ordered_stats() {
        let r = bench_with_budget("spin", 5_000_000, 20, &mut || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(r.samples >= 5);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.min_ns > 0.0);
    }

    #[test]
    fn json_escaping_and_shapes() {
        assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json::num(f64::NAN), "0");
        let obj = json::object(&[
            json::field("name", &json::string("x")),
            json::field("v", &json::num(1.5)),
        ]);
        assert_eq!(obj, "{\"name\": \"x\", \"v\": 1.500000}");
        assert_eq!(json::array(&["1".into(), "2".into()]), "[1, 2]");
    }
}
