//! The speculative-decoding payoff bench: scoring γ draft tokens with ONE
//! batched target forward vs γ sequential single-token forwards. The
//! sequential path re-reads every weight matrix γ times (memory-bound
//! GEMV), the batched path once (GEMM) — this gap is why speculative
//! decoding pays. Run with `cargo bench -p aasd-bench --bench verify`.

use aasd_bench::{bench, report};
use aasd_nn::{Decoder, DecoderConfig};
use aasd_specdec::{autoregressive_greedy, verify_greedy, verify_greedy_sequential};
use aasd_tensor::Rng;

fn main() {
    let vocab = 512;
    let max_seq = 512;
    let target = Decoder::new(DecoderConfig::bench_target(vocab, max_seq), 0xD);
    let mut rng = Rng::new(2);
    let ctx = 128usize;
    let prompt: Vec<u32> = (0..ctx).map(|_| rng.below(vocab) as u32).collect();
    let mut cache = target.new_cache();
    let frontier_t = target.forward_infer(&prompt, &mut cache);
    let frontier = frontier_t.row(frontier_t.rows - 1).to_vec();

    println!(
        "batched vs sequential verify (ctx={ctx}, target params={})\n",
        target.n_params()
    );
    for gamma in [3usize, 5, 8] {
        // Use the target's own greedy continuation as the draft block so
        // every token is accepted: both paths then do the full γ-token
        // scoring work and the comparison is purely batched-vs-sequential
        // (a random block would let the sequential path early-exit at the
        // first mismatch).
        let draft = autoregressive_greedy(&target, &prompt, gamma);
        let batched = bench(&format!("verify/batched/gamma_{gamma}"), || {
            cache.truncate(ctx);
            verify_greedy(&target, &mut cache, &frontier, &draft)
        });
        let sequential = bench(&format!("verify/sequential/gamma_{gamma}"), || {
            cache.truncate(ctx);
            verify_greedy_sequential(&target, &mut cache, &frontier, &draft)
        });
        report(&batched);
        report(&sequential);
        println!(
            "  batched speedup at γ={gamma}: {:.2}x\n",
            sequential.median_ns / batched.median_ns
        );
    }
}
