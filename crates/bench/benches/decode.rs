//! Attention/decoder decode-step cost as the KV cache grows: the latency of
//! generating one token at various context lengths, plus the prefill cost.
//! Run with `cargo bench -p aasd-bench --bench decode`.

use aasd_bench::{bench, report};
use aasd_nn::{Decoder, DecoderConfig};
use aasd_tensor::{Rng, Workspace};

fn main() {
    let vocab = 512;
    let max_seq = 1024;
    let model = Decoder::new(DecoderConfig::bench_target(vocab, max_seq), 0xD);
    println!(
        "decode step vs cache length (bench_target: dim={} layers={} params={})\n",
        model.cfg.dim,
        model.cfg.n_layers,
        model.n_params()
    );

    let mut rng = Rng::new(1);
    let mut ws = Workspace::new();
    let mut logits = vec![0.0f32; vocab];
    for ctx in [16usize, 64, 256, 512] {
        let prompt: Vec<u32> = (0..ctx).map(|_| rng.below(vocab) as u32).collect();
        // Pre-fill a cache to `ctx`; O(1) truncate rolls each sample back
        // so the timed region is purely the forward pass.
        let mut cache = model.new_cache();
        model.forward_infer(&prompt, &mut cache);
        let fused = bench(&format!("decode_step/fused/ctx_{ctx}"), || {
            cache.truncate(ctx);
            model.forward_infer_ws(&[7], &mut cache, &mut ws, &mut logits);
        });
        report(&fused);
        let alloc = bench(&format!("decode_step/alloc/ctx_{ctx}"), || {
            cache.truncate(ctx);
            model.forward_infer(&[7], &mut cache)
        });
        report(&alloc);
    }

    println!();
    for plen in [64usize, 256] {
        let prompt: Vec<u32> = (0..plen).map(|_| rng.below(vocab) as u32).collect();
        let r = bench(&format!("prefill/len_{plen}"), || {
            let mut c = model.new_cache();
            model.forward_infer(&prompt, &mut c)
        });
        report(&r);
    }
}
