//! Matmul kernel comparison: naive reference vs cache-blocked vs
//! thread-parallel, across square sizes. Run with
//! `cargo bench -p aasd-bench --bench matmul`.

use aasd_bench::{bench, report};
use aasd_tensor::{
    hardware_threads, matmul_blocked_into, matmul_naive_into, matmul_parallel_into, Rng,
};

fn main() {
    println!(
        "matmul kernels (f32, square N³), {} hardware thread(s)\n",
        hardware_threads()
    );
    for n in [64usize, 128, 256] {
        let mut rng = Rng::new(n as u64);
        let a: Vec<f32> = (0..n * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut c = vec![0.0f32; n * n];
        let flops = 2.0 * (n as f64).powi(3);

        let naive = bench(&format!("matmul/naive/{n}"), || {
            matmul_naive_into(&mut c, &a, &b, n, n, n)
        });
        let blocked = bench(&format!("matmul/blocked/{n}"), || {
            matmul_blocked_into(&mut c, &a, &b, n, n, n)
        });
        let parallel = bench(&format!("matmul/parallel/{n}"), || {
            matmul_parallel_into(&mut c, &a, &b, n, n, n)
        });

        for r in [&naive, &blocked, &parallel] {
            report(r);
            println!("{:<44} {:>10.2} GFLOP/s", "", flops / r.median_ns);
        }
        println!(
            "  speedup blocked vs naive: {:.2}x   parallel vs naive: {:.2}x\n",
            naive.median_ns / blocked.median_ns,
            naive.median_ns / parallel.median_ns
        );
    }
}
