//! `aasd-autograd` — tape-based reverse-mode automatic differentiation over
//! [`aasd_tensor::Tensor`].
//!
//! The design follows DESIGN.md §2.2: a [`Tape`] records every forward op as
//! a node (op enum + materialized output value); [`Tape::backward`] is a
//! **single dispatcher** that walks the tape in reverse topological order
//! (which is just reverse insertion order, since inputs always precede their
//! consumers) and accumulates gradients per node. Parameters enter as
//! [`Tape::leaf`] nodes and their gradients are read back by [`VarId`].
//!
//! The op set is exactly what training a decoder-only transformer needs:
//! `matmul`, `add`, `mul`, `scale`, `sum`, `embed_gather`, `silu`,
//! `rms_norm`, `softmax`/`log_softmax`, the `cross_entropy` and `kl_div`
//! losses, plus the fused sequence ops — `rope` (rotary embedding, backward
//! is the inverse rotation), `causal_attention` (multi-head causal softmax
//! attention in one node, flash-style: the probability matrices are
//! recomputed in backward instead of stored), and its generalization
//! `prefix_causal_attention` + `concat_rows`, which let the multimodal
//! hybrid-cache draft train end-to-end over a gradient-carrying KV prefix.
//!
//! Every op is validated by a central finite-difference gradient check
//! ([`check::fd_check`]) in this crate's tests; `aasd-nn` additionally
//! FD-checks the whole-decoder graph built by `forward_train`.

pub mod check;

use aasd_tensor::{add_assign, dot, log_softmax_rows, silu, softmax_row, softmax_rows, Tensor};

/// Handle to a node on the tape (index into the node list).
pub type VarId = usize;

/// One recorded operation. Variants carry their input [`VarId`]s plus any
/// non-differentiable attributes (token ids, rotary tables, head counts).
#[derive(Debug, Clone)]
enum Op {
    /// Parameter or constant input; gradient sink.
    Leaf,
    /// `a · b`.
    MatMul(VarId, VarId),
    /// Elementwise `a + b` (same shape).
    Add(VarId, VarId),
    /// Elementwise `a ⊙ b` (same shape).
    Mul(VarId, VarId),
    /// `s · a` for a fixed scalar `s`.
    Scale(VarId, f32),
    /// Sum of all elements → `[1, 1]`.
    Sum(VarId),
    /// Row-gather from an embedding table by token id.
    EmbedGather { table: VarId, tokens: Vec<u32> },
    /// Elementwise SiLU.
    Silu(VarId),
    /// RMS norm per row with a learned per-column gain `[1, d]`.
    RmsNorm { x: VarId, gain: VarId, eps: f32 },
    /// Row-wise softmax.
    Softmax(VarId),
    /// Row-wise log-softmax.
    LogSoftmax(VarId),
    /// Mean next-token cross-entropy of `[t, vocab]` logits vs `t` targets.
    CrossEntropy { logits: VarId, targets: Vec<u32> },
    /// Mean row-wise `KL(teacher ‖ softmax(student))`; the teacher
    /// distribution is a frozen constant, not a tape node.
    KlDiv {
        student_logits: VarId,
        teacher_probs: Tensor,
    },
    /// Rotary position embedding over `[t, dim]`, positions `0..t`, with
    /// per-position cos/sin tables (`t × half`, `half = head_dim / 2`).
    Rope {
        x: VarId,
        n_heads: usize,
        cos: Vec<f32>,
        sin: Vec<f32>,
    },
    /// Fused multi-head causal softmax attention over pre-projected,
    /// pre-rotated `q`/`k`/`v`, each `[t, dim]`.
    CausalAttention {
        q: VarId,
        k: VarId,
        v: VarId,
        n_heads: usize,
    },
    /// Row-stack `a` (`[p, d]`) on top of `b` (`[t, d]`) → `[p+t, d]`.
    /// Backward splits the gradient. Used to build the hybrid draft cache
    /// `[projected vision KV ∥ text KV]` on the tape.
    ConcatRows(VarId, VarId),
    /// Causal attention with a `prefix`-row always-visible prefix: `q` is
    /// `[t, dim]`, `k`/`v` are `[prefix+t, dim]`; query `i` attends over
    /// key rows `0..=prefix+i`. With `prefix = 0` this is exactly
    /// [`Op::CausalAttention`]. This is the training-time mirror of a draft
    /// decoding over a pre-seeded KV cache.
    PrefixCausalAttention {
        q: VarId,
        k: VarId,
        v: VarId,
        n_heads: usize,
        prefix: usize,
    },
    /// Target-draft attention (the training-time `TdAttention` kernel,
    /// DESIGN.md §2.8): draft query `i` with window `w` attends over the
    /// **target** keys at positions `j ≤ i−w` and the **draft** keys at
    /// positions `i−w < j ≤ i`. All five inputs are `[t, dim]`; the draft
    /// key at `j = i` is always visible, so every row has mass. The
    /// optimized forward precomputes `S1 = Q·Kᵀ` and `S2 = Q·K'ᵀ` once per
    /// head and indexes into them (see [`td_probs`]).
    TdAttention {
        q: VarId,
        tk: VarId,
        tv: VarId,
        dk: VarId,
        dv: VarId,
        n_heads: usize,
        window: usize,
    },
}

#[derive(Debug, Clone)]
struct Node {
    op: Op,
    value: Tensor,
}

/// Gradients produced by one [`Tape::backward`] call, indexed by [`VarId`].
/// Nodes the loss does not depend on have no entry.
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the backward root with respect to node `id`, if any.
    pub fn get(&self, id: VarId) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }
}

/// The forward tape: an append-only list of op nodes with materialized
/// values. Build a fresh tape per training step; ids are only meaningful
/// within the tape that issued them.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of node `id`.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id].value
    }

    fn push(&mut self, op: Op, value: Tensor) -> VarId {
        self.nodes.push(Node { op, value });
        self.nodes.len() - 1
    }

    /// Register a parameter/input tensor as a gradient sink.
    pub fn leaf(&mut self, value: Tensor) -> VarId {
        self.push(Op::Leaf, value)
    }

    /// `a · b` via the blocked/parallel kernel.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), value)
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!((ta.rows, ta.cols), (tb.rows, tb.cols), "add shape mismatch");
        let mut value = ta.clone();
        add_assign(&mut value.data, &tb.data);
        self.push(Op::Add(a, b), value)
    }

    /// Elementwise `a ⊙ b`.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!((ta.rows, ta.cols), (tb.rows, tb.cols), "mul shape mismatch");
        let mut value = ta.clone();
        for (x, y) in value.data.iter_mut().zip(&tb.data) {
            *x *= *y;
        }
        self.push(Op::Mul(a, b), value)
    }

    /// `s · a`.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let mut value = self.value(a).clone();
        for x in value.data.iter_mut() {
            *x *= s;
        }
        self.push(Op::Scale(a, s), value)
    }

    /// Sum of every element, as a `[1, 1]` scalar (backward seed shape).
    pub fn sum(&mut self, a: VarId) -> VarId {
        let s: f32 = self.value(a).data.iter().sum();
        self.push(Op::Sum(a), Tensor::from_vec(vec![s], 1, 1))
    }

    /// Gather embedding rows for a token sequence → `[t, dim]`.
    pub fn embed_gather(&mut self, table: VarId, tokens: &[u32]) -> VarId {
        let tab = self.value(table);
        let dim = tab.cols;
        let mut value = Tensor::zeros(tokens.len(), dim);
        for (i, &tok) in tokens.iter().enumerate() {
            let tok = tok as usize;
            assert!(tok < tab.rows, "token {tok} out of vocabulary");
            value.row_mut(i).copy_from_slice(tab.row(tok));
        }
        self.push(
            Op::EmbedGather {
                table,
                tokens: tokens.to_vec(),
            },
            value,
        )
    }

    /// Elementwise SiLU.
    pub fn silu(&mut self, a: VarId) -> VarId {
        let mut value = self.value(a).clone();
        for x in value.data.iter_mut() {
            *x = silu(*x);
        }
        self.push(Op::Silu(a), value)
    }

    /// Row-wise RMS norm with per-column gain (`gain: [1, d]`).
    pub fn rms_norm(&mut self, x: VarId, gain: VarId, eps: f32) -> VarId {
        let (tx, tg) = (self.value(x), self.value(gain));
        assert_eq!(tg.rows, 1, "gain must be a [1, d] row vector");
        assert_eq!(tx.cols, tg.cols, "rms_norm gain width mismatch");
        let mut value = tx.clone();
        for r in 0..value.rows {
            let row = value.row_mut(r);
            let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
            let inv = 1.0 / (ms + eps).sqrt();
            for (v, g) in row.iter_mut().zip(&tg.data) {
                *v *= inv * *g;
            }
        }
        self.push(Op::RmsNorm { x, gain, eps }, value)
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: VarId) -> VarId {
        let mut value = self.value(a).clone();
        softmax_rows(&mut value.data, value.cols);
        self.push(Op::Softmax(a), value)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, a: VarId) -> VarId {
        let mut value = self.value(a).clone();
        log_softmax_rows(&mut value.data, value.cols);
        self.push(Op::LogSoftmax(a), value)
    }

    /// Mean next-token cross-entropy: `-1/t Σᵢ log_softmax(logits)ᵢ[tᵢ]`.
    pub fn cross_entropy(&mut self, logits: VarId, targets: &[u32]) -> VarId {
        let tl = self.value(logits);
        assert_eq!(tl.rows, targets.len(), "one target per logits row");
        let mut ls = tl.clone();
        log_softmax_rows(&mut ls.data, ls.cols);
        let mut loss = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            let t = t as usize;
            assert!(t < ls.cols, "target {t} out of vocabulary");
            loss -= ls.row(i)[t];
        }
        loss /= targets.len() as f32;
        self.push(
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
            },
            Tensor::from_vec(vec![loss], 1, 1),
        )
    }

    /// Mean row-wise `KL(teacher ‖ softmax(student))` — the sequence-level
    /// distillation loss. `teacher_probs` is a frozen `[t, vocab]` tensor of
    /// probability rows (rows sum to 1); zero teacher entries contribute 0.
    pub fn kl_div(&mut self, student_logits: VarId, teacher_probs: Tensor) -> VarId {
        let tl = self.value(student_logits);
        assert_eq!(
            (tl.rows, tl.cols),
            (teacher_probs.rows, teacher_probs.cols),
            "teacher/student shape mismatch"
        );
        let mut ls = tl.clone();
        log_softmax_rows(&mut ls.data, ls.cols);
        let mut loss = 0.0f32;
        for (lp, &tp) in ls.data.iter().zip(&teacher_probs.data) {
            if tp > 0.0 {
                loss += tp * (tp.ln() - lp);
            }
        }
        loss /= tl.rows as f32;
        self.push(
            Op::KlDiv {
                student_logits,
                teacher_probs,
            },
            Tensor::from_vec(vec![loss], 1, 1),
        )
    }

    /// Rotary position embedding over `x: [t, dim]` at absolute positions
    /// `0..t`. `cos`/`sin` are `t × half` row-major tables
    /// (`half = (dim / n_heads) / 2`); each head's adjacent pairs are
    /// rotated identically, matching `aasd-nn`'s inference-path RoPE.
    pub fn rope(&mut self, x: VarId, n_heads: usize, cos: Vec<f32>, sin: Vec<f32>) -> VarId {
        let tx = self.value(x);
        let head_dim = tx.cols / n_heads;
        assert_eq!(head_dim * n_heads, tx.cols, "dim must divide into heads");
        assert!(head_dim.is_multiple_of(2), "RoPE needs an even head dim");
        let half = head_dim / 2;
        assert_eq!(cos.len(), tx.rows * half, "cos table must be t x half");
        assert_eq!(sin.len(), tx.rows * half, "sin table must be t x half");
        let mut value = tx.clone();
        for i in 0..value.rows {
            let (c, s) = (
                &cos[i * half..(i + 1) * half],
                &sin[i * half..(i + 1) * half],
            );
            let row = value.row_mut(i);
            for h in 0..n_heads {
                let head = &mut row[h * head_dim..(h + 1) * head_dim];
                for j in 0..half {
                    let (x0, x1) = (head[2 * j], head[2 * j + 1]);
                    head[2 * j] = x0 * c[j] - x1 * s[j];
                    head[2 * j + 1] = x0 * s[j] + x1 * c[j];
                }
            }
        }
        self.push(
            Op::Rope {
                x,
                n_heads,
                cos,
                sin,
            },
            value,
        )
    }

    /// Fused multi-head causal attention: `q`, `k`, `v` are `[t, dim]`
    /// already projected (and rotated); output is the `[t, dim]` context.
    /// Scores use `1/sqrt(head_dim)` scaling and a strict causal mask.
    pub fn causal_attention(&mut self, q: VarId, k: VarId, v: VarId, n_heads: usize) -> VarId {
        let (tq, tk, tv) = (self.value(q), self.value(k), self.value(v));
        assert_eq!((tq.rows, tq.cols), (tk.rows, tk.cols), "q/k shape mismatch");
        assert_eq!((tq.rows, tq.cols), (tv.rows, tv.cols), "q/v shape mismatch");
        let head_dim = tq.cols / n_heads;
        assert_eq!(head_dim * n_heads, tq.cols, "dim must divide into heads");
        let t = tq.rows;
        let mut value = Tensor::zeros(t, tq.cols);
        for h in 0..n_heads {
            let qh = gather_head(tq, h, head_dim);
            let kh = gather_head(tk, h, head_dim);
            let vh = gather_head(tv, h, head_dim);
            let p = prefix_causal_probs(&qh, &kh, head_dim, 0);
            let oh = p.matmul(&vh);
            scatter_head(&mut value, &oh, h, head_dim);
        }
        self.push(Op::CausalAttention { q, k, v, n_heads }, value)
    }

    /// Row-stack `a` (`[p, d]`) on top of `b` (`[t, d]`) → `[p+t, d]`.
    pub fn concat_rows(&mut self, a: VarId, b: VarId) -> VarId {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.cols, tb.cols, "concat_rows width mismatch");
        let mut data = ta.data.clone();
        data.extend_from_slice(&tb.data);
        let value = Tensor::from_vec(data, ta.rows + tb.rows, ta.cols);
        self.push(Op::ConcatRows(a, b), value)
    }

    /// Multi-head attention where every query also sees a `prefix`-row
    /// always-visible prefix: `q` is `[t, dim]`, `k`/`v` are
    /// `[prefix+t, dim]` (prefix rows first), and query `i` attends over
    /// key rows `0..=prefix+i` with `1/sqrt(head_dim)` scaling. The last
    /// `t` rows of `k`/`v` behave exactly like causal self-attention.
    ///
    /// This is the training-time mirror of decoding over a pre-seeded KV
    /// cache: the prefix rows (projected vision KV in the AASD hybrid
    /// cache) receive gradients, which is what makes the `KvProjector`
    /// trainable end-to-end.
    pub fn prefix_causal_attention(
        &mut self,
        q: VarId,
        k: VarId,
        v: VarId,
        n_heads: usize,
        prefix: usize,
    ) -> VarId {
        let (tq, tk, tv) = (self.value(q), self.value(k), self.value(v));
        assert_eq!((tk.rows, tk.cols), (tv.rows, tv.cols), "k/v shape mismatch");
        assert_eq!(tq.cols, tk.cols, "q/k width mismatch");
        assert_eq!(tk.rows, prefix + tq.rows, "k must have prefix+t rows");
        let head_dim = tq.cols / n_heads;
        assert_eq!(head_dim * n_heads, tq.cols, "dim must divide into heads");
        let t = tq.rows;
        let mut value = Tensor::zeros(t, tq.cols);
        for h in 0..n_heads {
            let qh = gather_head(tq, h, head_dim);
            let kh = gather_head(tk, h, head_dim);
            let vh = gather_head(tv, h, head_dim);
            let p = prefix_causal_probs(&qh, &kh, head_dim, prefix);
            let oh = p.matmul(&vh);
            scatter_head(&mut value, &oh, h, head_dim);
        }
        self.push(
            Op::PrefixCausalAttention {
                q,
                k,
                v,
                n_heads,
                prefix,
            },
            value,
        )
    }

    /// Target-draft attention over pre-projected, pre-rotated inputs, all
    /// `[t, dim]`: draft query `i` attends over target key rows `j ≤ i−w`
    /// and draft key rows `i−w < j ≤ i` (window `w ≥ 1`), with
    /// `1/sqrt(head_dim)` scaling and one softmax over the combined
    /// visible set. This is the alignment kernel distillation uses to pull
    /// the draft's attention geometry toward the target's hidden states:
    /// the recent `w` positions come from the draft itself (mirroring
    /// speculation, where the tail of the context is draft-generated) and
    /// everything older comes from the target. With `w ≥ t` no target row
    /// is ever visible and the op degenerates to causal self-attention
    /// over the draft keys.
    #[allow(clippy::too_many_arguments)]
    pub fn td_attention(
        &mut self,
        q: VarId,
        tk: VarId,
        tv: VarId,
        dk: VarId,
        dv: VarId,
        n_heads: usize,
        window: usize,
    ) -> VarId {
        let (tq, ttk, ttv, tdk, tdv) = (
            self.value(q),
            self.value(tk),
            self.value(tv),
            self.value(dk),
            self.value(dv),
        );
        let shape = (tq.rows, tq.cols);
        assert_eq!(shape, (ttk.rows, ttk.cols), "q/tk shape mismatch");
        assert_eq!(shape, (ttv.rows, ttv.cols), "q/tv shape mismatch");
        assert_eq!(shape, (tdk.rows, tdk.cols), "q/dk shape mismatch");
        assert_eq!(shape, (tdv.rows, tdv.cols), "q/dv shape mismatch");
        assert!(window >= 1, "TdAttention window must be at least 1");
        let head_dim = tq.cols / n_heads;
        assert_eq!(head_dim * n_heads, tq.cols, "dim must divide into heads");
        let t = tq.rows;
        let mut value = Tensor::zeros(t, tq.cols);
        for h in 0..n_heads {
            let qh = gather_head(tq, h, head_dim);
            let tkh = gather_head(ttk, h, head_dim);
            let tvh = gather_head(ttv, h, head_dim);
            let dkh = gather_head(tdk, h, head_dim);
            let dvh = gather_head(tdv, h, head_dim);
            let p = td_probs(&qh, &tkh, &dkh, head_dim, window);
            let (pt, pd) = split_cols(&p, t);
            let mut oh = pt.matmul(&tvh);
            add_assign(&mut oh.data, &pd.matmul(&dvh).data);
            scatter_head(&mut value, &oh, h, head_dim);
        }
        self.push(
            Op::TdAttention {
                q,
                tk,
                tv,
                dk,
                dv,
                n_heads,
                window,
            },
            value,
        )
    }

    /// Reverse-mode sweep from a scalar `root` (`[1, 1]`): the single
    /// backward dispatcher. Returns per-node gradients; leaves the tape's
    /// forward values untouched, so multiple roots can be differentiated.
    pub fn backward(&self, root: VarId) -> Gradients {
        let rv = self.value(root);
        assert_eq!((rv.rows, rv.cols), (1, 1), "backward root must be scalar");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[root] = Some(Tensor::from_vec(vec![1.0], 1, 1));
        for id in (0..=root).rev() {
            let Some(g) = grads[id].clone() else { continue };
            match &self.nodes[id].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = g.matmul_transposed(self.value(*b));
                    let db = self.value(*a).transpose().matmul(&g);
                    accumulate(&mut grads[*a], da);
                    accumulate(&mut grads[*b], db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads[*a], g.clone());
                    accumulate(&mut grads[*b], g);
                }
                Op::Mul(a, b) => {
                    let mut da = g.clone();
                    for (x, y) in da.data.iter_mut().zip(&self.value(*b).data) {
                        *x *= *y;
                    }
                    let mut db = g;
                    for (x, y) in db.data.iter_mut().zip(&self.value(*a).data) {
                        *x *= *y;
                    }
                    accumulate(&mut grads[*a], da);
                    accumulate(&mut grads[*b], db);
                }
                Op::Scale(a, s) => {
                    let mut da = g;
                    for x in da.data.iter_mut() {
                        *x *= *s;
                    }
                    accumulate(&mut grads[*a], da);
                }
                Op::Sum(a) => {
                    let ta = self.value(*a);
                    let da = Tensor::from_vec(vec![g.data[0]; ta.data.len()], ta.rows, ta.cols);
                    accumulate(&mut grads[*a], da);
                }
                Op::EmbedGather { table, tokens } => {
                    let tab = self.value(*table);
                    let mut dt = Tensor::zeros(tab.rows, tab.cols);
                    for (i, &tok) in tokens.iter().enumerate() {
                        add_assign(dt.row_mut(tok as usize), g.row(i));
                    }
                    accumulate(&mut grads[*table], dt);
                }
                Op::Silu(a) => {
                    let mut da = g;
                    for (x, &v) in da.data.iter_mut().zip(&self.value(*a).data) {
                        let sig = 1.0 / (1.0 + (-v).exp());
                        *x *= sig * (1.0 + v * (1.0 - sig));
                    }
                    accumulate(&mut grads[*a], da);
                }
                Op::RmsNorm { x, gain, eps } => {
                    let (dx, dg) = rms_norm_backward(self.value(*x), self.value(*gain), *eps, &g);
                    accumulate(&mut grads[*x], dx);
                    accumulate(&mut grads[*gain], dg);
                }
                Op::Softmax(a) => {
                    // y = softmax(x): dx = y ⊙ (g − ⟨g, y⟩) per row.
                    let p = self.value(id);
                    let mut da = g;
                    for r in 0..p.rows {
                        let pr = p.row(r);
                        let gr = da.row_mut(r);
                        let s = dot(gr, pr);
                        for (x, &pv) in gr.iter_mut().zip(pr) {
                            *x = pv * (*x - s);
                        }
                    }
                    accumulate(&mut grads[*a], da);
                }
                Op::LogSoftmax(a) => {
                    // y = log_softmax(x): dx = g − exp(y) · Σ g per row.
                    let lp = self.value(id);
                    let mut da = g;
                    for r in 0..lp.rows {
                        let lr = lp.row(r);
                        let gr = da.row_mut(r);
                        let s: f32 = gr.iter().sum();
                        for (x, &lv) in gr.iter_mut().zip(lr) {
                            *x -= lv.exp() * s;
                        }
                    }
                    accumulate(&mut grads[*a], da);
                }
                Op::CrossEntropy { logits, targets } => {
                    // dlogits = (softmax(logits) − onehot(target)) · g / t.
                    let mut dl = self.value(*logits).clone();
                    softmax_rows(&mut dl.data, dl.cols);
                    let scale = g.data[0] / targets.len() as f32;
                    for (i, &t) in targets.iter().enumerate() {
                        dl.row_mut(i)[t as usize] -= 1.0;
                    }
                    for x in dl.data.iter_mut() {
                        *x *= scale;
                    }
                    accumulate(&mut grads[*logits], dl);
                }
                Op::KlDiv {
                    student_logits,
                    teacher_probs,
                } => {
                    // dstudent = (softmax(student) − teacher) · g / rows.
                    let mut ds = self.value(*student_logits).clone();
                    softmax_rows(&mut ds.data, ds.cols);
                    let scale = g.data[0] / ds.rows as f32;
                    for (x, &tp) in ds.data.iter_mut().zip(&teacher_probs.data) {
                        *x = (*x - tp) * scale;
                    }
                    accumulate(&mut grads[*student_logits], ds);
                }
                Op::Rope {
                    x,
                    n_heads,
                    cos,
                    sin,
                } => {
                    // Rotation is orthogonal: dx = Rᵀ dy = rotation by −θ.
                    let tx = self.value(*x);
                    let head_dim = tx.cols / n_heads;
                    let half = head_dim / 2;
                    let mut da = g;
                    for i in 0..da.rows {
                        let (c, s) = (
                            &cos[i * half..(i + 1) * half],
                            &sin[i * half..(i + 1) * half],
                        );
                        let row = da.row_mut(i);
                        for h in 0..*n_heads {
                            let head = &mut row[h * head_dim..(h + 1) * head_dim];
                            for j in 0..half {
                                let (g0, g1) = (head[2 * j], head[2 * j + 1]);
                                head[2 * j] = g0 * c[j] + g1 * s[j];
                                head[2 * j + 1] = -g0 * s[j] + g1 * c[j];
                            }
                        }
                    }
                    accumulate(&mut grads[*x], da);
                }
                Op::CausalAttention { q, k, v, n_heads } => {
                    let (dq, dk, dv) = attention_backward(
                        self.value(*q),
                        self.value(*k),
                        self.value(*v),
                        *n_heads,
                        0,
                        &g,
                    );
                    accumulate(&mut grads[*q], dq);
                    accumulate(&mut grads[*k], dk);
                    accumulate(&mut grads[*v], dv);
                }
                Op::ConcatRows(a, b) => {
                    let p = self.value(*a).rows;
                    let cols = g.cols;
                    let da = Tensor::from_vec(g.data[..p * cols].to_vec(), p, cols);
                    let db = Tensor::from_vec(g.data[p * cols..].to_vec(), g.rows - p, cols);
                    accumulate(&mut grads[*a], da);
                    accumulate(&mut grads[*b], db);
                }
                Op::PrefixCausalAttention {
                    q,
                    k,
                    v,
                    n_heads,
                    prefix,
                } => {
                    let (dq, dk, dv) = attention_backward(
                        self.value(*q),
                        self.value(*k),
                        self.value(*v),
                        *n_heads,
                        *prefix,
                        &g,
                    );
                    accumulate(&mut grads[*q], dq);
                    accumulate(&mut grads[*k], dk);
                    accumulate(&mut grads[*v], dv);
                }
                Op::TdAttention {
                    q,
                    tk,
                    tv,
                    dk,
                    dv,
                    n_heads,
                    window,
                } => {
                    let (dq, dtk, dtv, ddk, ddv) = td_attention_backward(
                        self.value(*q),
                        self.value(*tk),
                        self.value(*dk),
                        self.value(*tv),
                        self.value(*dv),
                        *n_heads,
                        *window,
                        &g,
                    );
                    accumulate(&mut grads[*q], dq);
                    accumulate(&mut grads[*tk], dtk);
                    accumulate(&mut grads[*tv], dtv);
                    accumulate(&mut grads[*dk], ddk);
                    accumulate(&mut grads[*dv], ddv);
                }
            }
        }
        Gradients { grads }
    }
}

/// Add `delta` into a gradient slot, initializing it on first touch.
fn accumulate(slot: &mut Option<Tensor>, delta: Tensor) {
    match slot {
        Some(t) => add_assign(&mut t.data, &delta.data),
        None => *slot = Some(delta),
    }
}

/// Extract head `h`'s `[t, head_dim]` slice from a `[t, dim]` tensor.
fn gather_head(x: &Tensor, h: usize, head_dim: usize) -> Tensor {
    let mut out = Tensor::zeros(x.rows, head_dim);
    for i in 0..x.rows {
        out.row_mut(i)
            .copy_from_slice(&x.row(i)[h * head_dim..(h + 1) * head_dim]);
    }
    out
}

/// Write head `h`'s `[t, head_dim]` slice back into a `[t, dim]` tensor.
fn scatter_head(dst: &mut Tensor, src: &Tensor, h: usize, head_dim: usize) {
    for i in 0..src.rows {
        dst.row_mut(i)[h * head_dim..(h + 1) * head_dim].copy_from_slice(src.row(i));
    }
}

/// Softmax probability matrix `[tq, prefix+tq]` for one head: query `i`
/// sees key columns `0..=prefix+i`. `prefix = 0` is plain causal attention.
fn prefix_causal_probs(qh: &Tensor, kh: &Tensor, head_dim: usize, prefix: usize) -> Tensor {
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut s = qh.matmul_transposed(kh);
    for i in 0..s.rows {
        let row = s.row_mut(i);
        for (j, sv) in row.iter_mut().enumerate() {
            if j > prefix + i {
                *sv = f32::NEG_INFINITY;
            } else {
                *sv *= scale;
            }
        }
        softmax_row(row);
    }
    s
}

/// Backward of the fused (prefix-)causal attention ops. The probability
/// matrices are recomputed per head (flash-style) rather than saved on the
/// tape. Shapes: `q` is `[t, dim]`, `k`/`v` are `[prefix+t, dim]`.
fn attention_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    n_heads: usize,
    prefix: usize,
    g: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let head_dim = q.cols / n_heads;
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut dq = Tensor::zeros(q.rows, q.cols);
    let mut dk = Tensor::zeros(k.rows, k.cols);
    let mut dv = Tensor::zeros(v.rows, v.cols);
    for h in 0..n_heads {
        let qh = gather_head(q, h, head_dim);
        let kh = gather_head(k, h, head_dim);
        let vh = gather_head(v, h, head_dim);
        let gh = gather_head(g, h, head_dim);
        let p = prefix_causal_probs(&qh, &kh, head_dim, prefix);
        // out = p · vh  ⇒  dvh = pᵀ · gh, dp = gh · vhᵀ.
        let dvh = p.transpose().matmul(&gh);
        let dp = gh.matmul_transposed(&vh);
        // Softmax backward per row; masked entries have p = 0 ⇒ ds = 0.
        let mut ds = dp;
        for i in 0..ds.rows {
            let pr = p.row(i);
            let dr = ds.row_mut(i);
            let s = dot(dr, pr);
            for (x, &pv) in dr.iter_mut().zip(pr) {
                *x = pv * (*x - s);
            }
        }
        // s = scale · qh · khᵀ (masked) ⇒ dqh = scale · ds · kh,
        // dkh = scale · dsᵀ · qh.
        let mut dqh = ds.matmul(&kh);
        for x in dqh.data.iter_mut() {
            *x *= scale;
        }
        let mut dkh = ds.transpose().matmul(&qh);
        for x in dkh.data.iter_mut() {
            *x *= scale;
        }
        scatter_head(&mut dq, &dqh, h, head_dim);
        scatter_head(&mut dk, &dkh, h, head_dim);
        scatter_head(&mut dv, &dvh, h, head_dim);
    }
    (dq, dk, dv)
}

/// Softmax probability matrix `[t, 2t]` for one TdAttention head: columns
/// `0..t` index the target keys, columns `t..2t` the draft keys. Query `i`
/// sees target column `j` iff `j + window ≤ i` and draft column `j` iff
/// `j ≤ i < j + window`. Both score blocks (`S1 = q·tkᵀ`, `S2 = q·dkᵀ`)
/// are computed once up front and only indexed per row — the O(t²)
/// optimized path from DESIGN.md §2.8.
fn td_probs(qh: &Tensor, tkh: &Tensor, dkh: &Tensor, head_dim: usize, window: usize) -> Tensor {
    let scale = 1.0 / (head_dim as f32).sqrt();
    let t = qh.rows;
    let s1 = qh.matmul_transposed(tkh);
    let s2 = qh.matmul_transposed(dkh);
    let mut s = Tensor::zeros(t, 2 * t);
    for i in 0..t {
        let row = s.row_mut(i);
        for j in 0..t {
            row[j] = if j + window <= i {
                s1.row(i)[j] * scale
            } else {
                f32::NEG_INFINITY
            };
            row[t + j] = if j <= i && i < j + window {
                s2.row(i)[j] * scale
            } else {
                f32::NEG_INFINITY
            };
        }
        softmax_row(row);
    }
    s
}

/// Split `[t, 2c]` into two `[t, c]` halves (left | right).
fn split_cols(p: &Tensor, c: usize) -> (Tensor, Tensor) {
    let mut left = Tensor::zeros(p.rows, c);
    let mut right = Tensor::zeros(p.rows, c);
    for i in 0..p.rows {
        let row = p.row(i);
        left.row_mut(i).copy_from_slice(&row[..c]);
        right.row_mut(i).copy_from_slice(&row[c..]);
    }
    (left, right)
}

/// Backward of [`Tape::td_attention`]. Equivalent to masked attention over
/// the stacked key/value matrices `[K; K']`, `[V; V']` (`[2t, dim]` per
/// head) with the TD visibility mask; probabilities are recomputed per head
/// (flash-style), masked entries have `p = 0` so their score gradient
/// vanishes, and the stacked gradients split back to the four K/V inputs.
#[allow(clippy::too_many_arguments)]
fn td_attention_backward(
    q: &Tensor,
    tk: &Tensor,
    dk: &Tensor,
    tv: &Tensor,
    dv: &Tensor,
    n_heads: usize,
    window: usize,
    g: &Tensor,
) -> (Tensor, Tensor, Tensor, Tensor, Tensor) {
    let head_dim = q.cols / n_heads;
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut dq = Tensor::zeros(q.rows, q.cols);
    let mut dtk = Tensor::zeros(tk.rows, tk.cols);
    let mut dtv = Tensor::zeros(tv.rows, tv.cols);
    let mut ddk = Tensor::zeros(dk.rows, dk.cols);
    let mut ddv = Tensor::zeros(dv.rows, dv.cols);
    for h in 0..n_heads {
        let qh = gather_head(q, h, head_dim);
        let tkh = gather_head(tk, h, head_dim);
        let dkh = gather_head(dk, h, head_dim);
        let tvh = gather_head(tv, h, head_dim);
        let dvh = gather_head(dv, h, head_dim);
        let gh = gather_head(g, h, head_dim);
        let p = td_probs(&qh, &tkh, &dkh, head_dim, window);
        let (pt, pd) = split_cols(&p, qh.rows);
        // out = pt·tvh + pd·dvh  ⇒  dtvh = ptᵀ·gh, ddvh = pdᵀ·gh,
        // dp = [gh·tvhᵀ | gh·dvhᵀ].
        let dtvh = pt.transpose().matmul(&gh);
        let ddvh = pd.transpose().matmul(&gh);
        let dpt = gh.matmul_transposed(&tvh);
        let dpd = gh.matmul_transposed(&dvh);
        let mut ds = Tensor::zeros(p.rows, p.cols);
        for i in 0..p.rows {
            let row = ds.row_mut(i);
            row[..qh.rows].copy_from_slice(dpt.row(i));
            row[qh.rows..].copy_from_slice(dpd.row(i));
        }
        // Softmax backward per row over the combined visible set.
        for i in 0..ds.rows {
            let pr = p.row(i);
            let dr = ds.row_mut(i);
            let s = dot(dr, pr);
            for (x, &pv) in dr.iter_mut().zip(pr) {
                *x = pv * (*x - s);
            }
        }
        let (dst, dsd) = split_cols(&ds, qh.rows);
        // s1 = scale·qh·tkhᵀ, s2 = scale·qh·dkhᵀ (masked) ⇒
        // dqh = scale·(dst·tkh + dsd·dkh), dtkh = scale·dstᵀ·qh, ….
        let mut dqh = dst.matmul(&tkh);
        add_assign(&mut dqh.data, &dsd.matmul(&dkh).data);
        for x in dqh.data.iter_mut() {
            *x *= scale;
        }
        let mut dtkh = dst.transpose().matmul(&qh);
        for x in dtkh.data.iter_mut() {
            *x *= scale;
        }
        let mut ddkh = dsd.transpose().matmul(&qh);
        for x in ddkh.data.iter_mut() {
            *x *= scale;
        }
        scatter_head(&mut dq, &dqh, h, head_dim);
        scatter_head(&mut dtk, &dtkh, h, head_dim);
        scatter_head(&mut dtv, &dtvh, h, head_dim);
        scatter_head(&mut ddk, &ddkh, h, head_dim);
        scatter_head(&mut ddv, &ddvh, h, head_dim);
    }
    (dq, dtk, dtv, ddk, ddv)
}

/// Naive per-position reference for [`Tape::td_attention`]: for every query
/// row it gathers the visible target/draft key–value pairs one by one,
/// computes scores with explicit dot products, and softmaxes just that set.
/// Same O(t²·d) asymptotics but none of the precomputed-score indexing —
/// tests pin the optimized kernel against this, per DESIGN.md §2.8.
pub fn td_attention_reference(
    q: &Tensor,
    tk: &Tensor,
    tv: &Tensor,
    dk: &Tensor,
    dv: &Tensor,
    n_heads: usize,
    window: usize,
) -> Tensor {
    assert!(window >= 1, "TdAttention window must be at least 1");
    let head_dim = q.cols / n_heads;
    assert_eq!(head_dim * n_heads, q.cols, "dim must divide into heads");
    let scale = 1.0 / (head_dim as f32).sqrt();
    let t = q.rows;
    let mut out = Tensor::zeros(t, q.cols);
    for h in 0..n_heads {
        let cols = h * head_dim..(h + 1) * head_dim;
        for i in 0..t {
            // Visible set for query i: target rows j ≤ i−w, then draft
            // rows i−w < j ≤ i (at least the draft row j = i).
            let mut keys: Vec<&[f32]> = Vec::new();
            let mut vals: Vec<&[f32]> = Vec::new();
            for j in 0..t {
                if j + window <= i {
                    keys.push(&tk.row(j)[cols.clone()]);
                    vals.push(&tv.row(j)[cols.clone()]);
                }
            }
            for j in 0..t {
                if j <= i && i < j + window {
                    keys.push(&dk.row(j)[cols.clone()]);
                    vals.push(&dv.row(j)[cols.clone()]);
                }
            }
            let qi = &q.row(i)[cols.clone()];
            let mut scores: Vec<f32> = keys.iter().map(|kj| dot(qi, kj) * scale).collect();
            softmax_row(&mut scores);
            let oi = &mut out.row_mut(i)[cols.clone()];
            for (p, vj) in scores.iter().zip(&vals) {
                for (o, &x) in oi.iter_mut().zip(*vj) {
                    *o += p * x;
                }
            }
        }
    }
    out
}

/// Backward of row-wise RMS norm (`y = x ⊙ gain / rms(x)`).
fn rms_norm_backward(x: &Tensor, gain: &Tensor, eps: f32, g: &Tensor) -> (Tensor, Tensor) {
    let d = x.cols as f32;
    let mut dx = Tensor::zeros(x.rows, x.cols);
    let mut dgain = Tensor::zeros(1, x.cols);
    for i in 0..x.rows {
        let xr = x.row(i);
        let gr = g.row(i);
        let ms: f32 = xr.iter().map(|v| v * v).sum::<f32>() / d;
        let inv = 1.0 / (ms + eps).sqrt();
        // s = Σⱼ gⱼ · gainⱼ · xⱼ (the shared term from d(1/rms)/dx).
        let mut s = 0.0f32;
        for j in 0..x.cols {
            s += gr[j] * gain.data[j] * xr[j];
            dgain.data[j] += gr[j] * xr[j] * inv;
        }
        let dxr = dx.row_mut(i);
        let c = inv * inv * inv * s / d;
        for j in 0..x.cols {
            dxr[j] = gain.data[j] * inv * gr[j] - c * xr[j];
        }
    }
    (dx, dgain)
}

#[cfg(test)]
mod tests {
    use super::check::{fd_check, weighted_sum};
    use super::*;
    use aasd_tensor::Rng;

    fn randn(rng: &mut Rng, r: usize, c: usize) -> Tensor {
        Tensor::randn(rng, r, c, 1.0)
    }

    /// Random probability rows (for the KL teacher).
    fn prob_rows(rng: &mut Rng, r: usize, c: usize) -> Tensor {
        let mut t = Tensor::zeros(r, c);
        for i in 0..r {
            let row = t.row_mut(i);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = rng.uniform(0.05, 1.0);
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        t
    }

    #[test]
    fn gradcheck_matmul() {
        let mut rng = Rng::new(1);
        let leaves = [randn(&mut rng, 3, 4), randn(&mut rng, 4, 2)];
        fd_check(&leaves, &|tape, ids| {
            let c = tape.matmul(ids[0], ids[1]);
            weighted_sum(tape, c, 0xA1)
        });
    }

    #[test]
    fn gradcheck_add_mul_scale() {
        let mut rng = Rng::new(2);
        let leaves = [randn(&mut rng, 3, 5), randn(&mut rng, 3, 5)];
        fd_check(&leaves, &|tape, ids| {
            let a = tape.add(ids[0], ids[1]);
            let m = tape.mul(a, ids[1]);
            let s = tape.scale(m, 0.7);
            weighted_sum(tape, s, 0xB1)
        });
    }

    #[test]
    fn gradcheck_sum() {
        let mut rng = Rng::new(3);
        let leaves = [randn(&mut rng, 2, 6)];
        fd_check(&leaves, &|tape, ids| tape.sum(ids[0]));
    }

    #[test]
    fn gradcheck_embed_gather() {
        let mut rng = Rng::new(4);
        let leaves = [randn(&mut rng, 6, 3)];
        // Repeated token 2 exercises gradient accumulation in the scatter.
        fd_check(&leaves, &|tape, ids| {
            let e = tape.embed_gather(ids[0], &[2, 0, 5, 2]);
            weighted_sum(tape, e, 0xD1)
        });
    }

    #[test]
    fn gradcheck_silu() {
        let mut rng = Rng::new(5);
        let leaves = [randn(&mut rng, 2, 7)];
        fd_check(&leaves, &|tape, ids| {
            let y = tape.silu(ids[0]);
            weighted_sum(tape, y, 0xE1)
        });
    }

    #[test]
    fn gradcheck_rms_norm() {
        let mut rng = Rng::new(6);
        let leaves = [randn(&mut rng, 3, 6), randn(&mut rng, 1, 6)];
        fd_check(&leaves, &|tape, ids| {
            let y = tape.rms_norm(ids[0], ids[1], 1e-5);
            weighted_sum(tape, y, 0xF1)
        });
    }

    #[test]
    fn gradcheck_softmax() {
        let mut rng = Rng::new(7);
        let leaves = [randn(&mut rng, 3, 5)];
        fd_check(&leaves, &|tape, ids| {
            let y = tape.softmax(ids[0]);
            weighted_sum(tape, y, 0xA2)
        });
    }

    #[test]
    fn gradcheck_log_softmax() {
        let mut rng = Rng::new(8);
        let leaves = [randn(&mut rng, 3, 5)];
        fd_check(&leaves, &|tape, ids| {
            let y = tape.log_softmax(ids[0]);
            weighted_sum(tape, y, 0xB2)
        });
    }

    #[test]
    fn gradcheck_cross_entropy() {
        let mut rng = Rng::new(9);
        let leaves = [randn(&mut rng, 4, 6)];
        fd_check(&leaves, &|tape, ids| {
            tape.cross_entropy(ids[0], &[1, 5, 0, 3])
        });
    }

    #[test]
    fn gradcheck_kl_div() {
        let mut rng = Rng::new(10);
        let leaves = [randn(&mut rng, 4, 6)];
        let teacher = prob_rows(&mut rng, 4, 6);
        fd_check(&leaves, &move |tape, ids| {
            tape.kl_div(ids[0], teacher.clone())
        });
    }

    #[test]
    fn gradcheck_rope() {
        let mut rng = Rng::new(11);
        let (t, n_heads, head_dim) = (3, 2, 4);
        let leaves = [randn(&mut rng, t, n_heads * head_dim)];
        // Arbitrary (not necessarily orthogonal) tables still define a
        // linear map; backward must be its exact transpose.
        let cos: Vec<f32> = (0..t * head_dim / 2)
            .map(|_| rng.uniform(-1.0, 1.0))
            .collect();
        let sin: Vec<f32> = (0..t * head_dim / 2)
            .map(|_| rng.uniform(-1.0, 1.0))
            .collect();
        fd_check(&leaves, &move |tape, ids| {
            let y = tape.rope(ids[0], n_heads, cos.clone(), sin.clone());
            weighted_sum(tape, y, 0xE2)
        });
    }

    #[test]
    fn gradcheck_causal_attention() {
        let mut rng = Rng::new(12);
        let (t, dim) = (4, 8);
        let leaves = [
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
        ];
        fd_check(&leaves, &|tape, ids| {
            let y = tape.causal_attention(ids[0], ids[1], ids[2], 2);
            weighted_sum(tape, y, 0xF2)
        });
    }

    #[test]
    fn gradcheck_concat_rows() {
        let mut rng = Rng::new(17);
        let leaves = [randn(&mut rng, 2, 5), randn(&mut rng, 3, 5)];
        fd_check(&leaves, &|tape, ids| {
            let y = tape.concat_rows(ids[0], ids[1]);
            weighted_sum(tape, y, 0xC3)
        });
    }

    #[test]
    fn gradcheck_prefix_causal_attention() {
        let mut rng = Rng::new(18);
        let (t, p, dim) = (3, 2, 8);
        // Leaves: q [t, dim]; prefix K/V [p, dim]; self K/V [t, dim] —
        // concat_rows builds the [p+t, dim] key/value stacks on the tape,
        // so the prefix rows' gradients flow through the same path the
        // KvProjector training uses.
        let leaves = [
            randn(&mut rng, t, dim),
            randn(&mut rng, p, dim),
            randn(&mut rng, t, dim),
            randn(&mut rng, p, dim),
            randn(&mut rng, t, dim),
        ];
        fd_check(&leaves, &|tape, ids| {
            let k = tape.concat_rows(ids[1], ids[2]);
            let v = tape.concat_rows(ids[3], ids[4]);
            let y = tape.prefix_causal_attention(ids[0], k, v, 2, p);
            weighted_sum(tape, y, 0xD3)
        });
    }

    /// With `prefix = 0`, prefix attention must equal causal attention
    /// exactly — same forward values, same gradients.
    #[test]
    fn prefix_attention_with_zero_prefix_is_causal_attention() {
        let mut rng = Rng::new(19);
        let (t, dim, heads) = (4, 8, 2);
        let (q, k, v) = (
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
        );
        let run = |use_prefix: bool| {
            let mut tape = Tape::new();
            let qi = tape.leaf(q.clone());
            let ki = tape.leaf(k.clone());
            let vi = tape.leaf(v.clone());
            let y = if use_prefix {
                tape.prefix_causal_attention(qi, ki, vi, heads, 0)
            } else {
                tape.causal_attention(qi, ki, vi, heads)
            };
            let s = weighted_sum(&mut tape, y, 0xE3);
            let grads = tape.backward(s);
            (
                tape.value(y).data.clone(),
                grads.get(qi).unwrap().data.clone(),
                grads.get(ki).unwrap().data.clone(),
            )
        };
        let (ya, dqa, dka) = run(false);
        let (yb, dqb, dkb) = run(true);
        assert_eq!(ya, yb);
        assert_eq!(dqa, dqb);
        assert_eq!(dka, dkb);
    }

    #[test]
    fn gradcheck_td_attention() {
        let mut rng = Rng::new(21);
        let (t, dim) = (4, 8);
        // Leaves: q, target K/V, draft K/V — all gradient sinks, like the
        // distillation wiring where target rows are tape leaves.
        let leaves = [
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
        ];
        fd_check(&leaves, &|tape, ids| {
            let y = tape.td_attention(ids[0], ids[1], ids[2], ids[3], ids[4], 2, 2);
            weighted_sum(tape, y, 0xA4)
        });
    }

    #[test]
    fn gradcheck_td_attention_window_one() {
        let mut rng = Rng::new(22);
        let (t, dim) = (3, 8);
        // w = 1: each query sees only its own draft key plus all strictly
        // older target keys — the tightest window the loss uses.
        let leaves = [
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
            randn(&mut rng, t, dim),
        ];
        fd_check(&leaves, &|tape, ids| {
            let y = tape.td_attention(ids[0], ids[1], ids[2], ids[3], ids[4], 4, 1);
            weighted_sum(tape, y, 0xB4)
        });
    }

    /// The optimized precomputed-score kernel must match the naive
    /// per-position reference for every window, per DESIGN.md §2.8.
    #[test]
    fn td_attention_matches_naive_reference() {
        let mut rng = Rng::new(23);
        let (t, dim, heads) = (5, 8, 2);
        let q = randn(&mut rng, t, dim);
        let tk = randn(&mut rng, t, dim);
        let tv = randn(&mut rng, t, dim);
        let dk = randn(&mut rng, t, dim);
        let dv = randn(&mut rng, t, dim);
        for window in 1..=t + 1 {
            let mut tape = Tape::new();
            let ids: Vec<VarId> = [&q, &tk, &tv, &dk, &dv]
                .iter()
                .map(|x| tape.leaf((*x).clone()))
                .collect();
            let y = tape.td_attention(ids[0], ids[1], ids[2], ids[3], ids[4], heads, window);
            let naive = td_attention_reference(&q, &tk, &tv, &dk, &dv, heads, window);
            for (a, b) in tape.value(y).data.iter().zip(&naive.data) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "optimized {a} vs naive {b} at window {window}"
                );
            }
        }
    }

    /// With `window ≥ t` no target key is ever visible, so TdAttention
    /// collapses to causal self-attention over the draft keys/values.
    #[test]
    fn td_attention_with_large_window_is_causal_over_draft() {
        let mut rng = Rng::new(24);
        let (t, dim, heads) = (4, 8, 2);
        let q = randn(&mut rng, t, dim);
        let tk = randn(&mut rng, t, dim);
        let tv = randn(&mut rng, t, dim);
        let dk = randn(&mut rng, t, dim);
        let dv = randn(&mut rng, t, dim);
        let mut tape = Tape::new();
        let ids: Vec<VarId> = [&q, &tk, &tv, &dk, &dv]
            .iter()
            .map(|x| tape.leaf((*x).clone()))
            .collect();
        let y = tape.td_attention(ids[0], ids[1], ids[2], ids[3], ids[4], heads, t);
        let c = tape.causal_attention(ids[0], ids[3], ids[4], heads);
        for (a, b) in tape.value(y).data.iter().zip(&tape.value(c).data) {
            assert!((a - b).abs() < 1e-6, "td {a} vs causal {b}");
        }
    }

    /// Composite graph: every op chained at once still gradchecks — guards
    /// against accumulation bugs at fan-out nodes.
    #[test]
    fn gradcheck_composite_graph() {
        let mut rng = Rng::new(13);
        let leaves = [
            randn(&mut rng, 5, 4),
            randn(&mut rng, 4, 5),
            randn(&mut rng, 1, 5),
        ];
        fd_check(&leaves, &|tape, ids| {
            let e = tape.embed_gather(ids[0], &[0, 3, 1]);
            let h = tape.matmul(e, ids[1]);
            let n = tape.rms_norm(h, ids[2], 1e-5);
            let s = tape.silu(n);
            // `h` consumed twice: rms_norm above and mul below (fan-out).
            let m = tape.mul(s, n);
            tape.cross_entropy(m, &[4, 2, 0])
        });
    }

    #[test]
    fn softmax_value_matches_tensor_kernel() {
        let mut rng = Rng::new(14);
        let x = randn(&mut rng, 3, 7);
        let mut tape = Tape::new();
        let id = tape.leaf(x.clone());
        let y = tape.softmax(id);
        let mut expect = x;
        expect.softmax_rows_inplace();
        assert_eq!(tape.value(y).data, expect.data);
    }

    #[test]
    fn kl_div_is_zero_when_student_matches_teacher() {
        let mut rng = Rng::new(15);
        let logits = randn(&mut rng, 3, 6);
        let mut teacher = logits.clone();
        teacher.softmax_rows_inplace();
        let mut tape = Tape::new();
        let id = tape.leaf(logits);
        let loss = tape.kl_div(id, teacher);
        assert!(tape.value(loss).data[0].abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_ln_vocab() {
        let mut tape = Tape::new();
        let id = tape.leaf(Tensor::zeros(2, 8));
        let loss = tape.cross_entropy(id, &[3, 7]);
        assert!((tape.value(loss).data[0] - (8.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn unreached_nodes_have_no_gradient() {
        let mut rng = Rng::new(16);
        let mut tape = Tape::new();
        let a = tape.leaf(randn(&mut rng, 2, 2));
        let b = tape.leaf(randn(&mut rng, 2, 2));
        let _orphan = tape.silu(b);
        let s = tape.sum(a);
        let grads = tape.backward(s);
        assert!(grads.get(a).is_some());
        assert!(grads.get(b).is_none());
    }
}
