//! Central finite-difference gradient checking.
//!
//! Every autograd op is validated against a symmetric finite difference of
//! its own forward pass: rebuild the graph with one input element nudged
//! ±ε and compare `(f⁺ − f⁻) / 2ε` to the tape gradient. The acceptance
//! bar is relative error < 1e-2 at f32, loose enough for single-precision
//! round-off and tight enough to catch any wrong backward formula.

use crate::{Tape, VarId};
use aasd_tensor::{Rng, Tensor};

/// Relative-error tolerance for f32 central differences.
pub const FD_TOL: f32 = 1e-2;

/// Step size for the central difference (values are O(1) in the checks).
pub const FD_EPS: f32 = 1e-2;

/// Reduce an arbitrary node to a scalar via a seeded random weighted sum,
/// so the finite-difference check is sensitive to every output element
/// (a plain sum lets sign errors cancel).
pub fn weighted_sum(tape: &mut Tape, id: VarId, seed: u64) -> VarId {
    let v = tape.value(id);
    let (rows, cols) = (v.rows, v.cols);
    let mut rng = Rng::new(seed);
    let w = tape.leaf(Tensor::randn(&mut rng, rows, cols, 1.0));
    let m = tape.mul(id, w);
    tape.sum(m)
}

/// Check the tape gradient of `build`'s scalar output with respect to every
/// element of every leaf in `leaves`, against a central finite difference.
/// `build` must be deterministic (it is re-invoked per perturbation) and
/// must return a `[1, 1]` node. Panics on any element whose relative error
/// exceeds [`FD_TOL`]; returns the worst relative error observed.
pub fn fd_check(leaves: &[Tensor], build: &dyn Fn(&mut Tape, &[VarId]) -> VarId) -> f32 {
    let eval = |ls: &[Tensor]| -> f32 {
        let mut tape = Tape::new();
        let ids: Vec<VarId> = ls.iter().map(|t| tape.leaf(t.clone())).collect();
        let root = build(&mut tape, &ids);
        let v = tape.value(root);
        assert_eq!((v.rows, v.cols), (1, 1), "fd_check root must be scalar");
        v.data[0]
    };

    let mut tape = Tape::new();
    let ids: Vec<VarId> = leaves.iter().map(|t| tape.leaf(t.clone())).collect();
    let root = build(&mut tape, &ids);
    let grads = tape.backward(root);

    let mut worst = 0.0f32;
    for (li, leaf) in leaves.iter().enumerate() {
        for e in 0..leaf.data.len() {
            let mut plus = leaves.to_vec();
            plus[li].data[e] += FD_EPS;
            let mut minus = leaves.to_vec();
            minus[li].data[e] -= FD_EPS;
            let fd = (eval(&plus) - eval(&minus)) / (2.0 * FD_EPS);
            let analytic = grads.get(ids[li]).map_or(0.0, |g| g.data[e]);
            let rel = (analytic - fd).abs() / analytic.abs().max(fd.abs()).max(1.0);
            assert!(
                rel < FD_TOL,
                "gradient mismatch: leaf {li} elem {e}: analytic {analytic} vs fd {fd} (rel {rel})"
            );
            worst = worst.max(rel);
        }
    }
    worst
}
