//! `aasd-json` — minimal JSON value writer (std-only `serde_json` stand-in).
//!
//! The build container is offline, so anything that needs to emit JSON —
//! the `perf_snapshot` trajectory files in `aasd-bench` and the serving
//! metrics endpoint in `aasd-serve` — shares this hand-rolled writer
//! instead of duplicating one per crate. Only what those call sites need:
//! objects, arrays, strings, finite numbers, and integers.
//!
//! `aasd-bench` re-exports this module as `aasd_bench::json`, so bench
//! code keeps its historical import path.

/// Escape a string for a JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 as a JSON number (finite; falls back to 0 otherwise,
/// since JSON has no NaN/Inf).
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0".to_string()
    }
}

/// `key: value` pair with a pre-rendered value.
pub fn field(key: &str, rendered_value: &str) -> String {
    format!("\"{}\": {}", escape(key), rendered_value)
}

pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

pub fn object(fields: &[String]) -> String {
    format!("{{{}}}", fields.join(", "))
}

pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_shapes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        let obj = object(&[field("name", &string("x")), field("v", &num(1.5))]);
        assert_eq!(obj, "{\"name\": \"x\", \"v\": 1.500000}");
        assert_eq!(array(&["1".into(), "2".into()]), "[1, 2]");
        assert_eq!(object(&[]), "{}");
    }
}
