//! Resumable, block-granular decode sessions.
//!
//! The fused loops in the crate root run one request to completion inside a
//! single function call — fine for a `main`-style harness, useless for a
//! scheduler that must interleave many requests. [`SpecSession`] and
//! [`ArSession`] factor the **body** of those loops into an explicit state
//! machine: one [`SpecSession::step_block`] call executes exactly one
//! draft-then-verify block (or one plain decode step when there is no room
//! to speculate), then returns control to the caller. A scheduler can run
//! block A of session 1, then block A of session 2, then block B of
//! session 1 — continuous batching at block granularity — and every session
//! still produces output token-identical to the one-shot loop, because the
//! one-shot loops themselves are now thin drivers over these sessions
//! (`speculative_greedy_seeded_ws` = `SpecSession::new` + `step_block` until
//! done). Every existing losslessness/boundary/τ test therefore pins this
//! refactor.
//!
//! Sessions do **not** own the model or the caches; they own only the loop
//! state (pending token, emitted tokens, counters). The caller supplies the
//! same `target`/`draft`/`t_cache`/`d_cache`/`ws` on every step — in the
//! server each session slot owns its caches and workspace, while the models
//! are shared read-only across worker threads.

use crate::adaptive::AdaptiveGamma;
use crate::metrics::SpecStats;
use crate::MAX_GAMMA;
use aasd_nn::{Decoder, KvCache};
use aasd_tensor::{argmax, Workspace};

/// What one [`SpecSession::step_block`] / [`ArSession::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Tokens newly committed to the output by this call.
    pub committed: usize,
    /// True once the session has emitted its full budget; further step
    /// calls are no-ops returning `committed: 0`.
    pub done: bool,
}

/// Resumable fused speculative decoding: the seeded pending-token-fold loop
/// (`speculative_greedy_seeded_ws`) cut at block boundaries.
///
/// Invariants between steps (identical to the one-shot loop's):
/// * `out` ends with the pending token;
/// * `t_cache.len() == t_off + out.len() − 1` and likewise for the draft —
///   **except after the final block**, which skips the rollback exactly as
///   the one-shot loop does (the session is finished; the caches are about
///   to be reset or restored anyway).
#[derive(Debug, Clone)]
pub struct SpecSession {
    pending: u32,
    budget: usize,
    gamma: usize,
    out: Vec<u32>,
    stats: SpecStats,
    t_off: usize,
    d_off: usize,
    done: bool,
    /// Optional per-session γ controller; when set, γ is re-picked from the
    /// running acceptance estimate at the start of every block.
    adaptive: Option<AdaptiveGamma>,
}

impl SpecSession {
    /// Start a session from pre-seeded caches (see
    /// `speculative_greedy_seeded_ws` for the cache contract). `pending` is
    /// the first target-decided token not yet fed to either cache; it is
    /// committed immediately (it was decided by prefill, so it lands in
    /// `SpecStats::prefill_tokens`), which is what makes time-to-first-token
    /// in a server equal to queue wait + prefill, not queue wait + prefill +
    /// first block.
    pub fn new(
        target: &Decoder,
        draft: &Decoder,
        t_cache: &KvCache,
        d_cache: &KvCache,
        pending: u32,
        budget: usize,
        gamma: usize,
    ) -> Self {
        assert!(
            (1..MAX_GAMMA).contains(&gamma),
            "gamma must be in 1..{MAX_GAMMA}"
        );
        // Leased caches may be smaller than the model's context window —
        // the binding bound is whichever is tighter.
        assert!(
            t_cache.len() + budget <= target.cfg.max_seq.min(t_cache.capacity()) + 1,
            "budget exceeds target context window / lease capacity"
        );
        assert!(
            d_cache.len() + budget <= draft.cfg.max_seq.min(d_cache.capacity()) + 1,
            "budget exceeds draft context window / lease capacity"
        );
        let mut s = Self {
            pending,
            budget,
            gamma,
            out: Vec::with_capacity(budget),
            stats: SpecStats::default(),
            t_off: t_cache.len(),
            d_off: d_cache.len(),
            done: budget == 0,
            adaptive: None,
        };
        if !s.done {
            s.out.push(pending);
            s.stats.generated += 1;
            s.stats.prefill_tokens += 1;
            s.done = s.out.len() == s.budget;
        }
        s
    }

    /// Attach an [`AdaptiveGamma`] controller: from the next block on, γ is
    /// chosen per block from the session's own running acceptance rate
    /// instead of staying fixed. Greedy speculative decoding is lossless
    /// under **any** γ schedule, so this changes speed only, never tokens.
    pub fn enable_adaptive_gamma(&mut self, controller: AdaptiveGamma) {
        self.adaptive = Some(controller);
    }

    /// The γ the next block will use (diagnostics).
    #[inline]
    pub fn gamma(&self) -> usize {
        self.adaptive.as_ref().map_or(self.gamma, |a| a.gamma())
    }

    /// Tokens emitted so far (monotone; committed tokens never change).
    #[inline]
    pub fn tokens(&self) -> &[u32] {
        &self.out
    }

    /// Counters so far; final once [`SpecSession::is_done`].
    #[inline]
    pub fn stats(&self) -> &SpecStats {
        &self.stats
    }

    #[inline]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Consume the session, yielding exactly what the one-shot loop returns.
    pub fn into_parts(self) -> (Vec<u32>, SpecStats) {
        (self.out, self.stats)
    }

    /// Execute **one** speculative block: draft up to γ proposals, verify
    /// them (plus the pending token) in a single batched target pass, commit
    /// the accepted prefix. Falls back to one plain decode step when budget
    /// or context leaves no room to speculate. Must be called with the same
    /// models/caches/workspace the session was created against.
    pub fn step_block(
        &mut self,
        target: &Decoder,
        draft: &Decoder,
        t_cache: &mut KvCache,
        d_cache: &mut KvCache,
        ws: &mut Workspace,
    ) -> StepReport {
        if self.done {
            return StepReport {
                committed: 0,
                done: true,
            };
        }
        let before = self.out.len();
        let (t_vocab, d_vocab) = (target.cfg.vocab, draft.cfg.vocab);
        let t_base = t_cache.len();
        let d_base = d_cache.len();
        debug_assert_eq!(t_base, self.t_off + self.out.len() - 1);
        debug_assert_eq!(d_base, self.d_off + self.out.len() - 1);
        // The block feeds g+1 tokens (pending + g proposals) to both caches
        // and commits at most g+1 new tokens; each model bounds g by its own
        // remaining room — the tighter of its context window and its cache
        // lease. `done == false` guarantees budget − out.len() ≥ 1, and the
        // constructor's budget asserts guarantee base + 1 ≤ the bound, so
        // the subtractions cannot underflow.
        let t_room = target.cfg.max_seq.min(t_cache.capacity()) - t_base - 1;
        let d_room = draft.cfg.max_seq.min(d_cache.capacity()) - d_base - 1;
        let room = t_room.min(d_room);
        if let Some(ctl) = &self.adaptive {
            // Bound the controller's proposal by what the lease and budget
            // can still hold, so a cold-start prior can never ask for a
            // depth the collapsed lease lacks room for.
            self.gamma = ctl.gamma_capped(room.min(self.budget - self.out.len() - 1));
        }
        let g = self.gamma.min(self.budget - self.out.len() - 1).min(room);
        if g == 0 {
            // One token of budget or context left: plain fused decode step.
            let mut logits = ws.take(t_vocab);
            target.forward_infer_ws(&[self.pending], t_cache, ws, &mut logits);
            let next = argmax(&logits) as u32;
            ws.give(logits);
            self.out.push(next);
            self.stats.blocks += 1;
            self.stats.generated += 1;
            if self.out.len() < self.budget {
                // Keep the caches in lockstep for the next block.
                let mut dl = ws.take(d_vocab);
                draft.forward_infer_ws(&[self.pending], d_cache, ws, &mut dl);
                ws.give(dl);
            } else {
                self.done = true;
            }
            self.pending = next;
            return StepReport {
                committed: self.out.len() - before,
                done: self.done,
            };
        }

        // Draft phase: feed pending, then each proposal, so the draft cache
        // covers any accepted prefix (g+1 single-token forwards).
        let mut d_logits = ws.take(d_vocab);
        let mut proposals = [0u32; MAX_GAMMA];
        let mut feed = self.pending;
        for p in proposals.iter_mut().take(g) {
            draft.forward_infer_ws(&[feed], d_cache, ws, &mut d_logits);
            feed = argmax(&d_logits) as u32;
            *p = feed;
        }
        draft.forward_infer_ws(&[feed], d_cache, ws, &mut d_logits);
        ws.give(d_logits);
        let proposals = &proposals[..g];

        // Verify phase: ONE (g+1)-token target pass scores the pending token
        // and all g proposals. Row i predicts the token after position
        // t_base+i, i.e. proposals[i] for i < g, bonus for i = g.
        let mut v_logits = ws.take((g + 1) * t_vocab);
        // Build the verify block on the stack (no allocation); γ < MAX_GAMMA
        // is enforced by the constructor.
        let mut block = [0u32; MAX_GAMMA];
        block[0] = self.pending;
        block[1..=g].copy_from_slice(proposals);
        target.forward_infer_ws(&block[..=g], t_cache, ws, &mut v_logits);

        let mut accepted = 0;
        while accepted < g {
            let pred = argmax(&v_logits[accepted * t_vocab..(accepted + 1) * t_vocab]) as u32;
            if pred != proposals[accepted] {
                break;
            }
            accepted += 1;
        }
        let next = argmax(&v_logits[accepted * t_vocab..(accepted + 1) * t_vocab]) as u32;
        ws.give(v_logits);

        self.stats.blocks += 1;
        self.stats.drafted += g;
        self.stats.accepted += accepted;
        if let Some(ctl) = &mut self.adaptive {
            ctl.observe(g, accepted);
        }
        // Commit the accepted prefix plus the new pending token, clamped to
        // the remaining budget (invariant: stats.generated == out.len()).
        let commit = (accepted + 1).min(self.budget - self.out.len());
        self.stats.generated += commit;
        self.out
            .extend_from_slice(&proposals[..commit.min(accepted)]);
        if commit > accepted {
            self.out.push(next);
        }
        if self.out.len() >= self.budget {
            // Final block: skip the rollback, exactly like the one-shot loop.
            self.done = true;
            return StepReport {
                committed: self.out.len() - before,
                done: true,
            };
        }
        // Roll both caches back to the committed frontier; the new pending
        // token is fed as part of the NEXT block's verify pass.
        t_cache.truncate(t_base + 1 + accepted);
        d_cache.truncate(d_base + 1 + accepted);
        self.pending = next;
        StepReport {
            committed: self.out.len() - before,
            done: false,
        }
    }
}

/// Resumable fused autoregressive decoding: the seeded greedy loop
/// (`autoregressive_greedy_seeded_ws`) cut at single-token granularity, so
/// a scheduler can interleave AR sessions exactly like speculative ones
/// (one "block" = one token). This is the serving baseline speculative
/// scheduling is benchmarked against.
#[derive(Debug, Clone)]
pub struct ArSession {
    pending: u32,
    budget: usize,
    out: Vec<u32>,
    done: bool,
}

impl ArSession {
    /// Start from a pre-seeded cache; `pending` is the first target-decided
    /// token not yet fed back (committed immediately, mirroring
    /// [`SpecSession::new`]).
    pub fn new(target: &Decoder, cache: &KvCache, pending: u32, budget: usize) -> Self {
        assert!(
            cache.len() + budget <= target.cfg.max_seq.min(cache.capacity()) + 1,
            "budget exceeds context window / lease capacity"
        );
        let mut s = Self {
            pending,
            budget,
            out: Vec::with_capacity(budget),
            done: budget == 0,
        };
        if !s.done {
            s.out.push(pending);
            s.done = s.out.len() == s.budget;
        }
        s
    }

    #[inline]
    pub fn tokens(&self) -> &[u32] {
        &self.out
    }

    #[inline]
    pub fn is_done(&self) -> bool {
        self.done
    }

    pub fn into_tokens(self) -> Vec<u32> {
        self.out
    }

    /// Decode one token: feed the pending token, commit its argmax.
    pub fn step(
        &mut self,
        target: &Decoder,
        cache: &mut KvCache,
        ws: &mut Workspace,
    ) -> StepReport {
        if self.done {
            return StepReport {
                committed: 0,
                done: true,
            };
        }
        let mut logits = ws.take(target.cfg.vocab);
        target.forward_infer_ws(&[self.pending], cache, ws, &mut logits);
        let next = argmax(&logits) as u32;
        ws.give(logits);
        self.out.push(next);
        self.pending = next;
        self.done = self.out.len() == self.budget;
        StepReport {
            committed: 1,
            done: self.done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{autoregressive_greedy_with_budget, speculative_greedy_with_budget_ws};
    use aasd_nn::DecoderConfig;
    use aasd_tensor::Rng;

    fn tiny(seed: u64) -> Decoder {
        Decoder::new(DecoderConfig::tiny(40), seed)
    }

    fn prefill(model: &Decoder, prompt: &[u32], ws: &mut Workspace) -> (KvCache, u32) {
        let vocab = model.cfg.vocab;
        let mut cache = model.new_cache();
        let mut logits = ws.take(prompt.len() * vocab);
        model.forward_infer_ws(prompt, &mut cache, ws, &mut logits);
        let pending = argmax(&logits[(prompt.len() - 1) * vocab..]) as u32;
        ws.give(logits);
        (cache, pending)
    }

    /// Two sessions interleaved block-by-block on one workspace must each
    /// produce exactly what a dedicated one-shot loop produces — the
    /// property that makes continuous batching lossless.
    #[test]
    fn interleaved_sessions_match_one_shot_loops() {
        let target = tiny(10);
        let draft = tiny(20);
        let mut ws = Workspace::new();
        let p1 = [3u32, 7, 1, 9];
        let p2 = [5u32, 2];
        let (want1, stats1) =
            speculative_greedy_with_budget_ws(&target, &draft, &p1, 25, 3, &mut ws);
        let (want2, stats2) =
            speculative_greedy_with_budget_ws(&target, &draft, &p2, 18, 5, &mut ws);

        let (mut tc1, pend1) = prefill(&target, &p1, &mut ws);
        let (mut dc1, _) = prefill(&draft, &p1, &mut ws);
        let (mut tc2, pend2) = prefill(&target, &p2, &mut ws);
        let (mut dc2, _) = prefill(&draft, &p2, &mut ws);
        let mut s1 = SpecSession::new(&target, &draft, &tc1, &dc1, pend1, 25, 3);
        let mut s2 = SpecSession::new(&target, &draft, &tc2, &dc2, pend2, 18, 5);

        // Strict alternation; one session finishes first, the other keeps
        // stepping alone.
        while !s1.is_done() || !s2.is_done() {
            s1.step_block(&target, &draft, &mut tc1, &mut dc1, &mut ws);
            s2.step_block(&target, &draft, &mut tc2, &mut dc2, &mut ws);
        }
        let (out1, got_stats1) = s1.into_parts();
        let (out2, got_stats2) = s2.into_parts();
        assert_eq!(out1, want1);
        assert_eq!(out2, want2);
        assert_eq!(got_stats1, stats1);
        assert_eq!(got_stats2, stats2);
    }

    /// StepReport totals must reconcile with the emitted token count, and a
    /// finished session must refuse further work.
    #[test]
    fn step_reports_account_for_every_token() {
        let target = tiny(30);
        let draft = tiny(31);
        let mut ws = Workspace::new();
        let p = [1u32, 2, 3];
        let budget = 17;
        let (mut tc, pending) = prefill(&target, &p, &mut ws);
        let (mut dc, _) = prefill(&draft, &p, &mut ws);
        let mut s = SpecSession::new(&target, &draft, &tc, &dc, pending, budget, 4);
        let mut committed = s.tokens().len(); // the pending token
        assert_eq!(committed, 1);
        while !s.is_done() {
            let r = s.step_block(&target, &draft, &mut tc, &mut dc, &mut ws);
            assert!(r.committed >= 1, "an unfinished step must commit");
            committed += r.committed;
        }
        assert_eq!(committed, budget);
        assert_eq!(s.tokens().len(), budget);
        let r = s.step_block(&target, &draft, &mut tc, &mut dc, &mut ws);
        assert_eq!(
            r,
            StepReport {
                committed: 0,
                done: true
            }
        );
    }

    /// The AR session stepped to completion equals the reference loop.
    #[test]
    fn ar_session_matches_reference() {
        let target = tiny(40);
        let mut ws = Workspace::new();
        let p = [4u32, 4, 2];
        let budget = 12;
        let want = autoregressive_greedy_with_budget(&target, &p, budget);
        let (mut cache, pending) = prefill(&target, &p, &mut ws);
        let mut s = ArSession::new(&target, &cache, pending, budget);
        while !s.is_done() {
            s.step(&target, &mut cache, &mut ws);
        }
        assert_eq!(s.into_tokens(), want);
    }

    /// Zero-budget sessions are born done and commit nothing.
    #[test]
    fn zero_budget_session_is_immediately_done() {
        let target = tiny(50);
        let draft = tiny(51);
        let mut ws = Workspace::new();
        let (tc, pending) = prefill(&target, &[1, 2], &mut ws);
        let (dc, _) = prefill(&draft, &[1, 2], &mut ws);
        let s = SpecSession::new(&target, &draft, &tc, &dc, pending, 0, 3);
        assert!(s.is_done());
        assert!(s.tokens().is_empty());
        let a = ArSession::new(&target, &tc, pending, 0);
        assert!(a.is_done());
    }

    /// Budget-1 sessions commit exactly the pending token at construction.
    #[test]
    fn budget_one_session_emits_only_pending() {
        let target = tiny(52);
        let draft = tiny(53);
        let mut ws = Workspace::new();
        let mut rng = Rng::new(4);
        let p: Vec<u32> = (0..3).map(|_| rng.below(40) as u32).collect();
        let (tc, pending) = prefill(&target, &p, &mut ws);
        let (dc, _) = prefill(&draft, &p, &mut ws);
        let s = SpecSession::new(&target, &draft, &tc, &dc, pending, 1, 3);
        assert!(s.is_done());
        assert_eq!(s.tokens(), &[pending]);
        let (out, stats) = s.into_parts();
        assert_eq!(out, vec![pending]);
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.prefill_tokens, 1);
        assert_eq!(stats.blocks, 0);
    }
}
