//! Calibrated memory-bound device clock.
//!
//! Speculative decoding's economics live on accelerators where small-batch
//! decoding is **memory-bandwidth bound**: every decode step streams the
//! full weight set through the memory hierarchy, so a forward pass costs
//! roughly `bytes / bandwidth` regardless of how many tokens it scores (up
//! to the arithmetic-intensity knee). A batched verify of γ+1 tokens is
//! therefore ≈ one weight pass, which is the whole reason drafting wins.
//!
//! The CPU-walltime clock in this repo does *not* live in that regime — the
//! sim models are small enough to be compute-bound, and a batched verify
//! costs nearly γ× a single step. [`DeviceClock`] closes the gap with an
//! analytical model parameterized by each model's **real-world analogue**
//! byte footprint: the measured α/τ counts (clock-independent) are combined
//! with per-pass times `bytes / bandwidth + overhead` to report the speedup
//! ω a memory-bound device would see. Both clocks appear side by side in
//! `table1` output; neither replaces the other.

use crate::metrics::SpecStats;

/// Bytes streamed per forward pass for a model with `params` parameters
/// held in fp16 — the footprint that dominates memory-bound decode.
pub fn fp16_bytes(params: f64) -> f64 {
    params * 2.0
}

/// An analytical memory-bound decode clock: one forward pass over a model
/// with weight footprint `bytes` costs `bytes / bandwidth + overhead`,
/// independent of how many tokens the pass scores.
#[derive(Debug, Clone, Copy)]
pub struct DeviceClock {
    /// Effective HBM read bandwidth in bytes/second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed per-pass launch/dispatch overhead in seconds.
    pub pass_overhead_s: f64,
}

impl DeviceClock {
    pub fn new(bandwidth_bytes_per_s: f64, pass_overhead_s: f64) -> Self {
        assert!(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
        assert!(pass_overhead_s >= 0.0, "overhead must be non-negative");
        Self {
            bandwidth_bytes_per_s,
            pass_overhead_s,
        }
    }

    /// An A100-class calibration: ~2 TB/s effective HBM bandwidth and ~20 µs
    /// of kernel-launch overhead per pass.
    pub fn a100() -> Self {
        Self::new(2.0e12, 2.0e-5)
    }

    /// Seconds for one forward pass of a model streaming `bytes` of weights.
    pub fn pass_s(&self, bytes: f64) -> f64 {
        bytes / self.bandwidth_bytes_per_s + self.pass_overhead_s
    }

    /// Seconds the autoregressive baseline spends decoding the run in
    /// `stats`: the tokens it committed after prefill, one target pass each.
    pub fn ar_s(&self, target_bytes: f64, stats: &SpecStats) -> f64 {
        (stats.generated - stats.prefill_tokens) as f64 * self.pass_s(target_bytes)
    }

    /// Seconds the speculative loop spends decoding the run in `stats`:
    /// every drafted token is one draft pass, and every verify block is one
    /// batched target pass (≈ one weight stream in the memory-bound regime —
    /// the fused loop folds the pending resync token into the next block, so
    /// no extra per-block target pass is charged).
    pub fn spec_s(&self, target_bytes: f64, draft_bytes: f64, stats: &SpecStats) -> f64 {
        stats.drafted as f64 * self.pass_s(draft_bytes)
            + stats.blocks as f64 * self.pass_s(target_bytes)
    }

    /// Device-model walltime speedup ω = ar_s / spec_s for the run in
    /// `stats`. Returns 1.0 for an empty run.
    pub fn speedup(&self, target_bytes: f64, draft_bytes: f64, stats: &SpecStats) -> f64 {
        let spec = self.spec_s(target_bytes, draft_bytes, stats);
        if spec == 0.0 {
            return 1.0;
        }
        self.ar_s(target_bytes, stats) / spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_stats(blocks: usize, gamma: usize, accepted: usize) -> SpecStats {
        SpecStats {
            blocks,
            drafted: blocks * gamma,
            accepted,
            generated: accepted + blocks + 1,
            prefill_tokens: 1,
        }
    }

    #[test]
    fn pass_time_scales_with_bytes() {
        let clock = DeviceClock::new(1e12, 0.0);
        assert!((clock.pass_s(1e9) - 1e-3).abs() < 1e-12);
        assert!(clock.pass_s(fp16_bytes(7e9)) > clock.pass_s(fp16_bytes(112e6)));
    }

    /// With a tiny draft and full acceptance, the device speedup approaches
    /// the block size γ+1 — the textbook memory-bound limit.
    #[test]
    fn full_acceptance_approaches_gamma_plus_one() {
        let clock = DeviceClock::new(2e12, 0.0);
        let gamma = 4;
        let stats = run_stats(10, gamma, 10 * gamma);
        let omega = clock.speedup(fp16_bytes(7e9), fp16_bytes(7e6), &stats);
        assert!(
            omega > (gamma as f64 + 1.0) * 0.95,
            "omega {omega} should approach gamma+1"
        );
    }

    /// Zero acceptance with a non-free draft must report ω < 1 — the model
    /// has to be able to say speculation *loses*.
    #[test]
    fn zero_acceptance_loses() {
        let clock = DeviceClock::a100();
        let stats = run_stats(10, 4, 0);
        let omega = clock.speedup(fp16_bytes(7e9), fp16_bytes(112e6), &stats);
        assert!(omega < 1.0, "omega {omega} should be < 1 at alpha = 0");
    }

    /// Larger targets amortize draft cost better: same counts, bigger
    /// target ⇒ bigger ω. This is the 7B→13B trend Table 1 reports.
    #[test]
    fn bigger_target_means_bigger_speedup() {
        let clock = DeviceClock::a100();
        let stats = run_stats(10, 4, 25);
        let draft = fp16_bytes(112e6);
        let small = clock.speedup(fp16_bytes(7e9), draft, &stats);
        let large = clock.speedup(fp16_bytes(13e9), draft, &stats);
        assert!(large > small, "13B {large} should beat 7B {small}");
    }

    #[test]
    fn empty_run_is_neutral() {
        let clock = DeviceClock::a100();
        assert_eq!(
            clock.speedup(fp16_bytes(7e9), fp16_bytes(112e6), &SpecStats::default()),
            1.0
        );
    }
}
