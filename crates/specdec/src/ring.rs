//! Bounded lock-free SPSC token ring with a consumer-initiated rollback
//! handshake — the channel between a free-running draft thread (producer)
//! and the verify leg (consumer) in the async pipeline.
//!
//! ## Ownership rules
//!
//! Exactly one producer and one consumer. The ring itself is `Sync`; the
//! split of authority is by *method*, not by type: the producer may call
//! only [`SpscRing::push`], [`SpscRing::take_rollback`] and
//! [`SpscRing::len`]; the consumer only [`SpscRing::pop`],
//! [`SpscRing::request_rollback`], [`SpscRing::available`] and
//! [`SpscRing::rollback_pending`]. Violating the split loses tokens — it
//! is a protocol bug, not UB (everything is atomics).
//!
//! ## Positions, not indices
//!
//! `head` (consumer-owned) and `tail` (producer-owned) are *absolute*
//! monotone token positions; a slot is addressed as `pos % capacity`. The
//! producer never writes a slot until `tail − head < capacity`, so the
//! consumer always reads fully-published data (slot store Relaxed is
//! ordered by the tail store/load Release/Acquire pair).
//!
//! ## Rollback protocol
//!
//! The consumer is the **commit authority**: tokens in the ring are
//! provisional until the verify leg accepts them. On a rejection the
//! consumer calls [`request_rollback`](SpscRing::request_rollback) with
//! the draft-cache frontier to restore and the corrected token to resume
//! from, then stops popping — [`pop`](SpscRing::pop) returns `None` while
//! the request is unacknowledged. The producer observes the request in
//! [`take_rollback`](SpscRing::take_rollback), discards the ring's
//! contents (every queued token extends the rejected chain), rolls its KV
//! cache back, and acknowledges. At most one rollback can be in flight:
//! the consumer cannot pop — hence cannot verify, hence cannot reject
//! again — until the ack lands.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// A pending rollback observed by the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rollback {
    /// Absolute draft-cache length to restore (rows beyond are rejected).
    pub frontier: usize,
    /// The target-corrected token the draft resumes speculation from.
    pub resume: u32,
}

/// Bounded single-producer/single-consumer token ring. See module docs
/// for the ownership split and the rollback handshake.
#[derive(Debug)]
pub struct SpscRing {
    slots: Box<[AtomicU32]>,
    /// First unconsumed position (consumer-owned; producer reads it).
    head: AtomicUsize,
    /// First unwritten position (producer-owned; consumer reads it, and
    /// the producer's own `take_rollback` may move it *down* to `head`).
    tail: AtomicUsize,
    /// Rollback request sequence number (consumer bumps).
    epoch_req: AtomicU64,
    /// Last acknowledged rollback (producer copies `epoch_req` into it).
    epoch_ack: AtomicU64,
    /// Payload of the in-flight rollback request.
    rb_frontier: AtomicUsize,
    rb_resume: AtomicU32,
}

impl SpscRing {
    /// Ring holding at most `capacity` in-flight tokens. Any capacity ≥ 1
    /// works (no power-of-two requirement: slots are addressed modulo).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        let slots = (0..capacity).map(|_| AtomicU32::new(0)).collect();
        Self {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            epoch_req: AtomicU64::new(0),
            epoch_ack: AtomicU64::new(0),
            rb_frontier: AtomicUsize::new(0),
            rb_resume: AtomicU32::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer: enqueue one provisional token. Returns `false` when the
    /// ring is full (the caller should park, not spin-drop the token).
    ///
    /// Fullness is pre-checked against `head`; only the producer itself
    /// ever moves `tail` (including downward in `take_rollback`), so a
    /// `true` here can never race into an overwrite.
    pub fn push(&self, token: u32) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        debug_assert!(tail >= head, "producer saw tail behind head");
        if tail - head == self.capacity() {
            return false;
        }
        self.slots[tail % self.capacity()].store(token, Ordering::Relaxed);
        // Publish: the consumer's tail Acquire orders the slot read after
        // this store.
        self.tail.store(tail + 1, Ordering::Release);
        true
    }

    /// Producer: tokens currently in flight, from the producer's own view
    /// (used to bound speculation depth).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether the ring holds no in-flight tokens (producer view).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer: check for — and consume — a pending rollback request.
    /// On `Some`, the ring has been drained of the rejected chain and the
    /// producer must restore its KV cache to `frontier` and resume
    /// speculation from `resume` before pushing again.
    pub fn take_rollback(&self) -> Option<Rollback> {
        let req = self.epoch_req.load(Ordering::Acquire);
        if req == self.epoch_ack.load(Ordering::Relaxed) {
            return None;
        }
        // The Acquire above ordered the payload reads after the request.
        let rollback = Rollback {
            frontier: self.rb_frontier.load(Ordering::Relaxed),
            resume: self.rb_resume.load(Ordering::Relaxed),
        };
        // Discard everything queued: it all extends the rejected chain.
        // Safe: the consumer does not pop while a rollback is pending, so
        // `head` is frozen and this cannot strand it above `tail`.
        self.tail
            .store(self.head.load(Ordering::Acquire), Ordering::Release);
        // Ack last: the consumer's pop gate opens only after the drain.
        self.epoch_ack.store(req, Ordering::Release);
        Some(rollback)
    }

    /// Consumer: dequeue the next provisional token. Returns `None` when
    /// the ring is empty **or** a rollback is pending (popping then would
    /// race the producer's drain).
    pub fn pop(&self) -> Option<u32> {
        if self.rollback_pending() {
            return None;
        }
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let token = self.slots[head % self.capacity()].load(Ordering::Relaxed);
        // Release the slot back to the producer.
        self.head.store(head + 1, Ordering::Release);
        Some(token)
    }

    /// Consumer: tokens ready to pop right now (0 while a rollback is
    /// pending, mirroring `pop`).
    pub fn available(&self) -> usize {
        if self.rollback_pending() {
            return 0;
        }
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Consumer: reject the speculated chain. `frontier` is the absolute
    /// draft-cache length to restore; `resume` the corrected token to
    /// speculate from. Panics if a rollback is already pending — the
    /// protocol guarantees the consumer cannot issue two (it stops
    /// popping, so it stops verifying, until the first is acknowledged).
    pub fn request_rollback(&self, frontier: usize, resume: u32) {
        assert!(
            !self.rollback_pending(),
            "rollback requested while one is already in flight"
        );
        self.rb_frontier.store(frontier, Ordering::Relaxed);
        self.rb_resume.store(resume, Ordering::Relaxed);
        // Publish payload + close our own pop gate in one Release bump.
        self.epoch_req.fetch_add(1, Ordering::Release);
    }

    /// Whether a rollback request is awaiting producer acknowledgement.
    pub fn rollback_pending(&self) -> bool {
        self.epoch_req.load(Ordering::Relaxed) != self.epoch_ack.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_capacity() {
        let ring = SpscRing::new(4);
        assert!(ring.is_empty());
        for t in 10..14 {
            assert!(ring.push(t));
        }
        assert!(!ring.push(99), "5th push into a 4-slot ring must fail");
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.available(), 4);
        for t in 10..14 {
            assert_eq!(ring.pop(), Some(t));
        }
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn wraparound_preserves_order() {
        let ring = SpscRing::new(3);
        let mut next_push = 0u32;
        let mut next_pop = 0u32;
        for _ in 0..100 {
            while ring.push(next_push) {
                next_push += 1;
            }
            assert_eq!(ring.pop(), Some(next_pop));
            next_pop += 1;
        }
        while let Some(t) = ring.pop() {
            assert_eq!(t, next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, next_push);
    }

    #[test]
    fn rollback_drains_and_hands_over_payload() {
        let ring = SpscRing::new(8);
        for t in 0..5 {
            ring.push(t);
        }
        assert_eq!(ring.pop(), Some(0));
        ring.request_rollback(7, 42);
        // Consumer side is gated until the producer acknowledges.
        assert!(ring.rollback_pending());
        assert_eq!(ring.pop(), None);
        assert_eq!(ring.available(), 0);
        // Producer may still push stale chain tokens before noticing…
        assert!(ring.push(99));
        // …but take_rollback discards them along with the queued chain.
        assert_eq!(
            ring.take_rollback(),
            Some(Rollback {
                frontier: 7,
                resume: 42
            })
        );
        assert!(!ring.rollback_pending());
        assert!(ring.is_empty());
        assert_eq!(ring.pop(), None);
        // Fresh tokens flow again.
        assert!(ring.push(7));
        assert_eq!(ring.pop(), Some(7));
    }

    #[test]
    fn take_rollback_is_none_when_nothing_pending() {
        let ring = SpscRing::new(2);
        assert_eq!(ring.take_rollback(), None);
        ring.push(1);
        assert_eq!(ring.take_rollback(), None);
        assert_eq!(ring.pop(), Some(1));
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_rollback_request_panics() {
        let ring = SpscRing::new(2);
        ring.request_rollback(0, 1);
        ring.request_rollback(0, 2);
    }

    /// Deterministic hash chains make FIFO + no-loss + no-dup checkable
    /// without recording every token: each side independently evolves
    /// `cur = hash(cur)`, so one lost, duplicated, or reordered token
    /// desynchronizes every subsequent comparison.
    fn chain_hash(x: u32) -> u32 {
        // xorshift-mult mix; full-period enough for stress purposes.
        let mut h = x.wrapping_mul(0x9E37_79B9) ^ 0xDEAD_BEEF;
        h ^= h >> 16;
        h = h.wrapping_mul(0x85EB_CA6B);
        h ^ (h >> 13)
    }

    fn resume_hash(cur: u32, count: u64) -> u32 {
        chain_hash(cur ^ (count as u32).rotate_left(7) ^ 0x5151_5151)
    }

    /// Satellite: 2-thread stress across wrap-around — 1e6 operations of
    /// push/pop/rollback on a deliberately tiny ring, under whatever
    /// thread configuration `AASD_THREADS` selects for the process (the
    /// ring is SPSC by contract; the env var varies scheduler pressure
    /// via ci.sh, not the ring's thread count). Hash-chain equality on
    /// both sides proves FIFO order with no lost or duplicated tokens.
    #[test]
    fn spsc_stress_hash_chain_with_rollbacks() {
        // Small + prime-ish capacity forces constant wrap-around and
        // exercises the non-power-of-two modulo path.
        let ring = Arc::new(SpscRing::new(7));
        let ops: u64 = if cfg!(debug_assertions) {
            200_000
        } else {
            1_000_000
        };
        // Let AASD_THREADS stress reruns scale the workload up (values
        // beyond 1 multiply op count, not thread count — SPSC is fixed).
        let scale: u64 = std::env::var("AASD_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &u64| (1..=8).contains(&n))
            .unwrap_or(1);
        let ops = ops * scale;

        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        // Producer free-runs until the consumer has popped its quota: the
        // draft thread never knows how much of its chain will survive.
        let producer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut cur: u32 = 1;
                let mut rollbacks: u64 = 0;
                while !done.load(Ordering::Acquire) {
                    if let Some(rb) = ring.take_rollback() {
                        cur = rb.resume;
                        rollbacks += 1;
                        continue;
                    }
                    let tok = chain_hash(cur);
                    if ring.push(tok) {
                        cur = tok;
                    } else {
                        // Full ring: hand the CPU to the consumer. A raw
                        // spin_loop burns a whole scheduler slice per
                        // wrap on single-core machines.
                        std::thread::yield_now();
                    }
                }
                rollbacks
            })
        };

        let mut cur: u32 = 1;
        let mut popped: u64 = 0;
        let mut requested: u64 = 0;
        while popped < ops {
            match ring.pop() {
                Some(tok) => {
                    assert_eq!(
                        tok,
                        chain_hash(cur),
                        "chain broken at pop #{popped}: lost/dup/reordered token"
                    );
                    cur = tok;
                    popped += 1;
                    // Sporadic rejection: roll the producer onto a fresh
                    // chain seed and make sure continuity still holds.
                    if popped.is_multiple_of(4_099) {
                        let resume = resume_hash(cur, popped);
                        ring.request_rollback(popped as usize, resume);
                        cur = resume;
                        requested += 1;
                    }
                }
                None => std::thread::yield_now(),
            }
        }
        done.store(true, Ordering::Release);
        let rollbacks = producer.join().unwrap();
        assert_eq!(popped, ops);
        assert!(requested > 0, "stress run must exercise rollback");
        assert!(
            rollbacks >= requested.saturating_sub(1),
            "producer acknowledged only {rollbacks} of {requested} rollbacks"
        );
    }
}
