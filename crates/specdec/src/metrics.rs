//! Run statistics for speculative decoding, matching the paper's metric
//! vocabulary: acceptance rate α and block efficiency τ. Walltime speedup ω
//! and decoding speed δ are measured by the bench harness (they depend on a
//! clock); α and τ are clock-independent counts collected here.

/// Counters accumulated over one speculative generation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Verify blocks executed (target forward passes for scoring).
    pub blocks: usize,
    /// Draft tokens proposed in total.
    pub drafted: usize,
    /// Draft tokens accepted by the target.
    pub accepted: usize,
    /// Tokens committed to the output (accepted + corrections/bonuses),
    /// including any prefill-decided tokens. Invariant: equals the output
    /// length at every loop exit.
    pub generated: usize,
    /// Tokens decided by the prompt prefill alone and committed without a
    /// verify block. The reference loop folds that token into its first
    /// block (so this stays 0); the fused loop emits it up front as the
    /// initial *pending* token (so this is 1 for any non-empty run). Kept
    /// separate so [`SpecStats::block_efficiency`] means the same thing on
    /// both loops.
    pub prefill_tokens: usize,
}

impl SpecStats {
    /// Acceptance rate α: fraction of drafted tokens the target accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.drafted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.drafted as f64
        }
    }

    /// Block efficiency τ: average tokens committed **per target verify
    /// pass**, excluding prefill-decided tokens that never went through a
    /// verify block (≥ 1 whenever a full block ran; upper-bounded by γ+1 on
    /// both the reference and the fused loop — the fused loop's pending
    /// resync token is excluded via [`SpecStats::prefill_tokens`] rather
    /// than inflating τ past the bound).
    pub fn block_efficiency(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            (self.generated - self.prefill_tokens) as f64 / self.blocks as f64
        }
    }

    /// Fold another run's counters into this one (for dataset-level means
    /// and for the serving scheduler, which merges every finished session's
    /// stats into one registry).
    ///
    /// τ convention for seeded/fused loops: each such run commits its first
    /// token straight from prefill and records it in
    /// [`SpecStats::prefill_tokens`] (1 per run), so
    /// [`SpecStats::block_efficiency`] computes
    /// `(generated − prefill_tokens) / blocks` — per-verify-pass tokens
    /// only. Because **all** counters, including `prefill_tokens`, are
    /// plain sums, merging N single-run stats yields `prefill_tokens == N`
    /// and the merged τ is the blocks-weighted mean of the per-run τ values,
    /// still bounded by γ+1. Merging is commutative and associative
    /// (`merge_is_associative_and_commutative` below), so the scheduler may
    /// fold sessions in completion order — which varies with worker
    /// interleaving — and always report the same aggregate α/τ.
    pub fn merge(&mut self, other: &SpecStats) {
        self.blocks += other.blocks;
        self.drafted += other.drafted;
        self.accepted += other.accepted;
        self.generated += other.generated;
        self.prefill_tokens += other.prefill_tokens;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_on_empty_stats_are_zero() {
        let s = SpecStats::default();
        assert_eq!(s.acceptance_rate(), 0.0);
        assert_eq!(s.block_efficiency(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SpecStats {
            blocks: 2,
            drafted: 10,
            accepted: 6,
            generated: 8,
            prefill_tokens: 0,
        };
        let b = SpecStats {
            blocks: 1,
            drafted: 5,
            accepted: 5,
            generated: 6,
            prefill_tokens: 0,
        };
        a.merge(&b);
        assert_eq!(a.blocks, 3);
        assert_eq!(a.drafted, 15);
        assert_eq!(a.accepted, 11);
        assert_eq!(a.generated, 14);
        assert!((a.acceptance_rate() - 11.0 / 15.0).abs() < 1e-12);
        assert!((a.block_efficiency() - 14.0 / 3.0).abs() < 1e-12);
    }

    /// The scheduler merges per-session stats in completion order, which
    /// depends on worker interleaving — so merge must be associative and
    /// commutative, and the seeded-loop τ convention (one `prefill_tokens`
    /// per run, excluded from τ) must survive any grouping.
    #[test]
    fn merge_is_associative_and_commutative() {
        let runs = [
            SpecStats {
                blocks: 3,
                drafted: 9,
                accepted: 7,
                generated: 11,
                prefill_tokens: 1,
            },
            SpecStats {
                blocks: 5,
                drafted: 25,
                accepted: 4,
                generated: 10,
                prefill_tokens: 1,
            },
            SpecStats {
                blocks: 1,
                drafted: 2,
                accepted: 2,
                generated: 4,
                prefill_tokens: 1,
            },
        ];
        let [a, b, c] = runs.clone();

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // Commutativity: fold in reverse completion order.
        let mut rev = SpecStats::default();
        for r in runs.iter().rev() {
            rev.merge(r);
        }
        assert_eq!(left, rev);

        // One prefill token per seeded run, excluded from τ; the merged τ
        // is the blocks-weighted mean of per-run τ values.
        assert_eq!(left.prefill_tokens, 3);
        let want_tau = ((11 - 1) + (10 - 1) + (4 - 1)) as f64 / (3 + 5 + 1) as f64;
        assert!((left.block_efficiency() - want_tau).abs() < 1e-12);
        let per_run_weighted: f64 = runs
            .iter()
            .map(|r| r.block_efficiency() * r.blocks as f64)
            .sum::<f64>()
            / runs.iter().map(|r| r.blocks).sum::<usize>() as f64;
        assert!((left.block_efficiency() - per_run_weighted).abs() < 1e-12);
    }

    /// The fused loop's prefill-decided pending token must not inflate τ:
    /// with γ=2 and full acceptance, 3 blocks commit 9 tokens plus 1
    /// prefill token; τ is 3 (= γ+1), not 10/3.
    #[test]
    fn prefill_tokens_are_excluded_from_block_efficiency() {
        let s = SpecStats {
            blocks: 3,
            drafted: 6,
            accepted: 6,
            generated: 10,
            prefill_tokens: 1,
        };
        assert!((s.block_efficiency() - 3.0).abs() < 1e-12);
        let mut merged = s.clone();
        merged.merge(&s);
        assert_eq!(merged.prefill_tokens, 2);
        assert!((merged.block_efficiency() - 3.0).abs() < 1e-12);
    }
}
