//! Run statistics for speculative decoding, matching the paper's metric
//! vocabulary: acceptance rate α and block efficiency τ. Walltime speedup ω
//! and decoding speed δ are measured by the bench harness (they depend on a
//! clock); α and τ are clock-independent counts collected here.

/// Counters accumulated over one speculative generation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Verify blocks executed (target forward passes for scoring).
    pub blocks: usize,
    /// Draft tokens proposed in total.
    pub drafted: usize,
    /// Draft tokens accepted by the target.
    pub accepted: usize,
    /// Tokens committed to the output (accepted + corrections/bonuses).
    pub generated: usize,
}

impl SpecStats {
    /// Acceptance rate α: fraction of drafted tokens the target accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.drafted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.drafted as f64
        }
    }

    /// Block efficiency τ: average tokens committed per target verify pass
    /// (≥ 1; upper-bounded by γ+1).
    pub fn block_efficiency(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.generated as f64 / self.blocks as f64
        }
    }

    /// Fold another run's counters into this one (for dataset-level means).
    pub fn merge(&mut self, other: &SpecStats) {
        self.blocks += other.blocks;
        self.drafted += other.drafted;
        self.accepted += other.accepted;
        self.generated += other.generated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_on_empty_stats_are_zero() {
        let s = SpecStats::default();
        assert_eq!(s.acceptance_rate(), 0.0);
        assert_eq!(s.block_efficiency(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SpecStats {
            blocks: 2,
            drafted: 10,
            accepted: 6,
            generated: 8,
        };
        let b = SpecStats {
            blocks: 1,
            drafted: 5,
            accepted: 5,
            generated: 6,
        };
        a.merge(&b);
        assert_eq!(a.blocks, 3);
        assert_eq!(a.drafted, 15);
        assert_eq!(a.accepted, 11);
        assert_eq!(a.generated, 14);
        assert!((a.acceptance_rate() - 11.0 / 15.0).abs() < 1e-12);
        assert!((a.block_efficiency() - 14.0 / 3.0).abs() < 1e-12);
    }
}
