//! `aasd-specdec` — speculative decoding engine (greedy/lossless core).
//!
//! Speculative decoding (Leviathan et al. 2023; Gagrani et al. 2024 for the
//! MLLM setting) lets a cheap *draft* model propose γ tokens which the
//! expensive *target* model then scores in **one** batched forward pass —
//! the perf heart of this crate is [`verify_greedy`], which does exactly
//! that over the target's KV cache, against the reference
//! [`verify_greedy_sequential`] that pays γ separate forwards. The greedy
//! loop [`speculative_greedy`] is lossless: its output is token-identical
//! to [`autoregressive_greedy`] on the same target (the root integration
//! tests assert this), because every committed token is argmax under the
//! target's own logits.
//!
//! Greedy acceptance is the one-hot special case of Leviathan rejection
//! sampling; the stochastic version (accept `x'~q` w.p. `min(1, p/q)`)
//! arrives with the training stack in a later PR.

//! Two generations of the loop coexist:
//!
//! * [`speculative_greedy`] / [`autoregressive_greedy`] — the allocating
//!   reference loops, kept unchanged as the semantic oracle (every
//!   invariant test pins them);
//! * [`speculative_greedy_with_budget_ws`] /
//!   [`autoregressive_greedy_with_budget_ws`] — the fused perf loops: all
//!   forwards run on the zero-allocation `forward_infer_ws` path, and the
//!   speculative loop **folds the pending token into the verify block** —
//!   the correction/bonus token of block *n* is scored inside block
//!   *n+1*'s batched pass instead of paying its own single-token resync
//!   forward. That removes one full target pass per block, which on a CPU
//!   clock is the difference between speculative decoding losing and
//!   winning at realistic acceptance rates.
//!
//! Kernel policy rides on the models, not the loops: a `Decoder` switched
//! to `aasd_nn::KernelPolicy::Int8` runs its fused forwards on the int8
//! kernels inside every session and loop here with no API change. The
//! quantized forward is bit-identical between single-token decode and
//! batched verify (per-row kernels), so losslessness (spec ≡ AR on the
//! same target) holds under either policy — and draft and target may run
//! different policies (`tests/int8_equivalence.rs` pins both properties).

pub mod adaptive;
pub mod cost;
pub mod metrics;
pub mod pipeline;
pub mod ring;
pub mod session;
pub mod tree;

pub use adaptive::AdaptiveGamma;
pub use cost::{fp16_bytes, DeviceClock};
pub use metrics::SpecStats;
pub use pipeline::{DraftAhead, DraftStep, VerifyHalf, VerifyReport, CONFIDENCE_STOP};
pub use ring::{Rollback, SpscRing};
pub use session::{ArSession, SpecSession, StepReport};
pub use tree::{
    speculative_tree_seeded_ws, AcceptanceCalibrator, AcceptanceExample, TreeConfig, TreeSession,
    CALIBRATOR_FEATURES,
};

use aasd_nn::{Decoder, KvCache};
use aasd_tensor::{argmax, Tensor, Workspace};

/// Exclusive upper bound on γ, shared by **both** loop generations. The
/// fused loop builds its verify block in a `[u32; MAX_GAMMA]` stack buffer,
/// and the reference loop enforces the same bound so the two paths accept
/// and reject identical γ values (regression-tested below). Any realistic
/// speculative depth is far below this.
pub const MAX_GAMMA: usize = 64;

/// Result of verifying one γ-token draft block against the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Length of the accepted draft prefix (`0..=γ`).
    pub accepted: usize,
    /// The target-sanctioned token that follows the accepted prefix: the
    /// correction token on first mismatch, or the bonus token when the
    /// whole block is accepted.
    pub next_token: u32,
}

/// Batched greedy verify: score all `draft` tokens in a single target
/// forward pass over `cache`.
///
/// On entry `cache` holds the committed context (length `L`) and
/// `frontier_logits` is the target's next-token distribution at position
/// `L` (produced when the last committed token was fed). On exit the cache
/// is rolled back to `L + accepted` — rejected speculative KV entries are
/// discarded in O(1).
pub fn verify_greedy(
    target: &Decoder,
    cache: &mut KvCache,
    frontier_logits: &[f32],
    draft: &[u32],
) -> VerifyOutcome {
    assert!(!draft.is_empty(), "empty draft block");
    let base = cache.len();
    // ONE forward for all γ tokens: 1 weight pass instead of γ.
    let logits = target.forward_infer(draft, cache);

    // Target prediction for draft[i]: frontier for i = 0, else row i-1.
    let mut accepted = 0;
    while accepted < draft.len() {
        let pred = if accepted == 0 {
            argmax(frontier_logits) as u32
        } else {
            argmax(logits.row(accepted - 1)) as u32
        };
        if pred != draft[accepted] {
            cache.truncate(base + accepted);
            return VerifyOutcome {
                accepted,
                next_token: pred,
            };
        }
        accepted += 1;
    }
    // Fully accepted: the last logits row is a free bonus token.
    let bonus = argmax(logits.row(draft.len() - 1)) as u32;
    cache.truncate(base + accepted);
    VerifyOutcome {
        accepted,
        next_token: bonus,
    }
}

/// Reference verify: same semantics as [`verify_greedy`] but paying γ
/// sequential single-token forwards. Kept for the equivalence property test
/// and as the baseline the `verify` bench measures the batched win against.
pub fn verify_greedy_sequential(
    target: &Decoder,
    cache: &mut KvCache,
    frontier_logits: &[f32],
    draft: &[u32],
) -> VerifyOutcome {
    assert!(!draft.is_empty(), "empty draft block");
    let base = cache.len();
    let mut pred = argmax(frontier_logits) as u32;
    for (i, &d) in draft.iter().enumerate() {
        if pred != d {
            cache.truncate(base + i);
            return VerifyOutcome {
                accepted: i,
                next_token: pred,
            };
        }
        let logits = target.forward_infer(&[d], cache);
        pred = argmax(logits.row(0)) as u32;
    }
    cache.truncate(base + draft.len());
    VerifyOutcome {
        accepted: draft.len(),
        next_token: pred,
    }
}

/// Greedy autoregressive reference decoder: `max_new` tokens, one target
/// forward each. This is both the correctness oracle for losslessness tests
/// and the walltime baseline speculative decoding is measured against.
pub fn autoregressive_greedy(target: &Decoder, prompt: &[u32], max_new: usize) -> Vec<u32> {
    let budget = decode_budget(target, prompt.len(), max_new);
    autoregressive_greedy_with_budget(target, prompt, budget)
}

/// [`autoregressive_greedy`] with an explicit token budget instead of a
/// `max_new` cap. The true feasible budget is `max_seq − prompt + 1` — one
/// more than [`decode_budget`] hands out — because the final token is
/// emitted without ever being fed back through the cache. Exposing it lets
/// callers (and the g = 0 regression tests) drive decoding flush against
/// the context boundary.
pub fn autoregressive_greedy_with_budget(
    target: &Decoder,
    prompt: &[u32],
    budget: usize,
) -> Vec<u32> {
    assert!(!prompt.is_empty(), "empty prompt");
    assert!(
        budget <= target.cfg.max_seq + 1 - prompt.len(),
        "budget exceeds context window"
    );
    let mut cache = target.new_cache();
    let mut logits = target.forward_infer(prompt, &mut cache);
    let mut out = Vec::with_capacity(budget);
    while out.len() < budget {
        let tok = Decoder::greedy_from_logits(&logits);
        out.push(tok);
        if out.len() == budget {
            break;
        }
        logits = target.forward_infer(&[tok], &mut cache);
    }
    out
}

/// How many new tokens fit under the model's `max_seq` for this prompt,
/// conservatively: every emitted token except the last could be fed back,
/// so this stays one short of the true feasible budget (see
/// [`autoregressive_greedy_with_budget`]).
fn decode_budget(model: &Decoder, prompt_len: usize, max_new: usize) -> usize {
    max_new.min(model.cfg.max_seq.saturating_sub(prompt_len))
}

/// The greedy draft-then-verify loop.
///
/// Per block: the draft proposes up to `gamma` tokens autoregressively on
/// its own cache; [`verify_greedy`] scores them in one batched target pass;
/// the accepted prefix plus the correction/bonus token are committed; both
/// caches are rolled back to the committed frontier. Returns the generated
/// tokens (identical to [`autoregressive_greedy`] on the same target) and
/// the run's [`SpecStats`].
pub fn speculative_greedy(
    target: &Decoder,
    draft: &Decoder,
    prompt: &[u32],
    max_new: usize,
    gamma: usize,
) -> (Vec<u32>, SpecStats) {
    // Respect both models' context windows.
    let budget = decode_budget(target, prompt.len(), max_new).min(decode_budget(
        draft,
        prompt.len(),
        max_new,
    ));
    speculative_greedy_with_budget(target, draft, prompt, budget, gamma)
}

/// [`speculative_greedy`] with an explicit token budget (see
/// [`autoregressive_greedy_with_budget`] for why the feasible budget is one
/// more than [`decode_budget`] grants). At the extended budget the loop can
/// reach a committed frontier with zero context room left to speculate, so
/// this entry point is what exercises the g = 0 plain-decode fallback.
pub fn speculative_greedy_with_budget(
    target: &Decoder,
    draft: &Decoder,
    prompt: &[u32],
    budget: usize,
    gamma: usize,
) -> (Vec<u32>, SpecStats) {
    assert!(!prompt.is_empty(), "empty prompt");
    assert!(
        (1..MAX_GAMMA).contains(&gamma),
        "gamma must be in 1..{MAX_GAMMA}"
    );
    assert!(
        budget <= target.cfg.max_seq.min(draft.cfg.max_seq) + 1 - prompt.len(),
        "budget exceeds context window"
    );

    let mut stats = SpecStats::default();
    let mut out: Vec<u32> = Vec::with_capacity(budget);

    let mut t_cache = target.new_cache();
    let mut frontier = last_row(target.forward_infer(prompt, &mut t_cache));
    let mut d_cache = draft.new_cache();
    let mut d_frontier = last_row(draft.forward_infer(prompt, &mut d_cache));

    while out.len() < budget {
        let committed = t_cache.len();
        debug_assert_eq!(committed, d_cache.len());
        // Cap the block by the remaining token budget and by context room
        // for the speculative extension (+1 for the commit of next_token).
        let room = target
            .cfg
            .max_seq
            .min(draft.cfg.max_seq)
            .saturating_sub(committed + 1);
        let g = gamma.min(budget - out.len()).min(room);
        if g == 0 {
            // No room to speculate: fall back to one plain decode step.
            // Both caches must advance, or the committed frontiers diverge
            // and the next block verifies against a stale draft context.
            let tok = argmax(&frontier) as u32;
            out.push(tok);
            if out.len() < budget {
                frontier = last_row(target.forward_infer(&[tok], &mut t_cache));
                d_frontier = last_row(draft.forward_infer(&[tok], &mut d_cache));
            }
            stats.blocks += 1;
            stats.generated += 1;
            continue;
        }

        // Draft proposes g tokens greedily on its own cache.
        let mut proposals = Vec::with_capacity(g);
        for _ in 0..g {
            let tok = argmax(&d_frontier) as u32;
            proposals.push(tok);
            d_frontier = last_row(draft.forward_infer(&[tok], &mut d_cache));
        }

        // One batched target pass scores the whole block.
        let outcome = verify_greedy(target, &mut t_cache, &frontier, &proposals);

        stats.blocks += 1;
        stats.drafted += g;
        // α measures draft/target alignment, so `accepted` counts every
        // agreement, even one the budget then truncates away.
        stats.accepted += outcome.accepted;
        // `generated` counts tokens actually committed to the output: the
        // final block is clamped to the remaining budget so the bonus/
        // correction token is never over-counted past it. Invariant:
        // stats.generated == out.len() at every exit.
        let commit = (outcome.accepted + 1).min(budget - out.len());
        stats.generated += commit;
        out.extend_from_slice(&proposals[..commit.min(outcome.accepted)]);
        if commit > outcome.accepted {
            out.push(outcome.next_token);
        }

        // Re-sync both caches to the committed frontier and feed the
        // correction/bonus token to obtain the next frontier logits.
        if out.len() >= budget {
            break;
        }
        frontier = last_row(target.forward_infer(&[outcome.next_token], &mut t_cache));
        d_cache.truncate(committed + outcome.accepted);
        d_frontier = last_row(draft.forward_infer(&[outcome.next_token], &mut d_cache));
    }
    debug_assert_eq!(stats.generated, out.len());
    (out, stats)
}

/// Empirical acceptance-rate harness: run [`speculative_greedy`] over a set
/// of prompts and merge the per-run [`SpecStats`] into dataset-level
/// counters. `stats.acceptance_rate()` on the result is the α that the
/// training stack's distillation is meant to raise.
///
/// A single global merge hides distribution shift — PR 5 measured α spanning
/// 0.06–1.0 across prompt families while the pooled number looked healthy.
/// When the prompt set mixes workloads, use [`measure_acceptance_grouped`]
/// and report each group's α separately.
pub fn measure_acceptance(
    target: &Decoder,
    draft: &Decoder,
    prompts: &[Vec<u32>],
    max_new: usize,
    gamma: usize,
) -> SpecStats {
    let groups = [("all", prompts)];
    measure_acceptance_grouped(target, draft, &groups, max_new, gamma)
        .pop()
        .expect("one group in, one group out")
        .1
}

/// Per-group acceptance harness: like [`measure_acceptance`], but each named
/// prompt group gets its **own** merged [`SpecStats`], so per-workload α/τ
/// stay visible instead of being pooled into one global merge. Group order
/// is preserved in the output.
pub fn measure_acceptance_grouped<'a>(
    target: &Decoder,
    draft: &Decoder,
    groups: &[(&'a str, &[Vec<u32>])],
    max_new: usize,
    gamma: usize,
) -> Vec<(&'a str, SpecStats)> {
    groups
        .iter()
        .map(|(name, prompts)| {
            let mut total = SpecStats::default();
            for p in *prompts {
                let (_, stats) = speculative_greedy(target, draft, p, max_new, gamma);
                total.merge(&stats);
            }
            (*name, total)
        })
        .collect()
}

fn last_row(logits: Tensor) -> Vec<f32> {
    logits.row(logits.rows - 1).to_vec()
}

/// Greedy autoregressive decoding on the fused zero-allocation path: same
/// output as [`autoregressive_greedy_with_budget`], but every forward runs
/// through [`Decoder::forward_infer_ws`] with scratch drawn from `ws`. This
/// is the honest walltime baseline for the fused speculative loop.
pub fn autoregressive_greedy_with_budget_ws(
    target: &Decoder,
    prompt: &[u32],
    budget: usize,
    ws: &mut Workspace,
) -> Vec<u32> {
    assert!(!prompt.is_empty(), "empty prompt");
    assert!(
        budget <= target.cfg.max_seq + 1 - prompt.len(),
        "budget exceeds context window"
    );
    let vocab = target.cfg.vocab;
    let mut cache = target.new_cache();
    let mut prefill = ws.take(prompt.len() * vocab);
    target.forward_infer_ws(prompt, &mut cache, ws, &mut prefill);
    let pending = argmax(&prefill[(prompt.len() - 1) * vocab..]) as u32;
    ws.give(prefill);
    autoregressive_greedy_seeded_ws(target, &mut cache, pending, budget, ws)
}

/// Continue fused greedy decoding from a **pre-seeded cache**: `cache`
/// already holds an arbitrary committed context (text prompt, or a vision
/// prefix ∥ text prompt in the multimodal path) and `pending` is the first
/// target-decided token that has not yet been fed back. Emits `budget`
/// tokens starting with `pending`.
///
/// This is the autoregressive half of the seeded-loop API that lets
/// `aasd-mm` run LlavaSim prefill (vision embeddings through the decoder,
/// then text) and hand the frontier to the same loop the text path uses.
pub fn autoregressive_greedy_seeded_ws(
    target: &Decoder,
    cache: &mut KvCache,
    pending: u32,
    budget: usize,
    ws: &mut Workspace,
) -> Vec<u32> {
    // All committed tokens except the final one are fed back through the
    // cache, so the true feasible budget is the remaining room plus one
    // (asserted by [`ArSession::new`]). One-shot driver over the resumable
    // [`ArSession`] — the scheduler steps the same state machine block by
    // block, so serving inherits this loop's semantics verbatim.
    let mut session = ArSession::new(target, cache, pending, budget);
    while !session.is_done() {
        session.step(target, cache, ws);
    }
    session.into_tokens()
}

/// The fused speculative loop: zero-allocation forwards plus the
/// **pending-token fold**.
///
/// The reference loop pays, per block, one batched verify pass *and* one
/// single-token resync pass to feed the correction/bonus token back through
/// the target. Here that token stays *pending* — emitted to the output but
/// not yet fed to either cache — and the next block verifies
/// `[pending, p₁..p_g]` in a single `(g+1)`-token pass. Loop invariant:
/// `out` ends with the pending token and both caches hold exactly
/// `prompt.len() + out.len() − 1` positions.
///
/// Per-block cost drops from `verify(γ) + step(1)` to `verify(γ+1)`; at the
/// measured cost model (verify slope ≈ 0.4× a full step per token) that
/// roughly halves the per-block overhead, moving the break-even acceptance
/// rate from α ≈ 0.85 down to α ≈ 0.55 at γ = 2–3.
///
/// Output is token-identical to [`autoregressive_greedy_with_budget`]
/// (greedy/lossless). Stats follow the same conventions as the reference
/// loop: the first token (determined by the prompt prefill alone) is
/// recorded in `SpecStats::prefill_tokens` and excluded from
/// `block_efficiency()`, so τ ≤ γ+1 holds on both loops.
pub fn speculative_greedy_with_budget_ws(
    target: &Decoder,
    draft: &Decoder,
    prompt: &[u32],
    budget: usize,
    gamma: usize,
    ws: &mut Workspace,
) -> (Vec<u32>, SpecStats) {
    assert!(!prompt.is_empty(), "empty prompt");
    assert!(
        (1..MAX_GAMMA).contains(&gamma),
        "gamma must be in 1..{MAX_GAMMA}"
    );
    let min_max_seq = target.cfg.max_seq.min(draft.cfg.max_seq);
    assert!(
        budget <= min_max_seq + 1 - prompt.len(),
        "budget exceeds context window"
    );
    if budget == 0 {
        return (Vec::new(), SpecStats::default());
    }
    let (t_vocab, d_vocab) = (target.cfg.vocab, draft.cfg.vocab);

    let mut t_cache = target.new_cache();
    let mut d_cache = draft.new_cache();
    // Prefill both models; the first output token is already decided by the
    // target's prompt logits, so it starts life as the pending token.
    let mut prefill = ws.take(prompt.len() * t_vocab);
    target.forward_infer_ws(prompt, &mut t_cache, ws, &mut prefill);
    let pending = argmax(&prefill[(prompt.len() - 1) * t_vocab..]) as u32;
    ws.give(prefill);
    let mut d_prefill = ws.take(prompt.len() * d_vocab);
    draft.forward_infer_ws(prompt, &mut d_cache, ws, &mut d_prefill);
    ws.give(d_prefill);

    speculative_greedy_seeded_ws(
        target,
        draft,
        &mut t_cache,
        &mut d_cache,
        pending,
        budget,
        gamma,
        ws,
    )
}

/// The seeded core of the fused speculative loop: continue from
/// **pre-seeded caches** whose lengths may differ.
///
/// This is the AASD entry point: `t_cache` holds the target's committed
/// context (e.g. vision prefix ∥ text prompt) and `d_cache` holds the
/// draft's — which in the hybrid-cache path is `[projected vision KV ∥
/// text KV]` and therefore *shorter* than the target's. `pending` is the
/// first target-decided token not yet fed to either cache. The loop only
/// requires that both caches advance in lockstep **from here on**: per
/// block both receive the same `pending + proposals` tokens and are rolled
/// back by the same amount on rejection.
///
/// Emits `budget` tokens starting with `pending`, token-identical to
/// [`autoregressive_greedy_seeded_ws`] from the same target cache state.
/// `pending` is counted in `SpecStats::prefill_tokens` (it was decided by
/// prefill, not by a verify block), keeping τ ≤ γ+1.
#[allow(clippy::too_many_arguments)]
pub fn speculative_greedy_seeded_ws(
    target: &Decoder,
    draft: &Decoder,
    t_cache: &mut KvCache,
    d_cache: &mut KvCache,
    pending: u32,
    budget: usize,
    gamma: usize,
    ws: &mut Workspace,
) -> (Vec<u32>, SpecStats) {
    // One-shot driver over the resumable [`SpecSession`] state machine —
    // the loop body (draft γ, batched verify with the pending-token fold,
    // commit, rollback) lives in [`SpecSession::step_block`] so the serving
    // scheduler can interleave many sessions at block granularity while
    // every invariant test on THIS function keeps pinning that body.
    let mut session = SpecSession::new(target, draft, t_cache, d_cache, pending, budget, gamma);
    while !session.is_done() {
        session.step_block(target, draft, t_cache, d_cache, ws);
    }
    let (out, stats) = session.into_parts();
    debug_assert_eq!(stats.generated, out.len());
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aasd_nn::DecoderConfig;
    use aasd_tensor::Rng;

    fn tiny(seed: u64) -> Decoder {
        Decoder::new(DecoderConfig::tiny(40), seed)
    }

    fn prompt(rng: &mut Rng, len: usize, vocab: usize) -> Vec<u32> {
        (0..len).map(|_| rng.below(vocab) as u32).collect()
    }

    /// When the draft IS the target, every draft token must be accepted.
    #[test]
    fn self_draft_accepts_everything() {
        let model = tiny(1);
        let (out, stats) = speculative_greedy(&model, &model, &[3, 7, 1], 20, 5);
        assert_eq!(out.len(), 20);
        assert_eq!(stats.accepted, stats.drafted);
        assert!((stats.acceptance_rate() - 1.0).abs() < 1e-9);
        // Full acceptance means every block commits γ+1 tokens.
        assert!(stats.block_efficiency() > 5.0 - 1e-9);
    }

    /// Batched verify must agree exactly with the sequential reference —
    /// outcome and resulting cache state — across random drafts.
    #[test]
    fn batched_verify_equals_sequential() {
        let target = tiny(2);
        let mut rng = Rng::new(0xBEEF);
        for _case in 0..20 {
            let p_len = 1 + rng.below(10);
            let p = prompt(&mut rng, p_len, 40);
            let block_len = 1 + rng.below(6);
            let draft_block = prompt(&mut rng, block_len, 40);

            let mut c1 = target.new_cache();
            let f1 = target.forward_infer(&p, &mut c1);
            let f1 = f1.row(f1.rows - 1).to_vec();
            let o1 = verify_greedy(&target, &mut c1, &f1, &draft_block);

            let mut c2 = target.new_cache();
            let f2 = target.forward_infer(&p, &mut c2);
            let f2 = f2.row(f2.rows - 1).to_vec();
            let o2 = verify_greedy_sequential(&target, &mut c2, &f2, &draft_block);

            assert_eq!(o1, o2);
            assert_eq!(c1.len(), c2.len());
            assert_eq!(c1.len(), p.len() + o1.accepted);
        }
    }

    /// Losslessness: speculative output is token-identical to the
    /// autoregressive reference for mismatched draft/target pairs, across
    /// seeds, γ values, and generation lengths.
    #[test]
    fn speculative_is_lossless_greedy() {
        let mut rng = Rng::new(0x1055);
        for (t_seed, d_seed) in [(10, 20), (11, 21), (12, 22)] {
            let target = tiny(t_seed);
            let draft = tiny(d_seed);
            for gamma in [1, 2, 5] {
                let p = prompt(&mut rng, 4, 40);
                let max_new = 30;
                let reference = autoregressive_greedy(&target, &p, max_new);
                let (spec, stats) = speculative_greedy(&target, &draft, &p, max_new, gamma);
                assert_eq!(
                    spec, reference,
                    "lossless violated: seeds=({t_seed},{d_seed}) γ={gamma}"
                );
                // The final block is clamped to the budget, so the
                // committed-token counter matches the output exactly.
                assert_eq!(stats.generated, spec.len());
                assert!(stats.acceptance_rate() <= 1.0);
            }
        }
    }

    /// The loop must respect max_seq: a prompt near the context limit still
    /// terminates and stays within budget.
    #[test]
    fn respects_context_window() {
        let target = tiny(5);
        let draft = tiny(6);
        let max_seq = target.cfg.max_seq;
        let mut rng = Rng::new(3);
        let p = prompt(&mut rng, max_seq - 6, 40);
        let reference = autoregressive_greedy(&target, &p, 100);
        assert_eq!(reference.len(), 6);
        let (out, _) = speculative_greedy(&target, &draft, &p, 100, 5);
        assert_eq!(out, reference);
    }

    /// At the extended budget (`max_seq − prompt + 1`) the committed
    /// frontier runs out of speculation room mid-generation, forcing the
    /// g = 0 plain-decode fallback *with the loop still continuing*. The
    /// fallback must advance the draft cache in lockstep with the target —
    /// before the fix it only advanced the target, and the lockstep
    /// `debug_assert_eq!(committed, d_cache.len())` fires on the next pass.
    #[test]
    fn no_room_fallback_keeps_caches_in_lockstep() {
        let target = tiny(40);
        let draft = tiny(41);
        let max_seq = target.cfg.max_seq;
        let mut rng = Rng::new(7);
        for prompt_len in [max_seq - 1, max_seq - 6] {
            let p = prompt(&mut rng, prompt_len, 40);
            let budget = max_seq + 1 - prompt_len;
            let reference = autoregressive_greedy_with_budget(&target, &p, budget);
            assert_eq!(reference.len(), budget);
            let (out, stats) = speculative_greedy_with_budget(&target, &draft, &p, budget, 5);
            assert_eq!(
                out, reference,
                "lossless violated at prompt_len {prompt_len}"
            );
            assert_eq!(stats.generated, out.len());
        }
    }

    /// A draft block whose bonus token would overshoot the budget must be
    /// clamped: `generated` counts only committed tokens.
    #[test]
    fn final_block_commit_is_clamped_to_budget() {
        // Self-draft so every block fully accepts and commits γ+1 tokens;
        // budget deliberately not a multiple of γ+1 so the last block
        // truncates mid-commit.
        let model = tiny(50);
        for (max_new, gamma) in [(7, 3), (9, 5), (11, 2)] {
            let (out, stats) = speculative_greedy(&model, &model, &[2, 9, 4], max_new, gamma);
            assert_eq!(out.len(), max_new);
            assert_eq!(stats.generated, max_new);
            assert!(stats.block_efficiency() <= (gamma + 1) as f64 + 1e-12);
        }
    }

    /// Dataset-level α: merging runs over several prompts keeps every
    /// counter invariant intact.
    #[test]
    fn measure_acceptance_merges_runs() {
        let target = tiny(60);
        let draft = tiny(61);
        let mut rng = Rng::new(9);
        let prompts: Vec<Vec<u32>> = (0..4).map(|_| prompt(&mut rng, 5, 40)).collect();
        let stats = measure_acceptance(&target, &draft, &prompts, 20, 4);
        assert_eq!(stats.generated, 4 * 20);
        assert!(stats.accepted <= stats.drafted);
        assert!(stats.acceptance_rate() <= 1.0);
        // Self-draft α must dominate a mismatched draft's α.
        let self_stats = measure_acceptance(&target, &target, &prompts, 20, 4);
        assert!(self_stats.acceptance_rate() >= stats.acceptance_rate());
    }

    /// Per-group stats must match running each group alone, preserve order,
    /// and sum to the pooled global merge — the grouped view loses nothing,
    /// it only refuses to average away per-workload α differences.
    #[test]
    fn measure_acceptance_grouped_keeps_groups_separate() {
        let target = tiny(60);
        let draft = tiny(61);
        let mut rng = Rng::new(17);
        let a: Vec<Vec<u32>> = (0..3).map(|_| prompt(&mut rng, 4, 40)).collect();
        let b: Vec<Vec<u32>> = (0..2).map(|_| prompt(&mut rng, 7, 40)).collect();
        let groups: [(&str, &[Vec<u32>]); 2] = [("a", &a), ("b", &b)];
        let grouped = measure_acceptance_grouped(&target, &draft, &groups, 16, 3);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, "a");
        assert_eq!(grouped[1].0, "b");
        assert_eq!(grouped[0].1, measure_acceptance(&target, &draft, &a, 16, 3));
        assert_eq!(grouped[1].1, measure_acceptance(&target, &draft, &b, 16, 3));
        let mut pooled = grouped[0].1.clone();
        pooled.merge(&grouped[1].1);
        let mut all = a.clone();
        all.extend(b.iter().cloned());
        assert_eq!(pooled, measure_acceptance(&target, &draft, &all, 16, 3));
    }

    #[test]
    fn gamma_one_still_lossless() {
        let target = tiny(30);
        let draft = tiny(31);
        let reference = autoregressive_greedy(&target, &[1, 2], 15);
        let (out, stats) = speculative_greedy(&target, &draft, &[1, 2], 15, 1);
        assert_eq!(out, reference);
        assert!(stats.blocks >= 8, "γ=1 commits at most 2 tokens per block");
    }

    /// The fused autoregressive loop must be token-identical to the
    /// allocating reference (both paths argmax the same logits chain).
    #[test]
    fn fused_autoregressive_matches_reference() {
        let target = tiny(70);
        let mut rng = Rng::new(0xA5);
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let p_len = 1 + rng.below(8);
            let p = prompt(&mut rng, p_len, 40);
            let budget = 20;
            let reference = autoregressive_greedy_with_budget(&target, &p, budget);
            let got = autoregressive_greedy_with_budget_ws(&target, &p, budget, &mut ws);
            assert_eq!(got, reference);
        }
    }

    /// The pending-token-fold loop must stay lossless across draft/target
    /// pairs, γ values, and budgets, with its counters consistent.
    #[test]
    fn fused_speculative_is_lossless() {
        let mut rng = Rng::new(0xF01D);
        let mut ws = Workspace::new();
        for (t_seed, d_seed) in [(10, 20), (11, 21), (12, 12)] {
            let target = tiny(t_seed);
            let draft = tiny(d_seed);
            for gamma in [1, 2, 5] {
                let p = prompt(&mut rng, 4, 40);
                let budget = 30;
                let reference = autoregressive_greedy_with_budget(&target, &p, budget);
                let (spec, stats) =
                    speculative_greedy_with_budget_ws(&target, &draft, &p, budget, gamma, &mut ws);
                assert_eq!(
                    spec, reference,
                    "fused loop lossy: seeds=({t_seed},{d_seed}) γ={gamma}"
                );
                assert_eq!(stats.generated, spec.len());
                assert!(stats.accepted <= stats.drafted);
                // Self-draft (12,12) must fully accept.
                if t_seed == d_seed {
                    assert_eq!(stats.accepted, stats.drafted);
                }
            }
        }
    }

    /// Boundary prompts force the fused loop's g = 0 fallback; output must
    /// still match the reference and the caches must stay in lockstep.
    #[test]
    fn fused_loop_handles_context_boundary() {
        let target = tiny(40);
        let draft = tiny(41);
        let max_seq = target.cfg.max_seq;
        let mut rng = Rng::new(7);
        let mut ws = Workspace::new();
        for prompt_len in [max_seq - 1, max_seq - 6] {
            let p = prompt(&mut rng, prompt_len, 40);
            let budget = max_seq + 1 - prompt_len;
            let reference = autoregressive_greedy_with_budget(&target, &p, budget);
            let (out, stats) =
                speculative_greedy_with_budget_ws(&target, &draft, &p, budget, 5, &mut ws);
            assert_eq!(out, reference, "boundary prompt_len {prompt_len}");
            assert_eq!(stats.generated, out.len());
        }
    }

    /// Both loop generations must agree on which γ values they accept:
    /// γ = 0 and γ = MAX_GAMMA panic on both, γ = 1 and γ = MAX_GAMMA − 1
    /// run on both. Before the unification the reference loop accepted any
    /// γ ≥ 1 while the fused loop required γ < 64.
    #[test]
    fn gamma_validation_agrees_between_loops() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let target = tiny(80);
        let draft = tiny(81);
        let p = [1u32, 2, 3];
        let run_ref = |gamma: usize| {
            let r = catch_unwind(AssertUnwindSafe(|| {
                speculative_greedy_with_budget(&target, &draft, &p, 4, gamma)
            }));
            r.is_ok()
        };
        let run_fused = |gamma: usize| {
            let r = catch_unwind(AssertUnwindSafe(|| {
                let mut ws = Workspace::new();
                speculative_greedy_with_budget_ws(&target, &draft, &p, 4, gamma, &mut ws)
            }));
            r.is_ok()
        };
        for gamma in [0, 1, MAX_GAMMA - 1, MAX_GAMMA, MAX_GAMMA + 5] {
            let expect = (1..MAX_GAMMA).contains(&gamma);
            assert_eq!(run_ref(gamma), expect, "reference loop at γ={gamma}");
            assert_eq!(run_fused(gamma), expect, "fused loop at γ={gamma}");
        }
    }

    /// With the pending token recorded as a prefill token, the fused loop's
    /// τ obeys the same γ+1 bound as the reference loop — before the fix a
    /// fully-accepting run reported τ = (N·(γ+1) + 1)/N > γ+1.
    #[test]
    fn fused_block_efficiency_is_bounded_by_gamma_plus_one() {
        let model = tiny(90);
        let mut ws = Workspace::new();
        for (budget, gamma) in [(24, 5), (19, 3), (30, 2)] {
            let (out, stats) = speculative_greedy_with_budget_ws(
                &model,
                &model,
                &[4, 2, 8],
                budget,
                gamma,
                &mut ws,
            );
            assert_eq!(out.len(), budget);
            assert_eq!(stats.prefill_tokens, 1);
            assert_eq!(stats.generated, budget);
            assert!(
                stats.block_efficiency() <= (gamma + 1) as f64 + 1e-12,
                "τ = {} exceeds γ+1 at γ={gamma}",
                stats.block_efficiency()
            );
            // Self-draft: every full block commits exactly γ+1 tokens.
            assert!(stats.acceptance_rate() > 1.0 - 1e-12);
        }
    }

    /// Seeded entry points must reproduce the prompt-based loops when the
    /// caches are seeded with exactly the prompt (the degenerate prefix).
    #[test]
    fn seeded_loops_match_prompt_loops() {
        let target = tiny(91);
        let draft = tiny(92);
        let mut ws = Workspace::new();
        let p = [7u32, 3, 5, 1];
        let budget = 20;
        let want_ar = autoregressive_greedy_with_budget(&target, &p, budget);
        let (want_spec, want_stats) =
            speculative_greedy_with_budget_ws(&target, &draft, &p, budget, 4, &mut ws);

        // Seed caches by hand, then call the seeded functions directly.
        let mut t_cache = target.new_cache();
        let logits = target.forward_infer(&p, &mut t_cache);
        let pending = Decoder::greedy_from_logits(&logits);
        let got_ar =
            autoregressive_greedy_seeded_ws(&target, &mut t_cache, pending, budget, &mut ws);
        assert_eq!(got_ar, want_ar);

        let mut t_cache = target.new_cache();
        let logits = target.forward_infer(&p, &mut t_cache);
        let pending = Decoder::greedy_from_logits(&logits);
        let mut d_cache = draft.new_cache();
        draft.forward_infer(&p, &mut d_cache);
        let (got_spec, got_stats) = speculative_greedy_seeded_ws(
            &target,
            &draft,
            &mut t_cache,
            &mut d_cache,
            pending,
            budget,
            4,
            &mut ws,
        );
        assert_eq!(got_spec, want_spec);
        assert_eq!(got_stats, want_stats);
    }

    /// The fold halves per-block target passes: for the same run, the fused
    /// loop must use strictly fewer target forwards than the reference
    /// (blocks + resyncs) once more than one block executes.
    #[test]
    fn fused_loop_reaches_steady_state_allocations() {
        let target = tiny(10);
        let draft = tiny(20);
        let mut ws = Workspace::new();
        // Warm-up run populates the pool for every request size.
        let p = [3u32, 7, 1, 9];
        speculative_greedy_with_budget_ws(&target, &draft, &p, 24, 3, &mut ws);
        let after_warmup = ws.fresh_allocs();
        speculative_greedy_with_budget_ws(&target, &draft, &p, 24, 3, &mut ws);
        assert_eq!(
            ws.fresh_allocs(),
            after_warmup,
            "second run must be served entirely from the pool"
        );
    }
}
