//! [`SpecSession::step_block`](crate::SpecSession::step_block) split into
//! its two halves so a scheduler can run them on **different threads**:
//! [`DraftAhead`] (producer) speculates a token chain ahead through an
//! [`SpscRing`], [`VerifyHalf`] (consumer) batches whatever has arrived
//! into one target pass and commits the accepted prefix.
//!
//! ## Why the output cannot change
//!
//! Greedy speculative decoding commits a token only when it is the argmax
//! of the **target's own logits** at that position — the draft merely
//! proposes. Committed prefixes therefore always extend the target's
//! greedy autoregressive chain, no matter how the chain is cut into
//! blocks. The async split changes only the block decomposition (verify
//! consumes however many proposals happen to be in flight), so every
//! stream is byte-identical to the synchronous fused loop and to plain
//! autoregressive decoding — regardless of thread interleaving. What
//! *does* change across interleavings is the block statistics
//! (blocks/drafted/accepted): two runs may batch the same chain
//! differently. Commit authority lives **only** in [`VerifyHalf`]; ring
//! tokens are provisional until verified.
//!
//! ## Speculation-frontier state
//!
//! The draft free-runs a chain `s₁ s₂ …` from frontier `F` (its KV length
//! when the chain started) after feeding the resume token. [`VerifyHalf`]
//! tracks how much of that chain is **confirmed** (`m` tokens match the
//! target chain) and where the next verify pass starts. On a rejection it
//! hands the draft a [`Rollback`](crate::ring::Rollback) carrying the
//! exact KV length to restore — via the checkpoints the draft banked with
//! [`KvCache::checkpoint`] — and the corrected token to resume from.
//!
//! ## Depth bounding
//!
//! The draft parks once `ring.len()` reaches the verify side's
//! [`depth_hint`](VerifyHalf::depth_hint) = [`DEPTH_FACTOR`]·γ (adaptive
//! γ when enabled). Deeper than the sync loop's γ on purpose: verify then
//! consumes larger blocks, amortizing more tokens per target weight
//! sweep, while AdaptiveGamma still collapses the depth when acceptance
//! tanks so doomed speculation is not paid for twice.
//!
//! A second, per-token brake complements the per-block depth cap: when
//! the draft's softmax top-probability for the token it just produced
//! falls below [`CONFIDENCE_STOP`], the draft stops extending the chain
//! while unverified tokens remain queued ([`DraftStep::LowConfidence`]).
//! A rejection at chain position *i* wastes every queued row past *i* in
//! the verify pass, so low-confidence tails are where deep speculation
//! loses; the gate keeps confident chains deep and cuts the doomed ones
//! short. The gate only changes *which* tokens get drafted — the verify
//! leg alone commits, so streams are byte-identical with it on or off.

use crate::adaptive::AdaptiveGamma;
use crate::metrics::SpecStats;
use crate::ring::SpscRing;
use crate::MAX_GAMMA;
use aasd_nn::{Decoder, KvCache, KvCheckpoint};
use aasd_tensor::{argmax, Workspace};

/// In-flight speculation depth cap as a multiple of γ. Factor 2 lets the
/// draft refill while verify drains the previous block, so target passes
/// batch ~2γ rows instead of γ+1.
pub const DEPTH_FACTOR: usize = 2;

/// Default draft-confidence stop threshold for the free-running producer
/// (see [`DraftAhead::set_confidence_threshold`]). A chain token whose
/// draft top-probability falls below this ends the block: the positions
/// after a likely rejection are the ones a target pass wastes, so cutting
/// there trades a little depth for materially fewer dead verify rows.
/// Tuned on the serving benchmark's aligned draft/target pair.
pub const CONFIDENCE_STOP: f32 = 0.7;

/// What one [`DraftAhead::step`] call did; the caller (draft worker
/// thread) parks on `AtDepthCap`/`AtCapacity` and spins on the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DraftStep {
    /// One chain token forwarded, checkpointed, and pushed to the ring.
    Produced,
    /// A pending rollback was consumed: KV restored to the frontier, the
    /// chain resumes from the corrected token on the next step.
    RolledBack,
    /// The ring already holds `depth_cap` provisional tokens — park until
    /// the verify leg pops or rolls back.
    AtDepthCap,
    /// The draft KV lease (or context window) is exhausted — park; the
    /// chain already spans every position the session could still need,
    /// so verify can always finish from what is queued.
    AtCapacity,
    /// The last produced token fell below the confidence stop threshold
    /// and unverified tokens are still queued — park; extending past a
    /// likely rejection only manufactures dead verify rows. Resumes
    /// automatically once the ring drains or a rollback refreshes the
    /// chain.
    LowConfidence,
}

/// Producer half: free-running draft speculation over an [`SpscRing`].
///
/// Owns the draft-side chain state: the next token to feed and one
/// [`KvCheckpoint`] per chain position (`cps[i]` ⇔ KV length `base + i`),
/// so any rollback frontier the verify leg can name restores in O(1).
/// Checkpoint IDs are lease-scoped (see `aasd-nn`), so a checkpoint taken
/// before a paged-pool copy-on-write still restores correctly after it.
#[derive(Debug)]
pub struct DraftAhead {
    /// Next token to feed the draft model (resume token after rollback).
    feed: u32,
    /// Draft KV length when this session's chain began; `cps[i]`
    /// checkpoints length `base + i`.
    base: usize,
    cps: Vec<KvCheckpoint>,
    /// Draft top-probability below which the chain stops extending while
    /// unverified tokens remain queued. `0.0` disables the gate.
    conf_stop: f32,
    /// The last produced token was below `conf_stop`; hold the chain
    /// until the ring drains or a rollback resets the context.
    soft_stop: bool,
}

impl DraftAhead {
    /// Start speculating from the session's pending token. The cache must
    /// be positioned at the chain frontier (same contract as
    /// [`SpecSession::new`](crate::SpecSession::new)'s draft cache).
    pub fn new(d_cache: &mut KvCache, pending: u32) -> Self {
        Self {
            feed: pending,
            base: d_cache.len(),
            cps: vec![d_cache.checkpoint()],
            conf_stop: 0.0,
            soft_stop: false,
        }
    }

    /// Enable the confidence stop: a produced token whose draft
    /// top-probability is below `threshold` ends the current block (the
    /// producer parks with [`DraftStep::LowConfidence`] while unverified
    /// tokens remain in the ring). Commits are untouched — the verify leg
    /// alone decides acceptance — so streams are byte-identical with the
    /// gate on or off; only the block decomposition changes. `0.0`
    /// disables (the default); [`CONFIDENCE_STOP`] is the tuned serving
    /// value.
    pub fn set_confidence_threshold(&mut self, threshold: f32) {
        self.conf_stop = threshold;
    }

    /// Provisional tokens produced since the last rollback or start
    /// (diagnostics).
    pub fn chain_len(&self) -> usize {
        self.cps.len() - 1
    }

    /// Advance the chain by at most one token. Rollback requests are
    /// honored **before** anything else so a parked producer that wakes
    /// into a rejection never extends the dead chain.
    pub fn step(
        &mut self,
        draft: &Decoder,
        d_cache: &mut KvCache,
        ring: &SpscRing,
        depth_cap: usize,
        ws: &mut Workspace,
    ) -> DraftStep {
        if let Some(rb) = ring.take_rollback() {
            // The frontier names a length this chain has reached (verify
            // can only reject tokens the draft already fed), so the
            // checkpoint exists and its low-mark is intact.
            let idx = rb.frontier - self.base;
            d_cache.restore(&self.cps[idx]);
            self.cps.truncate(idx + 1);
            self.feed = rb.resume;
            self.soft_stop = false;
            return DraftStep::RolledBack;
        }
        if ring.len() >= depth_cap.max(1).min(ring.capacity()) {
            return DraftStep::AtDepthCap;
        }
        if self.soft_stop {
            // Below-threshold token still unverified: wait for its
            // verdict rather than building on it. Once the ring drains
            // (verify took the chain; any rejection will arrive as a
            // rollback) the chain may resume — at worst the resumed
            // tokens are truncated by that rollback before any target
            // pass sees them.
            if !ring.is_empty() {
                return DraftStep::LowConfidence;
            }
            self.soft_stop = false;
        }
        if d_cache.len() >= draft.cfg.max_seq.min(d_cache.capacity()) {
            return DraftStep::AtCapacity;
        }
        let mut logits = ws.take(draft.cfg.vocab);
        draft.forward_infer_ws(&[self.feed], d_cache, ws, &mut logits);
        let tok = argmax(&logits) as u32;
        if self.conf_stop > 0.0 {
            // Numerically stable softmax top-probability of `tok`.
            let top = logits[tok as usize];
            let lse = logits.iter().map(|&l| (l - top).exp()).sum::<f32>();
            self.soft_stop = 1.0 / lse < self.conf_stop;
        }
        ws.give(logits);
        self.cps.push(d_cache.checkpoint());
        // Cannot fail: fullness was pre-checked above and only this
        // producer ever grows `tail` (its own take_rollback may shrink
        // it; the consumer only ever frees slots).
        let pushed = ring.push(tok);
        debug_assert!(pushed, "SPSC ring refused a push after the depth check");
        self.feed = tok;
        DraftStep::Produced
    }
}

/// What one [`VerifyHalf::try_step_block`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Tokens newly committed to the output stream.
    pub committed: usize,
    /// Session has emitted its full budget.
    pub done: bool,
    /// False only when the call found the ring empty and returned without
    /// advancing any state — the scheduler's idle-stall signal.
    pub progressed: bool,
    /// A rollback was issued to the draft this call.
    pub rolled_back: bool,
    /// Proposals scored by this call's target pass (0 when no pass ran).
    pub depth: usize,
}

impl VerifyReport {
    fn idle() -> Self {
        Self {
            committed: 0,
            done: false,
            progressed: false,
            rolled_back: false,
            depth: 0,
        }
    }
}

/// Consumer half: batches ring tokens into target verify passes and holds
/// **sole commit authority** for the session's output stream.
#[derive(Debug)]
pub struct VerifyHalf {
    pending: u32,
    budget: usize,
    gamma: usize,
    out: Vec<u32>,
    stats: SpecStats,
    t_off: usize,
    done: bool,
    /// Draft-cache length where the current speculation chain began.
    frontier: usize,
    /// Chain tokens since `frontier` confirmed to match the target chain.
    confirmed: usize,
    /// After a fully-accepted block: the target's bonus token, which the
    /// next popped chain token must equal for the chain to stay live.
    expect: Option<u32>,
    adaptive: Option<AdaptiveGamma>,
}

impl VerifyHalf {
    /// Start the verify half from pre-seeded caches (same cache contract
    /// as [`SpecSession::new`](crate::SpecSession::new); `d_frontier` is
    /// the draft cache's length, i.e. the chain base handed to
    /// [`DraftAhead::new`]). `pending` is committed immediately.
    ///
    /// Beyond `SpecSession`'s bounds check this asserts the target lease
    /// is **budget-collapsed** — `min(max_seq, capacity)` equals exactly
    /// `len + budget − 1` — which makes "no room to speculate" coincide
    /// with "one token of budget left". The sync loop's mid-run plain
    /// decode fallback (which advances the target without consuming the
    /// chain, and would desynchronize a free-running draft) is thereby
    /// structurally impossible: the only plain decode is the final token,
    /// after which the session is over. Engine leases satisfy this by
    /// construction (`t_capacity = t_prefix + budget − 1`).
    pub fn new(
        target: &Decoder,
        t_cache: &KvCache,
        d_frontier: usize,
        pending: u32,
        budget: usize,
        gamma: usize,
    ) -> Self {
        assert!(
            (1..MAX_GAMMA).contains(&gamma),
            "gamma must be in 1..{MAX_GAMMA}"
        );
        if budget > 0 {
            assert_eq!(
                target.cfg.max_seq.min(t_cache.capacity()),
                t_cache.len() + budget - 1,
                "async verify requires a budget-collapsed target lease"
            );
        }
        let mut s = Self {
            pending,
            budget,
            gamma,
            out: Vec::with_capacity(budget),
            stats: SpecStats::default(),
            t_off: t_cache.len(),
            done: budget == 0,
            frontier: d_frontier,
            confirmed: 0,
            expect: None,
            adaptive: None,
        };
        if !s.done {
            s.out.push(pending);
            s.stats.generated += 1;
            s.stats.prefill_tokens += 1;
            s.done = s.out.len() == s.budget;
        }
        s
    }

    /// Attach a per-session γ controller (see
    /// [`SpecSession::enable_adaptive_gamma`](crate::SpecSession::enable_adaptive_gamma)).
    pub fn enable_adaptive_gamma(&mut self, controller: AdaptiveGamma) {
        self.adaptive = Some(controller);
    }

    /// The γ underlying the current depth hint (diagnostics). An adaptive
    /// controller's proposal is bounded by the remaining budget, so a
    /// cold-start prior can never hint a depth past the collapsed lease.
    #[inline]
    pub fn gamma(&self) -> usize {
        match &self.adaptive {
            Some(a) => a.gamma_capped(self.budget.saturating_sub(self.out.len() + 1)),
            None => self.gamma,
        }
    }

    /// How deep the draft should be allowed to run ahead right now:
    /// [`DEPTH_FACTOR`]·γ, clamped to the ring's token range.
    pub fn depth_hint(&self) -> usize {
        (self.gamma() * DEPTH_FACTOR).clamp(1, MAX_GAMMA)
    }

    /// Ring occupancy at which a verify pass is worth paying for: a full
    /// [`VerifyHalf::depth_hint`] chain (plus the outstanding bonus-token
    /// resolution when one gates the chain), clamped to what the
    /// remaining budget can commit. Verifying below this depth spends a
    /// whole target weight sweep on a shallow prefix — the exact cost the
    /// async pipeline exists to amortize — so the scheduler should hold
    /// off until the ring fills, **unless** the draft cannot produce more
    /// (parked at its KV frontier, or already stopped); waiting then
    /// would idle forever.
    pub fn ready_depth(&self) -> usize {
        if self.done || self.budget - self.out.len() <= 1 {
            return 0;
        }
        let g_cap = (MAX_GAMMA - 1).min(self.budget - self.out.len() - 1);
        self.depth_hint().min(g_cap) + usize::from(self.expect.is_some())
    }

    /// Tokens emitted so far (monotone; committed tokens never change).
    #[inline]
    pub fn tokens(&self) -> &[u32] {
        &self.out
    }

    #[inline]
    pub fn stats(&self) -> &SpecStats {
        &self.stats
    }

    #[inline]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Consume the session, yielding the stream and its counters.
    pub fn into_parts(self) -> (Vec<u32>, SpecStats) {
        (self.out, self.stats)
    }

    /// Run **one** verify step against whatever the draft has queued:
    /// resolve the expected bonus token if one is outstanding, gather up
    /// to `min(MAX_GAMMA−1, remaining−1)` proposals, score them plus the
    /// pending token in a single batched target pass, commit the accepted
    /// prefix, and either extend the confirmed chain (full accept) or
    /// hand the draft a rollback (rejection). With one token of budget
    /// left it plain-decodes that token without touching the ring.
    ///
    /// Never blocks: an empty ring yields `progressed: false` so the
    /// scheduler can account the idle stall and move to another session.
    pub fn try_step_block(
        &mut self,
        target: &Decoder,
        t_cache: &mut KvCache,
        ring: &SpscRing,
        ws: &mut Workspace,
    ) -> VerifyReport {
        if self.done {
            return VerifyReport {
                done: true,
                ..VerifyReport::idle()
            };
        }
        let vocab = target.cfg.vocab;
        let t_base = t_cache.len();
        debug_assert_eq!(t_base, self.t_off + self.out.len() - 1);
        let remaining = self.budget - self.out.len();
        if remaining == 1 {
            // Final token: plain decode, chain state irrelevant (the
            // draft worker is about to be stopped, not resynced).
            let mut logits = ws.take(vocab);
            target.forward_infer_ws(&[self.pending], t_cache, ws, &mut logits);
            let next = argmax(&logits) as u32;
            ws.give(logits);
            self.out.push(next);
            self.stats.blocks += 1;
            self.stats.generated += 1;
            self.done = true;
            return VerifyReport {
                committed: 1,
                done: true,
                progressed: true,
                rolled_back: false,
                depth: 0,
            };
        }

        // An outstanding bonus-token check gates the chain: the draft's
        // guess for the position the target already decided must match,
        // or everything queued extends a dead chain.
        let mut resolved_expect = false;
        if let Some(expected) = self.expect {
            let Some(tok) = ring.pop() else {
                return VerifyReport::idle();
            };
            if tok == expected {
                self.confirmed += 1;
                self.expect = None;
                resolved_expect = true;
            } else {
                ring.request_rollback(self.frontier + 1 + self.confirmed, expected);
                self.frontier += 1 + self.confirmed;
                self.confirmed = 0;
                self.expect = None;
                return VerifyReport {
                    committed: 0,
                    done: false,
                    progressed: true,
                    rolled_back: true,
                    depth: 0,
                };
            }
        }

        // Gather whatever the draft has in flight, bounded so the verify
        // block (pending + proposals) fits MAX_GAMMA rows and the commit
        // can never exceed the remaining budget.
        let g_cap = (MAX_GAMMA - 1).min(remaining - 1);
        let mut proposals = [0u32; MAX_GAMMA];
        let mut k = 0;
        while k < g_cap {
            match ring.pop() {
                Some(tok) => {
                    proposals[k] = tok;
                    k += 1;
                }
                None => break,
            }
        }
        if k == 0 {
            // Nothing to verify yet; resolving an expect above still
            // counts as progress (chain state advanced).
            return VerifyReport {
                progressed: resolved_expect,
                ..VerifyReport::idle()
            };
        }
        let proposals = &proposals[..k];

        // One (k+1)-row target pass scores pending + all k proposals.
        let mut v_logits = ws.take((k + 1) * vocab);
        let mut block = [0u32; MAX_GAMMA];
        block[0] = self.pending;
        block[1..=k].copy_from_slice(proposals);
        target.forward_infer_ws(&block[..=k], t_cache, ws, &mut v_logits);

        let mut accepted = 0;
        while accepted < k {
            let pred = argmax(&v_logits[accepted * vocab..(accepted + 1) * vocab]) as u32;
            if pred != proposals[accepted] {
                break;
            }
            accepted += 1;
        }
        let next = argmax(&v_logits[accepted * vocab..(accepted + 1) * vocab]) as u32;
        ws.give(v_logits);

        self.stats.blocks += 1;
        self.stats.drafted += k;
        self.stats.accepted += accepted;
        if let Some(ctl) = &mut self.adaptive {
            ctl.observe(k, accepted);
        }
        // k ≤ remaining − 1 ⇒ accepted + 1 ≤ remaining: no clamp needed,
        // unlike the sync loop (invariant: stats.generated == out.len()).
        let commit = accepted + 1;
        self.stats.generated += commit;
        self.out.extend_from_slice(&proposals[..accepted]);
        self.out.push(next);
        if self.out.len() >= self.budget {
            // Final block: skip the truncate, exactly like the sync loop.
            self.done = true;
            return VerifyReport {
                committed: commit,
                done: true,
                progressed: true,
                rolled_back: false,
                depth: k,
            };
        }
        t_cache.truncate(t_base + 1 + accepted);
        self.pending = next;
        let rolled_back = accepted < k;
        if rolled_back {
            // proposals[accepted] is chain token s_{confirmed+accepted+1};
            // restore the draft to just before it and resume from the
            // target's correction.
            ring.request_rollback(self.frontier + 1 + self.confirmed + accepted, next);
            self.frontier += 1 + self.confirmed + accepted;
            self.confirmed = 0;
        } else {
            // Full accept: the chain is still live; the draft's next
            // token must match `next` for it to stay that way.
            self.confirmed += k;
            self.expect = Some(next);
        }
        VerifyReport {
            committed: commit,
            done: false,
            progressed: true,
            rolled_back,
            depth: k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speculative_greedy_with_budget_ws;
    use aasd_nn::{DecoderConfig, KvPool};
    use aasd_tensor::Rng;

    fn tiny(seed: u64) -> Decoder {
        Decoder::new(DecoderConfig::tiny(40), seed)
    }

    /// Prefill a budget-collapsed pool lease: capacity is exactly
    /// `prompt.len() + budget − 1`, the engine's lease shape.
    fn prefill_lease(
        model: &Decoder,
        pool: &KvPool,
        prompt: &[u32],
        budget: usize,
        ws: &mut Workspace,
    ) -> (KvCache, u32) {
        let vocab = model.cfg.vocab;
        let mut cache = pool
            .try_lease(prompt.len() + budget.max(1) - 1)
            .expect("test pool too small");
        let mut logits = ws.take(prompt.len() * vocab);
        model.forward_infer_ws(prompt, &mut cache, ws, &mut logits);
        let pending = argmax(&logits[(prompt.len() - 1) * vocab..]) as u32;
        ws.give(logits);
        (cache, pending)
    }

    fn pool_for(model: &Decoder) -> KvPool {
        KvPool::new(model.cfg.n_layers, model.cfg.dim, 16, 64)
    }

    /// Drive both halves on one thread under a caller-chosen interleave:
    /// `draft_burst(i)` says how many draft steps to attempt before the
    /// i-th verify step. Any schedule must yield the same stream.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        target: &Decoder,
        draft: &Decoder,
        prompt: &[u32],
        budget: usize,
        gamma: usize,
        adaptive: bool,
        ws: &mut Workspace,
        mut draft_burst: impl FnMut(usize) -> usize,
    ) -> (Vec<u32>, SpecStats) {
        let t_pool = pool_for(target);
        let d_pool = pool_for(draft);
        let (mut t_cache, pending) = prefill_lease(target, &t_pool, prompt, budget, ws);
        let (mut d_cache, _) = prefill_lease(draft, &d_pool, prompt, budget, ws);
        let ring = SpscRing::new(MAX_GAMMA);
        let mut verify = VerifyHalf::new(target, &t_cache, d_cache.len(), pending, budget, gamma);
        if adaptive {
            verify.enable_adaptive_gamma(AdaptiveGamma::new(0.25));
        }
        let mut da = DraftAhead::new(&mut d_cache, pending);
        let mut round = 0;
        while !verify.is_done() {
            for _ in 0..draft_burst(round) {
                match da.step(draft, &mut d_cache, &ring, verify.depth_hint(), ws) {
                    DraftStep::Produced | DraftStep::RolledBack => {}
                    DraftStep::AtDepthCap | DraftStep::AtCapacity | DraftStep::LowConfidence => {
                        break
                    }
                }
            }
            verify.try_step_block(target, &mut t_cache, &ring, ws);
            round += 1;
        }
        verify.into_parts()
    }

    /// The split halves must reproduce the fused loop's stream exactly,
    /// under maximal speculation (draft runs to its cap every round).
    #[test]
    fn split_halves_match_fused_loop_bursty() {
        let mut ws = Workspace::new();
        for (ts, ds, gamma, budget) in [
            (10u64, 20u64, 3usize, 25usize),
            (30, 31, 4, 17),
            (1, 2, 1, 9),
            (7, 7, 5, 30), // identical models: near-total acceptance
            (11, 99, 2, 12),
        ] {
            let target = tiny(ts);
            let draft = tiny(ds);
            let prompt = [3u32, 7, 1, 9];
            let (want, _) =
                speculative_greedy_with_budget_ws(&target, &draft, &prompt, budget, gamma, &mut ws);
            let (got, stats) = drive(
                &target,
                &draft,
                &prompt,
                budget,
                gamma,
                false,
                &mut ws,
                |_| usize::MAX,
            );
            assert_eq!(got, want, "seeds ({ts},{ds}) γ={gamma} budget={budget}");
            assert_eq!(stats.generated, budget);
        }
    }

    /// Starved schedules — the draft gets 0, 1, or a pseudorandom trickle
    /// of steps per round — must still produce the identical stream.
    #[test]
    fn split_halves_are_schedule_independent() {
        let mut ws = Workspace::new();
        let target = tiny(30);
        let draft = tiny(31);
        let prompt = [1u32, 2, 3];
        let budget = 17;
        let (want, _) =
            speculative_greedy_with_budget_ws(&target, &draft, &prompt, budget, 4, &mut ws);
        // One draft token per round: verify sees depth-1 blocks.
        let (got, _) = drive(&target, &draft, &prompt, budget, 4, false, &mut ws, |_| 1);
        assert_eq!(got, want, "trickle schedule diverged");
        // Alternating famine and burst.
        let (got, _) = drive(&target, &draft, &prompt, budget, 4, false, &mut ws, |r| {
            if r % 3 == 0 {
                0
            } else {
                5
            }
        });
        assert_eq!(got, want, "famine/burst schedule diverged");
        // Pseudorandom bursts.
        let mut rng = Rng::new(99);
        let (got, _) = drive(&target, &draft, &prompt, budget, 4, false, &mut ws, |_| {
            rng.below(9)
        });
        assert_eq!(got, want, "random schedule diverged");
    }

    /// Adaptive γ only changes how deep the draft runs, never the stream.
    #[test]
    fn adaptive_depth_is_lossless() {
        let mut ws = Workspace::new();
        let target = tiny(5);
        let draft = tiny(6);
        let prompt = [2u32, 8, 2, 8];
        let budget = 24;
        let (want, _) =
            speculative_greedy_with_budget_ws(&target, &draft, &prompt, budget, 3, &mut ws);
        let (got, _) = drive(&target, &draft, &prompt, budget, 3, true, &mut ws, |_| {
            usize::MAX
        });
        assert_eq!(got, want);
    }

    /// Tiny budgets: 0 is born done, 1 commits only the pending token,
    /// 2 adds exactly one plain-decoded token without touching the ring.
    #[test]
    fn degenerate_budgets() {
        let mut ws = Workspace::new();
        let target = tiny(50);
        let draft = tiny(51);
        let prompt = [1u32, 2];
        for budget in [0usize, 1, 2] {
            let (want, _) =
                speculative_greedy_with_budget_ws(&target, &draft, &prompt, budget, 3, &mut ws);
            let t_pool = pool_for(&target);
            let (mut t_cache, pending) = prefill_lease(&target, &t_pool, &prompt, budget, &mut ws);
            let mut verify = VerifyHalf::new(&target, &t_cache, 0, pending, budget, 3);
            let ring = SpscRing::new(4);
            while !verify.is_done() {
                let r = verify.try_step_block(&target, &mut t_cache, &ring, &mut ws);
                assert!(
                    r.progressed,
                    "budget {budget} must not stall: no draft needed"
                );
            }
            assert!(ring.is_empty(), "budget {budget} touched the ring");
            let (got, _) = verify.into_parts();
            assert_eq!(got, want, "budget {budget}");
        }
    }

    /// An empty ring is an idle stall, not progress — and the stall is
    /// side-effect free (no stats movement, no cache movement).
    #[test]
    fn empty_ring_reports_idle_stall() {
        let mut ws = Workspace::new();
        let target = tiny(60);
        let t_pool = pool_for(&target);
        let (mut t_cache, pending) = prefill_lease(&target, &t_pool, &[4u32, 2], 10, &mut ws);
        let mut verify = VerifyHalf::new(&target, &t_cache, 0, pending, 10, 3);
        let ring = SpscRing::new(8);
        let len_before = t_cache.len();
        let stats_before = verify.stats().clone();
        let r = verify.try_step_block(&target, &mut t_cache, &ring, &mut ws);
        assert_eq!(r, VerifyReport::idle());
        assert_eq!(t_cache.len(), len_before);
        assert_eq!(*verify.stats(), stats_before);
    }

    /// The rollback protocol end to end: garbage proposals force a
    /// rejection at position 0; the draft must restore to its frontier
    /// checkpoint and resume from the corrected token, after which the
    /// stream still completes correctly.
    #[test]
    fn garbage_proposals_roll_back_and_recover() {
        let mut ws = Workspace::new();
        let target = tiny(70);
        let draft = tiny(71);
        let prompt = [9u32, 0, 9];
        let budget = 12;
        let (want, _) =
            speculative_greedy_with_budget_ws(&target, &draft, &prompt, budget, 3, &mut ws);
        let t_pool = pool_for(&target);
        let d_pool = pool_for(&draft);
        let (mut t_cache, pending) = prefill_lease(&target, &t_pool, &prompt, budget, &mut ws);
        let (mut d_cache, _) = prefill_lease(&draft, &d_pool, &prompt, budget, &mut ws);
        let ring = SpscRing::new(MAX_GAMMA);
        let mut verify = VerifyHalf::new(&target, &t_cache, d_cache.len(), pending, budget, 3);
        let mut da = DraftAhead::new(&mut d_cache, pending);

        let mut rolled = false;
        while !verify.is_done() {
            while matches!(
                da.step(&draft, &mut d_cache, &ring, verify.depth_hint(), &mut ws),
                DraftStep::Produced | DraftStep::RolledBack
            ) {}
            let r = verify.try_step_block(&target, &mut t_cache, &ring, &mut ws);
            rolled |= r.rolled_back;
        }
        let (got, stats) = verify.into_parts();
        assert_eq!(got, want);
        assert_eq!(stats.generated, budget);
        // tiny(70) vs tiny(71) are different models: rejections happen.
        assert!(rolled, "workload failed to exercise rollback");
    }
}
