//! Adaptive speculative depth: retune γ per session from the **running
//! acceptance rate** instead of serving every request with one global γ.
//!
//! Under the standard i.i.d.-acceptance model (Leviathan et al. 2023), a
//! block drafted at depth `g` with per-token acceptance probability `α`
//! commits `E[tokens] = (1 − α^{g+1}) / (1 − α)` tokens and costs one
//! batched target pass plus `g` single-token draft passes. With `c` the
//! draft/target cost ratio, throughput per unit cost is
//!
//! ```text
//! eff(g) = (1 − α^{g+1}) / (1 − α) / (g·c + 1)
//! ```
//!
//! [`AdaptiveGamma`] tracks `α̂` with an EWMA over per-drafted-token
//! accept/reject outcomes and picks `argmax_g eff(g)` over `1..MAX_GAMMA`
//! each block. Aligned drafts (α̂ → 1) push γ up toward the cap; unaligned
//! drafts (α̂ → 0) collapse γ to 1 so the engine stops paying for doomed
//! speculation. Greedy speculative decoding is lossless under **any** γ
//! schedule — every committed token is argmax under the target's own
//! logits — so the controller changes wall-clock only, never output.
//!
//! Determinism: the controller is pure per-session state driven solely by
//! that session's accept/reject history, so engine worker count and slot
//! interleaving cannot perturb its γ choices (pinned by
//! `tests/serving_determinism.rs`).

use crate::MAX_GAMMA;

/// EWMA acceptance tracker + per-block γ optimizer. `Clone` so sessions
/// that fork (e.g. engine retries) carry their learned state.
#[derive(Debug, Clone)]
pub struct AdaptiveGamma {
    /// Running estimate of the per-token acceptance probability.
    alpha_hat: f64,
    /// EWMA retention: `α̂ ← β·α̂ + (1−β)·x` per observed draft token.
    beta: f64,
    /// Draft forward cost relative to one batched target pass.
    cost_ratio: f64,
}

impl AdaptiveGamma {
    /// Neutral prior: α̂ = 0.5, β = 0.9 (≈ last 10 draft tokens dominate).
    pub fn new(cost_ratio: f64) -> Self {
        Self::with_prior(cost_ratio, 0.9, 0.5)
    }

    /// Controller with an explicit EWMA retention and initial α̂.
    pub fn with_prior(cost_ratio: f64, beta: f64, alpha0: f64) -> Self {
        assert!(
            cost_ratio.is_finite() && cost_ratio > 0.0,
            "cost_ratio must be a positive finite number"
        );
        assert!((0.0..1.0).contains(&beta), "beta must be in [0, 1)");
        assert!((0.0..=1.0).contains(&alpha0), "alpha0 must be in [0, 1]");
        Self {
            alpha_hat: alpha0,
            beta,
            cost_ratio,
        }
    }

    /// Convenience: cost ratio from parameter counts of the two models.
    pub fn from_param_counts(draft_params: usize, target_params: usize) -> Self {
        assert!(draft_params > 0 && target_params > 0);
        Self::new(draft_params as f64 / target_params as f64)
    }

    /// Current acceptance-rate estimate.
    #[inline]
    pub fn alpha_hat(&self) -> f64 {
        self.alpha_hat
    }

    /// Fold one verified block into the estimate: `drafted` tokens were
    /// proposed, the first `accepted` of them matched the target. Each
    /// drafted token is one Bernoulli observation (accepted prefix → 1,
    /// the first rejection → 0; tokens after a rejection were never
    /// scored, so they carry no signal and are not counted).
    pub fn observe(&mut self, drafted: usize, accepted: usize) {
        debug_assert!(accepted <= drafted);
        let observed = if accepted < drafted {
            accepted + 1
        } else {
            drafted
        };
        for i in 0..observed {
            let x = if i < accepted { 1.0 } else { 0.0 };
            self.alpha_hat = self.beta * self.alpha_hat + (1.0 - self.beta) * x;
        }
    }

    /// The throughput-per-cost–optimal depth for the current α̂, smallest
    /// γ winning ties. Always in `1..MAX_GAMMA`, so the result is a valid
    /// `SpecSession` γ as-is.
    pub fn gamma(&self) -> usize {
        // Clamp α̂ into [ε, 1−ε]: at 1 the geometric-series quotient
        // divides by zero (and already at 0.9999 the optimum is pinned at
        // the cap); at exactly 0 the quotient is fine but the lower bound
        // keeps eff() strictly positive so the argmax is well-ordered even
        // if a cold-start prior or degenerate EWMA lands on the frontier.
        let a = self.alpha_hat.clamp(1e-4, 0.9999);
        let mut best_g = 1;
        let mut best_eff = f64::NEG_INFINITY;
        for g in 1..MAX_GAMMA {
            let expected = (1.0 - a.powi(g as i32 + 1)) / (1.0 - a);
            let eff = expected / (g as f64 * self.cost_ratio + 1.0);
            if eff > best_eff {
                best_eff = eff;
                best_g = g;
            }
        }
        best_g
    }

    /// [`AdaptiveGamma::gamma`] bounded to what the session can still use:
    /// never below 1 (a degenerate bound still drafts one token — the
    /// caller's own room checks handle true zero-room blocks) and never
    /// beyond `remaining` — the lease/budget headroom — so the cold-start
    /// prior cannot propose a depth the collapsed lease cannot hold.
    pub fn gamma_capped(&self, remaining: usize) -> usize {
        self.gamma().clamp(1, remaining.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_acceptance_drives_gamma_to_the_cap() {
        let mut ctl = AdaptiveGamma::new(1.0 / 16.0);
        for _ in 0..8 {
            ctl.observe(8, 8);
        }
        assert!(ctl.alpha_hat() > 0.99, "alpha_hat = {}", ctl.alpha_hat());
        assert_eq!(ctl.gamma(), MAX_GAMMA - 1);
    }

    #[test]
    fn total_rejection_collapses_gamma_to_one() {
        let mut ctl = AdaptiveGamma::new(1.0 / 16.0);
        for _ in 0..64 {
            ctl.observe(4, 0);
        }
        assert!(ctl.alpha_hat() < 0.01, "alpha_hat = {}", ctl.alpha_hat());
        assert_eq!(ctl.gamma(), 1);
    }

    #[test]
    fn gamma_is_monotone_in_alpha() {
        let cost = 1.0 / 8.0;
        let mut last = 0;
        for a in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0] {
            let ctl = AdaptiveGamma::with_prior(cost, 0.9, a);
            let g = ctl.gamma();
            assert!((1..MAX_GAMMA).contains(&g));
            assert!(g >= last, "gamma dropped from {last} to {g} at alpha {a}");
            last = g;
        }
        assert!(last > 1, "high alpha should push gamma above 1");
    }

    #[test]
    fn expensive_draft_prefers_shallower_blocks() {
        let cheap = AdaptiveGamma::with_prior(0.05, 0.9, 0.8).gamma();
        let dear = AdaptiveGamma::with_prior(0.8, 0.9, 0.8).gamma();
        assert!(
            dear <= cheap,
            "costlier draft must not speculate deeper: {dear} vs {cheap}"
        );
        assert!(cheap > 1);
    }

    /// The α̂ → 1 frontier: an exactly-1.0 prior (or an EWMA saturated by
    /// perfect acceptance) must yield a finite, cap-sized γ — not NaN/∞
    /// from the (1−α̂) division.
    #[test]
    fn alpha_one_frontier_stays_finite_at_the_cap() {
        let ctl = AdaptiveGamma::with_prior(1.0 / 16.0, 0.9, 1.0);
        assert_eq!(ctl.alpha_hat(), 1.0, "prior must sit exactly on 1");
        let g = ctl.gamma();
        assert_eq!(g, MAX_GAMMA - 1, "singular frontier must pin the cap");
        assert!((1..MAX_GAMMA).contains(&ctl.gamma_capped(usize::MAX)));
    }

    /// The α̂ → 0 frontier: an exactly-0.0 prior collapses to γ = 1 with a
    /// well-ordered argmax (no −∞/0 ties).
    #[test]
    fn alpha_zero_frontier_collapses_to_one() {
        let ctl = AdaptiveGamma::with_prior(1.0 / 16.0, 0.9, 0.0);
        assert_eq!(ctl.gamma(), 1);
        assert_eq!(ctl.gamma_capped(5), 1);
    }

    /// `gamma_capped` bounds the proposal into `[1, remaining]`: a
    /// cold-start prior cannot exceed the lease headroom, and a zero-room
    /// cap still returns a valid depth of 1.
    #[test]
    fn gamma_capped_respects_the_lease_budget() {
        let ctl = AdaptiveGamma::with_prior(1.0 / 64.0, 0.9, 1.0);
        assert_eq!(ctl.gamma(), MAX_GAMMA - 1, "uncapped proposal is deep");
        assert_eq!(ctl.gamma_capped(3), 3, "capped to the remaining lease");
        assert_eq!(ctl.gamma_capped(1), 1);
        assert_eq!(ctl.gamma_capped(0), 1, "zero room still yields a valid γ");
        let low = AdaptiveGamma::with_prior(1.0 / 64.0, 0.9, 0.0);
        assert_eq!(low.gamma_capped(40), 1, "cap never raises the proposal");
    }

    /// Partial acceptance observes the rejection token too: 3-of-8 feeds
    /// three 1s and one 0, nothing for the never-scored tail.
    #[test]
    fn observe_counts_only_scored_tokens() {
        let mut a = AdaptiveGamma::with_prior(0.1, 0.5, 0.5);
        let mut b = AdaptiveGamma::with_prior(0.1, 0.5, 0.5);
        a.observe(8, 3);
        for x in [1.0, 1.0, 1.0, 0.0_f64] {
            b.alpha_hat = b.beta * b.alpha_hat + (1.0 - b.beta) * x;
        }
        assert_eq!(a.alpha_hat().to_bits(), b.alpha_hat().to_bits());
    }
}
