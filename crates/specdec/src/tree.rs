//! Tree-structured speculative decoding (OPT-tree style, sized for the
//! AASD setting): instead of one γ-token chain, the draft grows a **token
//! tree** — branching where predicted acceptance is high — and the target
//! scores the whole tree in ONE batched pass via
//! [`Decoder::forward_infer_tree_ws`], committing the longest accepted
//! root-to-leaf path. PR 5's multimodal sweep showed per-prompt acceptance
//! spanning 0.06–1.0; where a single chain dies at the first disagreement,
//! a sibling branch that matches the target's argmax keeps the block
//! alive, lifting block efficiency τ at the **same verified-rows budget**.
//!
//! Losslessness is inherited, not re-proven: greedy acceptance walks the
//! tree child-by-child against the target's own argmax, so every committed
//! token is exactly what autoregressive decoding would emit — and each
//! root-to-leaf path scores bit-identically to feeding that path linearly
//! (pinned in `aasd-nn`). At branching factor 1 the tree degenerates to
//! the linear chain and the whole session is **byte-identical** to
//! [`SpecSession`](crate::SpecSession): same draft feeds, same verify
//! rows, same cache states (the path gather is an identity), same stream.
//!
//! Where the draft branches is decided by a **modality-aware acceptance
//! calibrator** ([`AcceptanceCalibrator`]): a logistic head over the
//! candidate's draft probability, the distribution's top probability, the
//! node depth, and the session's running **visual-attention mass** (how
//! much of the target's attention the vision prefix absorbs — measured for
//! free inside the tree-verify pass). Extra children are only worth a
//! verified row where the head predicts acceptance; low-probability
//! subtrees are pruned before they are ever drafted. The head is trained
//! with the `aasd-train` stack on examples the session collects
//! ([`TreeSession::enable_example_collection`]).

use crate::adaptive::AdaptiveGamma;
use crate::metrics::SpecStats;
use crate::session::StepReport;
use crate::MAX_GAMMA;
use aasd_nn::{Decoder, KvCache};
use aasd_tensor::{argmax, softmax_row, Workspace};

/// Feature vector width of the acceptance calibrator.
pub const CALIBRATOR_FEATURES: usize = 4;

/// Logistic acceptance head: `σ(w·f + b)` over
/// `[cand_prob, top_prob, depth_frac, vis_mass]` (see
/// [`AcceptanceCalibrator::features`]). Predicts the probability that a
/// drafted candidate token will be accepted by the target — the signal
/// that decides per-node branching and subtree early-stops.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptanceCalibrator {
    pub w: [f32; CALIBRATOR_FEATURES],
    pub b: f32,
}

impl AcceptanceCalibrator {
    /// Untrained prior: acceptance tracks the draft's own probability,
    /// discounted with depth, indifferent to modality. Gates extra
    /// children at roughly `cand_prob ≳ 0.25`; training sharpens this and
    /// learns the visual-mass interaction.
    pub fn neutral() -> Self {
        Self {
            w: [6.0, 0.0, -1.0, 0.0],
            b: -1.5,
        }
    }

    /// Assemble the feature vector:
    /// * `cand_prob` — draft softmax probability of the candidate token;
    /// * `top_prob` — probability of the distribution's argmax (how
    ///   peaked the draft is here);
    /// * `depth_frac` — candidate depth / tree depth limit;
    /// * `vis_mass` — the session's running visual-attention mass (the
    ///   modality feature; 0 for text-only sessions).
    pub fn features(
        cand_prob: f32,
        top_prob: f32,
        depth_frac: f32,
        vis_mass: f32,
    ) -> [f32; CALIBRATOR_FEATURES] {
        [cand_prob, top_prob, depth_frac, vis_mass]
    }

    /// Predicted acceptance probability `σ(w·f + b)`.
    pub fn predict(&self, f: &[f32; CALIBRATOR_FEATURES]) -> f32 {
        let z: f32 = self.w.iter().zip(f).map(|(w, x)| w * x).sum::<f32>() + self.b;
        1.0 / (1.0 + (-z).exp())
    }

    /// Branch gate: spend a verified row on this candidate?
    pub fn accept(&self, f: &[f32; CALIBRATOR_FEATURES]) -> bool {
        self.predict(f) >= 0.5
    }
}

/// One labelled observation for calibrator training: the features of a
/// drafted candidate whose parent lay on the accepted path (so the
/// target's verdict on it is known), and whether the target agreed.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptanceExample {
    pub features: [f32; CALIBRATOR_FEATURES],
    pub label: f32,
}

/// Shape of the speculation tree a [`TreeSession`] grows each block. The
/// node budget is always `γ + 1` rows (root + γ drafted tokens) — the
/// **same verified-rows budget** a linear γ-chain block spends — so tree
/// and chain are compared at equal target compute.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum children per node. 1 ⇒ the tree degenerates to the linear
    /// chain (byte-identical to [`SpecSession`](crate::SpecSession)).
    pub branch_factor: usize,
    /// Depth limit. 0 ⇒ use γ (the full chain depth); a smaller limit
    /// trades depth for width within the same node budget.
    pub max_depth: usize,
    /// Extra (non-first) children must carry at least this draft
    /// probability; candidates come in descending probability, so the
    /// first failure stops the scan.
    pub prob_floor: f32,
    /// Optional learned branch gate; `None` gates on `prob_floor` alone.
    pub calibrator: Option<AcceptanceCalibrator>,
    /// Minimum calibrator-predicted acceptance probability for an extra
    /// child to claim a verified row. This is a **cost** knob, not a
    /// correctness one: the row a branch displaces is a chain extension
    /// whose value decays like α^depth, so deep-γ trees want thresholds
    /// well below 0.5 — a sibling with a 15% catch rate beats a depth-5
    /// chain row worth α⁵. Ignored when `calibrator` is `None`.
    pub branch_threshold: f32,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            branch_factor: 2,
            max_depth: 0,
            prob_floor: 0.1,
            calibrator: None,
            branch_threshold: 0.5,
        }
    }
}

impl TreeConfig {
    /// The degenerate single-chain configuration (reference semantics).
    pub fn linear() -> Self {
        Self {
            branch_factor: 1,
            max_depth: 0,
            prob_floor: 0.0,
            calibrator: None,
            branch_threshold: 0.5,
        }
    }
}

/// Flattened token tree under construction: parallel stack arrays, child
/// after parent in flat order (the shape `KvCache::gather_tail` and the
/// ancestor bitmasks rely on).
struct TreeNodes {
    toks: [u32; MAX_GAMMA],
    parents: [usize; MAX_GAMMA],
    depths: [usize; MAX_GAMMA],
    probs: [f32; MAX_GAMMA],
    tops: [f32; MAX_GAMMA],
    n: usize,
}

/// DFS expansion of node `u`'s subtree. Feeds `toks[u]` to the draft,
/// records up to `branch_factor` children (first = draft argmax, always;
/// the rest gated by probability floor + calibrator), and recurses
/// **first-child-first** so the greedy chain claims the node budget before
/// any sibling — which is exactly what makes branching factor 1 reproduce
/// the linear draft feeds token for token. The draft cache is rolled back
/// to the post-`u` state between siblings, so every path sees exactly its
/// own ancestors.
#[allow(clippy::too_many_arguments)]
fn expand(
    nodes: &mut TreeNodes,
    u: usize,
    draft: &Decoder,
    d_cache: &mut KvCache,
    ws: &mut Workspace,
    cfg: &TreeConfig,
    max_nodes: usize,
    max_depth: usize,
    vis_mass: f32,
) {
    if nodes.depths[u] >= max_depth || nodes.n >= max_nodes {
        return;
    }
    let vocab = draft.cfg.vocab;
    let mut dl = ws.take(vocab);
    draft.forward_infer_ws(&[nodes.toks[u]], d_cache, ws, &mut dl);
    let fed_len = d_cache.len();
    // First child from the RAW logits (identical tie-breaks to the linear
    // draft loop), then softmax in place for candidate probabilities.
    let first = argmax(&dl);
    softmax_row(&mut dl);
    let top = dl[first];
    let depth_frac = (nodes.depths[u] + 1) as f32 / max_depth as f32;
    // Record ALL of u's children before recursing into any subtree, so the
    // node budget favours shallow branches: a sibling at depth d only pays
    // off when the d−1 ancestors were all accepted, which makes shallow
    // recovery branches worth strictly more rows than deep chain tail —
    // recording breadth-first at each node puts the budget there first,
    // while the recursion below still walks the greedy chain ahead of any
    // sibling subtree.
    let child_lo = nodes.n;
    for r in 0..cfg.branch_factor.max(1) {
        if nodes.n >= max_nodes {
            break;
        }
        let cand = if r == 0 { first } else { argmax(&dl) };
        let prob = dl[cand];
        if r > 0 {
            // Candidates arrive in descending probability: the first one
            // below the floor (or rejected by the calibrator) ends the
            // scan — the early-stop that keeps low-probability subtrees
            // from ever costing a verified row.
            if prob < cfg.prob_floor {
                break;
            }
            if let Some(cal) = &cfg.calibrator {
                let f = AcceptanceCalibrator::features(prob, top, depth_frac, vis_mass);
                if cal.predict(&f) < cfg.branch_threshold {
                    break;
                }
            }
        }
        dl[cand] = -1.0; // exclude from later sibling picks
        let c = nodes.n;
        nodes.toks[c] = cand as u32;
        nodes.parents[c] = u;
        nodes.depths[c] = nodes.depths[u] + 1;
        nodes.probs[c] = prob;
        nodes.tops[c] = top;
        nodes.n += 1;
    }
    let child_hi = nodes.n;
    ws.give(dl);
    for c in child_lo..child_hi {
        expand(
            nodes, c, draft, d_cache, ws, cfg, max_nodes, max_depth, vis_mass,
        );
        d_cache.truncate(fed_len);
    }
}

/// Resumable **tree** speculative decoding: [`SpecSession`]'s contract —
/// same constructor asserts, same pending-token fold, same block-granular
/// stepping, same lossless greedy acceptance — with the γ-token chain
/// generalized to a token tree verified in one target pass.
///
/// [`SpecSession`]: crate::SpecSession
#[derive(Debug, Clone)]
pub struct TreeSession {
    pending: u32,
    budget: usize,
    gamma: usize,
    cfg: TreeConfig,
    out: Vec<u32>,
    stats: SpecStats,
    t_off: usize,
    d_off: usize,
    done: bool,
    adaptive: Option<AdaptiveGamma>,
    /// Target-cache prefix length treated as the vision prefix when
    /// measuring visual-attention mass (0 ⇒ text-only, no measurement).
    vis_boundary: usize,
    /// Lagged EWMA of the verify pass's mean visual-attention mass — the
    /// calibrator's modality feature for the NEXT block.
    vis_mass: f32,
    collect: bool,
    examples: Vec<AcceptanceExample>,
}

impl TreeSession {
    /// Start a tree session from pre-seeded caches; cache/budget contract
    /// identical to [`SpecSession::new`](crate::SpecSession::new).
    /// `vis_boundary` is the target cache's vision-prefix length (0 for
    /// text-only requests).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        target: &Decoder,
        draft: &Decoder,
        t_cache: &KvCache,
        d_cache: &KvCache,
        pending: u32,
        budget: usize,
        gamma: usize,
        cfg: TreeConfig,
        vis_boundary: usize,
    ) -> Self {
        assert!(
            (1..MAX_GAMMA).contains(&gamma),
            "gamma must be in 1..{MAX_GAMMA}"
        );
        assert!(cfg.branch_factor >= 1, "branch factor must be at least 1");
        assert!(
            t_cache.len() + budget <= target.cfg.max_seq.min(t_cache.capacity()) + 1,
            "budget exceeds target context window / lease capacity"
        );
        assert!(
            d_cache.len() + budget <= draft.cfg.max_seq.min(d_cache.capacity()) + 1,
            "budget exceeds draft context window / lease capacity"
        );
        assert!(
            vis_boundary <= t_cache.len(),
            "vision boundary beyond the prefilled target cache"
        );
        let mut s = Self {
            pending,
            budget,
            gamma,
            cfg,
            out: Vec::with_capacity(budget),
            stats: SpecStats::default(),
            t_off: t_cache.len(),
            d_off: d_cache.len(),
            done: budget == 0,
            adaptive: None,
            vis_boundary,
            vis_mass: 0.0,
            collect: false,
            examples: Vec::new(),
        };
        if !s.done {
            s.out.push(pending);
            s.stats.generated += 1;
            s.stats.prefill_tokens += 1;
            s.done = s.out.len() == s.budget;
        }
        s
    }

    /// Attach a per-session γ controller; the proposal is bounded by the
    /// remaining lease/budget via [`AdaptiveGamma::gamma_capped`].
    pub fn enable_adaptive_gamma(&mut self, controller: AdaptiveGamma) {
        self.adaptive = Some(controller);
    }

    /// Record one [`AcceptanceExample`] per target-adjudicated candidate
    /// (drain with [`TreeSession::take_examples`]) — calibrator training
    /// data collection.
    pub fn enable_example_collection(&mut self) {
        self.collect = true;
    }

    /// Drain the collected training examples.
    pub fn take_examples(&mut self) -> Vec<AcceptanceExample> {
        std::mem::take(&mut self.examples)
    }

    /// The γ (tree depth budget) the next block will use (diagnostics).
    #[inline]
    pub fn gamma(&self) -> usize {
        self.adaptive.as_ref().map_or(self.gamma, |a| a.gamma())
    }

    /// The running visual-attention-mass feature (diagnostics).
    #[inline]
    pub fn visual_mass(&self) -> f32 {
        self.vis_mass
    }

    #[inline]
    pub fn tokens(&self) -> &[u32] {
        &self.out
    }

    #[inline]
    pub fn stats(&self) -> &SpecStats {
        &self.stats
    }

    #[inline]
    pub fn is_done(&self) -> bool {
        self.done
    }

    pub fn into_parts(self) -> (Vec<u32>, SpecStats) {
        (self.out, self.stats)
    }

    /// Execute **one** tree block: DFS-draft a token tree (node budget
    /// γ+1 rows — the linear block's verified-rows budget), score every
    /// node in a single tree-attention target pass, walk the longest
    /// accepted root-to-leaf path, commit it plus the correction/bonus
    /// token, and compact the accepted rows in place with
    /// [`KvCache::gather_tail`]. Falls back to one plain decode step when
    /// budget or context leaves no room to speculate.
    pub fn step_block(
        &mut self,
        target: &Decoder,
        draft: &Decoder,
        t_cache: &mut KvCache,
        d_cache: &mut KvCache,
        ws: &mut Workspace,
    ) -> StepReport {
        if self.done {
            return StepReport {
                committed: 0,
                done: true,
            };
        }
        let before = self.out.len();
        let (t_vocab, d_vocab) = (target.cfg.vocab, draft.cfg.vocab);
        let t_base = t_cache.len();
        let d_base = d_cache.len();
        debug_assert_eq!(t_base, self.t_off + self.out.len() - 1);
        debug_assert_eq!(d_base, self.d_off + self.out.len() - 1);
        // Same room arithmetic as the linear session: the tree feeds at
        // most g+1 rows to the target and runs the draft at most g deep.
        let t_room = target.cfg.max_seq.min(t_cache.capacity()) - t_base - 1;
        let d_room = draft.cfg.max_seq.min(d_cache.capacity()) - d_base - 1;
        let room = t_room.min(d_room);
        if let Some(ctl) = &self.adaptive {
            self.gamma = ctl.gamma_capped(room.min(self.budget - self.out.len() - 1));
        }
        let g = self.gamma.min(self.budget - self.out.len() - 1).min(room);
        if g == 0 {
            // One token of budget or context left: plain fused decode step.
            let mut logits = ws.take(t_vocab);
            target.forward_infer_ws(&[self.pending], t_cache, ws, &mut logits);
            let next = argmax(&logits) as u32;
            ws.give(logits);
            self.out.push(next);
            self.stats.blocks += 1;
            self.stats.generated += 1;
            if self.out.len() < self.budget {
                let mut dl = ws.take(d_vocab);
                draft.forward_infer_ws(&[self.pending], d_cache, ws, &mut dl);
                ws.give(dl);
            } else {
                self.done = true;
            }
            self.pending = next;
            return StepReport {
                committed: self.out.len() - before,
                done: self.done,
            };
        }

        // Draft phase: grow the tree. Depth ≤ min(cfg.max_depth, g), node
        // budget g+1 — exactly the rows a linear γ=g block would verify.
        let depth_eff = if self.cfg.max_depth == 0 {
            g
        } else {
            self.cfg.max_depth.min(g)
        };
        let max_nodes = g + 1;
        let mut nodes = TreeNodes {
            toks: [0; MAX_GAMMA],
            parents: [usize::MAX; MAX_GAMMA],
            depths: [0; MAX_GAMMA],
            probs: [1.0; MAX_GAMMA],
            tops: [1.0; MAX_GAMMA],
            n: 1,
        };
        nodes.toks[0] = self.pending;
        expand(
            &mut nodes,
            0,
            draft,
            d_cache,
            ws,
            &self.cfg,
            max_nodes,
            depth_eff,
            self.vis_mass,
        );
        let n = nodes.n;
        d_cache.truncate(d_base);

        // Verify phase: ONE tree-attention target pass scores all n rows.
        let mut vis = [0u64; MAX_GAMMA];
        for i in 0..n {
            vis[i] = 1 << i;
            if i > 0 {
                vis[i] |= vis[nodes.parents[i]];
            }
        }
        let mut v_logits = ws.take(n * t_vocab);
        let mut mass = [0.0f32; MAX_GAMMA];
        target.forward_infer_tree_ws(
            &nodes.toks[..n],
            &nodes.depths[..n],
            &vis[..n],
            self.vis_boundary,
            t_cache,
            ws,
            &mut v_logits,
            &mut mass[..n],
        );

        // Accept walk: from the root, follow the child matching the
        // target's argmax (greedy drafting makes children distinct, so at
        // most one matches). The exit prediction is the correction token
        // on mismatch and the free bonus token at a leaf — uniformly.
        let mut path = [0usize; MAX_GAMMA];
        let mut plen = 1usize;
        let mut cur = 0usize;
        let next = loop {
            let pred = argmax(&v_logits[cur * t_vocab..(cur + 1) * t_vocab]) as u32;
            let mut hit = usize::MAX;
            for c in cur + 1..n {
                if nodes.parents[c] == cur && nodes.toks[c] == pred {
                    hit = c;
                    break;
                }
            }
            if hit == usize::MAX {
                break pred;
            }
            path[plen] = hit;
            plen += 1;
            cur = hit;
        };
        let accepted = plen - 1;

        if self.collect {
            // Every candidate whose parent lies on the accepted path was
            // adjudicated by this verify pass — label it.
            for c in 1..n {
                let p = nodes.parents[c];
                if path[..plen].contains(&p) {
                    let pred = argmax(&v_logits[p * t_vocab..(p + 1) * t_vocab]) as u32;
                    self.examples.push(AcceptanceExample {
                        features: AcceptanceCalibrator::features(
                            nodes.probs[c],
                            nodes.tops[c],
                            nodes.depths[c] as f32 / depth_eff as f32,
                            self.vis_mass,
                        ),
                        label: if nodes.toks[c] == pred { 1.0 } else { 0.0 },
                    });
                }
            }
        }
        ws.give(v_logits);

        if self.vis_boundary > 0 {
            let mean = mass[..n].iter().sum::<f32>() / n as f32;
            self.vis_mass = 0.7 * self.vis_mass + 0.3 * mean;
        }

        self.stats.blocks += 1;
        self.stats.drafted += n - 1;
        self.stats.accepted += accepted;
        if let Some(ctl) = &mut self.adaptive {
            // Chain-equivalent observation: the greedy chain ran the full
            // depth budget; `accepted` of it survived.
            ctl.observe(depth_eff, accepted.min(depth_eff));
        }
        let commit = (accepted + 1).min(self.budget - self.out.len());
        self.stats.generated += commit;
        for &p in path.iter().take(commit.min(accepted) + 1).skip(1) {
            self.out.push(nodes.toks[p]);
        }
        if commit > accepted {
            self.out.push(next);
        }
        if self.out.len() >= self.budget {
            // Final block: skip the compaction, exactly like the linear
            // session skips its rollback.
            self.done = true;
            return StepReport {
                committed: self.out.len() - before,
                done: true,
            };
        }
        // Commit the accepted path: compact its rows down over the
        // rejected siblings (an identity copy at branching factor 1) and
        // resync the draft with one batched refeed — bit-identical to the
        // sequential feeds, so the next block starts from exactly the
        // state the linear session would hold.
        t_cache.gather_tail(t_base, &path[..plen]);
        let mut refeed = [0u32; MAX_GAMMA];
        refeed[0] = self.pending;
        for k in 1..plen {
            refeed[k] = nodes.toks[path[k]];
        }
        let mut dl = ws.take(plen * d_vocab);
        draft.forward_infer_ws(&refeed[..plen], d_cache, ws, &mut dl);
        ws.give(dl);
        self.pending = next;
        StepReport {
            committed: self.out.len() - before,
            done: false,
        }
    }
}

/// One-shot driver over [`TreeSession`], mirroring
/// `speculative_greedy_seeded_ws` (same cache contract and return shape).
#[allow(clippy::too_many_arguments)]
pub fn speculative_tree_seeded_ws(
    target: &Decoder,
    draft: &Decoder,
    t_cache: &mut KvCache,
    d_cache: &mut KvCache,
    pending: u32,
    budget: usize,
    gamma: usize,
    cfg: TreeConfig,
    vis_boundary: usize,
    ws: &mut Workspace,
) -> (Vec<u32>, SpecStats) {
    let mut session = TreeSession::new(
        target,
        draft,
        t_cache,
        d_cache,
        pending,
        budget,
        gamma,
        cfg,
        vis_boundary,
    );
    while !session.is_done() {
        session.step_block(target, draft, t_cache, d_cache, ws);
    }
    session.into_parts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{autoregressive_greedy_with_budget, speculative_greedy_seeded_ws};
    use aasd_nn::DecoderConfig;
    use aasd_tensor::Rng;

    fn tiny(seed: u64) -> Decoder {
        Decoder::new(DecoderConfig::tiny(40), seed)
    }

    fn prefill(model: &Decoder, prompt: &[u32], ws: &mut Workspace) -> (KvCache, u32) {
        let vocab = model.cfg.vocab;
        let mut cache = model.new_cache();
        let mut logits = ws.take(prompt.len() * vocab);
        model.forward_infer_ws(prompt, &mut cache, ws, &mut logits);
        let pending = argmax(&logits[(prompt.len() - 1) * vocab..]) as u32;
        ws.give(logits);
        (cache, pending)
    }

    /// Every tree shape is lossless: output ≡ the AR chain, for branching
    /// factors 1..4, shallow and full depth, with and without the
    /// calibrator, across γ — on an adversarial (independent) draft.
    #[test]
    fn every_tree_shape_is_lossless() {
        let target = tiny(0xA0);
        let draft = tiny(0xA1);
        let mut ws = Workspace::new();
        let mut rng = Rng::new(6);
        for case in 0u64..3 {
            let p: Vec<u32> = (0..4 + case as usize)
                .map(|_| rng.below(40) as u32)
                .collect();
            let budget = 22;
            let reference = autoregressive_greedy_with_budget(&target, &p, budget);
            for bf in [1usize, 2, 3] {
                for max_depth in [0usize, 3] {
                    for cal in [None, Some(AcceptanceCalibrator::neutral())] {
                        let cfg = TreeConfig {
                            branch_factor: bf,
                            max_depth,
                            prob_floor: 0.05,
                            calibrator: cal,
                            branch_threshold: 0.25,
                        };
                        let (mut tc, pending) = prefill(&target, &p, &mut ws);
                        let (mut dc, _) = prefill(&draft, &p, &mut ws);
                        let (out, stats) = speculative_tree_seeded_ws(
                            &target, &draft, &mut tc, &mut dc, pending, budget, 5, cfg, 0, &mut ws,
                        );
                        assert_eq!(
                            out, reference,
                            "tree lost losslessness: bf={bf} depth={max_depth}"
                        );
                        assert_eq!(stats.generated, budget);
                        assert!(stats.accepted <= stats.drafted);
                    }
                }
            }
        }
    }

    /// Branching factor 1 is BYTE-identical to the linear session: same
    /// stream, same stats, and the caches finish in the same state.
    #[test]
    fn branching_factor_one_is_byte_identical_to_linear() {
        let target = tiny(0xB0);
        let draft = tiny(0xB1);
        let mut ws = Workspace::new();
        let mut rng = Rng::new(7);
        for gamma in [1usize, 3, 5] {
            let p: Vec<u32> = (0..5).map(|_| rng.below(40) as u32).collect();
            let budget = 19;
            let (mut tc_l, pending) = prefill(&target, &p, &mut ws);
            let (mut dc_l, _) = prefill(&draft, &p, &mut ws);
            let (want, want_stats) = speculative_greedy_seeded_ws(
                &target, &draft, &mut tc_l, &mut dc_l, pending, budget, gamma, &mut ws,
            );
            let (mut tc_t, pending_t) = prefill(&target, &p, &mut ws);
            let (mut dc_t, _) = prefill(&draft, &p, &mut ws);
            assert_eq!(pending, pending_t);
            let (got, got_stats) = speculative_tree_seeded_ws(
                &target,
                &draft,
                &mut tc_t,
                &mut dc_t,
                pending_t,
                budget,
                gamma,
                TreeConfig::linear(),
                0,
                &mut ws,
            );
            assert_eq!(got, want, "γ={gamma} stream diverged");
            assert_eq!(got_stats, want_stats, "γ={gamma} stats diverged");
            assert_eq!(tc_t.len(), tc_l.len());
            assert_eq!(dc_t.len(), dc_l.len());
            for l in 0..target.cfg.n_layers {
                for pos in 0..tc_l.len() {
                    assert_eq!(tc_l.layer(l).key(pos), tc_t.layer(l).key(pos));
                    assert_eq!(tc_l.layer(l).value(pos), tc_t.layer(l).value(pos));
                }
            }
        }
    }

    /// A branched tree on a self-draft accepts its full chain every block
    /// and τ reaches the depth bound despite the extra branch rows.
    #[test]
    fn self_draft_tree_accepts_the_full_chain() {
        let target = tiny(0xC0);
        let mut ws = Workspace::new();
        let p = [2u32, 9, 33, 1];
        let budget = 21;
        let reference = autoregressive_greedy_with_budget(&target, &p, budget);
        let (mut tc, pending) = prefill(&target, &p, &mut ws);
        let (mut dc, _) = prefill(&target, &p, &mut ws);
        let (out, stats) = speculative_tree_seeded_ws(
            &target,
            &target,
            &mut tc,
            &mut dc,
            pending,
            budget,
            4,
            TreeConfig {
                branch_factor: 2,
                max_depth: 0,
                prob_floor: 0.0,
                calibrator: None,
                branch_threshold: 0.5,
            },
            0,
            &mut ws,
        );
        assert_eq!(out, reference);
        // Every block's greedy chain is fully accepted, so τ is pinned at
        // the depth the breadth-first budget leaves the chain (γ=4 → 5
        // nodes → chain depth 2 beside the branches → 3 commits/block).
        let tau = stats.block_efficiency();
        assert!(tau > 2.5, "self-draft tree τ too low: {tau}");
    }

    /// The adaptive controller composes with the tree session and stays
    /// lossless while γ moves.
    #[test]
    fn adaptive_tree_session_is_lossless() {
        let target = tiny(0xD0);
        let draft = tiny(0xD1);
        let mut ws = Workspace::new();
        let p = [1u32, 8, 3, 20, 5];
        let budget = 24;
        let reference = autoregressive_greedy_with_budget(&target, &p, budget);
        let (mut tc, pending) = prefill(&target, &p, &mut ws);
        let (mut dc, _) = prefill(&draft, &p, &mut ws);
        let mut s = TreeSession::new(
            &target,
            &draft,
            &tc,
            &dc,
            pending,
            budget,
            3,
            TreeConfig::default(),
            0,
        );
        s.enable_adaptive_gamma(AdaptiveGamma::new(0.25));
        while !s.is_done() {
            let g = s.gamma();
            assert!((1..MAX_GAMMA).contains(&g));
            s.step_block(&target, &draft, &mut tc, &mut dc, &mut ws);
        }
        let (out, _) = s.into_parts();
        assert_eq!(out, reference);
    }

    /// Example collection labels candidates with the target's actual
    /// verdict: on a self-draft every first child is accepted (label 1),
    /// and features stay in range.
    #[test]
    fn example_collection_labels_follow_the_target() {
        let target = tiny(0xE0);
        let draft = tiny(0xE1);
        let mut ws = Workspace::new();
        let p = [4u32, 17, 2];
        let (mut tc, pending) = prefill(&target, &p, &mut ws);
        let (mut dc, _) = prefill(&draft, &p, &mut ws);
        let mut s = TreeSession::new(
            &target,
            &draft,
            &tc,
            &dc,
            pending,
            20,
            4,
            TreeConfig::default(),
            0,
        );
        s.enable_example_collection();
        while !s.is_done() {
            s.step_block(&target, &draft, &mut tc, &mut dc, &mut ws);
        }
        let examples = s.take_examples();
        assert!(!examples.is_empty(), "an adversarial draft must be judged");
        assert!(examples.iter().any(|e| e.label == 0.0), "no rejections?");
        for e in &examples {
            assert!((0.0..=1.0).contains(&e.features[0]), "prob {e:?}");
            assert!((0.0..=1.0).contains(&e.features[2]), "depth {e:?}");
            assert!(e.label == 0.0 || e.label == 1.0);
        }
        assert!(s.take_examples().is_empty(), "drain must empty the buffer");
    }

    /// The calibrator head is a well-formed logistic: monotone in a
    /// positively-weighted feature and σ-bounded.
    #[test]
    fn calibrator_predictions_are_probabilities() {
        let cal = AcceptanceCalibrator::neutral();
        let lo = cal.predict(&AcceptanceCalibrator::features(0.05, 0.9, 0.5, 0.3));
        let hi = cal.predict(&AcceptanceCalibrator::features(0.95, 0.9, 0.5, 0.3));
        assert!(lo < hi, "higher draft prob must predict higher acceptance");
        for p in [lo, hi] {
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(cal.accept(&AcceptanceCalibrator::features(0.9, 0.9, 0.2, 0.0)));
        assert!(!cal.accept(&AcceptanceCalibrator::features(0.01, 0.9, 1.0, 0.0)));
    }
}
