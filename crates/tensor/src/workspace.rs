//! Reusable scratch arena for the zero-allocation decode path.
//!
//! Every incremental forward pass needs the same family of temporaries
//! (normed activations, Q/K/V rows, attention scores, MLP hidden buffers,
//! logits). Allocating them per step pays the allocator on every token; the
//! [`Workspace`] instead keeps a pool of previously-used buffers and hands
//! them out by **best fit**: `take(len)` returns the smallest pooled buffer
//! whose capacity covers `len`, and only allocates when nothing fits. A
//! steady-state decode loop requests the same sizes every step, so after
//! the first (warm-up) step every request is served from the pool and the
//! step performs **zero heap allocations** — proven by the counting-
//! allocator test at the repo root (`tests/zero_alloc.rs`).
//!
//! Ownership doubles as the borrow check: `take` moves the buffer out of
//! the pool, so two live scratch buffers can never alias; `give` moves it
//! back when the caller is done. A buffer that is never given back is not
//! unsafe — the pool simply re-grows once on the next request.
//!
//! The workspace also carries the decode [`Profiler`] so the fused forward
//! passes need only one context parameter threaded through every layer.

use crate::profile::Profiler;

/// Grow-once scratch-buffer pool + decode profiler.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<f32>>,
    /// Separate i8 pool for the quantized path's activation-code scratch —
    /// same best-fit discipline, so int8 decode stays zero-allocation too.
    free_i8: Vec<Vec<i8>>,
    fresh_allocs: usize,
    /// Per-op decode profiler (disabled by default; see [`Profiler`]).
    pub prof: Profiler,
}

impl Workspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow a zeroed buffer of exactly `len` elements. Best-fit from the
    /// pool; allocates (and counts it in [`Workspace::fresh_allocs`]) only
    /// when no pooled buffer has the capacity.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|j| buf.capacity() < self.free[j].capacity())
            {
                best = Some(i);
            }
        }
        let mut buf = match best {
            Some(i) => self.free.swap_remove(i),
            None => {
                self.fresh_allocs += 1;
                Vec::with_capacity(len)
            }
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Return a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        // Keep the pool's own spine from reallocating in the steady state:
        // grow it in chunks, ahead of demand.
        if self.free.len() == self.free.capacity() {
            self.free.reserve(16);
        }
        self.free.push(buf);
    }

    /// Borrow a zeroed i8 buffer of exactly `len` elements (best-fit, same
    /// contract as [`Workspace::take`]); used by the int8 path for per-call
    /// activation quantization scratch.
    pub fn take_i8(&mut self, len: usize) -> Vec<i8> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.free_i8.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|j| buf.capacity() < self.free_i8[j].capacity())
            {
                best = Some(i);
            }
        }
        let mut buf = match best {
            Some(i) => self.free_i8.swap_remove(i),
            None => {
                self.fresh_allocs += 1;
                Vec::with_capacity(len)
            }
        };
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Return an i8 buffer to the pool for reuse.
    pub fn give_i8(&mut self, buf: Vec<i8>) {
        if self.free_i8.len() == self.free_i8.capacity() {
            self.free_i8.reserve(16);
        }
        self.free_i8.push(buf);
    }

    /// Number of buffers currently pooled (diagnostics; both element types).
    pub fn pooled(&self) -> usize {
        self.free.len() + self.free_i8.len()
    }

    /// Fresh heap allocations performed so far. In a steady-state loop this
    /// stops increasing after the warm-up pass — the property the
    /// zero-allocation test pins down at the allocator level.
    pub fn fresh_allocs(&self) -> usize {
        self.fresh_allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroes_and_sizes() {
        let mut ws = Workspace::new();
        let mut a = ws.take(8);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|&v| v == 0.0));
        a.fill(3.0);
        ws.give(a);
        let b = ws.take(8);
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer must be zeroed");
    }

    #[test]
    fn steady_state_requests_stop_allocating() {
        let mut ws = Workspace::new();
        // Warm-up: the working set is {16, 64, 256}.
        for _ in 0..2 {
            let a = ws.take(256);
            let b = ws.take(16);
            let c = ws.take(64);
            ws.give(b);
            ws.give(a);
            ws.give(c);
        }
        let after_warmup = ws.fresh_allocs();
        for _ in 0..50 {
            let a = ws.take(64);
            let b = ws.take(256);
            let c = ws.take(16);
            ws.give(a);
            ws.give(c);
            ws.give(b);
        }
        assert_eq!(
            ws.fresh_allocs(),
            after_warmup,
            "steady-state take/give must be allocation-free"
        );
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let mut ws = Workspace::new();
        let big = ws.take(1024);
        let small = ws.take(32);
        ws.give(big);
        ws.give(small);
        let got = ws.take(16);
        assert!(
            got.capacity() < 1024,
            "best fit must not burn the big buffer on a small request"
        );
        ws.give(got);
        let got = ws.take(512);
        assert!(got.capacity() >= 1024, "only the big buffer fits 512");
    }

    #[test]
    fn unfit_request_allocates_fresh() {
        let mut ws = Workspace::new();
        let a = ws.take(8);
        ws.give(a);
        assert_eq!(ws.fresh_allocs(), 1);
        let b = ws.take(1000);
        assert_eq!(b.len(), 1000);
        assert_eq!(ws.fresh_allocs(), 2);
    }
}
