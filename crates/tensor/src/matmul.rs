//! Dense f32 matrix-multiply kernels: `C = A·B` with `A: m×k`, `B: k×n`,
//! `C: m×n`, all row-major.
//!
//! Three implementations are kept on purpose:
//!
//! * [`matmul_naive_into`] — the textbook triple loop. It is the semantic
//!   reference every other kernel is property-tested against, and the
//!   baseline every bench compares to. Never "optimize" it.
//! * [`matmul_blocked_into`] — cache-blocked i/k tiling with a contiguous
//!   `axpy`-style inner loop that the compiler auto-vectorizes. This is the
//!   default single-threaded kernel.
//! * [`matmul_parallel_into`] — the blocked kernel with the rows of `C`
//!   partitioned across `std::thread::scope` threads (one per available
//!   core). On a 1-core host it degenerates to the blocked kernel without
//!   spawning.

/// Rows-of-A block size: keeps a tile of `C` rows hot while a `K`-panel of
/// `B` streams through.
const BLOCK_I: usize = 32;
/// K-panel size: `BLOCK_K` rows of `B` (`BLOCK_K × n` floats) are re-read for
/// every row of the `I` block, so the panel must fit comfortably in L1/L2.
const BLOCK_K: usize = 64;

#[inline]
fn check_dims(a: &[f32], b: &[f32], c: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
}

/// Reference kernel: straightforward `i,j,k` loops with a strided walk down
/// each column of `B`. O(mkn) with no regard for locality.
pub fn matmul_naive_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(a, b, c, m, k, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Cache-blocked kernel. The inner loop is `c_row += a[i,kk] * b_row`, a
/// contiguous fused multiply-add over `n` floats, which auto-vectorizes and
/// reads both operands with unit stride.
pub fn matmul_blocked_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(a, b, c, m, k, n);
    c.fill(0.0);
    matmul_blocked_rows(c, a, b, 0, m, k, n);
}

/// Blocked kernel over a row range `[row0, row1)` of `C`/`A`. `c` is the
/// slice for exactly those rows (i.e. `c.len() == (row1-row0)*n`). Factored
/// out so the parallel kernel can hand each thread a disjoint row band.
fn matmul_blocked_rows(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    row0: usize,
    row1: usize,
    k: usize,
    n: usize,
) {
    for i0 in (row0..row1).step_by(BLOCK_I) {
        let i1 = (i0 + BLOCK_I).min(row1);
        for k0 in (0..k).step_by(BLOCK_K) {
            let k1 = (k0 + BLOCK_K).min(k);
            for i in i0..i1 {
                let c_row = &mut c[(i - row0) * n..(i - row0 + 1) * n];
                let a_row = &a[i * k..(i + 1) * k];
                for kk in k0..k1 {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..kk * n + n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += aik * *bv;
                    }
                }
            }
        }
    }
}

/// Number of worker threads the parallel kernel will use.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Blocked kernel with the rows of `C` split across scoped threads. Falls
/// back to the single-threaded blocked kernel when one thread suffices or
/// the matrix is too small for spawn overhead to pay off.
pub fn matmul_parallel_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(a, b, c, m, k, n);
    let threads = hardware_threads().min(m);
    // ~2^20 flops is where spawning starts to win; below that, stay serial.
    if threads <= 1 || m * k * n < 1 << 20 {
        matmul_blocked_into(c, a, b, m, k, n);
        return;
    }
    c.fill(0.0);
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = c;
        let mut row0 = 0usize;
        while row0 < m {
            let row1 = (row0 + rows_per).min(m);
            let (band, tail) = rest.split_at_mut((row1 - row0) * n);
            rest = tail;
            scope.spawn(move || matmul_blocked_rows(band, a, b, row0, row1, k, n));
            row0 = row1;
        }
    });
}

/// Matrix–vector product `y = A·x` (`A: m×k`, `x: k`). The incremental
/// decode path is a chain of these; it is memory-bound (one pass over `A`).
pub fn matvec_into(y: &mut [f32], a: &[f32], x: &[f32], m: usize, k: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(x.len(), k);
    assert_eq!(y.len(), m);
    for (i, yi) in y.iter_mut().enumerate() {
        let row = &a[i * k..(i + 1) * k];
        let mut acc = 0.0f32;
        for (av, xv) in row.iter().zip(x.iter()) {
            acc += *av * *xv;
        }
        *yi = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_mat(rng: &mut Rng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    /// Property sweep (proptest stand-in): over many seeded random shapes,
    /// blocked and parallel kernels must match the naive reference.
    #[test]
    fn blocked_and_parallel_match_naive_on_random_shapes() {
        let mut rng = Rng::new(0xA5D);
        for _case in 0..60 {
            let m = 1 + rng.below(48);
            let k = 1 + rng.below(48);
            let n = 1 + rng.below(48);
            let a = random_mat(&mut rng, m * k);
            let b = random_mat(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c_blk = vec![0.0; m * n];
            let mut c_par = vec![0.0; m * n];
            matmul_naive_into(&mut c_ref, &a, &b, m, k, n);
            matmul_blocked_into(&mut c_blk, &a, &b, m, k, n);
            matmul_parallel_into(&mut c_par, &a, &b, m, k, n);
            let tol = 1e-4 * k as f32;
            assert!(
                max_abs_diff(&c_ref, &c_blk) < tol,
                "blocked diverged at m={m} k={k} n={n}"
            );
            assert!(
                max_abs_diff(&c_ref, &c_par) < tol,
                "parallel diverged at m={m} k={k} n={n}"
            );
        }
    }

    /// Shapes straddling the block boundaries (the off-by-one minefield).
    #[test]
    fn block_boundary_shapes() {
        let mut rng = Rng::new(99);
        for &(m, k, n) in &[
            (1, 1, 1),
            (BLOCK_I, BLOCK_K, 8),
            (BLOCK_I + 1, BLOCK_K + 1, 7),
            (BLOCK_I - 1, BLOCK_K - 1, 9),
            (2 * BLOCK_I + 3, 2 * BLOCK_K + 5, 33),
            (1, 130, 65),
            (65, 1, 130),
        ] {
            let a = random_mat(&mut rng, m * k);
            let b = random_mat(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c_blk = vec![0.0; m * n];
            matmul_naive_into(&mut c_ref, &a, &b, m, k, n);
            matmul_blocked_into(&mut c_blk, &a, &b, m, k, n);
            assert!(
                max_abs_diff(&c_ref, &c_blk) < 1e-3,
                "mismatch at m={m} k={k} n={n}"
            );
        }
    }

    /// The parallel kernel must engage its threaded path on a matrix big
    /// enough to cross the spawn threshold and still match the reference.
    #[test]
    fn parallel_large_matches_naive() {
        let mut rng = Rng::new(7);
        let (m, k, n) = (128, 128, 128);
        let a = random_mat(&mut rng, m * k);
        let b = random_mat(&mut rng, k * n);
        let mut c_ref = vec![0.0; m * n];
        let mut c_par = vec![0.0; m * n];
        matmul_naive_into(&mut c_ref, &a, &b, m, k, n);
        matmul_parallel_into(&mut c_par, &a, &b, m, k, n);
        assert!(max_abs_diff(&c_ref, &c_par) < 1e-2);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng::new(11);
        let (m, k) = (37, 53);
        let a = random_mat(&mut rng, m * k);
        let x = random_mat(&mut rng, k);
        let mut y = vec![0.0; m];
        let mut y_ref = vec![0.0; m];
        matvec_into(&mut y, &a, &x, m, k);
        matmul_naive_into(&mut y_ref, &a, &x, m, k, 1);
        assert!(max_abs_diff(&y, &y_ref) < 1e-4);
    }
}
