//! Dense f32 matrix-multiply kernels: `C = A·B` with `A: m×k`, `B: k×n`,
//! `C: m×n`, all row-major.
//!
//! Three implementations are kept on purpose:
//!
//! * [`matmul_naive_into`] — the textbook triple loop. It is the semantic
//!   reference every other kernel is property-tested against, and the
//!   baseline every bench compares to. Never "optimize" it.
//! * [`matmul_blocked_into`] — cache-blocked i/k tiling with a contiguous
//!   `axpy`-style inner loop that the compiler auto-vectorizes. This is the
//!   default single-threaded kernel.
//! * [`matmul_parallel_into`] — the blocked kernel with the rows of `C`
//!   partitioned across `std::thread::scope` threads (one per available
//!   core). On a 1-core host it degenerates to the blocked kernel without
//!   spawning.

/// Rows-of-A block size: keeps a tile of `C` rows hot while a `K`-panel of
/// `B` streams through.
const BLOCK_I: usize = 32;
/// K-panel size: `BLOCK_K` rows of `B` (`BLOCK_K × n` floats) are re-read for
/// every row of the `I` block, so the panel must fit comfortably in L1/L2.
const BLOCK_K: usize = 64;

#[inline]
fn check_dims(a: &[f32], b: &[f32], c: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
}

/// Reference kernel: straightforward `i,j,k` loops with a strided walk down
/// each column of `B`. O(mkn) with no regard for locality.
pub fn matmul_naive_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(a, b, c, m, k, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Cache-blocked kernel. The inner loop is `c_row += a[i,kk] * b_row`, a
/// contiguous fused multiply-add over `n` floats, which auto-vectorizes and
/// reads both operands with unit stride.
pub fn matmul_blocked_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(a, b, c, m, k, n);
    c.fill(0.0);
    matmul_blocked_rows(c, a, b, 0, m, k, n);
}

/// Accumulating blocked kernel: `C += A·B`. Same loop nest as
/// [`matmul_blocked_into`] minus the initial zero-fill, so a residual
/// stream can serve directly as the output (the residual-add is folded into
/// the matmul instead of being a separate pass).
pub fn matmul_blocked_acc_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(a, b, c, m, k, n);
    matmul_blocked_rows(c, a, b, 0, m, k, n);
}

/// Blocked kernel over a row range `[row0, row1)` of `C`/`A`. `c` is the
/// slice for exactly those rows (i.e. `c.len() == (row1-row0)*n`). Factored
/// out so the parallel kernel can hand each thread a disjoint row band.
fn matmul_blocked_rows(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    row0: usize,
    row1: usize,
    k: usize,
    n: usize,
) {
    let bk = crate::simd::backend();
    for i0 in (row0..row1).step_by(BLOCK_I) {
        let i1 = (i0 + BLOCK_I).min(row1);
        for k0 in (0..k).step_by(BLOCK_K) {
            let k1 = (k0 + BLOCK_K).min(k);
            for i in i0..i1 {
                let c_row = &mut c[(i - row0) * n..(i - row0 + 1) * n];
                let a_row = &a[i * k..(i + 1) * k];
                for kk in k0..k1 {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..kk * n + n];
                    crate::simd::axpy_with(bk, c_row, aik, b_row);
                }
            }
        }
    }
}

/// Resolve the worker-thread count from an optional `AASD_THREADS`-style
/// override. A parseable value wins and is clamped to ≥ 1 (so `0` means
/// "serial", not "zero workers"); an unset, empty, or unparseable value
/// falls back to the detected count. Pure so the override logic is unit-
/// testable despite [`hardware_threads`]'s `OnceLock` cache.
pub fn threads_from_env(raw: Option<&str>, fallback: usize) -> usize {
    match raw.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) => n.max(1),
        None => fallback.max(1),
    }
}

/// Number of worker threads the parallel kernel will use: the
/// `AASD_THREADS` env override when set (clamped to ≥ 1, so benches and CI
/// can pin parallelism deterministically), otherwise the detected core
/// count. Cached in a `OnceLock`: `available_parallelism` is a syscall, and
/// this is queried on every [`matmul_parallel_into`] call in the decode hot
/// loop.
pub fn hardware_threads() -> usize {
    static HW_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW_THREADS.get_or_init(|| {
        let detected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        threads_from_env(std::env::var("AASD_THREADS").ok().as_deref(), detected)
    })
}

/// Blocked kernel with the rows of `C` split across scoped threads. Falls
/// back to the single-threaded blocked kernel when one thread suffices or
/// the matrix is too small for spawn overhead to pay off.
pub fn matmul_parallel_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(a, b, c, m, k, n);
    let threads = hardware_threads().min(m);
    // ~2^20 flops is where spawning starts to win; below that, stay serial.
    if threads <= 1 || m * k * n < 1 << 20 {
        matmul_blocked_into(c, a, b, m, k, n);
        return;
    }
    c.fill(0.0);
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = c;
        let mut row0 = 0usize;
        while row0 < m {
            let row1 = (row0 + rows_per).min(m);
            let (band, tail) = rest.split_at_mut((row1 - row0) * n);
            rest = tail;
            scope.spawn(move || matmul_blocked_rows(band, a, b, row0, row1, k, n));
            row0 = row1;
        }
    });
}

/// Matrix–vector product `y = A·x` (`A: m×k`, `x: k`). The incremental
/// decode path is a chain of these; it is memory-bound (one pass over `A`).
pub fn matvec_into(y: &mut [f32], a: &[f32], x: &[f32], m: usize, k: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(x.len(), k);
    assert_eq!(y.len(), m);
    for (i, yi) in y.iter_mut().enumerate() {
        let row = &a[i * k..(i + 1) * k];
        let mut acc = 0.0f32;
        for (av, xv) in row.iter().zip(x.iter()) {
            acc += *av * *xv;
        }
        *yi = acc;
    }
}

/// Row-vector–matrix product `y = x·W` (`x: k`, `W: k×n` row-major) — the
/// t = 1 decode fast path for `Linear` layers, whose weights are stored
/// `[in, out]`. The product is a sum of scaled rows of `W`, so the kernel
/// is a 4-way-unrolled axpy sweep (SIMD-dispatched across the output
/// dimension; see [`crate::simd`]): four weight rows stream per pass,
/// quartering the load/store traffic on `y` that dominates this
/// memory-bound shape. Accumulation order over `kk` is identical to the
/// blocked kernel's on every backend, so t = 1 and t > 1 paths agree
/// bit-for-bit.
pub fn vecmat_into(y: &mut [f32], x: &[f32], w: &[f32], k: usize, n: usize) {
    y.fill(0.0);
    vecmat_acc_into(y, x, w, k, n);
}

/// Accumulating variant: `y += x·W`. Writing the residual stream directly
/// as `y` folds the residual-add into the projection (no separate pass).
pub fn vecmat_acc_into(y: &mut [f32], x: &[f32], w: &[f32], k: usize, n: usize) {
    crate::simd::vecmat_acc_into_with(crate::simd::backend(), y, x, w, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_mat(rng: &mut Rng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    /// Property sweep (proptest stand-in): over many seeded random shapes,
    /// blocked and parallel kernels must match the naive reference.
    #[test]
    fn blocked_and_parallel_match_naive_on_random_shapes() {
        let mut rng = Rng::new(0xA5D);
        for _case in 0..60 {
            let m = 1 + rng.below(48);
            let k = 1 + rng.below(48);
            let n = 1 + rng.below(48);
            let a = random_mat(&mut rng, m * k);
            let b = random_mat(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c_blk = vec![0.0; m * n];
            let mut c_par = vec![0.0; m * n];
            matmul_naive_into(&mut c_ref, &a, &b, m, k, n);
            matmul_blocked_into(&mut c_blk, &a, &b, m, k, n);
            matmul_parallel_into(&mut c_par, &a, &b, m, k, n);
            let tol = 1e-4 * k as f32;
            assert!(
                max_abs_diff(&c_ref, &c_blk) < tol,
                "blocked diverged at m={m} k={k} n={n}"
            );
            assert!(
                max_abs_diff(&c_ref, &c_par) < tol,
                "parallel diverged at m={m} k={k} n={n}"
            );
        }
    }

    /// Shapes straddling the block boundaries (the off-by-one minefield).
    #[test]
    fn block_boundary_shapes() {
        let mut rng = Rng::new(99);
        for &(m, k, n) in &[
            (1, 1, 1),
            (BLOCK_I, BLOCK_K, 8),
            (BLOCK_I + 1, BLOCK_K + 1, 7),
            (BLOCK_I - 1, BLOCK_K - 1, 9),
            (2 * BLOCK_I + 3, 2 * BLOCK_K + 5, 33),
            (1, 130, 65),
            (65, 1, 130),
        ] {
            let a = random_mat(&mut rng, m * k);
            let b = random_mat(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c_blk = vec![0.0; m * n];
            matmul_naive_into(&mut c_ref, &a, &b, m, k, n);
            matmul_blocked_into(&mut c_blk, &a, &b, m, k, n);
            assert!(
                max_abs_diff(&c_ref, &c_blk) < 1e-3,
                "mismatch at m={m} k={k} n={n}"
            );
        }
    }

    /// The parallel kernel must engage its threaded path on a matrix big
    /// enough to cross the spawn threshold and still match the reference.
    #[test]
    fn parallel_large_matches_naive() {
        let mut rng = Rng::new(7);
        let (m, k, n) = (128, 128, 128);
        let a = random_mat(&mut rng, m * k);
        let b = random_mat(&mut rng, k * n);
        let mut c_ref = vec![0.0; m * n];
        let mut c_par = vec![0.0; m * n];
        matmul_naive_into(&mut c_ref, &a, &b, m, k, n);
        matmul_parallel_into(&mut c_par, &a, &b, m, k, n);
        assert!(max_abs_diff(&c_ref, &c_par) < 1e-2);
    }

    /// The unrolled t = 1 fast path must agree **bitwise** with the blocked
    /// kernel it replaces (both accumulate over k in the same order), so
    /// switching a Linear between the two paths cannot move any logit.
    #[test]
    fn vecmat_is_bitwise_equal_to_blocked() {
        let mut rng = Rng::new(0x7EC);
        for &(k, n) in &[(1, 1), (3, 5), (4, 8), (7, 33), (64, 64), (130, 65)] {
            let x = random_mat(&mut rng, k);
            let w = random_mat(&mut rng, k * n);
            let mut y = vec![0.0; n];
            let mut y_blk = vec![0.0; n];
            vecmat_into(&mut y, &x, &w, k, n);
            matmul_blocked_into(&mut y_blk, &x, &w, 1, k, n);
            assert_eq!(y, y_blk, "vecmat diverged at k={k} n={n}");
        }
    }

    /// Accumulating vecmat: starting from a non-zero y must equal the
    /// separate product-then-add sequence (residual-fold correctness).
    #[test]
    fn vecmat_acc_folds_residual() {
        let mut rng = Rng::new(0x7EC2);
        let (k, n) = (37, 53);
        let x = random_mat(&mut rng, k);
        let w = random_mat(&mut rng, k * n);
        let resid = random_mat(&mut rng, n);
        let mut y = resid.clone();
        vecmat_acc_into(&mut y, &x, &w, k, n);
        let mut prod = vec![0.0; n];
        vecmat_into(&mut prod, &x, &w, k, n);
        let manual: Vec<f32> = resid.iter().zip(&prod).map(|(r, p)| r + p).collect();
        // Not bitwise: folding reassociates (resid + Σ) vs Σ-then-add.
        assert!(max_abs_diff(&y, &manual) < 1e-5);
    }

    /// `matmul_blocked_acc_into` is the blocked kernel minus the zero-fill.
    #[test]
    fn blocked_acc_adds_onto_existing_c() {
        let mut rng = Rng::new(0x7EC3);
        let (m, k, n) = (5, 40, 9);
        let a = random_mat(&mut rng, m * k);
        let b = random_mat(&mut rng, k * n);
        let base = random_mat(&mut rng, m * n);
        let mut c = base.clone();
        matmul_blocked_acc_into(&mut c, &a, &b, m, k, n);
        let mut prod = vec![0.0; m * n];
        matmul_blocked_into(&mut prod, &a, &b, m, k, n);
        for ((cv, bv), pv) in c.iter().zip(&base).zip(&prod) {
            assert!((cv - (bv + pv)).abs() < 1e-4);
        }
    }

    /// Satellite: the `AASD_THREADS` override logic — parseable values win
    /// and clamp to ≥ 1, anything else falls back to the detected count.
    #[test]
    fn threads_from_env_override_and_fallback() {
        assert_eq!(threads_from_env(Some("8"), 2), 8);
        assert_eq!(threads_from_env(Some(" 3 "), 2), 3);
        // Clamp: 0 means "serial", never zero workers.
        assert_eq!(threads_from_env(Some("0"), 4), 1);
        // Invalid values fall back to the detected count.
        assert_eq!(threads_from_env(Some("abc"), 4), 4);
        assert_eq!(threads_from_env(Some(""), 4), 4);
        assert_eq!(threads_from_env(Some("-2"), 4), 4);
        assert_eq!(threads_from_env(None, 4), 4);
        // The fallback itself is clamped too.
        assert_eq!(threads_from_env(None, 0), 1);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng::new(11);
        let (m, k) = (37, 53);
        let a = random_mat(&mut rng, m * k);
        let x = random_mat(&mut rng, k);
        let mut y = vec![0.0; m];
        let mut y_ref = vec![0.0; m];
        matvec_into(&mut y, &a, &x, m, k);
        matmul_naive_into(&mut y_ref, &a, &x, m, k, 1);
        assert!(max_abs_diff(&y, &y_ref) < 1e-4);
    }
}
