//! Lightweight per-op profiler for the fused decode path.
//!
//! The decode hot loop is a fixed chain of eight op classes (embed →
//! per-layer norm/qkv/attention/o-proj/mlp → final norm → lm-head). To make
//! perf work per-layer-measurable instead of end-to-end-only, every fused
//! forward brackets each op in a [`Profiler`] scope. The profiler is
//! **zero-cost when disabled**: [`Profiler::begin`] is a single branch
//! returning `None`, no clock is read, and [`Profiler::end`] is a no-op on
//! `None`. When enabled it accumulates wall-clock nanoseconds and call
//! counts into fixed-size arrays — no heap allocation on either path, so it
//! is safe to leave enabled inside the zero-allocation decode test.

use std::time::Instant;

/// The op classes instrumented on the fused decode path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Op {
    /// Token-embedding gather.
    Embed = 0,
    /// RMS norms (both per-block norms and the final norm).
    RmsNorm = 1,
    /// Q/K/V projections + RoPE + cache append.
    Qkv = 2,
    /// Attention score dots + softmax.
    AttnScore = 3,
    /// Attention value mixing (weighted axpy over cached V).
    AttnMix = 4,
    /// Output projection (residual-folded `+= ctx·Wo`).
    OProj = 5,
    /// SwiGLU MLP (`silu(x·W1) ⊙ x·W3`, then residual-folded `·W2`).
    Mlp = 6,
    /// Final logits projection.
    LmHead = 7,
    /// Per-call activation quantization on the int8 path. **Nested** inside
    /// the enclosing projection span (`Qkv`/`OProj`/`Mlp`/`LmHead`), so its
    /// time is also counted there — compare against
    /// [`Profiler::pipeline_total_ns`], not add to it.
    Quantize = 8,
    /// int8 vecmat (`Σ qx·qw` + scale) on the int8 path. Nested like
    /// [`Op::Quantize`].
    Q8Vecmat = 9,
}

/// Number of instrumented op classes.
pub const N_OPS: usize = 10;

/// Number of top-level pipeline ops (excludes the nested quant sub-ops).
pub const N_PIPELINE_OPS: usize = 8;

impl Op {
    /// All ops: the pipeline in order, then the nested quant sub-ops.
    pub const ALL: [Op; N_OPS] = [
        Op::Embed,
        Op::RmsNorm,
        Op::Qkv,
        Op::AttnScore,
        Op::AttnMix,
        Op::OProj,
        Op::Mlp,
        Op::LmHead,
        Op::Quantize,
        Op::Q8Vecmat,
    ];

    /// The eight top-level decode-pipeline ops, in order. These partition a
    /// decode step's time; the quant sub-ops overlap them.
    pub const PIPELINE: [Op; N_PIPELINE_OPS] = [
        Op::Embed,
        Op::RmsNorm,
        Op::Qkv,
        Op::AttnScore,
        Op::AttnMix,
        Op::OProj,
        Op::Mlp,
        Op::LmHead,
    ];

    /// Stable snake-case name (used as the JSON key in bench snapshots).
    pub fn name(self) -> &'static str {
        match self {
            Op::Embed => "embed",
            Op::RmsNorm => "rmsnorm",
            Op::Qkv => "qkv",
            Op::AttnScore => "attn_score",
            Op::AttnMix => "attn_mix",
            Op::OProj => "o_proj",
            Op::Mlp => "mlp",
            Op::LmHead => "lm_head",
            Op::Quantize => "quantize",
            Op::Q8Vecmat => "q8_vecmat",
        }
    }
}

/// An open timer scope: `Some(start)` when profiling, `None` when disabled.
pub type ProfSpan = Option<Instant>;

/// Per-op wall-clock accumulator. Disabled by default.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    enabled: bool,
    total_ns: [u64; N_OPS],
    calls: [u64; N_OPS],
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn timing on (also clears previous accumulations).
    pub fn enable(&mut self) {
        self.reset();
        self.enabled = true;
    }

    pub fn disable(&mut self) {
        self.enabled = false;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Clear accumulated times and counts, keeping the enabled state.
    pub fn reset(&mut self) {
        self.total_ns = [0; N_OPS];
        self.calls = [0; N_OPS];
    }

    /// Open a scope. One branch when disabled; reads the clock only when
    /// enabled.
    #[inline]
    pub fn begin(&self) -> ProfSpan {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close a scope, attributing the elapsed time to `op`.
    #[inline]
    pub fn end(&mut self, span: ProfSpan, op: Op) {
        if let Some(start) = span {
            self.total_ns[op as usize] += start.elapsed().as_nanos() as u64;
            self.calls[op as usize] += 1;
        }
    }

    /// Accumulated nanoseconds for one op.
    pub fn total_ns(&self, op: Op) -> u64 {
        self.total_ns[op as usize]
    }

    /// Scopes closed for one op.
    pub fn calls(&self, op: Op) -> u64 {
        self.calls[op as usize]
    }

    /// Sum of all per-op accumulations. Note the quant sub-ops are nested
    /// inside pipeline spans, so on the int8 path this double-counts their
    /// time; use [`Profiler::pipeline_total_ns`] for wall-clock shares.
    pub fn grand_total_ns(&self) -> u64 {
        self.total_ns.iter().sum()
    }

    /// Sum over the eight top-level pipeline ops only — these partition the
    /// decode step, so per-op fractions of this total are meaningful even
    /// when the nested quant sub-ops are active.
    pub fn pipeline_total_ns(&self) -> u64 {
        Op::PIPELINE.iter().map(|&op| self.total_ns(op)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin() {
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::new();
        let s = p.begin();
        assert!(s.is_none());
        spin();
        p.end(s, Op::Mlp);
        assert_eq!(p.grand_total_ns(), 0);
        assert_eq!(p.calls(Op::Mlp), 0);
    }

    #[test]
    fn enabled_profiler_accumulates_per_op() {
        let mut p = Profiler::new();
        p.enable();
        for _ in 0..3 {
            let s = p.begin();
            spin();
            p.end(s, Op::Qkv);
        }
        let s = p.begin();
        spin();
        p.end(s, Op::LmHead);
        assert_eq!(p.calls(Op::Qkv), 3);
        assert_eq!(p.calls(Op::LmHead), 1);
        assert!(p.total_ns(Op::Qkv) > 0);
        assert!(p.grand_total_ns() >= p.total_ns(Op::Qkv) + p.total_ns(Op::LmHead));
        p.reset();
        assert_eq!(p.grand_total_ns(), 0);
        assert!(p.is_enabled(), "reset must keep the enabled state");
    }

    #[test]
    fn op_names_are_unique() {
        for (i, a) in Op::ALL.iter().enumerate() {
            for b in &Op::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
