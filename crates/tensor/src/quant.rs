//! Int8 weight-only quantization for the memory-bound decode path.
//!
//! Decode-time linears stream their whole weight matrix per token, so the
//! win from int8 is bandwidth: 4× fewer weight bytes per step. The scheme
//! is per-output-row absmax: each output row `j` of a `[k_in, n_out]`
//! weight is stored as `i8` codes plus one f32 scale `s_j = absmax_j / 127`,
//! in **transposed** (output-major) layout so the quantized matvec walks
//! contiguous rows:
//!
//! ```text
//! y[j] = s_x · s_j · Σ_k qx[k] · qw[j,k]      (i32 accumulation, exact)
//! ```
//!
//! Activations are quantized per-call with the same absmax rule. The
//! quantizer dispatches like every other kernel, but all tiers produce
//! bit-identical codes and scale (absmax is exactly associative and the
//! SIMD path reproduces `f32::round` exactly), so the i8 inputs — and
//! therefore the exact i32 accumulation — are identical across dispatch
//! tiers. Weight quantization happens once at policy-switch time
//! (`quantize-once at model load`), never in the decode loop.
//!
//! Error model: per-row absmax quantization bounds the weight error by
//! `|w - ŵ| ≤ s_j/2 = absmax_j/254` elementwise, so a logit over `k` inputs
//! drifts by at most `Σ|x_k|·s_j/2` plus the activation-rounding term —
//! measured end-to-end in the repo-root `int8_equivalence` test and
//! reported in `EXPERIMENTS.md`.

use crate::simd::{self, Backend};

/// A quantized weight matrix in output-major layout: `rows = n_out` rows of
/// `cols = k_in` i8 codes, one scale per output row.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    /// Row-major `[rows × cols]` i8 codes (row r = output feature r).
    pub qs: Vec<i8>,
    /// Per-output-row dequantization scales (`absmax / 127`).
    pub scales: Vec<f32>,
    /// Output features (`n_out`).
    pub rows: usize,
    /// Input features (`k_in`).
    pub cols: usize,
}

impl QuantMatrix {
    /// Quantize an output-major `[rows, cols]` matrix row by row.
    pub fn from_row_major(w: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(w.len(), rows * cols, "weight shape mismatch");
        let mut qs = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            scales[r] = quantize_row_i8(
                &w[r * cols..(r + 1) * cols],
                &mut qs[r * cols..(r + 1) * cols],
            );
        }
        Self {
            qs,
            scales,
            rows,
            cols,
        }
    }

    /// Quantize a `Linear`-layout `[k_in, n_out]` (input-major) weight,
    /// transposing to output-major so each output row is contiguous.
    pub fn from_kxn(w: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(w.len(), k * n, "weight shape mismatch");
        let mut t = vec![0.0f32; k * n];
        for i in 0..k {
            for (j, tv) in t.iter_mut().skip(i).step_by(k).enumerate() {
                *tv = w[i * n + j];
            }
        }
        Self::from_row_major(&t, n, k)
    }

    /// The i8 codes for output row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        &self.qs[r * self.cols..(r + 1) * self.cols]
    }

    /// Reconstruct the output-major f32 matrix (tests/diagnostics).
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            let s = self.scales[r];
            for (o, &q) in out[r * self.cols..(r + 1) * self.cols]
                .iter_mut()
                .zip(self.row(r))
            {
                *o = q as f32 * s;
            }
        }
        out
    }
}

/// Quantize one row with the absmax rule: returns the scale `absmax / 127`
/// (0.0 for an all-zero row) and writes codes in `[-127, 127]`. Dispatches
/// on the active backend, but every tier produces **identical codes and
/// scale** (see [`simd::quantize_row_i8_with`]), which keeps the exact-i32
/// contract across dispatch tiers.
pub fn quantize_row_i8(x: &[f32], q: &mut [i8]) -> f32 {
    simd::quantize_row_i8_with(simd::backend(), x, q)
}

/// `y = (x̂·Ŵ)` from pre-quantized activations: `qx` are the i8 codes of
/// the input row and `sx` its scale. Dispatches on the active backend.
pub fn vecmat_q8_into(y: &mut [f32], qx: &[i8], sx: f32, w: &QuantMatrix) {
    vecmat_q8_into_with(simd::backend(), y, qx, sx, w);
}

/// Accumulating variant: `y += x̂·Ŵ` (residual-fold, mirroring
/// [`crate::vecmat_acc_into`]).
pub fn vecmat_q8_acc_into(y: &mut [f32], qx: &[i8], sx: f32, w: &QuantMatrix) {
    vecmat_q8_acc_into_with(simd::backend(), y, qx, sx, w);
}

/// [`vecmat_q8_into`] through an explicit backend.
pub fn vecmat_q8_into_with(bk: Backend, y: &mut [f32], qx: &[i8], sx: f32, w: &QuantMatrix) {
    y.fill(0.0);
    vecmat_q8_acc_into_with(bk, y, qx, sx, w);
}

/// [`vecmat_q8_acc_into`] through an explicit backend. The i32 accumulation
/// is exact, and the final scale applies the identical f32 ops on every
/// tier, so all backends agree bit-for-bit.
pub fn vecmat_q8_acc_into_with(bk: Backend, y: &mut [f32], qx: &[i8], sx: f32, w: &QuantMatrix) {
    assert_eq!(qx.len(), w.cols, "activation length must equal k_in");
    assert_eq!(y.len(), w.rows, "output length must equal n_out");
    simd::vecmat_q8_acc_kernel(bk, y, qx, sx, &w.qs, &w.scales, w.cols);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::vecmat_into;

    fn supported() -> Vec<Backend> {
        Backend::ALL
            .iter()
            .copied()
            .filter(|b| b.is_supported())
            .collect()
    }

    const TAIL_DIMS: [usize; 22] = [
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 31, 33, 63, 64, 65,
    ];

    /// Per-row absmax bound: every reconstructed weight is within half a
    /// quantization step of the original.
    #[test]
    fn roundtrip_error_within_half_step() {
        let mut rng = Rng::new(0x0_8_1);
        let (rows, cols) = (13, 57);
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let qm = QuantMatrix::from_row_major(&w, rows, cols);
        let deq = qm.dequantize();
        for r in 0..rows {
            let bound = qm.scales[r] * 0.5 + 1e-7;
            for (a, b) in w[r * cols..(r + 1) * cols]
                .iter()
                .zip(&deq[r * cols..(r + 1) * cols])
            {
                assert!((a - b).abs() <= bound, "row {r}: |{a} - {b}| > {bound}");
            }
        }
    }

    /// The quantizer's cross-tier contract: identical codes AND scale on
    /// every backend, including tail widths, negative-heavy rows, and values
    /// that land exactly on the .5 rounding boundary.
    #[test]
    fn quantize_codes_identical_across_backends() {
        let mut rng = Rng::new(0x0_8_5);
        for &n in &TAIL_DIMS {
            let mut x: Vec<f32> = (0..n).map(|_| rng.uniform(-3.0, 3.0)).collect();
            if n >= 4 {
                x[n / 2] = -x[0].abs(); // pin the absmax sign case
                x[n - 1] = x[0].abs() * 0.5; // mid-range value
            }
            let mut q_ref = vec![0i8; n];
            let s_ref = simd::quantize_row_i8_with(Backend::Scalar, &x, &mut q_ref);
            for bk in supported() {
                let mut q = vec![0i8; n];
                let s = simd::quantize_row_i8_with(bk, &x, &mut q);
                assert_eq!(s.to_bits(), s_ref.to_bits(), "{} scale n={n}", bk.name());
                assert_eq!(q, q_ref, "{} codes n={n}", bk.name());
            }
        }
        // Exact .5 boundaries: absmax 127 makes inv exactly 1.0, so integer
        // +.5 inputs hit round-half-away-from-zero on every tier.
        let x: Vec<f32> = vec![127.0, 2.5, -2.5, 0.5, -0.5, 126.5, -126.5, 0.0, 1.0, -127.0];
        let mut q_ref = vec![0i8; x.len()];
        let s_ref = simd::quantize_row_i8_with(Backend::Scalar, &x, &mut q_ref);
        assert_eq!(q_ref[1], 3, "scalar must round half away from zero");
        assert_eq!(q_ref[2], -3, "scalar must round half away from zero");
        for bk in supported() {
            let mut q = vec![0i8; x.len()];
            let s = simd::quantize_row_i8_with(bk, &x, &mut q);
            assert_eq!(s.to_bits(), s_ref.to_bits(), "{} scale", bk.name());
            assert_eq!(q, q_ref, "{} boundary codes", bk.name());
        }
    }

    #[test]
    fn zero_row_quantizes_to_zero_scale_and_codes() {
        let x = vec![0.0f32; 9];
        let mut q = vec![1i8; 9];
        let s = quantize_row_i8(&x, &mut q);
        assert_eq!(s, 0.0);
        assert!(q.iter().all(|&v| v == 0));
    }

    #[test]
    fn from_kxn_transposes() {
        // w[k=2, n=3] with distinct entries; output row j must hold column j.
        let w = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let qm = QuantMatrix::from_kxn(&w, 2, 3);
        assert_eq!((qm.rows, qm.cols), (3, 2));
        let deq = qm.dequantize();
        for j in 0..3 {
            for i in 0..2 {
                assert!((deq[j * 2 + i] - w[i * 3 + j]).abs() <= qm.scales[j] * 0.5 + 1e-7);
            }
        }
    }

    /// Satellite: `vecmat_q8` must match the scalar reference **exactly**
    /// (i32 accumulation) for every tail shape on every backend.
    #[test]
    fn vecmat_q8_simd_matches_scalar_exactly_on_tail_shapes() {
        let mut rng = Rng::new(0x0_8_2);
        for &k in &TAIL_DIMS {
            for &n in &TAIL_DIMS {
                let w: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let x: Vec<f32> = (0..k).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let qm = QuantMatrix::from_kxn(&w, k, n);
                let mut qx = vec![0i8; k];
                let sx = quantize_row_i8(&x, &mut qx);
                let mut y_ref = vec![0.0f32; n];
                vecmat_q8_into_with(Backend::Scalar, &mut y_ref, &qx, sx, &qm);
                for bk in supported() {
                    let mut y = vec![0.0f32; n];
                    vecmat_q8_into_with(bk, &mut y, &qx, sx, &qm);
                    assert_eq!(y, y_ref, "{} diverged at k={k} n={n}", bk.name());
                }
            }
        }
    }

    /// The quantized product tracks the f32 product within the absmax error
    /// model's budget.
    #[test]
    fn vecmat_q8_tracks_f32_within_error_model() {
        let mut rng = Rng::new(0x0_8_3);
        let (k, n) = (64, 48);
        let w: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let x: Vec<f32> = (0..k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut y_f32 = vec![0.0f32; n];
        vecmat_into(&mut y_f32, &x, &w, k, n);
        let qm = QuantMatrix::from_kxn(&w, k, n);
        let mut qx = vec![0i8; k];
        let sx = quantize_row_i8(&x, &mut qx);
        let mut y_q8 = vec![0.0f32; n];
        vecmat_q8_into(&mut y_q8, &qx, sx, &qm);
        let sum_abs_x: f32 = x.iter().map(|v| v.abs()).sum();
        for (j, (a, b)) in y_q8.iter().zip(&y_f32).enumerate() {
            // Weight rounding (≤ s_j/2 per element against |x|) plus
            // activation rounding (≤ sx/2 per element against |w|≤1·k... use
            // the loose but rigorous bound of both terms).
            let bound = qm.scales[j] * 0.5 * sum_abs_x + sx * 0.5 * k as f32 + 1e-5;
            assert!((a - b).abs() <= bound, "col {j}: |{a} - {b}| > {bound}");
        }
    }

    #[test]
    fn acc_variant_folds_residual_exactly() {
        let mut rng = Rng::new(0x0_8_4);
        let (k, n) = (33, 17);
        let w: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let x: Vec<f32> = (0..k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let qm = QuantMatrix::from_kxn(&w, k, n);
        let mut qx = vec![0i8; k];
        let sx = quantize_row_i8(&x, &mut qx);
        let resid: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut y = resid.clone();
        vecmat_q8_acc_into(&mut y, &qx, sx, &qm);
        let mut prod = vec![0.0f32; n];
        vecmat_q8_into(&mut prod, &qx, sx, &qm);
        for ((yv, r), p) in y.iter().zip(&resid).zip(&prod) {
            assert_eq!(*yv, r + p, "acc must be fill-then-add exactly");
        }
    }
}
