//! Runtime-dispatched SIMD kernels (AVX2 / SSE2 / scalar) for the decode
//! hot path.
//!
//! One [`Backend`] is selected process-wide the first time [`backend`] is
//! queried: from the `AASD_KERNEL` env var (`scalar` | `sse2` | `avx2`)
//! when set and supported on the host, otherwise the best path the CPU
//! reports. Benches and tests can switch at runtime with [`set_backend`]
//! to race every path inside one process.
//!
//! Determinism contract: the f32 `vecmat` kernels vectorize across the
//! *output* dimension and keep the scalar kernel's per-element accumulation
//! order over `k` (multiply-then-add, never FMA), so every backend produces
//! bit-identical vecmat results — switching backends cannot move a logit
//! relative to the scalar reference, and the t = 1 / t > 1 Linear paths
//! keep agreeing bit-for-bit. Reductions ([`dot_with`], [`sum_squares_with`])
//! and transcendentals ([`softmax_row_with`], [`silu_mul_with`], which use a
//! lane-parallel polynomial `exp`) are only approximately equal *across*
//! backends — but every call in one process uses the same backend, which is
//! the property spec≡AR losslessness rests on.
//!
//! The int8 kernel ([`dot_i8_with`]) accumulates in `i32`, which is exact
//! and associative, so scalar / SSE2 / AVX2 agree **exactly**.
//!
//! The SSE2 tier accelerates the bandwidth-bound kernels (`vecmat`, `dot`,
//! `axpy`, `sum_squares`, `dot_i8`); its transcendental kernels (`softmax`,
//! `silu_mul`) and `argmax` route to the scalar implementations.

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;
use std::sync::atomic::{AtomicU8, Ordering};

/// A kernel implementation tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar reference (always supported).
    Scalar,
    /// 4-lane `__m128` kernels (x86_64 baseline).
    Sse2,
    /// 8-lane `__m256` kernels (runtime-detected).
    Avx2,
}

impl Backend {
    /// Every tier, slowest first.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Sse2, Backend::Avx2];

    /// Stable lowercase name (also the accepted `AASD_KERNEL` values).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Parse a backend name (case-insensitive, surrounding space ignored).
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "sse2" => Some(Backend::Sse2),
            "avx2" => Some(Backend::Avx2),
            _ => None,
        }
    }

    /// Whether the host CPU can run this backend.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            Backend::Sse2 => cfg!(target_arch = "x86_64"),
            Backend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }

    fn code(self) -> u8 {
        match self {
            Backend::Scalar => 1,
            Backend::Sse2 => 2,
            Backend::Avx2 => 3,
        }
    }

    fn from_code(code: u8) -> Option<Backend> {
        match code {
            1 => Some(Backend::Scalar),
            2 => Some(Backend::Sse2),
            3 => Some(Backend::Avx2),
            _ => None,
        }
    }
}

/// 0 = not yet selected; otherwise `Backend::code`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The fastest backend the host supports.
pub fn best_supported() -> Backend {
    if Backend::Avx2.is_supported() {
        Backend::Avx2
    } else if Backend::Sse2.is_supported() {
        Backend::Sse2
    } else {
        Backend::Scalar
    }
}

fn initial_backend() -> Backend {
    match std::env::var("AASD_KERNEL") {
        Ok(raw) => match Backend::from_name(&raw) {
            Some(b) if b.is_supported() => b,
            Some(b) => {
                eprintln!(
                    "AASD_KERNEL={}: backend not supported on this host; using {}",
                    b.name(),
                    best_supported().name()
                );
                best_supported()
            }
            None => {
                eprintln!(
                    "AASD_KERNEL={raw}: unknown backend (expected scalar|sse2|avx2); using {}",
                    best_supported().name()
                );
                best_supported()
            }
        },
        Err(_) => best_supported(),
    }
}

/// The process-wide active backend (selected once, lazily; see module docs).
#[inline]
pub fn backend() -> Backend {
    match Backend::from_code(ACTIVE.load(Ordering::Relaxed)) {
        Some(b) => b,
        None => {
            let b = initial_backend();
            ACTIVE.store(b.code(), Ordering::Relaxed);
            b
        }
    }
}

/// Override the active backend so benches can race paths in one process.
/// Errors (leaving the selection untouched) if the host lacks support.
pub fn set_backend(b: Backend) -> Result<(), String> {
    if !b.is_supported() {
        return Err(format!(
            "backend {} is not supported on this host",
            b.name()
        ));
    }
    ACTIVE.store(b.code(), Ordering::Relaxed);
    Ok(())
}

// ---------------------------------------------------------------------------
// Shared semantic helpers (single source of truth for every dispatch tier).
// ---------------------------------------------------------------------------

/// Fully-masked softmax fallback shared by the scalar and SIMD variants: a
/// row whose maximum is `-inf` becomes the uniform distribution instead of
/// `0/0 = NaN` everywhere. Returns `true` when it handled the row.
#[inline]
fn softmax_uniform_fallback(row: &mut [f32], max: f32) -> bool {
    if max == f32::NEG_INFINITY {
        let uniform = 1.0 / row.len() as f32;
        row.fill(uniform);
        return true;
    }
    false
}

/// NaN guard shared by the scalar and SIMD `argmax` variants. NaN compares
/// false against everything, so a comparison scan silently skips it — debug
/// builds reject the row outright instead.
#[inline]
fn argmax_debug_assert_no_nan(row: &[f32]) {
    debug_assert!(
        row.iter().all(|v| !v.is_nan()),
        "argmax over a row containing NaN"
    );
}

// ---------------------------------------------------------------------------
// f32 kernels: vecmat / dot / axpy / sum_squares.
// ---------------------------------------------------------------------------

/// `y = x·W` through an explicit backend. See [`crate::vecmat_into`].
pub fn vecmat_into_with(bk: Backend, y: &mut [f32], x: &[f32], w: &[f32], k: usize, n: usize) {
    y.fill(0.0);
    vecmat_acc_into_with(bk, y, x, w, k, n);
}

/// `y += x·W` through an explicit backend. Bit-identical across backends
/// (see module docs).
pub fn vecmat_acc_into_with(bk: Backend, y: &mut [f32], x: &[f32], w: &[f32], k: usize, n: usize) {
    assert_eq!(x.len(), k, "x must have k entries");
    assert_eq!(w.len(), k * n, "W must be k×n");
    assert_eq!(y.len(), n, "y must have n entries");
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { vecmat_acc_sse2(y, x, w, k, n) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { vecmat_acc_avx2(y, x, w, k, n) },
        _ => vecmat_acc_scalar(y, x, w, k, n),
    }
}

/// Dot product through an explicit backend (lane-parallel reduction order).
#[inline]
pub fn dot_with(bk: Backend, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { dot_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { dot_avx2(a, b) },
        _ => dot_scalar(a, b),
    }
}

/// `y += s·x` through an explicit backend (per-element, bit-identical).
#[inline]
pub fn axpy_with(bk: Backend, y: &mut [f32], s: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { axpy_sse2(y, s, x) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { axpy_avx2(y, s, x) },
        _ => axpy_scalar(y, s, x),
    }
}

/// `Σ xᵢ²` through an explicit backend (lane-parallel reduction order).
#[inline]
pub fn sum_squares_with(bk: Backend, x: &[f32]) -> f32 {
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { sum_squares_sse2(x) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { sum_squares_avx2(x) },
        _ => sum_squares_scalar(x),
    }
}

fn vecmat_acc_scalar(y: &mut [f32], x: &[f32], w: &[f32], k: usize, n: usize) {
    let mut kk = 0;
    while kk + 4 <= k {
        let (a0, a1, a2, a3) = (x[kk], x[kk + 1], x[kk + 2], x[kk + 3]);
        let (w0, rest) = w[kk * n..].split_at(n);
        let (w1, rest) = rest.split_at(n);
        let (w2, rest) = rest.split_at(n);
        let w3 = &rest[..n];
        for ((((yv, v0), v1), v2), v3) in y
            .iter_mut()
            .zip(w0.iter())
            .zip(w1.iter())
            .zip(w2.iter())
            .zip(w3.iter())
        {
            // Left-associated adds: the same rounding sequence as four
            // separate axpy passes (what the blocked kernel performs).
            *yv = *yv + a0 * *v0 + a1 * *v1 + a2 * *v2 + a3 * *v3;
        }
        kk += 4;
    }
    while kk < k {
        let a = x[kk];
        let w_row = &w[kk * n..kk * n + n];
        for (yv, wv) in y.iter_mut().zip(w_row.iter()) {
            *yv += a * *wv;
        }
        kk += 1;
    }
}

#[inline]
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (av, bv) in a.iter().zip(b.iter()) {
        acc += *av * *bv;
    }
    acc
}

#[inline]
fn axpy_scalar(y: &mut [f32], s: f32, x: &[f32]) {
    for (yv, xv) in y.iter_mut().zip(x.iter()) {
        *yv += s * *xv;
    }
}

#[inline]
fn sum_squares_scalar(x: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for v in x {
        acc += *v * *v;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn vecmat_acc_avx2(y: &mut [f32], x: &[f32], w: &[f32], k: usize, n: usize) {
    let yp = y.as_mut_ptr();
    let mut kk = 0usize;
    while kk + 4 <= k {
        let (a0, a1, a2, a3) = (x[kk], x[kk + 1], x[kk + 2], x[kk + 3]);
        let w0 = w[kk * n..].as_ptr();
        let w1 = w0.add(n);
        let w2 = w1.add(n);
        let w3 = w2.add(n);
        let va0 = _mm256_set1_ps(a0);
        let va1 = _mm256_set1_ps(a1);
        let va2 = _mm256_set1_ps(a2);
        let va3 = _mm256_set1_ps(a3);
        let mut j = 0usize;
        while j + 8 <= n {
            // Per-element op order matches the scalar kernel: mul-then-add
            // per k, left-associated. No FMA — it would change rounding.
            let mut acc = _mm256_loadu_ps(yp.add(j));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va0, _mm256_loadu_ps(w0.add(j))));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va1, _mm256_loadu_ps(w1.add(j))));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va2, _mm256_loadu_ps(w2.add(j))));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va3, _mm256_loadu_ps(w3.add(j))));
            _mm256_storeu_ps(yp.add(j), acc);
            j += 8;
        }
        while j < n {
            *yp.add(j) =
                *yp.add(j) + a0 * *w0.add(j) + a1 * *w1.add(j) + a2 * *w2.add(j) + a3 * *w3.add(j);
            j += 1;
        }
        kk += 4;
    }
    while kk < k {
        let a = x[kk];
        let va = _mm256_set1_ps(a);
        let wr = w[kk * n..].as_ptr();
        let mut j = 0usize;
        while j + 8 <= n {
            let acc = _mm256_add_ps(
                _mm256_loadu_ps(yp.add(j)),
                _mm256_mul_ps(va, _mm256_loadu_ps(wr.add(j))),
            );
            _mm256_storeu_ps(yp.add(j), acc);
            j += 8;
        }
        while j < n {
            *yp.add(j) += a * *wr.add(j);
            j += 1;
        }
        kk += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn vecmat_acc_sse2(y: &mut [f32], x: &[f32], w: &[f32], k: usize, n: usize) {
    let yp = y.as_mut_ptr();
    let mut kk = 0usize;
    while kk + 4 <= k {
        let (a0, a1, a2, a3) = (x[kk], x[kk + 1], x[kk + 2], x[kk + 3]);
        let w0 = w[kk * n..].as_ptr();
        let w1 = w0.add(n);
        let w2 = w1.add(n);
        let w3 = w2.add(n);
        let va0 = _mm_set1_ps(a0);
        let va1 = _mm_set1_ps(a1);
        let va2 = _mm_set1_ps(a2);
        let va3 = _mm_set1_ps(a3);
        let mut j = 0usize;
        while j + 4 <= n {
            let mut acc = _mm_loadu_ps(yp.add(j));
            acc = _mm_add_ps(acc, _mm_mul_ps(va0, _mm_loadu_ps(w0.add(j))));
            acc = _mm_add_ps(acc, _mm_mul_ps(va1, _mm_loadu_ps(w1.add(j))));
            acc = _mm_add_ps(acc, _mm_mul_ps(va2, _mm_loadu_ps(w2.add(j))));
            acc = _mm_add_ps(acc, _mm_mul_ps(va3, _mm_loadu_ps(w3.add(j))));
            _mm_storeu_ps(yp.add(j), acc);
            j += 4;
        }
        while j < n {
            *yp.add(j) =
                *yp.add(j) + a0 * *w0.add(j) + a1 * *w1.add(j) + a2 * *w2.add(j) + a3 * *w3.add(j);
            j += 1;
        }
        kk += 4;
    }
    while kk < k {
        let a = x[kk];
        let va = _mm_set1_ps(a);
        let wr = w[kk * n..].as_ptr();
        let mut j = 0usize;
        while j + 4 <= n {
            let acc = _mm_add_ps(
                _mm_loadu_ps(yp.add(j)),
                _mm_mul_ps(va, _mm_loadu_ps(wr.add(j))),
            );
            _mm_storeu_ps(yp.add(j), acc);
            j += 4;
        }
        while j < n {
            *yp.add(j) += a * *wr.add(j);
            j += 1;
        }
        kk += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum256_ps(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    _mm_cvtss_f32(s)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn hsum128_ps(v: __m128) -> f32 {
    let s = _mm_add_ps(v, _mm_movehl_ps(v, v));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    _mm_cvtss_f32(s)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        acc = _mm256_add_ps(
            acc,
            _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i))),
        );
        i += 8;
    }
    let mut s = hsum256_ps(acc);
    while i < n {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn dot_sse2(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm_setzero_ps();
    let mut i = 0usize;
    while i + 4 <= n {
        acc = _mm_add_ps(
            acc,
            _mm_mul_ps(_mm_loadu_ps(ap.add(i)), _mm_loadu_ps(bp.add(i))),
        );
        i += 4;
    }
    let mut s = hsum128_ps(acc);
    while i < n {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(y: &mut [f32], s: f32, x: &[f32]) {
    let n = y.len();
    let yp = y.as_mut_ptr();
    let xp = x.as_ptr();
    let vs = _mm256_set1_ps(s);
    let mut i = 0usize;
    while i + 8 <= n {
        let acc = _mm256_add_ps(
            _mm256_loadu_ps(yp.add(i)),
            _mm256_mul_ps(vs, _mm256_loadu_ps(xp.add(i))),
        );
        _mm256_storeu_ps(yp.add(i), acc);
        i += 8;
    }
    while i < n {
        *yp.add(i) += s * *xp.add(i);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn axpy_sse2(y: &mut [f32], s: f32, x: &[f32]) {
    let n = y.len();
    let yp = y.as_mut_ptr();
    let xp = x.as_ptr();
    let vs = _mm_set1_ps(s);
    let mut i = 0usize;
    while i + 4 <= n {
        let acc = _mm_add_ps(
            _mm_loadu_ps(yp.add(i)),
            _mm_mul_ps(vs, _mm_loadu_ps(xp.add(i))),
        );
        _mm_storeu_ps(yp.add(i), acc);
        i += 4;
    }
    while i < n {
        *yp.add(i) += s * *xp.add(i);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum_squares_avx2(x: &[f32]) -> f32 {
    let n = x.len();
    let xp = x.as_ptr();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(xp.add(i));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(v, v));
        i += 8;
    }
    let mut s = hsum256_ps(acc);
    while i < n {
        s += x[i] * x[i];
        i += 1;
    }
    s
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn sum_squares_sse2(x: &[f32]) -> f32 {
    let n = x.len();
    let xp = x.as_ptr();
    let mut acc = _mm_setzero_ps();
    let mut i = 0usize;
    while i + 4 <= n {
        let v = _mm_loadu_ps(xp.add(i));
        acc = _mm_add_ps(acc, _mm_mul_ps(v, v));
        i += 4;
    }
    let mut s = hsum128_ps(acc);
    while i < n {
        s += x[i] * x[i];
        i += 1;
    }
    s
}

// ---------------------------------------------------------------------------
// Batched attention kernels over the strided KV cache.
//
// The decode hot loop attends one query head over every cached position. A
// per-position `dot_with`/`axpy_with` call cannot inline across the
// `target_feature` boundary, so at ctx 512 the call overhead dominates the
// arithmetic. These kernels take the whole position loop inside one
// dispatch: `attn_scores_with` computes every `q·k_j` dot against rows of a
// strided slab, `attn_mix_with` accumulates `Σ w_j·v_j` with the output
// held in registers (one store pass instead of one read-modify-write pass
// per position). Per element they perform the **identical arithmetic
// sequence** as the per-position kernels they replace — same lane layout,
// same mul-then-add (no FMA), same horizontal-sum, same j-order — so each
// tier's results are bit-identical to a loop of `dot_with` / `axpy_with`
// calls on that tier (asserted by `attn_kernels_match_per_position_loops`).
// ---------------------------------------------------------------------------

/// `scores[j] = (q · keys[j·stride .. j·stride+d]) * scale` for every `j`,
/// where `d = q.len()`. `keys` is a row-major slab whose rows are `stride`
/// floats apart (the KV cache with the head offset already applied).
pub fn attn_scores_with(
    bk: Backend,
    scores: &mut [f32],
    q: &[f32],
    keys: &[f32],
    stride: usize,
    scale: f32,
) {
    let d = q.len();
    debug_assert!(d <= stride, "head rows must fit inside the cache stride");
    if let Some(last) = scores.len().checked_sub(1) {
        assert!(
            keys.len() >= last * stride + d,
            "keys slab too short for {} strided rows",
            scores.len()
        );
    }
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { attn_scores_sse2(scores, q, keys, stride, scale) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { attn_scores_avx2(scores, q, keys, stride, scale) },
        _ => {
            for (j, s) in scores.iter_mut().enumerate() {
                *s = dot_scalar(q, &keys[j * stride..j * stride + d]) * scale;
            }
        }
    }
}

/// `out[e] += Σ_j weights[j] · values[j·stride + e]` with the j-sum taken in
/// index order (the same order as a sequence of `axpy_with` calls).
pub fn attn_mix_with(bk: Backend, out: &mut [f32], weights: &[f32], values: &[f32], stride: usize) {
    let d = out.len();
    debug_assert!(d <= stride, "head rows must fit inside the cache stride");
    if let Some(last) = weights.len().checked_sub(1) {
        assert!(
            values.len() >= last * stride + d,
            "values slab too short for {} strided rows",
            weights.len()
        );
    }
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { attn_mix_sse2(out, weights, values, stride) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { attn_mix_avx2(out, weights, values, stride) },
        _ => {
            for (j, &w) in weights.iter().enumerate() {
                axpy_scalar(out, w, &values[j * stride..j * stride + d]);
            }
        }
    }
}

/// Four interleaved `dot_avx2` chains (one per position) so the query block
/// is loaded once per lane chunk and the out-of-order core sees four
/// independent accumulators. Each chain's arithmetic is exactly
/// `dot_avx2(q, row) * scale`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn attn_scores_avx2(scores: &mut [f32], q: &[f32], keys: &[f32], stride: usize, scale: f32) {
    let d = q.len();
    let qp = q.as_ptr();
    let kp = keys.as_ptr();
    let l = scores.len();
    let mut j = 0usize;
    while j + 8 <= l {
        let k0 = kp.add(j * stride);
        let k1 = kp.add((j + 1) * stride);
        let k2 = kp.add((j + 2) * stride);
        let k3 = kp.add((j + 3) * stride);
        let k4 = kp.add((j + 4) * stride);
        let k5 = kp.add((j + 5) * stride);
        let k6 = kp.add((j + 6) * stride);
        let k7 = kp.add((j + 7) * stride);
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut acc4 = _mm256_setzero_ps();
        let mut acc5 = _mm256_setzero_ps();
        let mut acc6 = _mm256_setzero_ps();
        let mut acc7 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= d {
            let vq = _mm256_loadu_ps(qp.add(i));
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(vq, _mm256_loadu_ps(k0.add(i))));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(vq, _mm256_loadu_ps(k1.add(i))));
            acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(vq, _mm256_loadu_ps(k2.add(i))));
            acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(vq, _mm256_loadu_ps(k3.add(i))));
            acc4 = _mm256_add_ps(acc4, _mm256_mul_ps(vq, _mm256_loadu_ps(k4.add(i))));
            acc5 = _mm256_add_ps(acc5, _mm256_mul_ps(vq, _mm256_loadu_ps(k5.add(i))));
            acc6 = _mm256_add_ps(acc6, _mm256_mul_ps(vq, _mm256_loadu_ps(k6.add(i))));
            acc7 = _mm256_add_ps(acc7, _mm256_mul_ps(vq, _mm256_loadu_ps(k7.add(i))));
            i += 8;
        }
        let mut s = [
            hsum256_ps(acc0),
            hsum256_ps(acc1),
            hsum256_ps(acc2),
            hsum256_ps(acc3),
            hsum256_ps(acc4),
            hsum256_ps(acc5),
            hsum256_ps(acc6),
            hsum256_ps(acc7),
        ];
        while i < d {
            let qv = *qp.add(i);
            s[0] += qv * *k0.add(i);
            s[1] += qv * *k1.add(i);
            s[2] += qv * *k2.add(i);
            s[3] += qv * *k3.add(i);
            s[4] += qv * *k4.add(i);
            s[5] += qv * *k5.add(i);
            s[6] += qv * *k6.add(i);
            s[7] += qv * *k7.add(i);
            i += 1;
        }
        for (off, sv) in s.into_iter().enumerate() {
            scores[j + off] = sv * scale;
        }
        j += 8;
    }
    while j < l {
        scores[j] = dot_avx2(q, std::slice::from_raw_parts(kp.add(j * stride), d)) * scale;
        j += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn attn_scores_sse2(scores: &mut [f32], q: &[f32], keys: &[f32], stride: usize, scale: f32) {
    let d = q.len();
    let qp = q.as_ptr();
    let kp = keys.as_ptr();
    let l = scores.len();
    let mut j = 0usize;
    while j + 4 <= l {
        let k0 = kp.add(j * stride);
        let k1 = kp.add((j + 1) * stride);
        let k2 = kp.add((j + 2) * stride);
        let k3 = kp.add((j + 3) * stride);
        let mut acc0 = _mm_setzero_ps();
        let mut acc1 = _mm_setzero_ps();
        let mut acc2 = _mm_setzero_ps();
        let mut acc3 = _mm_setzero_ps();
        let mut i = 0usize;
        while i + 4 <= d {
            let vq = _mm_loadu_ps(qp.add(i));
            acc0 = _mm_add_ps(acc0, _mm_mul_ps(vq, _mm_loadu_ps(k0.add(i))));
            acc1 = _mm_add_ps(acc1, _mm_mul_ps(vq, _mm_loadu_ps(k1.add(i))));
            acc2 = _mm_add_ps(acc2, _mm_mul_ps(vq, _mm_loadu_ps(k2.add(i))));
            acc3 = _mm_add_ps(acc3, _mm_mul_ps(vq, _mm_loadu_ps(k3.add(i))));
            i += 4;
        }
        let mut s0 = hsum128_ps(acc0);
        let mut s1 = hsum128_ps(acc1);
        let mut s2 = hsum128_ps(acc2);
        let mut s3 = hsum128_ps(acc3);
        while i < d {
            let qv = *qp.add(i);
            s0 += qv * *k0.add(i);
            s1 += qv * *k1.add(i);
            s2 += qv * *k2.add(i);
            s3 += qv * *k3.add(i);
            i += 1;
        }
        scores[j] = s0 * scale;
        scores[j + 1] = s1 * scale;
        scores[j + 2] = s2 * scale;
        scores[j + 3] = s3 * scale;
        j += 4;
    }
    while j < l {
        scores[j] = dot_sse2(q, std::slice::from_raw_parts(kp.add(j * stride), d)) * scale;
        j += 1;
    }
}

/// Output held in up to eight ymm accumulators across the whole position
/// loop: one load and one store of `out` per 64-lane chunk instead of one
/// read-modify-write sweep per position. A single f32 mul-then-add has the
/// same rounding in a SIMD lane as in scalar code, so any chunking of the
/// element dimension leaves every element's j-ordered sum bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn attn_mix_avx2(out: &mut [f32], weights: &[f32], values: &[f32], stride: usize) {
    let d = out.len();
    let op = out.as_mut_ptr();
    let vp = values.as_ptr();
    let mut e = 0usize;
    while e + 64 <= d {
        let mut a0 = _mm256_loadu_ps(op.add(e));
        let mut a1 = _mm256_loadu_ps(op.add(e + 8));
        let mut a2 = _mm256_loadu_ps(op.add(e + 16));
        let mut a3 = _mm256_loadu_ps(op.add(e + 24));
        let mut a4 = _mm256_loadu_ps(op.add(e + 32));
        let mut a5 = _mm256_loadu_ps(op.add(e + 40));
        let mut a6 = _mm256_loadu_ps(op.add(e + 48));
        let mut a7 = _mm256_loadu_ps(op.add(e + 56));
        for (j, &w) in weights.iter().enumerate() {
            let vw = _mm256_set1_ps(w);
            let row = vp.add(j * stride + e);
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(vw, _mm256_loadu_ps(row)));
            a1 = _mm256_add_ps(a1, _mm256_mul_ps(vw, _mm256_loadu_ps(row.add(8))));
            a2 = _mm256_add_ps(a2, _mm256_mul_ps(vw, _mm256_loadu_ps(row.add(16))));
            a3 = _mm256_add_ps(a3, _mm256_mul_ps(vw, _mm256_loadu_ps(row.add(24))));
            a4 = _mm256_add_ps(a4, _mm256_mul_ps(vw, _mm256_loadu_ps(row.add(32))));
            a5 = _mm256_add_ps(a5, _mm256_mul_ps(vw, _mm256_loadu_ps(row.add(40))));
            a6 = _mm256_add_ps(a6, _mm256_mul_ps(vw, _mm256_loadu_ps(row.add(48))));
            a7 = _mm256_add_ps(a7, _mm256_mul_ps(vw, _mm256_loadu_ps(row.add(56))));
        }
        _mm256_storeu_ps(op.add(e), a0);
        _mm256_storeu_ps(op.add(e + 8), a1);
        _mm256_storeu_ps(op.add(e + 16), a2);
        _mm256_storeu_ps(op.add(e + 24), a3);
        _mm256_storeu_ps(op.add(e + 32), a4);
        _mm256_storeu_ps(op.add(e + 40), a5);
        _mm256_storeu_ps(op.add(e + 48), a6);
        _mm256_storeu_ps(op.add(e + 56), a7);
        e += 64;
    }
    while e + 32 <= d {
        let mut a0 = _mm256_loadu_ps(op.add(e));
        let mut a1 = _mm256_loadu_ps(op.add(e + 8));
        let mut a2 = _mm256_loadu_ps(op.add(e + 16));
        let mut a3 = _mm256_loadu_ps(op.add(e + 24));
        for (j, &w) in weights.iter().enumerate() {
            let vw = _mm256_set1_ps(w);
            let row = vp.add(j * stride + e);
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(vw, _mm256_loadu_ps(row)));
            a1 = _mm256_add_ps(a1, _mm256_mul_ps(vw, _mm256_loadu_ps(row.add(8))));
            a2 = _mm256_add_ps(a2, _mm256_mul_ps(vw, _mm256_loadu_ps(row.add(16))));
            a3 = _mm256_add_ps(a3, _mm256_mul_ps(vw, _mm256_loadu_ps(row.add(24))));
        }
        _mm256_storeu_ps(op.add(e), a0);
        _mm256_storeu_ps(op.add(e + 8), a1);
        _mm256_storeu_ps(op.add(e + 16), a2);
        _mm256_storeu_ps(op.add(e + 24), a3);
        e += 32;
    }
    while e + 8 <= d {
        let mut acc = _mm256_loadu_ps(op.add(e));
        for (j, &w) in weights.iter().enumerate() {
            let vw = _mm256_set1_ps(w);
            acc = _mm256_add_ps(
                acc,
                _mm256_mul_ps(vw, _mm256_loadu_ps(vp.add(j * stride + e))),
            );
        }
        _mm256_storeu_ps(op.add(e), acc);
        e += 8;
    }
    while e < d {
        let mut acc = *op.add(e);
        for (j, &w) in weights.iter().enumerate() {
            acc += w * *vp.add(j * stride + e);
        }
        *op.add(e) = acc;
        e += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn attn_mix_sse2(out: &mut [f32], weights: &[f32], values: &[f32], stride: usize) {
    let d = out.len();
    let op = out.as_mut_ptr();
    let vp = values.as_ptr();
    let mut e = 0usize;
    while e + 16 <= d {
        let mut a0 = _mm_loadu_ps(op.add(e));
        let mut a1 = _mm_loadu_ps(op.add(e + 4));
        let mut a2 = _mm_loadu_ps(op.add(e + 8));
        let mut a3 = _mm_loadu_ps(op.add(e + 12));
        for (j, &w) in weights.iter().enumerate() {
            let vw = _mm_set1_ps(w);
            let row = vp.add(j * stride + e);
            a0 = _mm_add_ps(a0, _mm_mul_ps(vw, _mm_loadu_ps(row)));
            a1 = _mm_add_ps(a1, _mm_mul_ps(vw, _mm_loadu_ps(row.add(4))));
            a2 = _mm_add_ps(a2, _mm_mul_ps(vw, _mm_loadu_ps(row.add(8))));
            a3 = _mm_add_ps(a3, _mm_mul_ps(vw, _mm_loadu_ps(row.add(12))));
        }
        _mm_storeu_ps(op.add(e), a0);
        _mm_storeu_ps(op.add(e + 4), a1);
        _mm_storeu_ps(op.add(e + 8), a2);
        _mm_storeu_ps(op.add(e + 12), a3);
        e += 16;
    }
    while e + 4 <= d {
        let mut acc = _mm_loadu_ps(op.add(e));
        for (j, &w) in weights.iter().enumerate() {
            let vw = _mm_set1_ps(w);
            acc = _mm_add_ps(acc, _mm_mul_ps(vw, _mm_loadu_ps(vp.add(j * stride + e))));
        }
        _mm_storeu_ps(op.add(e), acc);
        e += 4;
    }
    while e < d {
        let mut acc = *op.add(e);
        for (j, &w) in weights.iter().enumerate() {
            acc += w * *vp.add(j * stride + e);
        }
        *op.add(e) = acc;
        e += 1;
    }
}

// ---------------------------------------------------------------------------
// Transcendental / reduction kernels: softmax, silu⊙, rms_norm, argmax.
// ---------------------------------------------------------------------------

/// Lane-parallel `e^x` (Cephes-style range reduction + degree-5 polynomial,
/// relative error ≲ 2e-7). Inputs are clamped to the finite-result range;
/// an exact-zero input yields exactly 1.0.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn exp256_ps(x: __m256) -> __m256 {
    let exp_hi = _mm256_set1_ps(88.37626);
    let exp_lo = _mm256_set1_ps(-88.37626);
    let log2ef = _mm256_set1_ps(std::f32::consts::LOG2_E);
    let c1 = _mm256_set1_ps(0.693_359_4);
    let c2 = _mm256_set1_ps(-2.121_944_4e-4);
    let p0 = _mm256_set1_ps(1.987_569_1e-4);
    let p1 = _mm256_set1_ps(1.398_199_9e-3);
    let p2 = _mm256_set1_ps(8.333_452e-3);
    let p3 = _mm256_set1_ps(4.166_579_6e-2);
    let p4 = _mm256_set1_ps(1.666_666_5e-1);
    let p5 = _mm256_set1_ps(5e-1);
    let one = _mm256_set1_ps(1.0);

    let x = _mm256_min_ps(_mm256_max_ps(x, exp_lo), exp_hi);
    // n = round(x·log2e); reduced x ∈ [-0.347, 0.347].
    let fx = _mm256_floor_ps(_mm256_add_ps(_mm256_mul_ps(x, log2ef), _mm256_set1_ps(0.5)));
    let x = _mm256_sub_ps(
        _mm256_sub_ps(x, _mm256_mul_ps(fx, c1)),
        _mm256_mul_ps(fx, c2),
    );
    let z = _mm256_mul_ps(x, x);
    let mut y = p0;
    y = _mm256_add_ps(_mm256_mul_ps(y, x), p1);
    y = _mm256_add_ps(_mm256_mul_ps(y, x), p2);
    y = _mm256_add_ps(_mm256_mul_ps(y, x), p3);
    y = _mm256_add_ps(_mm256_mul_ps(y, x), p4);
    y = _mm256_add_ps(_mm256_mul_ps(y, x), p5);
    y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(y, z), x), one);
    // Scale by 2^n via the exponent bits.
    let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32(
        _mm256_add_epi32(_mm256_cvttps_epi32(fx), _mm256_set1_epi32(0x7f)),
        23,
    ));
    _mm256_mul_ps(y, pow2n)
}

/// In-place softmax through an explicit backend. Every tier shares
/// [`softmax_uniform_fallback`] for fully-masked rows.
pub fn softmax_row_with(bk: Backend, row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { softmax_row_avx2(row) },
        _ => softmax_row_scalar(row),
    }
}

fn softmax_row_scalar(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if softmax_uniform_fallback(row, max) {
        return;
    }
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn softmax_row_avx2(row: &mut [f32]) {
    let n = row.len();
    let p = row.as_mut_ptr();
    let mut i = 0usize;
    let mut max = f32::NEG_INFINITY;
    if n >= 8 {
        let mut vmax = _mm256_loadu_ps(p);
        i = 8;
        while i + 8 <= n {
            vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(p.add(i)));
            i += 8;
        }
        let lo = _mm256_castps256_ps128(vmax);
        let hi = _mm256_extractf128_ps(vmax, 1);
        let m4 = _mm_max_ps(lo, hi);
        let m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
        let m1 = _mm_max_ss(m2, _mm_shuffle_ps(m2, m2, 1));
        max = _mm_cvtss_f32(m1);
    }
    while i < n {
        max = max.max(row[i]);
        i += 1;
    }
    if softmax_uniform_fallback(row, max) {
        return;
    }
    let vm = _mm256_set1_ps(max);
    let mut vsum = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        let e = exp256_ps(_mm256_sub_ps(_mm256_loadu_ps(p.add(i)), vm));
        _mm256_storeu_ps(p.add(i), e);
        vsum = _mm256_add_ps(vsum, e);
        i += 8;
    }
    let mut sum = hsum256_ps(vsum);
    while i < n {
        let e = (row[i] - max).exp();
        row[i] = e;
        sum += e;
        i += 1;
    }
    let inv = 1.0 / sum;
    let vinv = _mm256_set1_ps(inv);
    let mut i = 0usize;
    while i + 8 <= n {
        _mm256_storeu_ps(p.add(i), _mm256_mul_ps(_mm256_loadu_ps(p.add(i)), vinv));
        i += 8;
    }
    while i < n {
        row[i] *= inv;
        i += 1;
    }
}

/// Fused SwiGLU elementwise kernel: `gate[i] = silu(gate[i]) * up[i]`.
#[inline]
pub fn silu_mul(gate: &mut [f32], up: &[f32]) {
    silu_mul_with(backend(), gate, up);
}

/// [`silu_mul`] through an explicit backend.
pub fn silu_mul_with(bk: Backend, gate: &mut [f32], up: &[f32]) {
    assert_eq!(gate.len(), up.len());
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { silu_mul_avx2(gate, up) },
        _ => {
            for (g, u) in gate.iter_mut().zip(up.iter()) {
                *g = crate::ops::silu(*g) * *u;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn silu_mul_avx2(gate: &mut [f32], up: &[f32]) {
    let n = gate.len();
    let gp = gate.as_mut_ptr();
    let upp = up.as_ptr();
    let one = _mm256_set1_ps(1.0);
    let zero = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        let g = _mm256_loadu_ps(gp.add(i));
        // silu(g) = g / (1 + e^{-g})
        let e = exp256_ps(_mm256_sub_ps(zero, g));
        let s = _mm256_div_ps(g, _mm256_add_ps(one, e));
        _mm256_storeu_ps(gp.add(i), _mm256_mul_ps(s, _mm256_loadu_ps(upp.add(i))));
        i += 8;
    }
    while i < n {
        gate[i] = crate::ops::silu(gate[i]) * up[i];
        i += 1;
    }
}

/// RMS-norm one row: `out = x · gain / rms(x)`. The sum-of-squares
/// reduction dispatches on the backend; the scale pass applies
/// `x * (inv * g)` per element on every tier (bit-identical given the same
/// `inv`).
#[inline]
pub fn rms_norm_row_into(x: &[f32], gain: &[f32], eps: f32, out: &mut [f32]) {
    rms_norm_row_with(backend(), x, gain, eps, out);
}

/// [`rms_norm_row_into`] through an explicit backend.
pub fn rms_norm_row_with(bk: Backend, x: &[f32], gain: &[f32], eps: f32, out: &mut [f32]) {
    assert_eq!(x.len(), gain.len());
    assert_eq!(x.len(), out.len());
    let ms = sum_squares_with(bk, x) / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { scale_by_gain_avx2(x, gain, inv, out) },
        _ => {
            for ((o, v), g) in out.iter_mut().zip(x.iter()).zip(gain.iter()) {
                *o = *v * (inv * *g);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scale_by_gain_avx2(x: &[f32], gain: &[f32], inv: f32, out: &mut [f32]) {
    let n = x.len();
    let xp = x.as_ptr();
    let gp = gain.as_ptr();
    let op = out.as_mut_ptr();
    let vinv = _mm256_set1_ps(inv);
    let mut i = 0usize;
    while i + 8 <= n {
        let scaled = _mm256_mul_ps(
            _mm256_loadu_ps(xp.add(i)),
            _mm256_mul_ps(vinv, _mm256_loadu_ps(gp.add(i))),
        );
        _mm256_storeu_ps(op.add(i), scaled);
        i += 8;
    }
    while i < n {
        *op.add(i) = *xp.add(i) * (inv * *gp.add(i));
        i += 1;
    }
}

/// Argmax through an explicit backend; ties break toward the lower index on
/// every tier, and every tier shares the NaN debug guard.
pub fn argmax_with(bk: Backend, row: &[f32]) -> usize {
    argmax_debug_assert_no_nan(row);
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if row.len() >= 16 => unsafe { argmax_avx2(row) },
        _ => argmax_scalar(row),
    }
}

fn argmax_scalar(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Vector max-reduce, then a scalar first-equal-index scan. `max` over
/// non-NaN floats is exactly associative, so the reduced maximum equals the
/// scalar one and the first index holding it is the scalar answer
/// (including all-`-inf` rows → index 0, and `-0.0 == 0.0` ties).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn argmax_avx2(row: &[f32]) -> usize {
    let n = row.len();
    let p = row.as_ptr();
    let mut vmax = _mm256_loadu_ps(p);
    let mut i = 8usize;
    while i + 8 <= n {
        vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(p.add(i)));
        i += 8;
    }
    let lo = _mm256_castps256_ps128(vmax);
    let hi = _mm256_extractf128_ps(vmax, 1);
    let m4 = _mm_max_ps(lo, hi);
    let m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    let m1 = _mm_max_ss(m2, _mm_shuffle_ps(m2, m2, 1));
    let mut max = _mm_cvtss_f32(m1);
    while i < n {
        max = max.max(row[i]);
        i += 1;
    }
    row.iter().position(|&v| v == max).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// int8 kernels (exact i32 accumulation on every tier).
// ---------------------------------------------------------------------------

/// Absmax-quantize one row to i8 codes, returning the scale `absmax / 127`
/// (0.0 for an all-zero row). Every tier produces **identical codes and
/// scale**: `max` over finite floats is exactly associative (so the lane
/// reduction finds the same absmax as the scalar fold), the `v·inv` multiply
/// rounds identically in a SIMD lane and in scalar code, and the AVX2 path
/// reproduces `f32::round`'s half-away-from-zero rule exactly via
/// `trunc(t + copysign(0.5, t))` — the add is exact for every |t| ≤ 2²²,
/// far above the 127 this input reaches.
pub fn quantize_row_i8_with(bk: Backend, x: &[f32], q: &mut [i8]) -> f32 {
    assert_eq!(x.len(), q.len());
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { quantize_row_i8_avx2(x, q) },
        _ => quantize_row_i8_scalar(x, q),
    }
}

fn quantize_row_i8_scalar(x: &[f32], q: &mut [i8]) -> f32 {
    let absmax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if absmax == 0.0 {
        q.fill(0);
        return 0.0;
    }
    let scale = absmax / 127.0;
    let inv = 127.0 / absmax;
    for (qv, &v) in q.iter_mut().zip(x.iter()) {
        *qv = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_row_i8_avx2(x: &[f32], q: &mut [i8]) -> f32 {
    let n = x.len();
    let xp = x.as_ptr();
    let sign_mask = _mm256_set1_ps(-0.0);
    let mut vmax = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(xp.add(i)));
        vmax = _mm256_max_ps(vmax, v);
        i += 8;
    }
    let lo = _mm256_castps256_ps128(vmax);
    let hi = _mm256_extractf128_ps(vmax, 1);
    let m4 = _mm_max_ps(lo, hi);
    let m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    let m1 = _mm_max_ss(m2, _mm_shuffle_ps(m2, m2, 1));
    let mut absmax = _mm_cvtss_f32(m1);
    while i < n {
        absmax = absmax.max(x[i].abs());
        i += 1;
    }
    if absmax == 0.0 {
        q.fill(0);
        return 0.0;
    }
    let scale = absmax / 127.0;
    let inv = 127.0 / absmax;
    let vinv = _mm256_set1_ps(inv);
    let vhalf = _mm256_set1_ps(0.5);
    let qp = q.as_mut_ptr();
    let mut i = 0usize;
    while i + 8 <= n {
        let t = _mm256_mul_ps(_mm256_loadu_ps(xp.add(i)), vinv);
        // Half-away-from-zero, exactly like `f32::round`: copy t's sign onto
        // 0.5, add (exact in this range), truncate toward zero.
        let half = _mm256_or_ps(vhalf, _mm256_and_ps(sign_mask, t));
        let r = _mm256_round_ps(
            _mm256_add_ps(t, half),
            _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC,
        );
        // |t| < 127.001, so the saturating packs below cannot clip a value
        // the scalar clamp would have kept.
        let ri = _mm256_cvtps_epi32(r);
        let p16 = _mm_packs_epi32(_mm256_castsi256_si128(ri), _mm256_extracti128_si256(ri, 1));
        let p8 = _mm_packs_epi16(p16, p16);
        _mm_storel_epi64(qp.add(i) as *mut __m128i, p8);
        i += 8;
    }
    while i < n {
        *qp.add(i) = (x[i] * inv).round().clamp(-127.0, 127.0) as i8;
        i += 1;
    }
    scale
}

/// `Σ aᵢ·bᵢ` over i8 operands with i32 accumulation — exact on every
/// backend, so SIMD and scalar agree bit-for-bit.
#[inline]
pub fn dot_i8_with(bk: Backend, a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { dot_i8_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { dot_i8_avx2(a, b) },
        _ => dot_i8_scalar(a, b),
    }
}

/// Whole-matrix quantized matvec: `y[r] += (qx · qs[r·k..]) · sx·scales[r]`
/// for every output row `r`. One dispatch per linear layer instead of one
/// per output row, with four interleaved accumulator chains so the
/// widened activation chunk is reused across rows. The i32 accumulation is
/// exact and associative, so blocking cannot change any result — every
/// tier stays bit-for-bit equal to a loop of [`dot_i8_with`] calls.
pub fn vecmat_q8_acc_kernel(
    bk: Backend,
    y: &mut [f32],
    qx: &[i8],
    sx: f32,
    qs: &[i8],
    scales: &[f32],
    k: usize,
) {
    let n = y.len();
    assert_eq!(qx.len(), k, "activation length must equal k_in");
    assert_eq!(scales.len(), n, "one scale per output row");
    assert_eq!(qs.len(), n * k, "codes must be n_out rows of k_in");
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { vecmat_q8_acc_sse2(y, qx, sx, qs, scales, k) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { vecmat_q8_acc_avx2(y, qx, sx, qs, scales, k) },
        _ => {
            for (r, yv) in y.iter_mut().enumerate() {
                let acc = dot_i8_scalar(qx, &qs[r * k..(r + 1) * k]);
                *yv += acc as f32 * (sx * scales[r]);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn vecmat_q8_acc_avx2(
    y: &mut [f32],
    qx: &[i8],
    sx: f32,
    qs: &[i8],
    scales: &[f32],
    k: usize,
) {
    let n = y.len();
    let xp = qx.as_ptr();
    let wp = qs.as_ptr();
    let mut r = 0usize;
    while r + 4 <= n {
        let w0 = wp.add(r * k);
        let w1 = wp.add((r + 1) * k);
        let w2 = wp.add((r + 2) * k);
        let w3 = wp.add((r + 3) * k);
        let mut a0 = _mm256_setzero_si256();
        let mut a1 = _mm256_setzero_si256();
        let mut a2 = _mm256_setzero_si256();
        let mut a3 = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 16 <= k {
            // Widen the activation chunk once, reuse it for all four rows.
            let vx = _mm256_cvtepi8_epi16(_mm_loadu_si128(xp.add(i) as *const __m128i));
            let v0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w0.add(i) as *const __m128i));
            let v1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w1.add(i) as *const __m128i));
            let v2 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w2.add(i) as *const __m128i));
            let v3 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w3.add(i) as *const __m128i));
            a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(vx, v0));
            a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(vx, v1));
            a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(vx, v2));
            a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(vx, v3));
            i += 16;
        }
        let mut t = [
            hsum256_epi32(a0),
            hsum256_epi32(a1),
            hsum256_epi32(a2),
            hsum256_epi32(a3),
        ];
        while i < k {
            let xv = *xp.add(i) as i32;
            t[0] += xv * *w0.add(i) as i32;
            t[1] += xv * *w1.add(i) as i32;
            t[2] += xv * *w2.add(i) as i32;
            t[3] += xv * *w3.add(i) as i32;
            i += 1;
        }
        for (off, tot) in t.into_iter().enumerate() {
            y[r + off] += tot as f32 * (sx * scales[r + off]);
        }
        r += 4;
    }
    while r < n {
        let acc = dot_i8_avx2(qx, std::slice::from_raw_parts(wp.add(r * k), k));
        y[r] += acc as f32 * (sx * scales[r]);
        r += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum256_epi32(v: __m256i) -> i32 {
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256(v, 1);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0000_1110));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0000_0001));
    _mm_cvtsi128_si32(s)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn vecmat_q8_acc_sse2(
    y: &mut [f32],
    qx: &[i8],
    sx: f32,
    qs: &[i8],
    scales: &[f32],
    k: usize,
) {
    let n = y.len();
    let xp = qx.as_ptr();
    let wp = qs.as_ptr();
    let mut r = 0usize;
    while r + 2 <= n {
        let w0 = wp.add(r * k);
        let w1 = wp.add((r + 1) * k);
        let mut a0 = _mm_setzero_si128();
        let mut a1 = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 16 <= k {
            let vx = _mm_loadu_si128(xp.add(i) as *const __m128i);
            let x_lo = _mm_srai_epi16(_mm_unpacklo_epi8(vx, vx), 8);
            let x_hi = _mm_srai_epi16(_mm_unpackhi_epi8(vx, vx), 8);
            let v0 = _mm_loadu_si128(w0.add(i) as *const __m128i);
            let v1 = _mm_loadu_si128(w1.add(i) as *const __m128i);
            a0 = _mm_add_epi32(
                a0,
                _mm_madd_epi16(x_lo, _mm_srai_epi16(_mm_unpacklo_epi8(v0, v0), 8)),
            );
            a0 = _mm_add_epi32(
                a0,
                _mm_madd_epi16(x_hi, _mm_srai_epi16(_mm_unpackhi_epi8(v0, v0), 8)),
            );
            a1 = _mm_add_epi32(
                a1,
                _mm_madd_epi16(x_lo, _mm_srai_epi16(_mm_unpacklo_epi8(v1, v1), 8)),
            );
            a1 = _mm_add_epi32(
                a1,
                _mm_madd_epi16(x_hi, _mm_srai_epi16(_mm_unpackhi_epi8(v1, v1), 8)),
            );
            i += 16;
        }
        let s0 = _mm_add_epi32(a0, _mm_shuffle_epi32(a0, 0b0000_1110));
        let s0 = _mm_add_epi32(s0, _mm_shuffle_epi32(s0, 0b0000_0001));
        let s1 = _mm_add_epi32(a1, _mm_shuffle_epi32(a1, 0b0000_1110));
        let s1 = _mm_add_epi32(s1, _mm_shuffle_epi32(s1, 0b0000_0001));
        let mut t0 = _mm_cvtsi128_si32(s0);
        let mut t1 = _mm_cvtsi128_si32(s1);
        while i < k {
            let xv = *xp.add(i) as i32;
            t0 += xv * *w0.add(i) as i32;
            t1 += xv * *w1.add(i) as i32;
            i += 1;
        }
        y[r] += t0 as f32 * (sx * scales[r]);
        y[r + 1] += t1 as f32 * (sx * scales[r + 1]);
        r += 2;
    }
    while r < n {
        let acc = dot_i8_sse2(qx, std::slice::from_raw_parts(wp.add(r * k), k));
        y[r] += acc as f32 * (sx * scales[r]);
        r += 1;
    }
}

fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (av, bv) in a.iter().zip(b.iter()) {
        acc += *av as i32 * *bv as i32;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    let n = a.len();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 16 <= n {
        let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(i) as *const __m128i));
        let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(i) as *const __m128i));
        // madd: i16×i16 products summed in pairs into i32 lanes — exact
        // (|p| ≤ 127² so even the pairwise sum fits i32 with room).
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
        i += 16;
    }
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256(acc, 1);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0000_1110));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0000_0001));
    let mut total = _mm_cvtsi128_si32(s);
    while i < n {
        total += a[i] as i32 * b[i] as i32;
        i += 1;
    }
    total
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn dot_i8_sse2(a: &[i8], b: &[i8]) -> i32 {
    let n = a.len();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = _mm_setzero_si128();
    let mut i = 0usize;
    while i + 16 <= n {
        let va = _mm_loadu_si128(ap.add(i) as *const __m128i);
        let vb = _mm_loadu_si128(bp.add(i) as *const __m128i);
        // Sign-extend i8 → i16 with the unpack-with-self + arithmetic-shift
        // trick (SSE2 has no cvtepi8_epi16).
        let a_lo = _mm_srai_epi16(_mm_unpacklo_epi8(va, va), 8);
        let a_hi = _mm_srai_epi16(_mm_unpackhi_epi8(va, va), 8);
        let b_lo = _mm_srai_epi16(_mm_unpacklo_epi8(vb, vb), 8);
        let b_hi = _mm_srai_epi16(_mm_unpackhi_epi8(vb, vb), 8);
        acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
        i += 16;
    }
    let s = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0b0000_1110));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0000_0001));
    let mut total = _mm_cvtsi128_si32(s);
    while i < n {
        total += a[i] as i32 * b[i] as i32;
        i += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Backends actually runnable on this host (scalar always; SIMD tiers
    /// when supported), so the suite exercises every dispatch path it can.
    fn supported() -> Vec<Backend> {
        Backend::ALL
            .iter()
            .copied()
            .filter(|b| b.is_supported())
            .collect()
    }

    /// The non-multiple-of-lane-width shapes where unrolled kernels break.
    const TAIL_DIMS: [usize; 22] = [
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 31, 33, 63, 64, 65,
    ];

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Some(b));
            assert_eq!(Backend::from_name(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(Backend::from_name(" avx2 "), Some(Backend::Avx2));
        assert_eq!(Backend::from_name("avx512"), None);
        assert_eq!(Backend::from_name(""), None);
    }

    #[test]
    fn set_backend_rejects_unsupported_and_accepts_scalar() {
        let prev = backend();
        assert!(set_backend(Backend::Scalar).is_ok());
        assert_eq!(backend(), Backend::Scalar);
        set_backend(prev).unwrap();
        #[cfg(not(target_arch = "x86_64"))]
        assert!(set_backend(Backend::Avx2).is_err());
    }

    /// Satellite: every SIMD backend must match the scalar vecmat reference
    /// **bitwise** on every tail shape (the determinism contract that keeps
    /// backend choice from moving logits).
    #[test]
    fn vecmat_simd_matches_scalar_bitwise_on_tail_shapes() {
        let mut rng = Rng::new(0x51D);
        for &k in &TAIL_DIMS {
            for &n in &TAIL_DIMS {
                let x: Vec<f32> = (0..k).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let w: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let y0: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let mut y_ref = y0.clone();
                vecmat_acc_into_with(Backend::Scalar, &mut y_ref, &x, &w, k, n);
                for bk in supported() {
                    let mut y = y0.clone();
                    vecmat_acc_into_with(bk, &mut y, &x, &w, k, n);
                    assert_eq!(y, y_ref, "vecmat_acc {} diverged at k={k} n={n}", bk.name());
                    let mut y = vec![0.0; n];
                    let mut y_into_ref = vec![0.0; n];
                    vecmat_into_with(Backend::Scalar, &mut y_into_ref, &x, &w, k, n);
                    vecmat_into_with(bk, &mut y, &x, &w, k, n);
                    assert_eq!(
                        y,
                        y_into_ref,
                        "vecmat {} diverged at k={k} n={n}",
                        bk.name()
                    );
                }
            }
        }
    }

    /// Satellite: int8 dots accumulate exactly, so every backend must agree
    /// **exactly** with scalar on every tail shape.
    #[test]
    fn dot_i8_simd_matches_scalar_exactly_on_tail_shapes() {
        let mut rng = Rng::new(0x1D8);
        for &k in &TAIL_DIMS {
            let a: Vec<i8> = (0..k)
                .map(|_| (rng.below(255) as i32 - 127) as i8)
                .collect();
            let b: Vec<i8> = (0..k)
                .map(|_| (rng.below(255) as i32 - 127) as i8)
                .collect();
            let want = dot_i8_with(Backend::Scalar, &a, &b);
            for bk in supported() {
                assert_eq!(dot_i8_with(bk, &a, &b), want, "{} k={k}", bk.name());
            }
        }
    }

    #[test]
    fn dot_and_sum_squares_agree_across_backends_within_tolerance() {
        let mut rng = Rng::new(0xD07);
        for &n in &TAIL_DIMS {
            let a: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let b: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let d_ref = dot_with(Backend::Scalar, &a, &b);
            let s_ref = sum_squares_with(Backend::Scalar, &a);
            for bk in supported() {
                assert!(
                    (dot_with(bk, &a, &b) - d_ref).abs() < 1e-4,
                    "{} n={n}",
                    bk.name()
                );
                assert!(
                    (sum_squares_with(bk, &a) - s_ref).abs() < 1e-4,
                    "{} n={n}",
                    bk.name()
                );
            }
        }
    }

    #[test]
    fn axpy_matches_scalar_bitwise() {
        let mut rng = Rng::new(0xA9);
        for &n in &TAIL_DIMS {
            let x: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let y0: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let s = rng.uniform(-2.0, 2.0);
            let mut y_ref = y0.clone();
            axpy_with(Backend::Scalar, &mut y_ref, s, &x);
            for bk in supported() {
                let mut y = y0.clone();
                axpy_with(bk, &mut y, s, &x);
                assert_eq!(y, y_ref, "{} n={n}", bk.name());
            }
        }
    }

    /// The batched attention kernels must be **bit-identical** on every tier
    /// to the per-position `dot_with`/`axpy_with` loops they replace — over
    /// tail head dims, tail position counts, and a strided slab (head offset
    /// inside a wider cache row).
    #[test]
    fn attn_kernels_match_per_position_loops() {
        let mut rng = Rng::new(0xA77);
        for &d in &[1usize, 3, 7, 8, 9, 16, 31, 32, 33, 63, 64, 65, 96] {
            for &l in &[0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
                let stride = d + 5; // head carved out of a wider cache row
                let q: Vec<f32> = (0..d).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let slab: Vec<f32> = (0..l.max(1) * stride)
                    .map(|_| rng.uniform(-1.0, 1.0))
                    .collect();
                let w: Vec<f32> = (0..l).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let out0: Vec<f32> = (0..d).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let scale = 0.37f32;
                for bk in supported() {
                    let mut scores = vec![0.0f32; l];
                    attn_scores_with(bk, &mut scores, &q, &slab, stride, scale);
                    for j in 0..l {
                        let want = dot_with(bk, &q, &slab[j * stride..j * stride + d]) * scale;
                        assert_eq!(
                            scores[j].to_bits(),
                            want.to_bits(),
                            "{} scores d={d} l={l} j={j}",
                            bk.name()
                        );
                    }
                    let mut out = out0.clone();
                    attn_mix_with(bk, &mut out, &w, &slab, stride);
                    let mut want = out0.clone();
                    for j in 0..l {
                        axpy_with(bk, &mut want, w[j], &slab[j * stride..j * stride + d]);
                    }
                    for e in 0..d {
                        assert_eq!(
                            out[e].to_bits(),
                            want[e].to_bits(),
                            "{} mix d={d} l={l} e={e}",
                            bk.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn softmax_agrees_across_backends() {
        let mut rng = Rng::new(0x50F);
        for &n in &TAIL_DIMS {
            let base: Vec<f32> = (0..n).map(|_| rng.uniform(-8.0, 8.0)).collect();
            let mut p_ref = base.clone();
            softmax_row_with(Backend::Scalar, &mut p_ref);
            for bk in supported() {
                let mut p = base.clone();
                softmax_row_with(bk, &mut p);
                let sum: f32 = p.iter().sum();
                assert!((sum - 1.0).abs() < 1e-4, "{} n={n} sum={sum}", bk.name());
                for (a, b) in p.iter().zip(&p_ref) {
                    assert!((a - b).abs() < 1e-5, "{} n={n}", bk.name());
                }
            }
        }
    }

    /// Satellite: the uniform fallback is one shared helper — feed an
    /// all-`-inf` row through **every** dispatch path and require the
    /// identical uniform answer (and argmax → index 0).
    #[test]
    fn all_neg_inf_rows_take_shared_uniform_fallback_on_every_backend() {
        for bk in supported() {
            for n in [1usize, 7, 8, 16, 33] {
                let mut row = vec![f32::NEG_INFINITY; n];
                softmax_row_with(bk, &mut row);
                for &v in &row {
                    assert_eq!(v, 1.0 / n as f32, "{} n={n}", bk.name());
                }
                let masked = vec![f32::NEG_INFINITY; n.max(16)];
                assert_eq!(argmax_with(bk, &masked), 0, "{} n={n}", bk.name());
            }
        }
    }

    #[test]
    fn argmax_matches_scalar_and_breaks_ties_low() {
        let mut rng = Rng::new(0xA44);
        for trial in 0..40 {
            let n = 1 + rng.below(70);
            let mut row: Vec<f32> = (0..n).map(|_| rng.uniform(-4.0, 4.0)).collect();
            if trial % 3 == 0 && n >= 4 {
                // Force a tie to pin the low-index break on every tier.
                let v = row[n / 3];
                row[2 * n / 3] = v;
            }
            let want = argmax_with(Backend::Scalar, &row);
            for bk in supported() {
                assert_eq!(argmax_with(bk, &row), want, "{} n={n}", bk.name());
            }
        }
    }

    /// Satellite: the NaN debug-assert is the same shared guard on every
    /// dispatch path.
    #[cfg(debug_assertions)]
    #[test]
    fn argmax_rejects_nan_on_every_backend() {
        for bk in supported() {
            let mut row = vec![0.25f32; 24];
            row[17] = f32::NAN;
            let r = std::panic::catch_unwind(|| argmax_with(bk, &row));
            assert!(r.is_err(), "{} accepted a NaN row", bk.name());
        }
    }

    #[test]
    fn silu_mul_agrees_across_backends() {
        let mut rng = Rng::new(0x517);
        for &n in &TAIL_DIMS {
            let gate: Vec<f32> = (0..n).map(|_| rng.uniform(-6.0, 6.0)).collect();
            let up: Vec<f32> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
            let mut want = gate.clone();
            silu_mul_with(Backend::Scalar, &mut want, &up);
            for bk in supported() {
                let mut got = gate.clone();
                silu_mul_with(bk, &mut got, &up);
                for (a, b) in got.iter().zip(&want) {
                    assert!((a - b).abs() < 2e-5, "{} n={n}: {a} vs {b}", bk.name());
                }
            }
        }
    }

    #[test]
    fn rms_norm_agrees_across_backends() {
        let mut rng = Rng::new(0x4A5);
        for &n in &TAIL_DIMS {
            let x: Vec<f32> = (0..n).map(|_| rng.uniform(-3.0, 3.0)).collect();
            let gain: Vec<f32> = (0..n).map(|_| rng.uniform(0.5, 1.5)).collect();
            let mut want = vec![0.0; n];
            rms_norm_row_with(Backend::Scalar, &x, &gain, 1e-5, &mut want);
            for bk in supported() {
                let mut got = vec![0.0; n];
                rms_norm_row_with(bk, &x, &gain, 1e-5, &mut got);
                for (a, b) in got.iter().zip(&want) {
                    assert!((a - b).abs() < 1e-5, "{} n={n}", bk.name());
                }
            }
        }
    }

    /// The polynomial exp inside the AVX2 softmax must track `f32::exp`
    /// closely over the softmax input range (x - max ≤ 0).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_softmax_exp_accuracy_over_range() {
        if !Backend::Avx2.is_supported() {
            return;
        }
        // Probe via softmax of [x, 0]: p0 = e^x / (e^x + 1) recovers e^x.
        for i in 0..200 {
            let x = -20.0 + 0.1 * i as f32;
            let mut row = vec![x, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
            softmax_row_with(Backend::Avx2, &mut row);
            let mut row_s = vec![x, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
            softmax_row_with(Backend::Scalar, &mut row_s);
            assert!(
                (row[0] - row_s[0]).abs() < 1e-6,
                "softmax exp drift at x={x}: {} vs {}",
                row[0],
                row_s[0]
            );
        }
    }
}
