//! `aasd-tensor` — dense f32 tensor substrate for the AASD reproduction.
//!
//! Everything upstream (transformer blocks, the speculative-decoding engine,
//! the benches) is built on the kernels in this crate:
//!
//! * [`matmul`] — naive reference, cache-blocked, and thread-parallel
//!   matrix multiply (all three kept and property-tested for equivalence;
//!   the benches in `aasd-bench` track the gap between them), plus the
//!   4-way-unrolled [`vecmat_into`] t = 1 decode fast path;
//! * [`ops`] — fused softmax, argmax, SiLU, axpy/dot primitives;
//! * [`simd`] — runtime-dispatched AVX2/SSE2/scalar kernel tiers behind
//!   the hot-path primitives (`AASD_KERNEL` overridable, bitwise-stable
//!   vecmat across tiers);
//! * [`quant`] — int8 per-row absmax weight quantization and the exact
//!   i32-accumulating `vecmat_q8` kernels;
//! * [`rng`] — deterministic SplitMix64 RNG (std-only `rand` stand-in);
//! * [`workspace`] — the grow-once scratch arena behind the
//!   zero-allocation fused decode path;
//! * [`profile`] — the per-op decode profiler carried by the workspace;
//! * [`Tensor`] — a thin row-major 2-D matrix wrapper used at module
//!   boundaries where shapes need to travel with the data.

pub mod matmul;
pub mod ops;
pub mod profile;
pub mod quant;
pub mod rng;
pub mod simd;
pub mod workspace;

pub use matmul::{
    hardware_threads, matmul_blocked_acc_into, matmul_blocked_into, matmul_naive_into,
    matmul_parallel_into, matvec_into, threads_from_env, vecmat_acc_into, vecmat_into,
};
pub use ops::{
    add_assign, argmax, axpy, dot, log_softmax_row, log_softmax_rows, silu, softmax_row,
    softmax_rows,
};
pub use profile::{Op, ProfSpan, Profiler};
pub use quant::{quantize_row_i8, vecmat_q8_acc_into, vecmat_q8_into, QuantMatrix};
pub use rng::Rng;
pub use simd::{backend, best_supported, rms_norm_row_into, set_backend, silu_mul, Backend};
pub use workspace::Workspace;

/// Row-major 2-D f32 matrix: `rows × cols`, `data.len() == rows * cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    pub data: Vec<f32>,
    pub rows: usize,
    pub cols: usize,
}

impl Tensor {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { data, rows, cols }
    }

    /// I.i.d. normal entries scaled by `std` (seeded, deterministic).
    pub fn randn(rng: &mut Rng, rows: usize, cols: usize, std: f32) -> Self {
        let data = (0..rows * cols).map(|_| rng.normal() * std).collect();
        Self { data, rows, cols }
    }

    /// Xavier/Glorot-uniform init for a `fan_in = cols`, `fan_out = rows`
    /// weight matrix.
    pub fn xavier(rng: &mut Rng, rows: usize, cols: usize) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.uniform(-bound, bound))
            .collect();
        Self { data, rows, cols }
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` using the blocked (or, for large problems, parallel)
    /// kernel.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Tensor::zeros(self.rows, other.cols);
        matmul_parallel_into(
            &mut out.data,
            &self.data,
            &other.data,
            self.rows,
            self.cols,
            other.cols,
        );
        out
    }

    /// `self · otherᵀ` without materializing the transpose: rows of both
    /// operands are contiguous, so this is a pure dot-product sweep. Used by
    /// attention scores (`Q·Kᵀ`) where `K` is stored row-per-position.
    pub fn matmul_transposed(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let o_row = out.row_mut(i);
            for (j, ov) in o_row.iter_mut().enumerate() {
                *ov = dot(a_row, other.row(j));
            }
        }
        out
    }

    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    pub fn softmax_rows_inplace(&mut self) {
        softmax_rows(&mut self.data, self.cols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn(&mut rng, 9, 17, 1.0);
        let b = Tensor::randn(&mut rng, 13, 17, 1.0);
        let fast = a.matmul_transposed(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast.rows, 9);
        assert_eq!(fast.cols, 13);
        for (x, y) in fast.data.iter().zip(&slow.data) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(5);
        let a = Tensor::randn(&mut rng, 6, 11, 1.0);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = Rng::new(8);
        let t = Tensor::xavier(&mut rng, 64, 32);
        let bound = (6.0 / 96.0f32).sqrt();
        assert!(t.data.iter().all(|v| v.abs() <= bound));
    }
}
