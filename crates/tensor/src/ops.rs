//! Elementwise and reduction kernels shared across the workspace.

/// Numerically-stable in-place softmax over one row.
///
/// Fused single-temporary formulation: one pass for the max, one pass that
/// exponentiates and accumulates the normalizer, one scale pass. Dispatches
/// on the active SIMD backend (see [`crate::simd`]); every tier shares the
/// same fully-masked fallback: a row of all `-inf` (as a causal mask can
/// produce) becomes the uniform distribution instead of `0/0 = NaN`
/// everywhere.
pub fn softmax_row(row: &mut [f32]) {
    crate::simd::softmax_row_with(crate::simd::backend(), row);
}

/// In-place softmax over every `cols`-wide row of a row-major matrix.
pub fn softmax_rows(data: &mut [f32], cols: usize) {
    assert!(cols > 0 && data.len().is_multiple_of(cols));
    for row in data.chunks_mut(cols) {
        softmax_row(row);
    }
}

/// In-place log-softmax over one row (`x - logsumexp(x)`), the stable form
/// the cross-entropy and KL losses are built on. A fully-masked row (every
/// entry `-inf`) falls back to the uniform `-ln(n)`, mirroring
/// [`softmax_row`].
pub fn log_softmax_row(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        row.fill(-(row.len() as f32).ln());
        return;
    }
    let sum: f32 = row.iter().map(|&v| (v - max).exp()).sum();
    let lse = max + sum.ln();
    for v in row.iter_mut() {
        *v -= lse;
    }
}

/// In-place log-softmax over every `cols`-wide row of a row-major matrix.
pub fn log_softmax_rows(data: &mut [f32], cols: usize) {
    assert!(cols > 0 && data.len().is_multiple_of(cols));
    for row in data.chunks_mut(cols) {
        log_softmax_row(row);
    }
}

/// Index of the maximum element; ties break toward the lower index so that
/// greedy decoding is fully deterministic.
///
/// NaN entries compare false against everything, so a comparison-based scan
/// would silently skip them (and return 0 for an all-NaN row) — exactly the
/// failure mode that turns one bad logit into undetected garbage decoding.
/// Debug builds therefore reject NaN input outright.
pub fn argmax(row: &[f32]) -> usize {
    crate::simd::argmax_with(crate::simd::backend(), row)
}

/// SiLU (swish) activation: `x * sigmoid(x)`.
#[inline]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// `a += b` elementwise.
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (av, bv) in a.iter_mut().zip(b.iter()) {
        *av += *bv;
    }
}

/// Dot product (SIMD-dispatched; see [`crate::simd::dot_with`]).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    crate::simd::dot_with(crate::simd::backend(), a, b)
}

/// `y += s * x` (axpy, SIMD-dispatched; see [`crate::simd::axpy_with`]).
#[inline]
pub fn axpy(y: &mut [f32], s: f32, x: &[f32]) {
    crate::simd::axpy_with(crate::simd::backend(), y, s, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Property sweep: softmax rows sum to 1 and stay in (0, 1] for random
    /// inputs including large magnitudes (stability check).
    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::new(0x50F7);
        for _ in 0..50 {
            let cols = 1 + rng.below(64);
            let rows = 1 + rng.below(8);
            let mut m: Vec<f32> = (0..rows * cols).map(|_| rng.uniform(-80.0, 80.0)).collect();
            softmax_rows(&mut m, cols);
            for row in m.chunks(cols) {
                let s: f32 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "row sum {s}");
                assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
            }
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = vec![1001.0f32, 1002.0, 1003.0];
        softmax_row(&mut a);
        softmax_row(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[0.5, 1.0, 1.0, 0.1]), 1);
        assert_eq!(argmax(&[f32::NEG_INFINITY, -1.0]), 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "NaN")]
    fn argmax_rejects_nan_in_debug() {
        argmax(&[0.1, f32::NAN, 0.3]);
    }

    #[test]
    fn softmax_all_neg_inf_is_uniform() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_row(&mut row);
        for &v in &row {
            assert!((v - 0.25).abs() < 1e-7, "expected uniform, got {v}");
        }
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let mut rng = Rng::new(0x106);
        for _ in 0..20 {
            let n = 1 + rng.below(16);
            let base: Vec<f32> = (0..n).map(|_| rng.uniform(-50.0, 50.0)).collect();
            let mut p = base.clone();
            softmax_row(&mut p);
            let mut lp = base.clone();
            log_softmax_row(&mut lp);
            for (l, q) in lp.iter().zip(&p) {
                assert!((l.exp() - q).abs() < 1e-5, "exp(logsoftmax) != softmax");
            }
        }
    }

    #[test]
    fn log_softmax_all_neg_inf_is_uniform() {
        let mut row = vec![f32::NEG_INFINITY; 8];
        log_softmax_row(&mut row);
        for &v in &row {
            assert!((v + (8.0f32).ln()).abs() < 1e-6);
        }
    }

    #[test]
    fn silu_known_values() {
        assert!((silu(0.0)).abs() < 1e-7);
        assert!((silu(20.0) - 20.0).abs() < 1e-3); // saturates to identity
        assert!(silu(-20.0).abs() < 1e-3); // saturates to zero
    }
}
