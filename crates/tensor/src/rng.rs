//! Deterministic pseudo-random number generation.
//!
//! The build environment has no registry access, so instead of `rand` we use
//! a SplitMix64 generator: tiny, fast, statistically solid for test-data and
//! weight-init purposes, and — crucially — bit-for-bit reproducible from a
//! `u64` seed on every platform. Every model init, dataset, and property
//! sweep in the workspace derives from this type.

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
    /// Cached second output of the Box-Muller transform.
    spare_normal: Option<f32>,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed,
            spare_normal: None,
        }
    }

    /// Derive an independent stream (e.g. one per layer) from this one.
    pub fn fork(&mut self) -> Rng {
        // Perturb with a odd constant so fork(k) != next state sequence.
        Rng::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 high-quality mantissa bits.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal via Box-Muller.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = (1.0 - self.next_f32()).max(f32::MIN_POSITIVE);
        let u2 = self.next_f32();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut r = Rng::new(123);
        let n = 50_000;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        for _ in 0..n {
            let z = r.normal() as f64;
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn fork_streams_differ() {
        let mut a = Rng::new(1);
        let mut f = a.fork();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| f.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
