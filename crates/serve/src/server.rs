//! The TCP front end: a blocking accept loop handing each connection to its
//! own handler thread, all of them sharing one [`Engine`].
//!
//! The server owns two background threads:
//!
//! * the **scheduler thread**, which calls [`Engine::tick`] in a loop
//!   (parking on the engine's condvar when idle), and
//! * the **accept thread**, which spawns a short-lived handler per
//!   connection.
//!
//! Handler threads never block decode: submissions go through
//! [`Engine::submit`] (queue mutex only) and polls read the per-request
//! handle. Shutdown is cooperative — a flag plus a self-connect to unblock
//! `accept` — so tests can start and stop servers on ephemeral ports
//! without leaking threads.

use std::io::{self};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::{Engine, Rejection};
use crate::proto::{format_poll, parse_command, read_frame, write_frame, Command};

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// both background threads.
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    sched_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `engine`.
    pub fn start<A: ToSocketAddrs>(engine: Arc<Engine>, addr: A) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let sched_engine = Arc::clone(&engine);
        let sched_stop = Arc::clone(&stop);
        let sched_thread = std::thread::Builder::new()
            .name("aasd-sched".into())
            .spawn(move || {
                if sched_engine.config().async_pipeline {
                    // Free-running pipeline: blocks until the stop flag is
                    // raised, then cancels what's left and joins every
                    // session's draft thread under a bounded timeout so
                    // shutdown can never leak a parked thread.
                    sched_engine.run_pipeline(Some(&sched_stop));
                    sched_engine.cancel_all();
                    sched_engine.drain_pipeline(Duration::from_secs(5));
                    return;
                }
                while !sched_stop.load(Ordering::Acquire) {
                    if !sched_engine.tick() {
                        sched_engine.wait_for_work(Duration::from_millis(5));
                    }
                }
                // Drain: finish nothing new, cancel what's left so waiting
                // clients unblock with a terminal status.
                sched_engine.cancel_all();
                sched_engine.run_until_idle();
            })?;

        let accept_engine = Arc::clone(&engine);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("aasd-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let engine = Arc::clone(&accept_engine);
                    let stop = Arc::clone(&accept_stop);
                    // Handler threads are detached; they exit when their
                    // client disconnects (or on SHUTDOWN), and the sockets
                    // close with them.
                    let _ = std::thread::Builder::new()
                        .name("aasd-conn".into())
                        .spawn(move || handle_connection(stream, &engine, &stop));
                }
            })?;

        Ok(Self {
            addr,
            engine,
            stop,
            accept_thread: Some(accept_thread),
            sched_thread: Some(sched_thread),
        })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stop accepting, cancel in-flight work, and join both threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway self-connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.sched_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one client until EOF, error, or SHUTDOWN.
fn handle_connection(mut stream: TcpStream, engine: &Engine, stop: &AtomicBool) {
    while let Ok(Some(line)) = read_frame(&mut stream) {
        let reply = match parse_command(&line) {
            Err(msg) => format!("ERR {msg}"),
            Ok(Command::Submit(req)) => match engine.submit(req) {
                Ok(handle) => format!("OK {}", handle.id),
                Err(Rejection::Busy) => "BUSY".to_string(),
                Err(Rejection::Invalid(msg)) => format!("ERR {msg}"),
            },
            Ok(Command::Poll(id)) => match engine.poll(id) {
                Some((status, tokens)) => format_poll(status, &tokens),
                None => format!("ERR unknown request {id}"),
            },
            Ok(Command::Cancel(id)) => {
                if engine.cancel(id) {
                    format!("OK {id}")
                } else {
                    format!("ERR unknown or finished request {id}")
                }
            }
            Ok(Command::Metrics) => engine.metrics().render_text(),
            Ok(Command::MetricsJson) => engine.metrics().render_json(),
            Ok(Command::Shutdown) => {
                let _ = write_frame(&mut stream, "OK 0");
                stop.store(true, Ordering::Release);
                // Kick the accept loop awake so it observes the flag.
                if let Ok(addr) = stream.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return;
            }
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// Minimal blocking client for tests, benches, and the demo binary.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Ok(Self {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Send one command frame, read one response frame.
    pub fn roundtrip(&mut self, cmd: &str) -> io::Result<String> {
        write_frame(&mut self.stream, cmd)?;
        read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Submit, returning the assigned id, or the raw reply on rejection.
    pub fn submit(&mut self, cmd: &str) -> io::Result<Result<u64, String>> {
        let reply = self.roundtrip(cmd)?;
        Ok(match reply.strip_prefix("OK ") {
            Some(id) => id
                .parse::<u64>()
                .map_err(|e| format!("bad id in {reply:?}: {e}")),
            None => Err(reply),
        })
    }

    /// Poll `id` until it reaches a terminal status; returns (status line,
    /// tokens).
    pub fn wait_done(&mut self, id: u64) -> io::Result<(String, Vec<u32>)> {
        loop {
            let reply = self.roundtrip(&format!("POLL {id}"))?;
            let (status, tokens) = crate::proto::parse_poll(&reply)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            use crate::request::Status;
            if matches!(status, Status::Done | Status::Cancelled) {
                let s = if status == Status::Done {
                    "done"
                } else {
                    "cancelled"
                };
                return Ok((s.to_string(), tokens));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}
