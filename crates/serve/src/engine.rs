//! The serving engine: session slots, FIFO admission queue, and the
//! block-granular continuous-batching scheduler.
//!
//! ## Architecture
//!
//! * **Slots** — the engine owns `cfg.slots` long-lived [`Slot`]s, each with
//!   its own target/draft [`KvCache`] pair and [`Workspace`], allocated once
//!   at engine construction and *reset* (never reallocated) between
//!   requests — `KvCache::reset` is the contract that makes a reused slot
//!   compute exactly what a fresh one would.
//! * **Queue** — admitted requests wait in a FIFO behind a small mutex.
//!   Admission control is a hard cap (`cfg.max_queue`): a full queue rejects
//!   instead of buffering unboundedly, so latency under overload degrades by
//!   turning clients away, not by growing an invisible backlog.
//! * **Scheduler** — [`Engine::tick`] is one scheduling round: free slots
//!   are refilled from the queue (continuous batching — a finished session's
//!   slot is reused on the very next round, mid-flight neighbours never
//!   restart), then every active session advances **one speculative block**
//!   (or one token for autoregressive sessions), round-robin across
//!   `cfg.workers` scoped threads. Sessions are fully independent — each
//!   owns its caches and scratch — so worker count changes wall-clock
//!   interleaving but can never change any session's token stream (pinned by
//!   the root determinism test).
//!
//! Losslessness survives scheduling by construction: the per-block state
//! machine a slot steps ([`SpecSession`]) is the *same* one the one-shot
//! fused loops drive, so a served completion is token-identical to a
//! single-request `speculative_greedy_seeded_ws` run with the same models
//! and prompt.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use aasd_mm::{seed_draft_prefix, Ablation, Image, KvProjector, LlavaSim};
use aasd_nn::{Decoder, KernelPolicy, KvCache};
use aasd_specdec::{ArSession, SpecSession, MAX_GAMMA};
use aasd_tensor::{argmax, Rng, Workspace};

use crate::metrics::Metrics;
use crate::request::{DecodeMode, Request, RequestHandle, RequestId, Status};

/// The model bundle an engine serves. One engine serves one family; the
/// text and multimodal paths differ only in prefill and draft-cache
/// seeding — the per-block scheduling is identical.
pub enum EngineModel {
    Text {
        target: Arc<Decoder>,
        draft: Arc<Decoder>,
    },
    /// LlavaSim target with a hybrid-cache draft: the draft's vision prefix
    /// is seeded per `ablation` (learned [`KvProjector`] rows by default)
    /// before the text prefill, exactly like `mm_speculative_ws`.
    Multimodal {
        model: Arc<LlavaSim>,
        draft: Arc<Decoder>,
        projector: Arc<KvProjector>,
        ablation: Ablation,
    },
}

impl EngineModel {
    fn target_lm(&self) -> &Decoder {
        match self {
            EngineModel::Text { target, .. } => target,
            EngineModel::Multimodal { model, .. } => &model.lm,
        }
    }

    fn draft(&self) -> &Decoder {
        match self {
            EngineModel::Text { draft, .. } | EngineModel::Multimodal { draft, .. } => draft,
        }
    }
}

/// Scheduler/admission knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Concurrent sessions (one KV-cache pair + workspace each).
    pub slots: usize,
    /// Worker threads a tick fans sessions across (`std::thread::scope`).
    /// 1 steps every session inline with zero spawn overhead.
    pub workers: usize,
    /// Admission cap: a submit that would push the queue past this is
    /// rejected with [`Rejection::Busy`].
    pub max_queue: usize,
    /// Kernel family the **target** model's fused decode path must be
    /// running (the draft may differ — policies are per model). The engine
    /// holds its models behind `Arc`, so the policy is applied by the model
    /// owner before construction; [`Engine::new`] asserts the model matches
    /// this declaration so a config typo cannot silently serve the wrong
    /// kernels.
    pub kernel_policy: KernelPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            slots: 4,
            workers: 1,
            max_queue: 64,
            kernel_policy: KernelPolicy::F32,
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// Admission control: queue at capacity. Retry later.
    Busy,
    /// The request can never run on this engine (bad γ, empty prompt,
    /// prompt past the context window, image on a text engine, …).
    Invalid(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Busy => write!(f, "queue full"),
            Rejection::Invalid(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

/// The decode state machine a slot is driving.
enum Phase {
    /// Admitted but not yet prefilled; prefill happens on the slot's first
    /// scheduling turn so TTFT honestly includes queue wait + prefill.
    Prefill(Request),
    Spec(SpecSession),
    Ar(ArSession),
}

struct Active {
    handle: Arc<RequestHandle>,
    phase: Phase,
    /// Tokens already published to the handle (monotone cursor into the
    /// session's output).
    published: usize,
}

/// One long-lived session slot: caches + scratch allocated once, reset per
/// request.
struct Slot {
    t_cache: KvCache,
    d_cache: KvCache,
    ws: Workspace,
    active: Option<Active>,
}

struct QueueState {
    queue: VecDeque<Active>,
    next_id: RequestId,
    /// Every admitted request's handle, kept for the engine's lifetime so
    /// clients can poll by id after completion (the handle is a few dozen
    /// bytes plus the token vector; an engine serving a bounded bench run
    /// never accumulates enough to matter).
    handles: HashMap<RequestId, Arc<RequestHandle>>,
}

/// The multi-session speculative-decoding engine.
pub struct Engine {
    cfg: EngineConfig,
    model: EngineModel,
    metrics: Arc<Metrics>,
    qstate: Mutex<QueueState>,
    /// Held for the whole of a tick; submit/poll/cancel never take it.
    slots: Mutex<Vec<Slot>>,
    work_cv: Condvar,
}

impl Engine {
    pub fn new(model: EngineModel, cfg: EngineConfig) -> Arc<Self> {
        assert!(cfg.slots >= 1, "engine needs at least one slot");
        assert!(cfg.workers >= 1, "engine needs at least one worker");
        assert_eq!(
            model.target_lm().kernel_policy(),
            cfg.kernel_policy,
            "target model kernel policy does not match the engine config"
        );
        let slots = (0..cfg.slots)
            .map(|_| Slot {
                t_cache: model.target_lm().new_cache(),
                d_cache: model.draft().new_cache(),
                ws: Workspace::new(),
                active: None,
            })
            .collect();
        Arc::new(Self {
            cfg,
            model,
            metrics: Arc::new(Metrics::new()),
            qstate: Mutex::new(QueueState {
                queue: VecDeque::new(),
                next_id: 1,
                handles: HashMap::new(),
            }),
            slots: Mutex::new(slots),
            work_cv: Condvar::new(),
        })
    }

    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Validate + admit a request. Returns the handle clients poll.
    pub fn submit(&self, req: Request) -> Result<Arc<RequestHandle>, Rejection> {
        if let Err(msg) = self.validate(&req) {
            self.metrics.requests_rejected.inc();
            return Err(Rejection::Invalid(msg));
        }
        let mut q = self.qstate.lock().unwrap();
        if q.queue.len() >= self.cfg.max_queue {
            self.metrics.requests_rejected.inc();
            return Err(Rejection::Busy);
        }
        let id = q.next_id;
        q.next_id += 1;
        let handle = Arc::new(RequestHandle::new(id));
        q.handles.insert(id, Arc::clone(&handle));
        q.queue.push_back(Active {
            handle: Arc::clone(&handle),
            phase: Phase::Prefill(req),
            published: 0,
        });
        self.metrics.requests_submitted.inc();
        self.metrics.queue_depth.set(q.queue.len() as u64);
        drop(q);
        self.work_cv.notify_all();
        Ok(handle)
    }

    fn validate(&self, req: &Request) -> Result<(), String> {
        if req.prompt.is_empty() {
            return Err("empty prompt".into());
        }
        if req.max_new == 0 {
            return Err("max_new must be >= 1".into());
        }
        if let DecodeMode::Speculative { gamma } = req.mode {
            if !(1..MAX_GAMMA).contains(&gamma) {
                return Err(format!("gamma must be in 1..{MAX_GAMMA}"));
            }
        }
        let vocab = self.model.target_lm().cfg.vocab as u32;
        if let Some(&t) = req.prompt.iter().find(|&&t| t >= vocab) {
            return Err(format!("prompt token {t} outside vocab {vocab}"));
        }
        // The committed prefix the prompt occupies in each cache; every
        // request must leave at least one token of decode room.
        let (t_prefix, d_prefix) = match &self.model {
            EngineModel::Text { .. } => {
                if req.image_seed.is_some() {
                    return Err("image_seed on a text-only engine".into());
                }
                (req.prompt.len(), req.prompt.len())
            }
            EngineModel::Multimodal { model, .. } => {
                if req.image_seed.is_none() {
                    return Err("multimodal engine requires image_seed".into());
                }
                // Conservative draft bound: the raw-vision ablation seeds
                // the full n_img prefix.
                (
                    model.n_img() + req.prompt.len(),
                    model.n_img() + req.prompt.len(),
                )
            }
        };
        if t_prefix > self.model.target_lm().cfg.max_seq {
            return Err("prompt exceeds target context window".into());
        }
        if matches!(req.mode, DecodeMode::Speculative { .. })
            && d_prefix > self.model.draft().cfg.max_seq
        {
            return Err("prompt exceeds draft context window".into());
        }
        Ok(())
    }

    /// Look up a request's handle by id (wire-protocol clients only hold
    /// ids).
    pub fn handle(&self, id: RequestId) -> Option<Arc<RequestHandle>> {
        self.qstate.lock().unwrap().handles.get(&id).cloned()
    }

    /// Snapshot a request's status and committed tokens by id.
    pub fn poll(&self, id: RequestId) -> Option<(Status, Vec<u32>)> {
        self.handle(id).map(|h| h.snapshot())
    }

    /// Request cancellation by id. Queued requests are dropped at the next
    /// refill; running ones stop at their next block boundary. Returns
    /// false if the id was never seen or already reached a terminal state.
    ///
    /// (Going through a held [`RequestHandle`] via `handle.cancel()` is
    /// equivalent; this lookup exists for the wire protocol.)
    pub fn cancel(&self, id: RequestId) -> bool {
        let Some(handle) = self.handle(id) else {
            return false;
        };
        if matches!(handle.snapshot().0, Status::Done | Status::Cancelled) {
            return false;
        }
        handle.cancel();
        true
    }

    /// One scheduling round; returns true if any session advanced (work was
    /// done). Not re-entrant — the slots mutex serializes concurrent ticks.
    pub fn tick(&self) -> bool {
        let mut slots = self.slots.lock().unwrap();
        self.refill(&mut slots);
        let active = slots.iter().filter(|s| s.active.is_some()).count();
        self.metrics.active_sessions.set(active as u64);
        if active == 0 {
            return false;
        }
        self.metrics.scheduler_ticks.inc();
        let workers = self.cfg.workers.min(active);
        if workers <= 1 {
            for slot in slots.iter_mut() {
                self.step_slot(slot);
            }
        } else {
            // Round-robin the occupied slots across scoped workers. Shards
            // own disjoint &mut Slot sets; the models/metrics are shared
            // read-only/atomic, so this is data-race-free by construction.
            let mut shards: Vec<Vec<&mut Slot>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, slot) in slots.iter_mut().filter(|s| s.active.is_some()).enumerate() {
                shards[i % workers].push(slot);
            }
            std::thread::scope(|scope| {
                for shard in shards {
                    scope.spawn(move || {
                        for slot in shard {
                            self.step_slot(slot);
                        }
                    });
                }
            });
        }
        true
    }

    /// Drive the engine until queue and slots are empty (synchronous mode,
    /// used by benches and tests; the server runs [`Engine::tick`] on a
    /// scheduler thread instead).
    pub fn run_until_idle(&self) {
        while self.tick() || !self.qstate.lock().unwrap().queue.is_empty() {}
    }

    /// Park until work arrives or the timeout elapses (scheduler-thread
    /// idle wait).
    pub fn wait_for_work(&self, timeout: std::time::Duration) {
        let q = self.qstate.lock().unwrap();
        if q.queue.is_empty() {
            let _ = self.work_cv.wait_timeout(q, timeout).unwrap();
        }
    }

    /// Cancel everything queued or running (server shutdown drain).
    pub fn cancel_all(&self) {
        {
            let q = self.qstate.lock().unwrap();
            for a in q.queue.iter() {
                a.handle.cancel();
            }
        }
        let slots = self.slots.lock().unwrap();
        for slot in slots.iter() {
            if let Some(a) = &slot.active {
                a.handle.cancel();
            }
        }
    }

    /// Move queued requests into free slots (FIFO), dropping cancelled
    /// entries. Called at the top of every tick, so a slot freed by a
    /// completion in round N is serving the next queued request in round
    /// N+1 — no slot ever idles while the queue is non-empty.
    fn refill(&self, slots: &mut [Slot]) {
        let mut q = self.qstate.lock().unwrap();
        for slot in slots.iter_mut().filter(|s| s.active.is_none()) {
            let next = loop {
                match q.queue.pop_front() {
                    Some(a) if a.handle.is_cancel_requested() => {
                        a.handle.finish(Status::Cancelled, None);
                        self.metrics.requests_cancelled.inc();
                    }
                    other => break other,
                }
            };
            let Some(active) = next else { break };
            // The slot's caches may hold a previous request's KV; reset
            // returns them to the freshly-allocated state (bit-identical —
            // see `LayerKv::reset`) without touching the heap.
            slot.t_cache.reset();
            slot.d_cache.reset();
            active.handle.mark_running();
            slot.active = Some(active);
        }
        self.metrics.queue_depth.set(q.queue.len() as u64);
    }

    /// Advance one slot by one unit of work: prefill on the session's first
    /// turn, afterwards one speculative block (or one AR token).
    fn step_slot(&self, slot: &mut Slot) {
        let Some(active) = slot.active.as_mut() else {
            return;
        };
        if active.handle.is_cancel_requested() {
            let stats = match &active.phase {
                Phase::Spec(s) => Some(s.stats().clone()),
                _ => None,
            };
            if let Some(s) = &stats {
                self.metrics.merge_spec_stats(s);
            }
            active.handle.finish(Status::Cancelled, stats);
            self.metrics.requests_cancelled.inc();
            slot.active = None;
            return;
        }
        let started = Instant::now();
        match &mut active.phase {
            Phase::Prefill(req) => {
                let req = req.clone();
                let phase = self.prefill(&req, slot);
                let active = slot.active.as_mut().unwrap();
                active.phase = phase;
                // Publish the prefill-decided first token (TTFT = queue
                // wait + prefill).
                let tokens_now = match &active.phase {
                    Phase::Spec(s) => s.tokens().len(),
                    Phase::Ar(s) => s.tokens().len(),
                    Phase::Prefill(_) => unreachable!(),
                };
                debug_assert_eq!(tokens_now, 1);
                match &active.phase {
                    Phase::Spec(s) => active.handle.push_tokens(&s.tokens()[..tokens_now]),
                    Phase::Ar(s) => active.handle.push_tokens(&s.tokens()[..tokens_now]),
                    Phase::Prefill(_) => unreachable!(),
                }
                active.published = tokens_now;
                self.metrics.tokens_generated.add(tokens_now as u64);
                if let Some(ttft) = active.handle.ttft_ms() {
                    self.metrics.ttft_ms.record_ms(ttft);
                }
                let done = match &active.phase {
                    Phase::Spec(s) => s.is_done(),
                    Phase::Ar(s) => s.is_done(),
                    Phase::Prefill(_) => unreachable!(),
                };
                if done {
                    self.finish_slot(slot);
                }
            }
            Phase::Spec(session) => {
                let report = session.step_block(
                    self.model.target_lm(),
                    self.model.draft(),
                    &mut slot.t_cache,
                    &mut slot.d_cache,
                    &mut slot.ws,
                );
                let block_ms = started.elapsed().as_secs_f64() * 1e3;
                self.metrics.block_ms.record_ms(block_ms);
                if report.committed > 0 {
                    let new = &session.tokens()[active.published..];
                    debug_assert_eq!(new.len(), report.committed);
                    active.handle.push_tokens(new);
                    active.published += report.committed;
                    self.metrics.tokens_generated.add(report.committed as u64);
                    for _ in 0..report.committed {
                        self.metrics
                            .token_ms
                            .record_ms(block_ms / report.committed as f64);
                    }
                }
                if report.done {
                    self.finish_slot(slot);
                }
            }
            Phase::Ar(session) => {
                let report = session.step(self.model.target_lm(), &mut slot.t_cache, &mut slot.ws);
                let block_ms = started.elapsed().as_secs_f64() * 1e3;
                self.metrics.block_ms.record_ms(block_ms);
                if report.committed > 0 {
                    let new = &session.tokens()[active.published..];
                    active.handle.push_tokens(new);
                    active.published += report.committed;
                    self.metrics.tokens_generated.add(report.committed as u64);
                    self.metrics.token_ms.record_ms(block_ms);
                }
                if report.done {
                    self.finish_slot(slot);
                }
            }
        }
    }

    /// Prefill the slot's caches for `req` and build its decode session.
    fn prefill(&self, req: &Request, slot: &mut Slot) -> Phase {
        debug_assert!(slot.t_cache.is_empty() && slot.d_cache.is_empty());
        let target = self.model.target_lm();
        let draft = self.model.draft();
        let ws = &mut slot.ws;

        // Target prefill → the pending token.
        let pending = match &self.model {
            EngineModel::Text { .. } => {
                let vocab = target.cfg.vocab;
                let mut logits = ws.take(req.prompt.len() * vocab);
                target.forward_infer_ws(&req.prompt, &mut slot.t_cache, ws, &mut logits);
                let pending = argmax(&logits[(req.prompt.len() - 1) * vocab..]) as u32;
                ws.give(logits);
                pending
            }
            EngineModel::Multimodal { model, .. } => {
                let seed = req.image_seed.expect("validated at submit");
                let img = Image::synthetic(
                    &mut Rng::new(seed),
                    model.cfg.vision.n_patches,
                    model.cfg.vision.patch_dim,
                );
                model.prefill_ws(&img, &req.prompt, &mut slot.t_cache, ws)
            }
        };

        match req.mode {
            DecodeMode::Autoregressive => {
                let budget = req.max_new.min(target.cfg.max_seq + 1 - slot.t_cache.len());
                Phase::Ar(ArSession::new(target, &slot.t_cache, pending, budget))
            }
            DecodeMode::Speculative { gamma } => {
                // Draft prefill: text prompt, preceded in the multimodal
                // case by the ablation-selected vision prefix (hybrid
                // cache, same seeding as `mm_speculative_ws`).
                match &self.model {
                    EngineModel::Text { .. } => {
                        let mut d_logits = ws.take(req.prompt.len() * draft.cfg.vocab);
                        draft.forward_infer_ws(&req.prompt, &mut slot.d_cache, ws, &mut d_logits);
                        ws.give(d_logits);
                    }
                    EngineModel::Multimodal {
                        model,
                        projector,
                        ablation,
                        ..
                    } => {
                        seed_draft_prefix(
                            model,
                            Some(projector),
                            *ablation,
                            &slot.t_cache,
                            &mut slot.d_cache,
                        );
                        if !ablation.drop_text_kv {
                            let mut d_logits = ws.take(req.prompt.len() * draft.cfg.vocab);
                            draft.forward_infer_ws(
                                &req.prompt,
                                &mut slot.d_cache,
                                ws,
                                &mut d_logits,
                            );
                            ws.give(d_logits);
                        }
                    }
                }
                let budget = req
                    .max_new
                    .min(target.cfg.max_seq + 1 - slot.t_cache.len())
                    .min(draft.cfg.max_seq + 1 - slot.d_cache.len());
                Phase::Spec(SpecSession::new(
                    target,
                    draft,
                    &slot.t_cache,
                    &slot.d_cache,
                    pending,
                    budget,
                    gamma,
                ))
            }
        }
    }

    /// Completion bookkeeping; the freed slot is refilled on the next tick.
    fn finish_slot(&self, slot: &mut Slot) {
        let active = slot.active.take().expect("finishing an empty slot");
        let stats = match active.phase {
            Phase::Spec(session) => {
                let (_, stats) = session.into_parts();
                self.metrics.merge_spec_stats(&stats);
                Some(stats)
            }
            _ => None,
        };
        active.handle.finish(Status::Done, stats);
        self.metrics.requests_completed.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aasd_nn::DecoderConfig;
    use aasd_specdec::{autoregressive_greedy_with_budget_ws, speculative_greedy_with_budget_ws};

    fn text_engine(slots: usize, workers: usize, max_queue: usize) -> Arc<Engine> {
        let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
        let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
        Engine::new(
            EngineModel::Text { target, draft },
            EngineConfig {
                slots,
                workers,
                max_queue,
                kernel_policy: KernelPolicy::F32,
            },
        )
    }

    fn spec_req(prompt: Vec<u32>, max_new: usize, gamma: usize) -> Request {
        Request {
            prompt,
            max_new,
            mode: DecodeMode::Speculative { gamma },
            image_seed: None,
        }
    }

    /// A served speculative completion must equal the one-shot fused loop
    /// on the same models — losslessness survives scheduling.
    #[test]
    fn served_completion_matches_one_shot_loop() {
        let engine = text_engine(2, 1, 8);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let mut ws = Workspace::new();
        let prompt = vec![3u32, 7, 1, 9];
        let (want, want_stats) =
            speculative_greedy_with_budget_ws(&target, &draft, &prompt, 24, 4, &mut ws);

        let h = engine.submit(spec_req(prompt, 24, 4)).unwrap();
        engine.run_until_idle();
        let (status, tokens) = h.snapshot();
        assert_eq!(status, Status::Done);
        assert_eq!(tokens, want);
        assert_eq!(h.stats().unwrap(), want_stats);
        assert_eq!(engine.metrics().requests_completed.get(), 1);
        assert_eq!(engine.metrics().tokens_generated.get(), 24);
        assert!(h.ttft_ms().is_some());
    }

    /// An engine declared `Int8` serves a quantized target and its spec
    /// completions equal the one-shot fused loop on the same quantized
    /// models — losslessness survives scheduling under either kernel family.
    #[test]
    fn int8_engine_serves_losslessly() {
        let mut target = Decoder::new(DecoderConfig::tiny(40), 10);
        target.set_kernel_policy(KernelPolicy::Int8);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let engine = Engine::new(
            EngineModel::Text {
                target: Arc::new(target.clone()),
                draft: Arc::new(draft.clone()),
            },
            EngineConfig {
                kernel_policy: KernelPolicy::Int8,
                ..EngineConfig::default()
            },
        );
        let mut ws = Workspace::new();
        let prompt = vec![3u32, 7, 1, 9];
        let (want, _) = speculative_greedy_with_budget_ws(&target, &draft, &prompt, 20, 4, &mut ws);
        let h = engine.submit(spec_req(prompt, 20, 4)).unwrap();
        engine.run_until_idle();
        assert_eq!(h.snapshot(), (Status::Done, want));
    }

    /// A config that declares a kernel family the model is not actually
    /// running must be refused at construction.
    #[test]
    #[should_panic(expected = "kernel policy")]
    fn engine_rejects_mismatched_kernel_policy() {
        let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
        let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
        Engine::new(
            EngineModel::Text { target, draft },
            EngineConfig {
                kernel_policy: KernelPolicy::Int8,
                ..EngineConfig::default()
            },
        );
    }

    /// AR sessions served through the engine match the fused AR loop.
    #[test]
    fn served_ar_matches_one_shot_loop() {
        let engine = text_engine(1, 1, 8);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let mut ws = Workspace::new();
        let prompt = vec![5u32, 2, 8];
        let want = autoregressive_greedy_with_budget_ws(&target, &prompt, 15, &mut ws);
        let h = engine
            .submit(Request {
                prompt,
                max_new: 15,
                mode: DecodeMode::Autoregressive,
                image_seed: None,
            })
            .unwrap();
        engine.run_until_idle();
        assert_eq!(h.snapshot(), (Status::Done, want));
    }

    /// More requests than slots: continuous batching must finish them all,
    /// each lossless, with the queue draining FIFO.
    #[test]
    fn oversubscribed_queue_drains_losslessly() {
        let engine = text_engine(2, 1, 16);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let mut ws = Workspace::new();
        let prompts: Vec<Vec<u32>> = (0..6)
            .map(|i| vec![1 + i as u32, 7, (i * 3 % 11) as u32])
            .collect();
        let handles: Vec<_> = prompts
            .iter()
            .map(|p| {
                engine
                    .submit(spec_req(p.clone(), 12 + p[0] as usize, 3))
                    .unwrap()
            })
            .collect();
        engine.run_until_idle();
        for (p, h) in prompts.iter().zip(&handles) {
            let (want, _) = speculative_greedy_with_budget_ws(
                &target,
                &draft,
                p,
                12 + p[0] as usize,
                3,
                &mut ws,
            );
            let (status, tokens) = h.snapshot();
            assert_eq!(status, Status::Done, "request {} not done", h.id);
            assert_eq!(tokens, want, "request {} diverged", h.id);
        }
        assert_eq!(engine.metrics().requests_completed.get(), 6);
        assert_eq!(engine.metrics().queue_depth.get(), 0);
    }

    /// Admission control: submits past `max_queue` are rejected Busy, and
    /// invalid requests are rejected outright without consuming queue room.
    #[test]
    fn admission_control_rejects() {
        let engine = text_engine(1, 1, 2);
        // Valid fills.
        for _ in 0..2 {
            engine.submit(spec_req(vec![1, 2], 8, 3)).unwrap();
        }
        assert_eq!(
            engine.submit(spec_req(vec![1, 2], 8, 3)).unwrap_err(),
            Rejection::Busy
        );
        // Invalid shapes.
        for bad in [
            spec_req(vec![], 8, 3),
            spec_req(vec![1], 0, 3),
            spec_req(vec![1], 8, 0),
            spec_req(vec![1], 8, MAX_GAMMA),
            spec_req(vec![99], 8, 3),     // outside vocab 40
            spec_req(vec![0; 200], 8, 3), // past max_seq 128
            Request {
                prompt: vec![1],
                max_new: 4,
                mode: DecodeMode::Autoregressive,
                image_seed: Some(7),
            },
        ] {
            assert!(
                matches!(engine.submit(bad.clone()), Err(Rejection::Invalid(_))),
                "{bad:?} should be invalid"
            );
        }
        assert_eq!(engine.metrics().requests_rejected.get(), 8);
        engine.run_until_idle();
        assert_eq!(engine.metrics().requests_completed.get(), 2);
    }

    /// Cancelling a running request stops it at a block boundary, keeps the
    /// committed prefix readable, and frees the slot for the next request.
    #[test]
    fn cancel_frees_slot_and_keeps_prefix() {
        let engine = text_engine(1, 1, 8);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let mut ws = Workspace::new();
        let h1 = engine.submit(spec_req(vec![3, 7, 1, 9], 40, 3)).unwrap();
        let h2 = engine.submit(spec_req(vec![5, 2], 10, 3)).unwrap();
        // A few blocks of progress, then cancel mid-flight.
        for _ in 0..3 {
            engine.tick();
        }
        assert!(engine.cancel(h1.id));
        engine.run_until_idle();
        let (s1, t1) = h1.snapshot();
        assert_eq!(s1, Status::Cancelled);
        assert!(!t1.is_empty() && t1.len() < 40, "partial prefix expected");
        // The committed prefix must be a prefix of the true completion.
        let (want, _) =
            speculative_greedy_with_budget_ws(&target, &draft, &[3, 7, 1, 9], 40, 3, &mut ws);
        assert_eq!(t1[..], want[..t1.len()]);
        // The second request still completes losslessly on the reused slot.
        let (want2, _) =
            speculative_greedy_with_budget_ws(&target, &draft, &[5, 2], 10, 3, &mut ws);
        assert_eq!(h2.snapshot(), (Status::Done, want2));
        assert_eq!(engine.metrics().requests_cancelled.get(), 1);
        assert!(!engine.cancel(h1.id), "finished ids cannot be re-cancelled");
    }

    /// Cancelling while still queued drops the request at refill without it
    /// ever occupying a slot.
    #[test]
    fn cancel_queued_request_never_runs() {
        let engine = text_engine(1, 1, 8);
        let h1 = engine.submit(spec_req(vec![1, 2, 3], 30, 3)).unwrap();
        let h2 = engine.submit(spec_req(vec![4, 5], 10, 3)).unwrap();
        assert!(engine.cancel(h2.id));
        engine.run_until_idle();
        assert_eq!(h1.snapshot().0, Status::Done);
        let (s2, t2) = h2.snapshot();
        assert_eq!(s2, Status::Cancelled);
        assert!(t2.is_empty());
        assert!(h2.ttft_ms().is_none());
    }

    /// Slot reuse: many sequential requests through one slot must all be
    /// lossless (reset caches behave like fresh ones) and the workspace
    /// pool must stop growing after warmup.
    #[test]
    fn slot_reuse_is_lossless_and_allocation_stable() {
        let engine = text_engine(1, 1, 16);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let mut ws = Workspace::new();
        for round in 0..3 {
            let prompt = vec![2 + round as u32, 9, 4];
            let (want, _) =
                speculative_greedy_with_budget_ws(&target, &draft, &prompt, 20, 5, &mut ws);
            let h = engine.submit(spec_req(prompt, 20, 5)).unwrap();
            engine.run_until_idle();
            assert_eq!(h.snapshot(), (Status::Done, want), "round {round}");
        }
        let slots = engine.slots.lock().unwrap();
        assert!(slots[0].active.is_none(), "slot should be idle after drain");
        assert_eq!(engine.metrics.requests_completed.get(), 3);
    }

    /// Multimodal engine: served hybrid-cache sessions match
    /// `mm_speculative_ws` / `mm_autoregressive_ws` exactly.
    #[test]
    fn multimodal_engine_is_lossless() {
        use aasd_mm::{draft_for, mm_autoregressive_ws, mm_speculative_ws, LlavaSimConfig};
        let cfg = LlavaSimConfig::tiny(40, 96);
        let model = Arc::new(LlavaSim::new(cfg.clone(), 0xB0));
        let draft = Arc::new(draft_for(&cfg, 0xB1));
        let projector = Arc::new(KvProjector::new(
            0xB2,
            draft.cfg.n_layers,
            cfg.lm.n_layers,
            cfg.n_img(),
            cfg.k_slots(),
        ));
        let engine = Engine::new(
            EngineModel::Multimodal {
                model: Arc::clone(&model),
                draft: Arc::clone(&draft),
                projector: Arc::clone(&projector),
                ablation: Ablation::projector(),
            },
            EngineConfig {
                slots: 2,
                workers: 1,
                max_queue: 8,
                kernel_policy: KernelPolicy::F32,
            },
        );
        let mut ws = Workspace::new();
        let prompt = vec![3u32, 11, 25, 7];
        let seed = 5u64;
        let img = Image::synthetic(
            &mut Rng::new(seed),
            cfg.vision.n_patches,
            cfg.vision.patch_dim,
        );
        let (want_spec, _) = mm_speculative_ws(
            &model,
            &draft,
            Some(&projector),
            Ablation::projector(),
            &img,
            &prompt,
            20,
            3,
            &mut ws,
        );
        let want_ar = mm_autoregressive_ws(&model, &img, &prompt, 20, &mut ws);

        let hs = engine
            .submit(Request {
                prompt: prompt.clone(),
                max_new: 20,
                mode: DecodeMode::Speculative { gamma: 3 },
                image_seed: Some(seed),
            })
            .unwrap();
        let ha = engine
            .submit(Request {
                prompt,
                max_new: 20,
                mode: DecodeMode::Autoregressive,
                image_seed: Some(seed),
            })
            .unwrap();
        engine.run_until_idle();
        assert_eq!(hs.snapshot(), (Status::Done, want_spec));
        assert_eq!(ha.snapshot(), (Status::Done, want_ar));
        // Text-engine-only request shape rejected on mm engine.
        assert!(matches!(
            engine.submit(spec_req(vec![1], 4, 2)),
            Err(Rejection::Invalid(_))
        ));
    }
}
