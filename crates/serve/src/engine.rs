//! The serving engine: a block-paged KV pool, FIFO admission in units of
//! free blocks, a shared-prefix vision cache, and the block-granular
//! continuous-batching scheduler.
//!
//! ## Architecture
//!
//! * **Paged KV pool** — the engine owns one pre-allocated
//!   [`KvPool`](aasd_nn::KvPool) per model (target, draft). A session no
//!   longer owns a `max_seq`-sized cache pair for its whole life: at
//!   admission it leases exactly the blocks its `prompt + budget` needs
//!   (`prefix + budget − 1` positions — the last emitted token is never fed
//!   back), and the blocks return to the pool the moment it finishes. Short
//!   requests stop paying for long-request memory, which is what lets the
//!   same arena serve several times the old slot count (the pool test in
//!   `aasd-nn` pins ≥ 4×).
//! * **Admission** — requests wait in a FIFO behind a small mutex with a
//!   hard cap (`cfg.max_queue`). A queue head only moves into a slot when
//!   **both pools can lease its plan**; otherwise it waits head-of-line
//!   (FIFO order is what makes served streams worker-count-independent),
//!   evicting cold vision-cache entries first if those would free enough
//!   blocks.
//! * **Vision cache** — multimodal engines keep an LRU map from image
//!   *content hash* to (a) the target's vision-prefix KV blocks and (b) the
//!   draft's seeded vision rows. A hit leases the session's target cache
//!   *on top of* the cached prefix (copy-on-write block sharing — full
//!   blocks are shared zero-copy, a partial tail is copied) and skips the
//!   vision tower, connector, and `KvProjector` entirely. Hit and miss
//!   produce bit-identical session state, so caching can never change a
//!   token stream, only its latency.
//! * **Scheduler** — [`Engine::tick`] refills free slots from the queue,
//!   then advances every active session one speculative block (or one AR
//!   token), round-robin across `cfg.workers` scoped threads. Sessions own
//!   their leases and scratch, so worker count changes interleaving but
//!   never tokens (pinned by the root determinism test).
//! * **Adaptive γ** — with `cfg.adaptive_gamma`, every speculative session
//!   carries an [`AdaptiveGamma`] controller that re-picks its depth each
//!   block from its own running acceptance rate. Greedy verification is
//!   lossless under any γ schedule, so this moves α/τ and wall-clock only.
//!
//! Losslessness survives scheduling by construction: the per-block state
//! machine a slot steps ([`SpecSession`]) is the *same* one the one-shot
//! fused loops drive, and its lease is sized so the capacity bound is
//! exactly the budget bound — a served completion is token-identical to a
//! single-request `speculative_greedy_seeded_ws` run with the same models
//! and prompt.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use aasd_mm::{seed_draft_prefix, Ablation, Image, KvProjector, LlavaSim};
use aasd_nn::{Decoder, KernelPolicy, KvCache, KvPool};
use aasd_specdec::{
    AcceptanceCalibrator, AdaptiveGamma, ArSession, DraftAhead, DraftStep, SpecSession, SpscRing,
    TreeConfig, TreeSession, VerifyHalf, CONFIDENCE_STOP, MAX_GAMMA,
};
use aasd_tensor::{argmax, Rng, Tensor, Workspace};

use crate::metrics::Metrics;
use crate::request::{DecodeMode, Request, RequestHandle, RequestId, Status};

/// Upper bound on waiting for a draft thread to acknowledge `stop` before
/// detaching it. `notify_draft` bumps the park generation, so a parked
/// draft wakes immediately and real joins complete in microseconds; the
/// bound only guards against a wedged thread.
const DRAFT_JOIN_TIMEOUT: Duration = Duration::from_secs(5);

/// The model bundle an engine serves. One engine serves one family; the
/// text and multimodal paths differ only in prefill and draft-cache
/// seeding — the per-block scheduling is identical.
pub enum EngineModel {
    Text {
        target: Arc<Decoder>,
        draft: Arc<Decoder>,
    },
    /// LlavaSim target with a hybrid-cache draft: the draft's vision prefix
    /// is seeded per `ablation` (learned [`KvProjector`] rows by default)
    /// before the text prefill, exactly like `mm_speculative_ws`.
    Multimodal {
        model: Arc<LlavaSim>,
        draft: Arc<Decoder>,
        projector: Arc<KvProjector>,
        ablation: Ablation,
    },
}

impl EngineModel {
    fn target_lm(&self) -> &Decoder {
        match self {
            EngineModel::Text { target, .. } => target,
            EngineModel::Multimodal { model, .. } => &model.lm,
        }
    }

    fn draft(&self) -> &Decoder {
        match self {
            EngineModel::Text { draft, .. } | EngineModel::Multimodal { draft, .. } => draft,
        }
    }

    /// Owning handle to the draft model, for threads that outlive a
    /// borrow (the pipeline's per-session draft workers).
    fn draft_arc(&self) -> Arc<Decoder> {
        match self {
            EngineModel::Text { draft, .. } | EngineModel::Multimodal { draft, .. } => {
                Arc::clone(draft)
            }
        }
    }

    fn n_img(&self) -> usize {
        match self {
            EngineModel::Text { .. } => 0,
            EngineModel::Multimodal { model, .. } => model.n_img(),
        }
    }

    /// Vision-prefix rows the draft cache is seeded with, per ablation.
    fn d_vision_prefix(&self) -> usize {
        match self {
            EngineModel::Text { .. } => 0,
            EngineModel::Multimodal {
                model,
                projector,
                ablation,
                ..
            } => {
                if ablation.drop_vision_kv {
                    0
                } else if ablation.use_vision_projector {
                    projector.k_slots
                } else {
                    model.n_img()
                }
            }
        }
    }
}

/// Scheduler/admission knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Concurrent sessions the scheduler will step per tick. Memory no
    /// longer scales with this alone — sessions lease KV blocks from the
    /// shared pools, so many short requests fit where few long ones would.
    pub slots: usize,
    /// Worker threads a tick fans sessions across (`std::thread::scope`).
    /// 1 steps every session inline with zero spawn overhead.
    pub workers: usize,
    /// Admission cap: a submit that would push the queue past this is
    /// rejected with [`Rejection::Busy`].
    pub max_queue: usize,
    /// Kernel family the **target** model's fused decode path must be
    /// running (the draft may differ — policies are per model). The engine
    /// holds its models behind `Arc`, so the policy is applied by the model
    /// owner before construction; [`Engine::new`] asserts the model matches
    /// this declaration so a config typo cannot silently serve the wrong
    /// kernels.
    pub kernel_policy: KernelPolicy,
    /// Positions per KV block in both pools.
    pub block_size: usize,
    /// Target-pool arena size in blocks; 0 = auto (`slots` full-length
    /// sessions plus room for `vision_cache_entries` cached prefixes), which
    /// reproduces the old slot-owns-its-cache memory envelope exactly.
    pub t_pool_blocks: usize,
    /// Draft-pool arena size in blocks; 0 = auto (as above).
    pub d_pool_blocks: usize,
    /// Max distinct images the shared-prefix vision cache retains (LRU
    /// beyond that). 0 disables caching. Ignored by text engines.
    pub vision_cache_entries: usize,
    /// Retune each speculative session's γ per block from its running
    /// acceptance rate ([`AdaptiveGamma`]); the request's γ seeds the
    /// session but stops being a fixed depth. Off by default so existing
    /// deployments keep byte-identical performance profiles.
    pub adaptive_gamma: bool,
    /// Run the asynchronous draft/target pipeline instead of the
    /// round-robin tick scheduler: every speculative session gets a
    /// dedicated draft thread that free-runs ahead through a lock-free
    /// SPSC ring while `workers` target threads verify and commit
    /// ([`Engine::run_pipeline`]). Commit authority stays with the verify
    /// leg, so served streams are byte-identical to the synchronous path;
    /// only throughput, TTFT, and the per-block statistics change. Off by
    /// default — the tick scheduler remains the reference.
    pub async_pipeline: bool,
    /// Serve speculative requests with **tree-structured** speculation
    /// ([`TreeSession`]): the draft grows a token tree (branching factor 2,
    /// neutral acceptance calibrator), the target scores it in one
    /// tree-attention pass, and the longest accepted root-to-leaf path is
    /// committed. Lossless — served streams still equal the AR reference —
    /// but the per-block statistics change, so it is off by default (the
    /// linear session stays the property-tested reference). Sync scheduler
    /// only; incompatible with `async_pipeline`.
    pub tree_speculation: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            slots: 4,
            workers: 1,
            max_queue: 64,
            kernel_policy: KernelPolicy::F32,
            block_size: 16,
            t_pool_blocks: 0,
            d_pool_blocks: 0,
            vision_cache_entries: 8,
            adaptive_gamma: false,
            async_pipeline: false,
            tree_speculation: false,
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// Admission control: queue at capacity. Retry later.
    Busy,
    /// The request can never run on this engine (bad γ, empty prompt,
    /// prompt past the context window, image on a text engine, …).
    Invalid(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Busy => write!(f, "queue full"),
            Rejection::Invalid(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

/// The decode state machine a slot is driving.
enum Phase {
    /// Admitted but not yet prefilled; prefill happens on the slot's first
    /// scheduling turn so TTFT honestly includes queue wait + prefill.
    Prefill(Request),
    Spec(SpecSession),
    Tree(TreeSession),
    Ar(ArSession),
}

/// How the session's vision prefix gets into its target cache.
enum VisionPlan {
    /// Text engine: no vision leg.
    None,
    /// No cached prefix existed at admission: run the full vision prefill,
    /// then (best-effort) populate the cache for future sessions.
    Miss { image: Image, hash: u64 },
    /// The session's target lease was built on the cached prefix blocks —
    /// prefill skips the vision tower, connector, and projector.
    Hit { hash: u64 },
}

/// An admitted request bound to its leased KV blocks.
struct Active {
    handle: Arc<RequestHandle>,
    phase: Phase,
    /// Tokens already published to the handle (monotone cursor into the
    /// session's output).
    published: usize,
    t_cache: KvCache,
    /// Present for speculative sessions only.
    d_cache: Option<KvCache>,
    vision: VisionPlan,
}

/// One scheduler slot: scratch allocated once; the KV leases travel with
/// the [`Active`] session, not the slot.
struct Slot {
    ws: Workspace,
    active: Option<Active>,
}

/// Wake-up channel for the async pipeline: target workers park here when
/// a full sweep makes no progress; submits, draft production, and session
/// completion all notify.
struct PipeSignal {
    lock: Mutex<()>,
    cv: Condvar,
}

impl PipeSignal {
    fn new() -> Self {
        Self {
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn notify(&self) {
        let _g = self.lock.lock().unwrap();
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) {
        let g = self.lock.lock().unwrap();
        let _ = self.cv.wait_timeout(g, timeout).unwrap();
    }
}

/// Everything a session's draft thread shares with the verify side: the
/// token ring plus control plane. The verify leg owns `depth_cap` (it
/// re-publishes its depth hint each block) and `stop`; the draft thread
/// owns `exited`.
struct DraftLink {
    ring: SpscRing,
    stop: AtomicBool,
    depth_cap: AtomicUsize,
    exited: AtomicBool,
    /// True while the draft is parked at the depth cap / KV capacity —
    /// it cannot deepen the chain, so the verify leg should consume
    /// whatever depth the ring holds instead of waiting for more.
    stalled: AtomicBool,
    /// Park point for the draft thread, an eventcount: the draft samples
    /// the generation before re-checking its condition (a `step` call)
    /// and sleeps only if no notify landed in between, so wakeups cannot
    /// be lost and the sleep needs **no timeout** — a parked draft costs
    /// zero context switches until verify pops, rolls back, or stops it.
    park: Mutex<u64>,
    cv: Condvar,
}

impl DraftLink {
    fn new(depth_cap: usize) -> Self {
        Self {
            ring: SpscRing::new(MAX_GAMMA),
            stop: AtomicBool::new(false),
            depth_cap: AtomicUsize::new(depth_cap),
            exited: AtomicBool::new(false),
            stalled: AtomicBool::new(false),
            park: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn notify_draft(&self) {
        *self.park.lock().unwrap() += 1;
        self.cv.notify_all();
    }

    /// Generation to sample before checking whether to park.
    fn park_generation(&self) -> u64 {
        *self.park.lock().unwrap()
    }

    /// Sleep until the generation moves past `seen` (i.e. a notify that
    /// the sampled condition check could not have observed).
    fn park_until_notified(&self, seen: u64) {
        let mut gen = self.park.lock().unwrap();
        while *gen == seen && !self.stop.load(Ordering::Acquire) {
            gen = self.cv.wait(gen).unwrap();
        }
    }
}

/// The decode state machine an async slot is driving. Speculative
/// sessions with ≥ 3 tokens of budget carry a live draft thread; smaller
/// budgets never need a proposal (pending commit + at most one plain
/// decode), so none is spawned.
enum AsyncPhase {
    Prefill(Request),
    Spec {
        verify: VerifyHalf,
        link: Arc<DraftLink>,
        draft_join: Option<std::thread::JoinHandle<()>>,
    },
    Ar(ArSession),
}

/// An admitted request in the async pipeline. The target lease stays
/// here; the draft lease moves into the draft thread when one is spawned
/// (and is released by that thread's exit).
struct AsyncActive {
    handle: Arc<RequestHandle>,
    phase: AsyncPhase,
    published: usize,
    t_cache: KvCache,
    /// Draft lease between admission and draft-thread spawn (and for the
    /// no-thread budgets, until completion).
    d_cache: Option<KvCache>,
    vision: VisionPlan,
    /// Idle-stall edge detector: counts transitions, not poll iterations.
    was_idle: bool,
}

/// One async pipeline slot: a mutex instead of the sync scheduler's
/// whole-vector lock, so free-running workers claim sessions
/// independently (`try_lock` skips slots another worker is stepping).
struct AsyncSlot {
    ws: Workspace,
    active: Option<AsyncActive>,
}

/// A request waiting for blocks: no leases held while queued.
struct Queued {
    handle: Arc<RequestHandle>,
    req: Request,
}

struct QueueState {
    queue: VecDeque<Queued>,
    next_id: RequestId,
    /// Every admitted request's handle, kept for the engine's lifetime so
    /// clients can poll by id after completion (the handle is a few dozen
    /// bytes plus the token vector; an engine serving a bounded bench run
    /// never accumulates enough to matter).
    handles: HashMap<RequestId, Arc<RequestHandle>>,
}

/// One cached image: the target's vision-prefix blocks (shared CoW into
/// sessions) and the draft's seeded vision rows (appended verbatim).
struct VisionEntry {
    t_prefix: KvCache,
    /// Per draft layer: `(keys, values)`, each `[d_vision_prefix, dim]`.
    /// `None` when the creating request was autoregressive (no draft rows
    /// were computed); spec hits then fall back to re-seeding from the
    /// shared target prefix.
    d_seed: Option<Vec<(Tensor, Tensor)>>,
    last_used: u64,
}

#[derive(Default)]
struct VisionCache {
    entries: HashMap<u64, VisionEntry>,
    clock: u64,
}

impl VisionCache {
    /// Evict the least-recently-used entry, skipping `keep`. Returns false
    /// if nothing was evictable.
    ///
    /// Entries whose prefix blocks are currently CoW-shared into a live
    /// session's lease are skipped: dropping such an entry returns **zero**
    /// blocks to the pool (the session still pins them via `Arc`), so
    /// evicting it under block pressure would destroy a reusable prefix
    /// without helping the failed lease at all — the admission loop would
    /// strip the whole cache and still come up empty-handed.
    fn evict_coldest(&mut self, keep: Option<u64>) -> bool {
        let victim = self
            .entries
            .iter()
            .filter(|(h, _)| Some(**h) != keep)
            .filter(|(_, e)| !(0..e.t_prefix.n_blocks()).any(|b| e.t_prefix.block_is_shared(b)))
            .min_by_key(|(_, e)| e.last_used)
            .map(|(h, _)| *h);
        match victim {
            Some(h) => {
                self.entries.remove(&h);
                true
            }
            None => false,
        }
    }
}

/// The lease a request needs, computed from the request alone (before any
/// forward runs) so admission can reason in blocks.
struct LeasePlan {
    /// Committed positions the target cache will hold after prefill.
    t_prefix: usize,
    /// Ditto for the draft (0 when no draft cache is needed).
    d_prefix: usize,
    /// Decode budget the session will be constructed with.
    budget: usize,
    /// Target lease capacity: `t_prefix + budget − 1` — the deepest the
    /// cache can ever grow, because the final emitted token is never fed
    /// back. With this exact capacity the session's per-block room bound
    /// collapses onto its budget bound, so γ selection (and therefore the
    /// stream AND the stats) match the one-shot loop on full-size caches.
    t_capacity: usize,
    d_capacity: Option<usize>,
}

/// The multi-session speculative-decoding engine.
pub struct Engine {
    cfg: EngineConfig,
    model: EngineModel,
    metrics: Arc<Metrics>,
    t_pool: KvPool,
    d_pool: KvPool,
    vision_cache: Mutex<VisionCache>,
    qstate: Mutex<QueueState>,
    /// Held for the whole of a tick; submit/poll/cancel never take it.
    slots: Mutex<Vec<Slot>>,
    work_cv: Condvar,
    /// Async-pipeline slots (`cfg.async_pipeline`); per-slot locks so
    /// free-running workers step disjoint sessions without a global lock.
    pslots: Vec<Mutex<AsyncSlot>>,
    /// Occupied async slots; admission bumps it under the qstate lock so
    /// the until-idle exit check cannot race a queue→slot transfer.
    pipe_active: AtomicUsize,
    pipe_signal: Arc<PipeSignal>,
}

impl Engine {
    pub fn new(model: EngineModel, cfg: EngineConfig) -> Arc<Self> {
        assert!(cfg.slots >= 1, "engine needs at least one slot");
        assert!(cfg.workers >= 1, "engine needs at least one worker");
        assert!(cfg.block_size >= 1, "block_size must be >= 1");
        assert!(
            !(cfg.tree_speculation && cfg.async_pipeline),
            "tree_speculation runs on the sync scheduler only"
        );
        assert_eq!(
            model.target_lm().kernel_policy(),
            cfg.kernel_policy,
            "target model kernel policy does not match the engine config"
        );
        let bs = cfg.block_size;
        let vision_blocks = if matches!(model, EngineModel::Multimodal { .. }) {
            cfg.vision_cache_entries * model.n_img().div_ceil(bs).max(1)
        } else {
            0
        };
        let auto = |max_seq: usize| cfg.slots * max_seq.div_ceil(bs).max(1);
        let t_blocks = if cfg.t_pool_blocks == 0 {
            auto(model.target_lm().cfg.max_seq) + vision_blocks
        } else {
            cfg.t_pool_blocks
        };
        let d_blocks = if cfg.d_pool_blocks == 0 {
            auto(model.draft().cfg.max_seq)
        } else {
            cfg.d_pool_blocks
        };
        let target = model.target_lm();
        let draft = model.draft();
        let t_pool = KvPool::new(target.cfg.n_layers, target.cfg.dim, bs, t_blocks);
        let d_pool = KvPool::new(draft.cfg.n_layers, draft.cfg.dim, bs, d_blocks);
        let slots = (0..cfg.slots)
            .map(|_| Slot {
                ws: Workspace::new(),
                active: None,
            })
            .collect();
        let pslots = (0..cfg.slots)
            .map(|_| {
                Mutex::new(AsyncSlot {
                    ws: Workspace::new(),
                    active: None,
                })
            })
            .collect();
        let engine = Arc::new(Self {
            cfg,
            model,
            metrics: Arc::new(Metrics::new()),
            t_pool,
            d_pool,
            vision_cache: Mutex::new(VisionCache::default()),
            qstate: Mutex::new(QueueState {
                queue: VecDeque::new(),
                next_id: 1,
                handles: HashMap::new(),
            }),
            slots: Mutex::new(slots),
            work_cv: Condvar::new(),
            pslots,
            pipe_active: AtomicUsize::new(0),
            pipe_signal: Arc::new(PipeSignal::new()),
        });
        engine
            .metrics
            .kv_free_blocks_target
            .set(engine.t_pool.free_blocks() as u64);
        engine
            .metrics
            .kv_free_blocks_draft
            .set(engine.d_pool.free_blocks() as u64);
        engine
    }

    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Validate + admit a request. Returns the handle clients poll.
    pub fn submit(&self, req: Request) -> Result<Arc<RequestHandle>, Rejection> {
        if let Err(msg) = self.validate(&req) {
            self.metrics.requests_rejected.inc();
            return Err(Rejection::Invalid(msg));
        }
        let mut q = self.qstate.lock().unwrap();
        if q.queue.len() >= self.cfg.max_queue {
            self.metrics.requests_rejected.inc();
            return Err(Rejection::Busy);
        }
        let id = q.next_id;
        q.next_id += 1;
        let handle = Arc::new(RequestHandle::new(id));
        q.handles.insert(id, Arc::clone(&handle));
        q.queue.push_back(Queued {
            handle: Arc::clone(&handle),
            req,
        });
        self.metrics.requests_submitted.inc();
        self.metrics.queue_depth.set(q.queue.len() as u64);
        drop(q);
        self.work_cv.notify_all();
        self.pipe_signal.notify();
        Ok(handle)
    }

    /// Size the leases a request needs; assumes the request validated.
    fn lease_plan(&self, req: &Request) -> LeasePlan {
        let target = self.model.target_lm();
        let draft = self.model.draft();
        let t_prefix = self.model.n_img() + req.prompt.len();
        match req.mode {
            DecodeMode::Autoregressive => {
                let budget = req.max_new.min(target.cfg.max_seq + 1 - t_prefix);
                LeasePlan {
                    t_prefix,
                    d_prefix: 0,
                    budget,
                    t_capacity: t_prefix + budget - 1,
                    d_capacity: None,
                }
            }
            DecodeMode::Speculative { .. } => {
                let drop_text = match &self.model {
                    EngineModel::Text { .. } => false,
                    EngineModel::Multimodal { ablation, .. } => ablation.drop_text_kv,
                };
                let d_prefix =
                    self.model.d_vision_prefix() + if drop_text { 0 } else { req.prompt.len() };
                let budget = req
                    .max_new
                    .min(target.cfg.max_seq + 1 - t_prefix)
                    .min(draft.cfg.max_seq + 1 - d_prefix);
                LeasePlan {
                    t_prefix,
                    d_prefix,
                    budget,
                    t_capacity: t_prefix + budget - 1,
                    d_capacity: Some(d_prefix + budget - 1),
                }
            }
        }
    }

    fn validate(&self, req: &Request) -> Result<(), String> {
        if req.prompt.is_empty() {
            return Err("empty prompt".into());
        }
        if req.max_new == 0 {
            return Err("max_new must be >= 1".into());
        }
        if let DecodeMode::Speculative { gamma } = req.mode {
            if !(1..MAX_GAMMA).contains(&gamma) {
                return Err(format!("gamma must be in 1..{MAX_GAMMA}"));
            }
        }
        let vocab = self.model.target_lm().cfg.vocab as u32;
        if let Some(&t) = req.prompt.iter().find(|&&t| t >= vocab) {
            return Err(format!("prompt token {t} outside vocab {vocab}"));
        }
        // The committed prefix the prompt occupies in each cache; every
        // request must leave at least one token of decode room. The draft
        // bound stays conservative (full n_img prefix) so admission does
        // not depend on the ablation switches.
        let (t_prefix, d_prefix) = match &self.model {
            EngineModel::Text { .. } => {
                if req.image_seed.is_some() {
                    return Err("image_seed on a text-only engine".into());
                }
                (req.prompt.len(), req.prompt.len())
            }
            EngineModel::Multimodal { model, .. } => {
                if req.image_seed.is_none() {
                    return Err("multimodal engine requires image_seed".into());
                }
                (
                    model.n_img() + req.prompt.len(),
                    model.n_img() + req.prompt.len(),
                )
            }
        };
        if t_prefix > self.model.target_lm().cfg.max_seq {
            return Err("prompt exceeds target context window".into());
        }
        if matches!(req.mode, DecodeMode::Speculative { .. })
            && d_prefix > self.model.draft().cfg.max_seq
        {
            return Err("prompt exceeds draft context window".into());
        }
        // Admission reasons in blocks: a request whose lease can never be
        // satisfied even by an empty pool must be refused up front, or it
        // would wedge the queue head forever.
        let plan = self.lease_plan(req);
        if self.t_pool.blocks_for(plan.t_capacity) > self.t_pool.total_blocks() {
            return Err("request KV footprint exceeds the target pool".into());
        }
        if let Some(dc) = plan.d_capacity {
            if self.d_pool.blocks_for(dc) > self.d_pool.total_blocks() {
                return Err("request KV footprint exceeds the draft pool".into());
            }
        }
        Ok(())
    }

    /// Look up a request's handle by id (wire-protocol clients only hold
    /// ids).
    pub fn handle(&self, id: RequestId) -> Option<Arc<RequestHandle>> {
        self.qstate.lock().unwrap().handles.get(&id).cloned()
    }

    /// Snapshot a request's status and committed tokens by id.
    pub fn poll(&self, id: RequestId) -> Option<(Status, Vec<u32>)> {
        self.handle(id).map(|h| h.snapshot())
    }

    /// Request cancellation by id. Queued requests are dropped at the next
    /// refill; running ones stop at their next block boundary. Returns
    /// false if the id was never seen or already reached a terminal state.
    ///
    /// (Going through a held [`RequestHandle`] via `handle.cancel()` is
    /// equivalent; this lookup exists for the wire protocol.)
    pub fn cancel(&self, id: RequestId) -> bool {
        let Some(handle) = self.handle(id) else {
            return false;
        };
        if matches!(handle.snapshot().0, Status::Done | Status::Cancelled) {
            return false;
        }
        handle.cancel();
        true
    }

    /// One scheduling round; returns true if any session advanced (work was
    /// done). Not re-entrant — the slots mutex serializes concurrent ticks.
    pub fn tick(&self) -> bool {
        let mut slots = self.slots.lock().unwrap();
        self.refill(&mut slots);
        let active = slots.iter().filter(|s| s.active.is_some()).count();
        self.metrics.active_sessions.set(active as u64);
        if active == 0 {
            return false;
        }
        self.metrics.scheduler_ticks.inc();
        let workers = self.cfg.workers.min(active);
        if workers <= 1 {
            for slot in slots.iter_mut() {
                self.step_slot(slot);
            }
        } else {
            // Round-robin the occupied slots across scoped workers. Shards
            // own disjoint &mut Slot sets; the models/metrics are shared
            // read-only/atomic, so this is data-race-free by construction.
            let mut shards: Vec<Vec<&mut Slot>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, slot) in slots.iter_mut().filter(|s| s.active.is_some()).enumerate() {
                shards[i % workers].push(slot);
            }
            std::thread::scope(|scope| {
                for shard in shards {
                    scope.spawn(move || {
                        for slot in shard {
                            self.step_slot(slot);
                        }
                    });
                }
            });
        }
        true
    }

    /// Drive the engine until queue and slots are empty (synchronous mode,
    /// used by benches and tests; the server runs [`Engine::tick`] on a
    /// scheduler thread instead). With `cfg.async_pipeline` this runs the
    /// free-running pipeline to completion instead.
    pub fn run_until_idle(&self) {
        if self.cfg.async_pipeline {
            self.run_pipeline(None);
        } else {
            while self.tick() || !self.qstate.lock().unwrap().queue.is_empty() {}
        }
    }

    /// Park until work arrives or the timeout elapses (scheduler-thread
    /// idle wait).
    pub fn wait_for_work(&self, timeout: std::time::Duration) {
        let q = self.qstate.lock().unwrap();
        if q.queue.is_empty() {
            let _ = self.work_cv.wait_timeout(q, timeout).unwrap();
        }
    }

    /// Cancel everything queued or running (server shutdown drain). Queued
    /// requests are finished `Cancelled` **immediately** — they hold no
    /// leases and will never get a scheduling turn once the server stops
    /// ticking — so the queue-depth gauge drops to 0 here rather than
    /// lingering at its pre-shutdown value. Running sessions stop at their
    /// next block boundary as before.
    pub fn cancel_all(&self) {
        {
            let mut q = self.qstate.lock().unwrap();
            while let Some(qd) = q.queue.pop_front() {
                qd.handle.cancel();
                qd.handle.finish(Status::Cancelled, None);
                self.metrics.requests_cancelled.inc();
            }
            self.metrics.queue_depth.set(0);
        }
        let slots = self.slots.lock().unwrap();
        for slot in slots.iter() {
            if let Some(a) = &slot.active {
                a.handle.cancel();
            }
        }
        drop(slots);
        for slot in &self.pslots {
            if let Some(a) = &slot.lock().unwrap().active {
                a.handle.cancel();
            }
        }
    }

    /// Move queued requests into free slots (FIFO), dropping cancelled
    /// entries. Called at the top of every tick, so a slot freed by a
    /// completion in round N is serving the next queued request in round
    /// N+1 — no slot ever idles while the queue is non-empty *and* the
    /// pools can cover its lease. When they cannot, the head waits —
    /// skipping ahead would break the FIFO order that makes served streams
    /// independent of worker count.
    fn refill(&self, slots: &mut [Slot]) {
        let mut q = self.qstate.lock().unwrap();
        'slots: for slot in slots.iter_mut().filter(|s| s.active.is_none()) {
            let next = loop {
                match q.queue.pop_front() {
                    Some(qd) if qd.handle.is_cancel_requested() => {
                        qd.handle.finish(Status::Cancelled, None);
                        self.metrics.requests_cancelled.inc();
                    }
                    other => break other,
                }
            };
            let Some(queued) = next else { break };
            match self.admit(&queued.req) {
                Some((t_cache, d_cache, vision)) => {
                    queued.handle.mark_running();
                    slot.active = Some(Active {
                        handle: queued.handle,
                        phase: Phase::Prefill(queued.req),
                        published: 0,
                        t_cache,
                        d_cache,
                        vision,
                    });
                }
                None => {
                    // Not enough free blocks even after eviction: the head
                    // waits for a running session to finish.
                    q.queue.push_front(queued);
                    break 'slots;
                }
            }
        }
        self.metrics.queue_depth.set(q.queue.len() as u64);
        self.metrics
            .kv_free_blocks_target
            .set(self.t_pool.free_blocks() as u64);
        self.metrics
            .kv_free_blocks_draft
            .set(self.d_pool.free_blocks() as u64);
    }

    /// Try to lease everything `req` needs. On success the caches are live
    /// (blocks deducted); on failure everything acquired is returned and
    /// the caller leaves the request queued.
    fn admit(&self, req: &Request) -> Option<(KvCache, Option<KvCache>, VisionPlan)> {
        let plan = self.lease_plan(req);
        match &self.model {
            EngineModel::Text { .. } => {
                let t_cache = self.t_pool.try_lease(plan.t_capacity)?;
                let d_cache = match plan.d_capacity {
                    Some(dc) => Some(self.d_pool.try_lease(dc)?),
                    None => None,
                };
                Some((t_cache, d_cache, VisionPlan::None))
            }
            EngineModel::Multimodal { model, .. } => {
                let seed = req.image_seed.expect("validated at submit");
                let image = Image::synthetic(
                    &mut Rng::new(seed),
                    model.cfg.vision.n_patches,
                    model.cfg.vision.patch_dim,
                );
                let hash = image.content_hash();
                // Eviction loop: each failed lease attempt frees the
                // coldest cached prefix and retries, until the cache is
                // empty — at which point the pool is genuinely full.
                loop {
                    let mut vc = self.vision_cache.lock().unwrap();
                    let hit = vc.entries.contains_key(&hash);
                    let t_cache = if hit {
                        vc.clock += 1;
                        let clock = vc.clock;
                        let entry = vc.entries.get_mut(&hash).unwrap();
                        entry.last_used = clock;
                        self.t_pool
                            .try_lease_with_prefix(&entry.t_prefix, plan.t_capacity)
                    } else {
                        self.t_pool.try_lease(plan.t_capacity)
                    };
                    let leases = t_cache.and_then(|t| match plan.d_capacity {
                        Some(dc) => self.d_pool.try_lease(dc).map(|d| (t, Some(d))),
                        None => Some((t, None)),
                    });
                    if let Some((t_cache, d_cache)) = leases {
                        if hit {
                            self.metrics.vision_cache_hits.inc();
                        } else {
                            self.metrics.vision_cache_misses.inc();
                        }
                        let vision = if hit {
                            VisionPlan::Hit { hash }
                        } else {
                            VisionPlan::Miss { image, hash }
                        };
                        return Some((t_cache, d_cache, vision));
                    }
                    if !vc.evict_coldest(Some(hash)) {
                        return None;
                    }
                }
            }
        }
    }

    /// Advance one slot by one unit of work: prefill on the session's first
    /// turn, afterwards one speculative block (or one AR token).
    fn step_slot(&self, slot: &mut Slot) {
        let Slot { ws, active: cell } = slot;
        let Some(active) = cell.as_mut() else {
            return;
        };
        if active.handle.is_cancel_requested() {
            let stats = match &active.phase {
                Phase::Spec(s) => Some(s.stats().clone()),
                Phase::Tree(s) => Some(s.stats().clone()),
                _ => None,
            };
            if let Some(s) = &stats {
                self.metrics.merge_spec_stats(s);
            }
            active.handle.finish(Status::Cancelled, stats);
            self.metrics.requests_cancelled.inc();
            *cell = None; // drops the leases
            return;
        }
        let started = Instant::now();
        let Active {
            handle,
            phase,
            published,
            t_cache,
            d_cache,
            vision,
        } = active;
        match phase {
            Phase::Prefill(req) => {
                let req = req.clone();
                *phase = self.prefill(&req, t_cache, d_cache, vision, ws);
                // Publish the prefill-decided first token (TTFT = queue
                // wait + prefill).
                let (tokens_now, done) = match &*phase {
                    Phase::Spec(s) => {
                        handle.push_tokens(s.tokens());
                        (s.tokens().len(), s.is_done())
                    }
                    Phase::Tree(s) => {
                        handle.push_tokens(s.tokens());
                        (s.tokens().len(), s.is_done())
                    }
                    Phase::Ar(s) => {
                        handle.push_tokens(s.tokens());
                        (s.tokens().len(), s.is_done())
                    }
                    Phase::Prefill(_) => unreachable!(),
                };
                debug_assert_eq!(tokens_now, 1);
                *published = tokens_now;
                self.metrics.tokens_generated.add(tokens_now as u64);
                if let Some(ttft) = handle.ttft_ms() {
                    self.metrics.ttft_ms.record_ms(ttft);
                }
                if done {
                    self.finish_slot(cell);
                }
            }
            Phase::Spec(session) => {
                let report = session.step_block(
                    self.model.target_lm(),
                    self.model.draft(),
                    t_cache,
                    d_cache.as_mut().expect("spec session without draft lease"),
                    ws,
                );
                let block_ms = started.elapsed().as_secs_f64() * 1e3;
                self.metrics.block_ms.record_ms(block_ms);
                if report.committed > 0 {
                    let new = &session.tokens()[*published..];
                    debug_assert_eq!(new.len(), report.committed);
                    handle.push_tokens(new);
                    *published += report.committed;
                    self.metrics.tokens_generated.add(report.committed as u64);
                    for _ in 0..report.committed {
                        self.metrics
                            .token_ms
                            .record_ms(block_ms / report.committed as f64);
                    }
                }
                if report.done {
                    self.finish_slot(cell);
                }
            }
            Phase::Tree(session) => {
                let report = session.step_block(
                    self.model.target_lm(),
                    self.model.draft(),
                    t_cache,
                    d_cache.as_mut().expect("tree session without draft lease"),
                    ws,
                );
                let block_ms = started.elapsed().as_secs_f64() * 1e3;
                self.metrics.block_ms.record_ms(block_ms);
                if report.committed > 0 {
                    let new = &session.tokens()[*published..];
                    debug_assert_eq!(new.len(), report.committed);
                    handle.push_tokens(new);
                    *published += report.committed;
                    self.metrics.tokens_generated.add(report.committed as u64);
                    for _ in 0..report.committed {
                        self.metrics
                            .token_ms
                            .record_ms(block_ms / report.committed as f64);
                    }
                }
                if report.done {
                    self.finish_slot(cell);
                }
            }
            Phase::Ar(session) => {
                let report = session.step(self.model.target_lm(), t_cache, ws);
                let block_ms = started.elapsed().as_secs_f64() * 1e3;
                self.metrics.block_ms.record_ms(block_ms);
                if report.committed > 0 {
                    let new = &session.tokens()[*published..];
                    handle.push_tokens(new);
                    *published += report.committed;
                    self.metrics.tokens_generated.add(report.committed as u64);
                    self.metrics.token_ms.record_ms(block_ms);
                }
                if report.done {
                    self.finish_slot(cell);
                }
            }
        }
    }

    /// Target-side prefill for `req` → the pending (first decided) token.
    /// On a vision-cache hit the target lease already carries the `n_img`
    /// prefix, so only the text leg runs. Shared verbatim by the sync
    /// scheduler and the async pipeline — prefill is what makes streams
    /// identical between them, so there is exactly one implementation.
    fn prefill_target(
        &self,
        req: &Request,
        t_cache: &mut KvCache,
        vision: &VisionPlan,
        ws: &mut Workspace,
    ) -> u32 {
        let target = self.model.target_lm();
        let pending = match (&self.model, vision) {
            (EngineModel::Text { .. }, _) => {
                debug_assert!(t_cache.is_empty());
                let vocab = target.cfg.vocab;
                let mut logits = ws.take(req.prompt.len() * vocab);
                target.forward_infer_ws(&req.prompt, t_cache, ws, &mut logits);
                let pending = argmax(&logits[(req.prompt.len() - 1) * vocab..]) as u32;
                ws.give(logits);
                pending
            }
            (EngineModel::Multimodal { model, .. }, VisionPlan::Miss { image, hash }) => {
                debug_assert!(t_cache.is_empty());
                let pending = model.prefill_ws(image, &req.prompt, t_cache, ws);
                self.populate_vision_cache(*hash, t_cache, None);
                pending
            }
            (EngineModel::Multimodal { model, .. }, VisionPlan::Hit { .. }) => {
                debug_assert_eq!(t_cache.len(), model.n_img());
                model.prefill_text_ws(&req.prompt, t_cache, ws)
            }
            (EngineModel::Multimodal { .. }, VisionPlan::None) => {
                unreachable!("multimodal admission always sets a vision plan")
            }
        };

        // The lease was sized from the request alone; the actual prefill
        // must land exactly on that plan or the capacity/budget identity
        // (and with it stream-equivalence to the one-shot loops) breaks.
        debug_assert_eq!(
            t_cache.len(),
            self.lease_plan(req).t_prefix,
            "t prefix != plan"
        );
        pending
    }

    /// Draft-side prefill for a speculative `req`: text prompt, preceded
    /// in the multimodal case by the ablation-selected vision prefix
    /// (hybrid cache, same seeding as `mm_speculative_ws`). A vision-
    /// cache hit appends the cached projected rows instead of re-running
    /// the projector. Also shared by both schedulers.
    fn seed_draft_caches(
        &self,
        req: &Request,
        t_cache: &mut KvCache,
        d_cache: &mut KvCache,
        vision: &VisionPlan,
        ws: &mut Workspace,
    ) {
        let draft = self.model.draft();
        match (&self.model, vision) {
            (EngineModel::Text { .. }, _) => {
                let mut d_logits = ws.take(req.prompt.len() * draft.cfg.vocab);
                draft.forward_infer_ws(&req.prompt, d_cache, ws, &mut d_logits);
                ws.give(d_logits);
            }
            (
                EngineModel::Multimodal {
                    model,
                    projector,
                    ablation,
                    ..
                },
                plan,
            ) => {
                let seeded_from_cache = match plan {
                    VisionPlan::Hit { hash } => self.seed_draft_from_cache(*hash, d_cache),
                    _ => false,
                };
                if !seeded_from_cache {
                    seed_draft_prefix(model, Some(projector), *ablation, t_cache, d_cache);
                }
                if let VisionPlan::Miss { hash, .. } = plan {
                    self.populate_vision_cache(*hash, t_cache, Some(d_cache));
                }
                if !ablation.drop_text_kv {
                    let mut d_logits = ws.take(req.prompt.len() * draft.cfg.vocab);
                    draft.forward_infer_ws(&req.prompt, d_cache, ws, &mut d_logits);
                    ws.give(d_logits);
                }
            }
        }
        debug_assert_eq!(
            d_cache.len(),
            self.lease_plan(req).d_prefix,
            "d prefix != plan"
        );
    }

    /// Prefill the session's leased caches for `req` and build its decode
    /// session (sync scheduler).
    fn prefill(
        &self,
        req: &Request,
        t_cache: &mut KvCache,
        d_cache: &mut Option<KvCache>,
        vision: &VisionPlan,
        ws: &mut Workspace,
    ) -> Phase {
        let target = self.model.target_lm();
        let draft = self.model.draft();
        let pending = self.prefill_target(req, t_cache, vision, ws);
        let plan = self.lease_plan(req);
        match req.mode {
            DecodeMode::Autoregressive => {
                let budget = req.max_new.min(target.cfg.max_seq + 1 - t_cache.len());
                debug_assert_eq!(budget, plan.budget);
                Phase::Ar(ArSession::new(target, t_cache, pending, budget))
            }
            DecodeMode::Speculative { gamma } => {
                let d_cache = d_cache.as_mut().expect("spec admission leases a draft");
                self.seed_draft_caches(req, t_cache, d_cache, vision, ws);
                let budget = req
                    .max_new
                    .min(target.cfg.max_seq + 1 - t_cache.len())
                    .min(draft.cfg.max_seq + 1 - d_cache.len());
                debug_assert_eq!(budget, plan.budget);
                if self.cfg.tree_speculation {
                    let tree_cfg = TreeConfig {
                        calibrator: Some(AcceptanceCalibrator::neutral()),
                        ..TreeConfig::default()
                    };
                    let mut session = TreeSession::new(
                        target,
                        draft,
                        t_cache,
                        d_cache,
                        pending,
                        budget,
                        gamma,
                        tree_cfg,
                        self.model.n_img(),
                    );
                    if self.cfg.adaptive_gamma {
                        let ratio = draft.n_params() as f64 / target.n_params() as f64;
                        session.enable_adaptive_gamma(AdaptiveGamma::new(ratio));
                    }
                    return Phase::Tree(session);
                }
                let mut session =
                    SpecSession::new(target, draft, t_cache, d_cache, pending, budget, gamma);
                if self.cfg.adaptive_gamma {
                    let ratio = draft.n_params() as f64 / target.n_params() as f64;
                    session.enable_adaptive_gamma(AdaptiveGamma::new(ratio));
                }
                Phase::Spec(session)
            }
        }
    }

    /// Best-effort: install `hash`'s vision prefix (and, when the creating
    /// session was speculative, its seeded draft rows) into the cache.
    /// Runs after a miss prefill; the rows are copied out of the session's
    /// caches, so the entry is bit-identical to what a fresh vision
    /// prefill would produce. Skipped when caching is disabled, the entry
    /// raced into existence, or the pool has no spare blocks (the session
    /// itself always wins over the cache).
    fn populate_vision_cache(&self, hash: u64, t_cache: &KvCache, d_cache: Option<&KvCache>) {
        if self.cfg.vision_cache_entries == 0 {
            return;
        }
        let n_img = self.model.n_img();
        let d_prefix = self.model.d_vision_prefix();
        let mut vc = self.vision_cache.lock().unwrap();
        if vc.entries.contains_key(&hash) {
            return;
        }
        let Some(mut t_prefix) = self.t_pool.try_lease(n_img) else {
            return;
        };
        for l in 0..t_cache.n_layers() {
            let src = t_cache.layer(l);
            let mut dst = t_prefix.layer_mut(l);
            for pos in 0..n_img {
                dst.append(src.key(pos), src.value(pos));
            }
        }
        let d_seed = d_cache.map(|dc| {
            (0..dc.n_layers())
                .map(|l| {
                    let src = dc.layer(l);
                    let dim = dc.dim();
                    let mut k = Tensor::zeros(d_prefix, dim);
                    let mut v = Tensor::zeros(d_prefix, dim);
                    for pos in 0..d_prefix {
                        k.row_mut(pos).copy_from_slice(src.key(pos));
                        v.row_mut(pos).copy_from_slice(src.value(pos));
                    }
                    (k, v)
                })
                .collect()
        });
        while vc.entries.len() >= self.cfg.vision_cache_entries {
            if !vc.evict_coldest(None) {
                break;
            }
        }
        vc.clock += 1;
        let clock = vc.clock;
        vc.entries.insert(
            hash,
            VisionEntry {
                t_prefix,
                d_seed,
                last_used: clock,
            },
        );
    }

    /// On a hit, seed the draft's vision prefix from the cached rows —
    /// skipping the projector matmuls. Returns false when the entry was
    /// evicted between admission and prefill or carries no draft rows
    /// (created by an AR request); the caller then re-seeds from the
    /// target prefix, which the session's lease still shares.
    fn seed_draft_from_cache(&self, hash: u64, d_cache: &mut KvCache) -> bool {
        let vc = self.vision_cache.lock().unwrap();
        let Some(entry) = vc.entries.get(&hash) else {
            return false;
        };
        let Some(d_seed) = &entry.d_seed else {
            return false;
        };
        debug_assert!(d_cache.is_empty());
        for (l, (k, v)) in d_seed.iter().enumerate() {
            let mut layer = d_cache.layer_mut(l);
            for r in 0..k.rows {
                layer.append(k.row(r), v.row(r));
            }
        }
        true
    }

    /// Completion bookkeeping; dropping the [`Active`] releases its leases,
    /// and the freed slot is refilled on the next tick.
    fn finish_slot(&self, cell: &mut Option<Active>) {
        let active = cell.take().expect("finishing an empty slot");
        let stats = match active.phase {
            Phase::Spec(session) => {
                let (_, stats) = session.into_parts();
                self.metrics.merge_spec_stats(&stats);
                Some(stats)
            }
            Phase::Tree(session) => {
                let (_, stats) = session.into_parts();
                self.metrics.merge_spec_stats(&stats);
                Some(stats)
            }
            _ => None,
        };
        active.handle.finish(Status::Done, stats);
        self.metrics.requests_completed.inc();
    }

    // ------------------------------------------------------------------
    // Asynchronous draft/target pipeline (`cfg.async_pipeline`)
    // ------------------------------------------------------------------

    /// Free-running async scheduler: spawns `cfg.workers` scoped target
    /// workers that admit, prefill, verify, and complete sessions
    /// continuously — no per-tick barrier — while each speculative
    /// session's dedicated draft thread speculates ahead through its SPSC
    /// ring. With `stop: None` the call returns once queue and slots are
    /// drained (bench/test mode); with a stop flag it runs until the flag
    /// is raised (server mode), leaving in-flight sessions for
    /// [`Engine::drain_pipeline`].
    ///
    /// Streams are byte-identical to the synchronous scheduler at any
    /// worker count: the verify leg alone commits tokens, and every
    /// commit is the target model's own argmax (see `aasd-specdec`'s
    /// `pipeline` module for the argument).
    pub fn run_pipeline(&self, stop: Option<&AtomicBool>) {
        assert!(
            self.cfg.async_pipeline,
            "run_pipeline requires cfg.async_pipeline"
        );
        if self.cfg.workers == 1 {
            // No point paying a scoped spawn for the single-worker case.
            self.pipeline_worker(stop);
            return;
        }
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.workers {
                scope.spawn(|| self.pipeline_worker(stop));
            }
        });
    }

    /// One target worker: sweep the slots, stepping whichever sessions
    /// are not already being stepped by another worker (per-slot
    /// `try_lock` — sessions are never stepped concurrently, workers just
    /// claim different ones). Parks briefly when a sweep makes no
    /// progress.
    fn pipeline_worker(&self, stop: Option<&AtomicBool>) {
        let mut idle_sweeps = 0u32;
        let mut wakes: Vec<Arc<DraftLink>> = Vec::new();
        loop {
            if let Some(flag) = stop {
                if flag.load(Ordering::Acquire) {
                    return;
                }
            }
            let mut progressed = self.pipeline_refill();
            for slot in &self.pslots {
                if let Ok(mut guard) = slot.try_lock() {
                    progressed |= self.pipeline_step(&mut guard, &mut wakes);
                }
            }
            if !wakes.is_empty() {
                // Draft wakeups deferred out of the sweep: waking a draft
                // mid-sweep invites it to preempt the next session's
                // target pass (and trash its cache working set) on a
                // single-core host. Notify here, then yield once so every
                // woken draft refills its ring before the next sweep.
                for link in wakes.drain(..) {
                    link.notify_draft();
                }
                std::thread::yield_now();
            }
            if progressed {
                idle_sweeps = 0;
                self.metrics.scheduler_ticks.inc();
            } else {
                if stop.is_none() {
                    // Until-idle exit: the queue→slot transfer happens
                    // entirely under the qstate lock (pop + pipe_active
                    // bump), so this check cannot observe a request in
                    // neither place.
                    let q = self.qstate.lock().unwrap();
                    if q.queue.is_empty() && self.pipe_active.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    drop(q);
                }
                idle_sweeps += 1;
                if idle_sweeps <= 2 {
                    // An idle sweep usually means the rings are mid-refill.
                    // Yielding hands the core straight to the runnable
                    // draft threads (they only need tens of µs per chain),
                    // where a timed park would add wakeup latency to every
                    // block on a single-core host.
                    std::thread::yield_now();
                } else {
                    self.pipe_signal.wait(Duration::from_millis(1));
                }
            }
        }
    }

    /// Admit queued requests into vacant async slots (FIFO with
    /// head-of-line blocking, exactly like the sync `refill`).
    fn pipeline_refill(&self) -> bool {
        let mut q = self.qstate.lock().unwrap();
        let mut admitted = false;
        'slots: for slot in &self.pslots {
            let Ok(mut guard) = slot.try_lock() else {
                continue;
            };
            if guard.active.is_some() {
                continue;
            }
            let next = loop {
                match q.queue.pop_front() {
                    Some(qd) if qd.handle.is_cancel_requested() => {
                        qd.handle.finish(Status::Cancelled, None);
                        self.metrics.requests_cancelled.inc();
                    }
                    other => break other,
                }
            };
            let Some(queued) = next else { break };
            match self.admit(&queued.req) {
                Some((t_cache, d_cache, vision)) => {
                    queued.handle.mark_running();
                    guard.active = Some(AsyncActive {
                        handle: queued.handle,
                        phase: AsyncPhase::Prefill(queued.req),
                        published: 0,
                        t_cache,
                        d_cache,
                        vision,
                        was_idle: false,
                    });
                    self.pipe_active.fetch_add(1, Ordering::Release);
                    admitted = true;
                }
                None => {
                    // Not enough free blocks: the head waits (FIFO).
                    q.queue.push_front(queued);
                    break 'slots;
                }
            }
        }
        self.metrics.queue_depth.set(q.queue.len() as u64);
        self.metrics
            .active_sessions
            .set(self.pipe_active.load(Ordering::Relaxed) as u64);
        self.metrics
            .kv_free_blocks_target
            .set(self.t_pool.free_blocks() as u64);
        self.metrics
            .kv_free_blocks_draft
            .set(self.d_pool.free_blocks() as u64);
        admitted
    }

    /// Advance one async slot. Prefill on the first turn (spawning the
    /// session's draft thread); afterwards one verify step against
    /// whatever the draft has queued. Returns whether anything advanced.
    fn pipeline_step(&self, slot: &mut AsyncSlot, wakes: &mut Vec<Arc<DraftLink>>) -> bool {
        let AsyncSlot { ws, active: cell } = slot;
        let Some(active) = cell.as_mut() else {
            return false;
        };
        if active.handle.is_cancel_requested() {
            self.finish_async(cell, Status::Cancelled, Instant::now() + DRAFT_JOIN_TIMEOUT);
            return true;
        }
        let started = Instant::now();

        let req = match &active.phase {
            AsyncPhase::Prefill(req) => Some(req.clone()),
            _ => None,
        };
        if let Some(req) = req {
            let target = self.model.target_lm();
            let draft = self.model.draft();
            let pending = self.prefill_target(&req, &mut active.t_cache, &active.vision, ws);
            match req.mode {
                DecodeMode::Autoregressive => {
                    let budget = req
                        .max_new
                        .min(target.cfg.max_seq + 1 - active.t_cache.len());
                    active.phase =
                        AsyncPhase::Ar(ArSession::new(target, &active.t_cache, pending, budget));
                }
                DecodeMode::Speculative { gamma } => {
                    let d_cache = active
                        .d_cache
                        .as_mut()
                        .expect("spec admission leases a draft");
                    self.seed_draft_caches(&req, &mut active.t_cache, d_cache, &active.vision, ws);
                    let budget = req
                        .max_new
                        .min(target.cfg.max_seq + 1 - active.t_cache.len())
                        .min(draft.cfg.max_seq + 1 - d_cache.len());
                    let mut verify = VerifyHalf::new(
                        target,
                        &active.t_cache,
                        d_cache.len(),
                        pending,
                        budget,
                        gamma,
                    );
                    if self.cfg.adaptive_gamma {
                        let ratio = draft.n_params() as f64 / target.n_params() as f64;
                        verify.enable_adaptive_gamma(AdaptiveGamma::new(ratio));
                    }
                    let link = Arc::new(DraftLink::new(verify.depth_hint()));
                    // Budgets ≤ 2 never consume a proposal (the pending
                    // commit plus at most one plain decode), so they get
                    // no draft thread; the unused lease drops at finish.
                    let draft_join = if budget >= 3 {
                        let d_lease = active.d_cache.take().expect("checked above");
                        Some(self.spawn_draft(d_lease, pending, Arc::clone(&link)))
                    } else {
                        None
                    };
                    active.phase = AsyncPhase::Spec {
                        verify,
                        link,
                        draft_join,
                    };
                }
            }
            // Publish the prefill-decided first token (TTFT = queue wait
            // + prefill, matching the sync scheduler).
            let (tokens_now, done) = match &active.phase {
                AsyncPhase::Spec { verify, .. } => {
                    active.handle.push_tokens(verify.tokens());
                    (verify.tokens().len(), verify.is_done())
                }
                AsyncPhase::Ar(s) => {
                    active.handle.push_tokens(s.tokens());
                    (s.tokens().len(), s.is_done())
                }
                AsyncPhase::Prefill(_) => unreachable!(),
            };
            debug_assert_eq!(tokens_now, 1);
            active.published = tokens_now;
            self.metrics.tokens_generated.add(tokens_now as u64);
            if let Some(ttft) = active.handle.ttft_ms() {
                self.metrics.ttft_ms.record_ms(ttft);
            }
            if done {
                self.finish_async(cell, Status::Done, Instant::now() + DRAFT_JOIN_TIMEOUT);
            }
            return true;
        }

        match &mut active.phase {
            AsyncPhase::Spec {
                verify,
                link,
                draft_join,
            } => {
                // Depth gate: a verify pass costs one full target weight
                // sweep however shallow the chain, so hold off until the
                // ring carries a full `ready_depth()` chain — unless the
                // draft cannot deepen it (parked at its KV frontier,
                // stopped, or never spawned), where waiting would idle
                // forever.
                let draft_blocked = draft_join.is_none()
                    || link.stalled.load(Ordering::Acquire)
                    || link.exited.load(Ordering::Acquire);
                if !draft_blocked && link.ring.len() < verify.ready_depth() {
                    if !active.was_idle {
                        active.was_idle = true;
                        self.metrics.verify_idle_stalls.inc();
                    }
                    return false;
                }
                let report = verify.try_step_block(
                    self.model.target_lm(),
                    &mut active.t_cache,
                    &link.ring,
                    ws,
                );
                // Re-publish the depth budget every block so AdaptiveGamma
                // keeps bounding the in-flight speculation.
                link.depth_cap.store(verify.depth_hint(), Ordering::Relaxed);
                if report.rolled_back {
                    self.metrics.draft_rollbacks.inc();
                }
                if report.progressed || report.rolled_back {
                    // Any consumed ring token (pops, an expect-resolution,
                    // a rollback) can be what a parked draft is waiting
                    // on — and parks are untimed, so a missed wake here is
                    // a livelock, not a latency blip. Wake unconditionally
                    // on progress.
                    wakes.push(Arc::clone(link));
                }
                if report.depth > 0 {
                    self.metrics
                        .speculation_depth
                        .record_ms(report.depth as f64);
                }
                if !report.progressed {
                    if !active.was_idle {
                        active.was_idle = true;
                        self.metrics.verify_idle_stalls.inc();
                    }
                    return false;
                }
                active.was_idle = false;
                let block_ms = started.elapsed().as_secs_f64() * 1e3;
                self.metrics.block_ms.record_ms(block_ms);
                if report.committed > 0 {
                    let new = &verify.tokens()[active.published..];
                    debug_assert_eq!(new.len(), report.committed);
                    active.handle.push_tokens(new);
                    active.published += report.committed;
                    self.metrics.tokens_generated.add(report.committed as u64);
                    for _ in 0..report.committed {
                        self.metrics
                            .token_ms
                            .record_ms(block_ms / report.committed as f64);
                    }
                }
                if report.done {
                    self.finish_async(cell, Status::Done, Instant::now() + DRAFT_JOIN_TIMEOUT);
                }
                true
            }
            AsyncPhase::Ar(session) => {
                let report = session.step(self.model.target_lm(), &mut active.t_cache, ws);
                let block_ms = started.elapsed().as_secs_f64() * 1e3;
                self.metrics.block_ms.record_ms(block_ms);
                if report.committed > 0 {
                    let new = &session.tokens()[active.published..];
                    active.handle.push_tokens(new);
                    active.published += report.committed;
                    self.metrics.tokens_generated.add(report.committed as u64);
                    self.metrics.token_ms.record_ms(block_ms);
                }
                if report.done {
                    self.finish_async(cell, Status::Done, Instant::now() + DRAFT_JOIN_TIMEOUT);
                }
                true
            }
            AsyncPhase::Prefill(_) => unreachable!("handled above"),
        }
    }

    /// Spawn a session's dedicated draft worker. It owns the draft lease
    /// (returned to the pool when the thread exits), free-runs the
    /// speculation chain up to the published depth cap, and honors
    /// rollbacks before anything else.
    fn spawn_draft(
        &self,
        mut d_cache: KvCache,
        pending: u32,
        link: Arc<DraftLink>,
    ) -> std::thread::JoinHandle<()> {
        let draft = self.model.draft_arc();
        let metrics = Arc::clone(&self.metrics);
        let signal = Arc::clone(&self.pipe_signal);
        std::thread::Builder::new()
            .name("aasd-draft".into())
            .spawn(move || {
                let mut ws = Workspace::new();
                let mut ahead = DraftAhead::new(&mut d_cache, pending);
                ahead.set_confidence_threshold(CONFIDENCE_STOP);
                let mut stalled = false;
                while !link.stop.load(Ordering::Acquire) {
                    // Eventcount order matters: sample the generation
                    // BEFORE the condition check inside `step`, so a
                    // notify racing the check bumps the generation and the
                    // park below returns immediately instead of sleeping
                    // through it.
                    let gen = link.park_generation();
                    let cap = link.depth_cap.load(Ordering::Relaxed);
                    match ahead.step(&draft, &mut d_cache, &link.ring, cap, &mut ws) {
                        DraftStep::Produced | DraftStep::RolledBack => {
                            if stalled {
                                stalled = false;
                                link.stalled.store(false, Ordering::Release);
                            }
                        }
                        DraftStep::AtDepthCap
                        | DraftStep::AtCapacity
                        | DraftStep::LowConfidence => {
                            if !stalled {
                                stalled = true;
                                link.stalled.store(true, Ordering::Release);
                                metrics.ring_full_stalls.inc();
                                // The chain is as deep as it should get —
                                // full depth, lease frontier, or a
                                // below-threshold token: wake the verify
                                // side. Notifying here — not per token —
                                // means verify wakes to a chain worth a
                                // whole target pass.
                                signal.notify();
                            }
                            // Parked, not spinning and not polling: a
                            // parked draft burns zero cycles and causes
                            // zero preemptions until verify pops, rolls
                            // back, or stops the session.
                            link.park_until_notified(gen);
                        }
                    }
                }
                link.exited.store(true, Ordering::Release);
                // `d_cache` drops here: the draft lease returns to the pool.
            })
            .expect("failed to spawn draft worker")
    }

    /// Stop a session's draft thread and join it, bounded by `deadline`.
    /// `notify_draft` bumps the park generation so a parked draft wakes
    /// immediately; if the bound is ever exceeded the handle is dropped
    /// (the thread detaches and exits on its next stop check) instead of
    /// wedging shutdown.
    fn stop_draft(link: &DraftLink, join: Option<std::thread::JoinHandle<()>>, deadline: Instant) {
        let Some(handle) = join else { return };
        link.stop.store(true, Ordering::Release);
        link.notify_draft();
        while !link.exited.load(Ordering::Acquire) {
            if Instant::now() >= deadline {
                return; // detach rather than block shutdown
            }
            std::thread::yield_now();
        }
        let _ = handle.join();
    }

    /// Async completion bookkeeping: stop the draft leg, merge stats,
    /// finish the handle, release the slot.
    fn finish_async(&self, cell: &mut Option<AsyncActive>, status: Status, join_deadline: Instant) {
        let active = cell.take().expect("finishing an empty slot");
        let stats = match active.phase {
            AsyncPhase::Spec {
                verify,
                link,
                draft_join,
            } => {
                Self::stop_draft(&link, draft_join, join_deadline);
                let (_, stats) = verify.into_parts();
                self.metrics.merge_spec_stats(&stats);
                Some(stats)
            }
            _ => None,
        };
        active.handle.finish(status, stats);
        if status == Status::Done {
            self.metrics.requests_completed.inc();
        } else {
            self.metrics.requests_cancelled.inc();
        }
        self.pipe_active.fetch_sub(1, Ordering::Release);
        // A slot freed: wake parked workers so refill runs promptly.
        self.pipe_signal.notify();
    }

    /// Finish every in-flight async session after [`Engine::run_pipeline`]
    /// returned with its stop flag raised (server shutdown): each
    /// session's draft thread is stopped and joined under the shared
    /// `timeout`, the handle finished `Cancelled` — so a session caught
    /// mid-speculation can never leak a parked thread or a KV lease.
    pub fn drain_pipeline(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        for slot in &self.pslots {
            let mut guard = slot.lock().unwrap();
            if guard.active.is_some() {
                self.finish_async(&mut guard.active, Status::Cancelled, deadline);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aasd_nn::DecoderConfig;
    use aasd_specdec::{autoregressive_greedy_with_budget_ws, speculative_greedy_with_budget_ws};

    fn text_engine(slots: usize, workers: usize, max_queue: usize) -> Arc<Engine> {
        let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
        let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
        Engine::new(
            EngineModel::Text { target, draft },
            EngineConfig {
                slots,
                workers,
                max_queue,
                ..EngineConfig::default()
            },
        )
    }

    fn spec_req(prompt: Vec<u32>, max_new: usize, gamma: usize) -> Request {
        Request {
            prompt,
            max_new,
            mode: DecodeMode::Speculative { gamma },
            image_seed: None,
        }
    }

    /// A served speculative completion must equal the one-shot fused loop
    /// on the same models — losslessness survives scheduling.
    #[test]
    fn served_completion_matches_one_shot_loop() {
        let engine = text_engine(2, 1, 8);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let mut ws = Workspace::new();
        let prompt = vec![3u32, 7, 1, 9];
        let (want, want_stats) =
            speculative_greedy_with_budget_ws(&target, &draft, &prompt, 24, 4, &mut ws);

        let h = engine.submit(spec_req(prompt, 24, 4)).unwrap();
        engine.run_until_idle();
        let (status, tokens) = h.snapshot();
        assert_eq!(status, Status::Done);
        assert_eq!(tokens, want);
        assert_eq!(h.stats().unwrap(), want_stats);
        assert_eq!(engine.metrics().requests_completed.get(), 1);
        assert_eq!(engine.metrics().tokens_generated.get(), 24);
        assert!(h.ttft_ms().is_some());
    }

    /// An engine declared `Int8` serves a quantized target and its spec
    /// completions equal the one-shot fused loop on the same quantized
    /// models — losslessness survives scheduling under either kernel family.
    #[test]
    fn int8_engine_serves_losslessly() {
        let mut target = Decoder::new(DecoderConfig::tiny(40), 10);
        target.set_kernel_policy(KernelPolicy::Int8);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let engine = Engine::new(
            EngineModel::Text {
                target: Arc::new(target.clone()),
                draft: Arc::new(draft.clone()),
            },
            EngineConfig {
                kernel_policy: KernelPolicy::Int8,
                ..EngineConfig::default()
            },
        );
        let mut ws = Workspace::new();
        let prompt = vec![3u32, 7, 1, 9];
        let (want, _) = speculative_greedy_with_budget_ws(&target, &draft, &prompt, 20, 4, &mut ws);
        let h = engine.submit(spec_req(prompt, 20, 4)).unwrap();
        engine.run_until_idle();
        assert_eq!(h.snapshot(), (Status::Done, want));
    }

    /// A config that declares a kernel family the model is not actually
    /// running must be refused at construction.
    #[test]
    #[should_panic(expected = "kernel policy")]
    fn engine_rejects_mismatched_kernel_policy() {
        let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
        let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
        Engine::new(
            EngineModel::Text { target, draft },
            EngineConfig {
                kernel_policy: KernelPolicy::Int8,
                ..EngineConfig::default()
            },
        );
    }

    /// AR sessions served through the engine match the fused AR loop.
    #[test]
    fn served_ar_matches_one_shot_loop() {
        let engine = text_engine(1, 1, 8);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let mut ws = Workspace::new();
        let prompt = vec![5u32, 2, 8];
        let want = autoregressive_greedy_with_budget_ws(&target, &prompt, 15, &mut ws);
        let h = engine
            .submit(Request {
                prompt,
                max_new: 15,
                mode: DecodeMode::Autoregressive,
                image_seed: None,
            })
            .unwrap();
        engine.run_until_idle();
        assert_eq!(h.snapshot(), (Status::Done, want));
    }

    /// More requests than slots: continuous batching must finish them all,
    /// each lossless, with the queue draining FIFO.
    #[test]
    fn oversubscribed_queue_drains_losslessly() {
        let engine = text_engine(2, 1, 16);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let mut ws = Workspace::new();
        let prompts: Vec<Vec<u32>> = (0..6)
            .map(|i| vec![1 + i as u32, 7, (i * 3 % 11) as u32])
            .collect();
        let handles: Vec<_> = prompts
            .iter()
            .map(|p| {
                engine
                    .submit(spec_req(p.clone(), 12 + p[0] as usize, 3))
                    .unwrap()
            })
            .collect();
        engine.run_until_idle();
        for (p, h) in prompts.iter().zip(&handles) {
            let (want, _) = speculative_greedy_with_budget_ws(
                &target,
                &draft,
                p,
                12 + p[0] as usize,
                3,
                &mut ws,
            );
            let (status, tokens) = h.snapshot();
            assert_eq!(status, Status::Done, "request {} not done", h.id);
            assert_eq!(tokens, want, "request {} diverged", h.id);
        }
        assert_eq!(engine.metrics().requests_completed.get(), 6);
        assert_eq!(engine.metrics().queue_depth.get(), 0);
        // Every lease returned to the pools.
        assert_eq!(
            engine.metrics().kv_free_blocks_target.get(),
            engine.t_pool.total_blocks() as u64
        );
        assert_eq!(
            engine.metrics().kv_free_blocks_draft.get(),
            engine.d_pool.total_blocks() as u64
        );
    }

    /// Admission control: submits past `max_queue` are rejected Busy, and
    /// invalid requests are rejected outright without consuming queue room.
    #[test]
    fn admission_control_rejects() {
        let engine = text_engine(1, 1, 2);
        // Valid fills.
        for _ in 0..2 {
            engine.submit(spec_req(vec![1, 2], 8, 3)).unwrap();
        }
        assert_eq!(
            engine.submit(spec_req(vec![1, 2], 8, 3)).unwrap_err(),
            Rejection::Busy
        );
        // Invalid shapes.
        for bad in [
            spec_req(vec![], 8, 3),
            spec_req(vec![1], 0, 3),
            spec_req(vec![1], 8, 0),
            spec_req(vec![1], 8, MAX_GAMMA),
            spec_req(vec![99], 8, 3),     // outside vocab 40
            spec_req(vec![0; 200], 8, 3), // past max_seq 128
            Request {
                prompt: vec![1],
                max_new: 4,
                mode: DecodeMode::Autoregressive,
                image_seed: Some(7),
            },
        ] {
            assert!(
                matches!(engine.submit(bad.clone()), Err(Rejection::Invalid(_))),
                "{bad:?} should be invalid"
            );
        }
        assert_eq!(engine.metrics().requests_rejected.get(), 8);
        engine.run_until_idle();
        assert_eq!(engine.metrics().requests_completed.get(), 2);
    }

    /// Block-granular admission: a pool sized for one long session at a
    /// time forces the second request to wait head-of-line, but both must
    /// still complete losslessly — continuous batching degrades to serial
    /// execution, never to deadlock or corruption.
    #[test]
    fn block_admission_serializes_when_pool_is_tight() {
        let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
        let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
        let engine = Engine::new(
            EngineModel::Text {
                target: Arc::clone(&target),
                draft: Arc::clone(&draft),
            },
            EngineConfig {
                slots: 2,
                block_size: 16,
                // 64 target positions total: one 48-token session's lease
                // (4 + 48 − 1 = 51 positions → 4 blocks) takes all of them.
                t_pool_blocks: 4,
                ..EngineConfig::default()
            },
        );
        let mut ws = Workspace::new();
        let budget = 48;
        let h1 = engine
            .submit(spec_req(vec![3, 7, 1, 9], budget, 3))
            .unwrap();
        let h2 = engine
            .submit(spec_req(vec![5, 2, 4, 6], budget, 3))
            .unwrap();
        engine.tick();
        {
            let slots = engine.slots.lock().unwrap();
            assert_eq!(
                slots.iter().filter(|s| s.active.is_some()).count(),
                1,
                "second session must wait for blocks"
            );
        }
        engine.run_until_idle();
        for (h, prompt) in [(&h1, vec![3u32, 7, 1, 9]), (&h2, vec![5u32, 2, 4, 6])] {
            let (want, _) =
                speculative_greedy_with_budget_ws(&target, &draft, &prompt, budget, 3, &mut ws);
            assert_eq!(h.snapshot(), (Status::Done, want));
        }
        // A request whose lease exceeds the whole pool (4 + 62 − 1 = 65
        // positions → 5 blocks > 4) is rejected up front, not wedged.
        assert!(matches!(
            engine.submit(Request {
                prompt: vec![1, 2, 3, 4],
                max_new: 62,
                mode: DecodeMode::Autoregressive,
                image_seed: None,
            }),
            Err(Rejection::Invalid(_))
        ));
    }

    /// The queue-depth gauge must track every transition: growth on submit,
    /// decay through refill, and an immediate drop to zero on `cancel_all`
    /// — the shutdown path previously left it stale at its last value.
    #[test]
    fn queue_depth_gauge_returns_to_zero() {
        let engine = text_engine(1, 1, 16);
        for i in 0..5 {
            engine.submit(spec_req(vec![1 + i, 2], 8, 3)).unwrap();
        }
        assert_eq!(engine.metrics().queue_depth.get(), 5);
        engine.run_until_idle();
        assert_eq!(engine.metrics().queue_depth.get(), 0);
        assert_eq!(engine.metrics().requests_completed.get(), 5);

        // Queue up work and shut down without ever ticking: the gauge and
        // every queued handle must still reach their terminal states.
        let hs: Vec<_> = (0..3)
            .map(|i| engine.submit(spec_req(vec![2 + i, 3], 8, 3)).unwrap())
            .collect();
        assert_eq!(engine.metrics().queue_depth.get(), 3);
        engine.cancel_all();
        assert_eq!(engine.metrics().queue_depth.get(), 0);
        for h in hs {
            assert_eq!(h.snapshot().0, Status::Cancelled);
        }
        assert_eq!(engine.metrics().requests_cancelled.get(), 3);
    }

    /// Adaptive γ must not change a single served token — only the stats.
    #[test]
    fn adaptive_gamma_engine_is_lossless() {
        let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
        let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
        let engine = Engine::new(
            EngineModel::Text {
                target: Arc::clone(&target),
                draft: Arc::clone(&draft),
            },
            EngineConfig {
                adaptive_gamma: true,
                ..EngineConfig::default()
            },
        );
        let mut ws = Workspace::new();
        for (i, prompt) in [vec![3u32, 7, 1, 9], vec![5, 2], vec![8, 8, 8]]
            .into_iter()
            .enumerate()
        {
            let budget = 20 + i;
            let (want, _) =
                speculative_greedy_with_budget_ws(&target, &draft, &prompt, budget, 4, &mut ws);
            let h = engine.submit(spec_req(prompt, budget, 4)).unwrap();
            engine.run_until_idle();
            assert_eq!(h.snapshot(), (Status::Done, want), "request {i}");
        }
    }

    /// Cancelling a running request stops it at a block boundary, keeps the
    /// committed prefix readable, and frees the slot for the next request.
    #[test]
    fn cancel_frees_slot_and_keeps_prefix() {
        let engine = text_engine(1, 1, 8);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let mut ws = Workspace::new();
        let h1 = engine.submit(spec_req(vec![3, 7, 1, 9], 40, 3)).unwrap();
        let h2 = engine.submit(spec_req(vec![5, 2], 10, 3)).unwrap();
        // A few blocks of progress, then cancel mid-flight.
        for _ in 0..3 {
            engine.tick();
        }
        assert!(engine.cancel(h1.id));
        engine.run_until_idle();
        let (s1, t1) = h1.snapshot();
        assert_eq!(s1, Status::Cancelled);
        assert!(!t1.is_empty() && t1.len() < 40, "partial prefix expected");
        // The committed prefix must be a prefix of the true completion.
        let (want, _) =
            speculative_greedy_with_budget_ws(&target, &draft, &[3, 7, 1, 9], 40, 3, &mut ws);
        assert_eq!(t1[..], want[..t1.len()]);
        // The second request still completes losslessly on the reused slot.
        let (want2, _) =
            speculative_greedy_with_budget_ws(&target, &draft, &[5, 2], 10, 3, &mut ws);
        assert_eq!(h2.snapshot(), (Status::Done, want2));
        assert_eq!(engine.metrics().requests_cancelled.get(), 1);
        assert!(!engine.cancel(h1.id), "finished ids cannot be re-cancelled");
    }

    /// Cancelling while still queued drops the request at refill without it
    /// ever occupying a slot.
    #[test]
    fn cancel_queued_request_never_runs() {
        let engine = text_engine(1, 1, 8);
        let h1 = engine.submit(spec_req(vec![1, 2, 3], 30, 3)).unwrap();
        let h2 = engine.submit(spec_req(vec![4, 5], 10, 3)).unwrap();
        assert!(engine.cancel(h2.id));
        engine.run_until_idle();
        assert_eq!(h1.snapshot().0, Status::Done);
        let (s2, t2) = h2.snapshot();
        assert_eq!(s2, Status::Cancelled);
        assert!(t2.is_empty());
        assert!(h2.ttft_ms().is_none());
    }

    /// Slot reuse: many sequential requests through one slot must all be
    /// lossless (reused pool blocks behave like fresh ones) and the
    /// workspace pool must stop growing after warmup.
    #[test]
    fn slot_reuse_is_lossless_and_allocation_stable() {
        let engine = text_engine(1, 1, 16);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let mut ws = Workspace::new();
        for round in 0..3 {
            let prompt = vec![2 + round as u32, 9, 4];
            let (want, _) =
                speculative_greedy_with_budget_ws(&target, &draft, &prompt, 20, 5, &mut ws);
            let h = engine.submit(spec_req(prompt, 20, 5)).unwrap();
            engine.run_until_idle();
            assert_eq!(h.snapshot(), (Status::Done, want), "round {round}");
        }
        let slots = engine.slots.lock().unwrap();
        assert!(slots[0].active.is_none(), "slot should be idle after drain");
        assert_eq!(engine.metrics.requests_completed.get(), 3);
        assert_eq!(engine.t_pool.free_blocks(), engine.t_pool.total_blocks());
    }

    fn mm_engine(
        vision_cache_entries: usize,
    ) -> (Arc<Engine>, Arc<LlavaSim>, Arc<Decoder>, Arc<KvProjector>) {
        use aasd_mm::{draft_for, LlavaSimConfig};
        let cfg = LlavaSimConfig::tiny(40, 96);
        let model = Arc::new(LlavaSim::new(cfg.clone(), 0xB0));
        let draft = Arc::new(draft_for(&cfg, 0xB1));
        let projector = Arc::new(KvProjector::new(
            0xB2,
            draft.cfg.n_layers,
            cfg.lm.n_layers,
            cfg.n_img(),
            cfg.k_slots(),
        ));
        let engine = Engine::new(
            EngineModel::Multimodal {
                model: Arc::clone(&model),
                draft: Arc::clone(&draft),
                projector: Arc::clone(&projector),
                ablation: Ablation::projector(),
            },
            EngineConfig {
                slots: 2,
                workers: 1,
                max_queue: 8,
                vision_cache_entries,
                ..EngineConfig::default()
            },
        );
        (engine, model, draft, projector)
    }

    /// Multimodal engine: served hybrid-cache sessions match
    /// `mm_speculative_ws` / `mm_autoregressive_ws` exactly.
    #[test]
    fn multimodal_engine_is_lossless() {
        use aasd_mm::{mm_autoregressive_ws, mm_speculative_ws};
        let (engine, model, draft, projector) = mm_engine(8);
        let cfg = &model.cfg;
        let mut ws = Workspace::new();
        let prompt = vec![3u32, 11, 25, 7];
        let seed = 5u64;
        let img = Image::synthetic(
            &mut Rng::new(seed),
            cfg.vision.n_patches,
            cfg.vision.patch_dim,
        );
        let (want_spec, _) = mm_speculative_ws(
            &model,
            &draft,
            Some(&projector),
            Ablation::projector(),
            &img,
            &prompt,
            20,
            3,
            &mut ws,
        );
        let want_ar = mm_autoregressive_ws(&model, &img, &prompt, 20, &mut ws);

        let hs = engine
            .submit(Request {
                prompt: prompt.clone(),
                max_new: 20,
                mode: DecodeMode::Speculative { gamma: 3 },
                image_seed: Some(seed),
            })
            .unwrap();
        let ha = engine
            .submit(Request {
                prompt,
                max_new: 20,
                mode: DecodeMode::Autoregressive,
                image_seed: Some(seed),
            })
            .unwrap();
        engine.run_until_idle();
        assert_eq!(hs.snapshot(), (Status::Done, want_spec));
        assert_eq!(ha.snapshot(), (Status::Done, want_ar));
        // Text-engine-only request shape rejected on mm engine.
        assert!(matches!(
            engine.submit(spec_req(vec![1], 4, 2)),
            Err(Rejection::Invalid(_))
        ));
    }

    /// The vision cache: a repeated image is a hit that skips the vision
    /// tower yet yields the byte-identical stream; hit/miss counters track
    /// it; disabling the cache (entries = 0) serves every request as a
    /// miss and still matches.
    #[test]
    fn vision_cache_hit_is_bit_identical_to_miss() {
        use aasd_mm::mm_speculative_ws;
        let (engine, model, draft, projector) = mm_engine(4);
        let cfg = &model.cfg;
        let mut ws = Workspace::new();
        let prompt = vec![3u32, 11, 25, 7];
        let mut want = Vec::new();
        for seed in [5u64, 5, 9, 5] {
            let img = Image::synthetic(
                &mut Rng::new(seed),
                cfg.vision.n_patches,
                cfg.vision.patch_dim,
            );
            let (w, _) = mm_speculative_ws(
                &model,
                &draft,
                Some(&projector),
                Ablation::projector(),
                &img,
                &prompt,
                16,
                3,
                &mut ws,
            );
            want.push(w);
        }
        let handles: Vec<_> = [5u64, 5, 9, 5]
            .iter()
            .map(|&seed| {
                let h = engine
                    .submit(Request {
                        prompt: prompt.clone(),
                        max_new: 16,
                        mode: DecodeMode::Speculative { gamma: 3 },
                        image_seed: Some(seed),
                    })
                    .unwrap();
                // Serialize so hit/miss accounting is deterministic.
                engine.run_until_idle();
                h
            })
            .collect();
        for (h, w) in handles.iter().zip(&want) {
            assert_eq!(h.snapshot(), (Status::Done, w.clone()));
        }
        // Seeds [5, 5, 9, 5]: misses for 5 and 9, hits for the repeats.
        assert_eq!(engine.metrics().vision_cache_misses.get(), 2);
        assert_eq!(engine.metrics().vision_cache_hits.get(), 2);

        // Same burst with the cache disabled: identical streams, no hits.
        let (engine0, ..) = mm_engine(0);
        for (&seed, w) in [5u64, 5, 9, 5].iter().zip(&want) {
            let h = engine0
                .submit(Request {
                    prompt: prompt.clone(),
                    max_new: 16,
                    mode: DecodeMode::Speculative { gamma: 3 },
                    image_seed: Some(seed),
                })
                .unwrap();
            engine0.run_until_idle();
            assert_eq!(h.snapshot(), (Status::Done, w.clone()));
        }
        assert_eq!(engine0.metrics().vision_cache_hits.get(), 0);
    }

    /// `tree_speculation` serves byte-identical streams to the linear
    /// engine (losslessness survives the tree scheduler path) on both the
    /// text and multimodal engines, and reports spec-shaped stats.
    #[test]
    fn tree_engine_serves_losslessly() {
        // Text engine: tree stream == linear engine stream == fused loop.
        let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
        let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
        let tree_engine = Engine::new(
            EngineModel::Text {
                target: Arc::clone(&target),
                draft: Arc::clone(&draft),
            },
            EngineConfig {
                slots: 2,
                tree_speculation: true,
                ..EngineConfig::default()
            },
        );
        let mut ws = Workspace::new();
        let prompt = vec![3u32, 7, 1, 9];
        let (want, _) = speculative_greedy_with_budget_ws(&target, &draft, &prompt, 24, 4, &mut ws);
        let h = tree_engine.submit(spec_req(prompt, 24, 4)).unwrap();
        tree_engine.run_until_idle();
        let (status, tokens) = h.snapshot();
        assert_eq!((status, tokens), (Status::Done, want));
        let stats = h.stats().unwrap();
        assert_eq!(stats.generated, 24);
        assert!(stats.accepted <= stats.drafted);

        // Multimodal engine: tree stream == the AR reference.
        use aasd_mm::{draft_for, mm_autoregressive_ws, LlavaSimConfig};
        let cfg = LlavaSimConfig::tiny(40, 96);
        let model = Arc::new(LlavaSim::new(cfg.clone(), 0xB0));
        let mm_draft = Arc::new(draft_for(&cfg, 0xB1));
        let projector = Arc::new(KvProjector::new(
            0xB2,
            mm_draft.cfg.n_layers,
            cfg.lm.n_layers,
            cfg.n_img(),
            cfg.k_slots(),
        ));
        let mm_tree = Engine::new(
            EngineModel::Multimodal {
                model: Arc::clone(&model),
                draft: mm_draft,
                projector,
                ablation: Ablation::projector(),
            },
            EngineConfig {
                slots: 2,
                tree_speculation: true,
                adaptive_gamma: true,
                ..EngineConfig::default()
            },
        );
        let prompt = vec![3u32, 11, 25, 7];
        let img = Image::synthetic(&mut Rng::new(5), cfg.vision.n_patches, cfg.vision.patch_dim);
        let want_mm = mm_autoregressive_ws(&model, &img, &prompt, 20, &mut ws);
        let h = mm_tree
            .submit(Request {
                prompt,
                max_new: 20,
                mode: DecodeMode::Speculative { gamma: 3 },
                image_seed: Some(5),
            })
            .unwrap();
        mm_tree.run_until_idle();
        assert_eq!(h.snapshot(), (Status::Done, want_mm));
    }

    /// Tree speculation has no async-pipeline implementation; the config
    /// combination must be refused at construction, not fail silently.
    #[test]
    #[should_panic(expected = "sync scheduler")]
    fn tree_engine_rejects_async_pipeline() {
        let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
        let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
        Engine::new(
            EngineModel::Text { target, draft },
            EngineConfig {
                tree_speculation: true,
                async_pipeline: true,
                ..EngineConfig::default()
            },
        );
    }

    /// Eviction under block pressure must skip entries whose prefix blocks
    /// are CoW-leased by a live session: dropping them frees nothing (the
    /// session pins the blocks), so the colder-but-leased entry survives
    /// and the unleased one goes. Once the session drops its lease, the
    /// entry becomes evictable again.
    #[test]
    fn eviction_skips_prefixes_leased_by_active_sessions() {
        let pool = KvPool::new(2, 8, 4, 12);
        let mut cache = VisionCache::default();
        let mut seed_entry = |rows: usize, last_used: u64, hash: u64| {
            let mut prefix = pool.try_lease(rows).unwrap();
            for l in 0..2 {
                let mut layer = prefix.layer_mut(l);
                for _ in 0..rows {
                    layer.append(&[1.0; 8], &[2.0; 8]);
                }
            }
            cache.entries.insert(
                hash,
                VisionEntry {
                    t_prefix: prefix,
                    d_seed: None,
                    last_used,
                },
            );
        };
        seed_entry(8, 1, 0xA); // coldest — but about to be leased
        seed_entry(8, 2, 0xB);

        // A live session leases on top of entry A's prefix (CoW shares its
        // full blocks).
        let session_lease = pool
            .try_lease_with_prefix(&cache.entries[&0xA].t_prefix, 10)
            .unwrap();
        assert!(cache.evict_coldest(None), "B must be evictable");
        assert!(
            cache.entries.contains_key(&0xA),
            "leased entry A must survive eviction despite being coldest"
        );
        assert!(!cache.entries.contains_key(&0xB));
        // Nothing else is evictable while the session holds the lease.
        assert!(!cache.evict_coldest(None));
        assert!(cache.entries.contains_key(&0xA));

        // Session ends: A is evictable again, and its blocks actually
        // return to the pool.
        drop(session_lease);
        let free_before = pool.free_blocks();
        assert!(cache.evict_coldest(None));
        assert!(cache.entries.is_empty());
        assert!(
            pool.free_blocks() > free_before,
            "eviction must free blocks"
        );
    }

    // ------------------------------------------------------------------
    // Async pipeline (`cfg.async_pipeline`)
    // ------------------------------------------------------------------

    fn async_text_engine(slots: usize, workers: usize, max_queue: usize) -> Arc<Engine> {
        let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
        let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
        Engine::new(
            EngineModel::Text { target, draft },
            EngineConfig {
                slots,
                workers,
                max_queue,
                async_pipeline: true,
                ..EngineConfig::default()
            },
        )
    }

    /// The async pipeline must stream byte-identically to the fused loop
    /// (and hence to the sync scheduler) for every request, at 1, 2, and 4
    /// target workers — the interleaving of draft and verify threads can
    /// shift *which* blocks speculation lands in, never a committed token.
    #[test]
    fn async_pipeline_streams_match_fused_loop_at_any_worker_count() {
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let mut ws = Workspace::new();
        let prompts: Vec<Vec<u32>> = (0..5)
            .map(|i| vec![1 + i as u32, 7, (i * 3 % 11) as u32])
            .collect();
        let want: Vec<Vec<u32>> = prompts
            .iter()
            .map(|p| {
                speculative_greedy_with_budget_ws(
                    &target,
                    &draft,
                    p,
                    12 + p[0] as usize,
                    3,
                    &mut ws,
                )
                .0
            })
            .collect();
        for workers in [1usize, 2, 4] {
            let engine = async_text_engine(2, workers, 16);
            let handles: Vec<_> = prompts
                .iter()
                .map(|p| {
                    engine
                        .submit(spec_req(p.clone(), 12 + p[0] as usize, 3))
                        .unwrap()
                })
                .collect();
            engine.run_until_idle();
            for ((h, w), p) in handles.iter().zip(&want).zip(&prompts) {
                let (status, tokens) = h.snapshot();
                assert_eq!(status, Status::Done, "workers={workers} prompt={p:?}");
                assert_eq!(&tokens, w, "workers={workers} prompt={p:?} diverged");
            }
            assert_eq!(engine.metrics().requests_completed.get(), 5);
            // Every lease (draft threads included) returned to the pools.
            assert_eq!(engine.t_pool.free_blocks(), engine.t_pool.total_blocks());
            assert_eq!(engine.d_pool.free_blocks(), engine.d_pool.total_blocks());
            // The pipeline actually speculated (depth histogram populated).
            assert!(engine.metrics().speculation_depth.count() > 0);
        }
    }

    /// AR requests flow through the async scheduler too, matching the
    /// fused AR loop.
    #[test]
    fn async_pipeline_serves_ar() {
        let engine = async_text_engine(1, 1, 8);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let mut ws = Workspace::new();
        let prompt = vec![5u32, 2, 8];
        let want = autoregressive_greedy_with_budget_ws(&target, &prompt, 15, &mut ws);
        let h = engine
            .submit(Request {
                prompt,
                max_new: 15,
                mode: DecodeMode::Autoregressive,
                image_seed: None,
            })
            .unwrap();
        engine.run_until_idle();
        assert_eq!(h.snapshot(), (Status::Done, want));
    }

    /// Degenerate budgets (1 and 2 committed tokens) never spawn a draft
    /// thread yet still complete losslessly.
    #[test]
    fn async_pipeline_degenerate_budgets() {
        let engine = async_text_engine(1, 1, 8);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let mut ws = Workspace::new();
        for max_new in [1usize, 2] {
            let prompt = vec![3u32, 7, 1, 9];
            let (want, _) =
                speculative_greedy_with_budget_ws(&target, &draft, &prompt, max_new, 4, &mut ws);
            let h = engine.submit(spec_req(prompt, max_new, 4)).unwrap();
            engine.run_until_idle();
            assert_eq!(h.snapshot(), (Status::Done, want), "max_new={max_new}");
        }
        assert_eq!(engine.d_pool.free_blocks(), engine.d_pool.total_blocks());
    }

    /// Adaptive γ under the async pipeline: the depth cap breathes with
    /// the acceptance rate but no committed token may move.
    #[test]
    fn async_pipeline_adaptive_gamma_is_lossless() {
        let target = Arc::new(Decoder::new(DecoderConfig::tiny(40), 10));
        let draft = Arc::new(Decoder::new(DecoderConfig::tiny(40), 20));
        let engine = Engine::new(
            EngineModel::Text {
                target: Arc::clone(&target),
                draft: Arc::clone(&draft),
            },
            EngineConfig {
                adaptive_gamma: true,
                async_pipeline: true,
                ..EngineConfig::default()
            },
        );
        let mut ws = Workspace::new();
        for (i, prompt) in [vec![3u32, 7, 1, 9], vec![5, 2], vec![8, 8, 8]]
            .into_iter()
            .enumerate()
        {
            let budget = 20 + i;
            let (want, _) =
                speculative_greedy_with_budget_ws(&target, &draft, &prompt, budget, 4, &mut ws);
            let h = engine.submit(spec_req(prompt, budget, 4)).unwrap();
            engine.run_until_idle();
            assert_eq!(h.snapshot(), (Status::Done, want), "request {i}");
        }
    }

    /// Cancelling a running async session stops the draft thread, keeps
    /// the committed prefix (a prefix of the true completion), and frees
    /// both leases for the next request.
    #[test]
    fn async_pipeline_cancel_mid_flight() {
        let engine = async_text_engine(1, 1, 8);
        let target = Decoder::new(DecoderConfig::tiny(40), 10);
        let draft = Decoder::new(DecoderConfig::tiny(40), 20);
        let mut ws = Workspace::new();
        let h1 = engine.submit(spec_req(vec![3, 7, 1, 9], 60, 3)).unwrap();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Let a few blocks commit, then cancel mid-flight.
                while h1.snapshot().1.len() < 3 {
                    std::thread::yield_now();
                }
                assert!(engine.cancel(h1.id));
            });
            engine.run_until_idle();
        });
        let (s1, t1) = h1.snapshot();
        assert_eq!(s1, Status::Cancelled);
        assert!(!t1.is_empty(), "committed prefix survives cancel");
        let (want, _) =
            speculative_greedy_with_budget_ws(&target, &draft, &[3, 7, 1, 9], 60, 3, &mut ws);
        assert_eq!(t1[..], want[..t1.len()], "prefix must match true stream");
        assert_eq!(engine.metrics().requests_cancelled.get(), 1);
        // Draft thread joined, leases back in the pools.
        assert_eq!(engine.t_pool.free_blocks(), engine.t_pool.total_blocks());
        assert_eq!(engine.d_pool.free_blocks(), engine.d_pool.total_blocks());
        // The slot is reusable after the cancel.
        let (want2, _) =
            speculative_greedy_with_budget_ws(&target, &draft, &[5, 2], 10, 3, &mut ws);
        let h2 = engine.submit(spec_req(vec![5, 2], 10, 3)).unwrap();
        engine.run_until_idle();
        assert_eq!(h2.snapshot(), (Status::Done, want2));
    }

    /// `drain_pipeline` after a stopped `run_pipeline` finishes in-flight
    /// sessions with a terminal status and joins their draft threads —
    /// the server's SHUTDOWN path in miniature.
    #[test]
    fn async_pipeline_drain_finishes_in_flight_sessions() {
        let engine = async_text_engine(2, 1, 8);
        let stop = AtomicBool::new(false);
        let h = engine.submit(spec_req(vec![3, 7, 1, 9], 60, 3)).unwrap();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while h.snapshot().1.len() < 2 {
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Release);
            });
            engine.run_pipeline(Some(&stop));
        });
        let drained = Instant::now();
        engine.cancel_all();
        engine.drain_pipeline(Duration::from_secs(5));
        assert!(
            drained.elapsed() < Duration::from_secs(5),
            "drain must not exhaust its bound"
        );
        assert_eq!(h.snapshot().0, Status::Cancelled);
        assert_eq!(engine.t_pool.free_blocks(), engine.t_pool.total_blocks());
        assert_eq!(engine.d_pool.free_blocks(), engine.d_pool.total_blocks());
        assert_eq!(engine.pipe_active.load(Ordering::Acquire), 0);
    }

    /// Multimodal requests through the async pipeline: hybrid-cache
    /// speculation with a free-running draft still matches
    /// `mm_speculative_ws` exactly.
    #[test]
    fn async_pipeline_multimodal_is_lossless() {
        use aasd_mm::{draft_for, mm_speculative_ws, LlavaSimConfig};
        let cfg = LlavaSimConfig::tiny(40, 96);
        let model = Arc::new(LlavaSim::new(cfg.clone(), 0xB0));
        let draft = Arc::new(draft_for(&cfg, 0xB1));
        let projector = Arc::new(KvProjector::new(
            0xB2,
            draft.cfg.n_layers,
            cfg.lm.n_layers,
            cfg.n_img(),
            cfg.k_slots(),
        ));
        let engine = Engine::new(
            EngineModel::Multimodal {
                model: Arc::clone(&model),
                draft: Arc::clone(&draft),
                projector: Arc::clone(&projector),
                ablation: Ablation::projector(),
            },
            EngineConfig {
                slots: 2,
                workers: 2,
                max_queue: 8,
                vision_cache_entries: 4,
                async_pipeline: true,
                ..EngineConfig::default()
            },
        );
        let mut ws = Workspace::new();
        let prompt = vec![3u32, 11, 25, 7];
        let mut handles = Vec::new();
        let mut want = Vec::new();
        for seed in [5u64, 9, 5] {
            let img = Image::synthetic(
                &mut Rng::new(seed),
                cfg.vision.n_patches,
                cfg.vision.patch_dim,
            );
            let (w, _) = mm_speculative_ws(
                &model,
                &draft,
                Some(&projector),
                Ablation::projector(),
                &img,
                &prompt,
                18,
                3,
                &mut ws,
            );
            want.push(w);
            handles.push(
                engine
                    .submit(Request {
                        prompt: prompt.clone(),
                        max_new: 18,
                        mode: DecodeMode::Speculative { gamma: 3 },
                        image_seed: Some(seed),
                    })
                    .unwrap(),
            );
        }
        engine.run_until_idle();
        for (h, w) in handles.iter().zip(&want) {
            assert_eq!(h.snapshot(), (Status::Done, w.clone()));
        }
    }
}
