//! Demo: start an aasd-serve server on an ephemeral port, run a handful of
//! concurrent speculative requests through the TCP protocol, and print the
//! metrics endpoint.
//!
//! ```text
//! cargo run --release -p aasd-serve --bin serve_demo
//! ```

use std::sync::Arc;

use aasd_nn::{Decoder, DecoderConfig};
use aasd_serve::{Client, Engine, EngineConfig, EngineModel, Server};

fn main() {
    let target = Arc::new(Decoder::new(DecoderConfig::bench_target(256, 256), 42));
    let draft = Arc::new(Decoder::new(DecoderConfig::bench_draft(256, 256), 43));
    let engine = Engine::new(
        EngineModel::Text { target, draft },
        EngineConfig {
            slots: 4,
            workers: 1,
            max_queue: 32,
            async_pipeline: true,
            ..EngineConfig::default()
        },
    );
    let mut server = Server::start(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    println!("serving on {}", server.addr());

    let mut clients: Vec<(u64, Client)> = Vec::new();
    for i in 0..6u64 {
        let mut c = Client::connect(server.addr()).expect("connect");
        let cmd = format!(
            "SUB mode=spec gamma=5 budget=48 prompt={},{},{}",
            3 + i,
            7,
            11 + i
        );
        let id = c.submit(&cmd).expect("io").expect("admitted");
        println!("submitted request {id}: {cmd}");
        clients.push((id, c));
    }
    for (id, c) in &mut clients {
        let (status, tokens) = c.wait_done(*id).expect("poll");
        println!(
            "request {id}: {status}, {} tokens, head = {:?}",
            tokens.len(),
            &tokens[..tokens.len().min(8)]
        );
    }

    let mut c = Client::connect(server.addr()).expect("connect");
    println!("\n--- METRICS ---\n{}", c.roundtrip("METRICS").expect("io"));
    server.shutdown();
}
