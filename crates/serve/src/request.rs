//! Request descriptors and the shared per-request handle clients poll.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use aasd_specdec::SpecStats;

/// Server-assigned request identifier.
pub type RequestId = u64;

/// How a request's tokens are decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeMode {
    /// Draft-then-verify speculative decoding with the given γ. Lossless:
    /// token-identical to [`DecodeMode::Autoregressive`] on the same model.
    Speculative { gamma: usize },
    /// Plain greedy decoding on the target only (the serving baseline).
    Autoregressive,
}

/// One decode request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub prompt: Vec<u32>,
    /// Upper bound on new tokens; the engine clamps it to the feasible
    /// budget left by the context window after prefill.
    pub max_new: usize,
    pub mode: DecodeMode,
    /// Multimodal engines only: deterministic seed for the request's
    /// synthetic image (the offline stand-in for an image payload). Must be
    /// `None` on text engines.
    pub image_seed: Option<u64>,
}

/// Lifecycle of a request inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Admitted, waiting for a session slot.
    Queued,
    /// Attached to a slot; tokens are streaming.
    Running,
    /// All tokens emitted; `stats` is final.
    Done,
    /// Cancelled before completion (client request or shutdown drain).
    Cancelled,
}

#[derive(Debug)]
struct HandleInner {
    status: Status,
    tokens: Vec<u32>,
    stats: Option<SpecStats>,
}

/// Shared handle for one admitted request.
///
/// The scheduler publishes committed tokens here after every block; clients
/// poll (or block on [`RequestHandle::wait_done`]) without ever touching
/// the scheduler's lock — the handle is its own tiny synchronization
/// domain, so a slow poller cannot stall decode progress.
#[derive(Debug)]
pub struct RequestHandle {
    pub id: RequestId,
    submitted_at: Instant,
    inner: Mutex<HandleInner>,
    done_cv: Condvar,
    cancel: AtomicBool,
    /// Time-to-first-token in nanoseconds; 0 until the first token lands.
    ttft_ns: AtomicU64,
}

impl RequestHandle {
    pub(crate) fn new(id: RequestId) -> Self {
        Self {
            id,
            submitted_at: Instant::now(),
            inner: Mutex::new(HandleInner {
                status: Status::Queued,
                tokens: Vec::new(),
                stats: None,
            }),
            done_cv: Condvar::new(),
            cancel: AtomicBool::new(false),
            ttft_ns: AtomicU64::new(0),
        }
    }

    /// Current status plus a snapshot of every token committed so far.
    pub fn snapshot(&self) -> (Status, Vec<u32>) {
        let inner = self.inner.lock().unwrap();
        (inner.status, inner.tokens.clone())
    }

    /// Final stats (speculative sessions only), once done.
    pub fn stats(&self) -> Option<SpecStats> {
        self.inner.lock().unwrap().stats.clone()
    }

    /// Request cancellation. Takes effect at the next block boundary; the
    /// tokens already committed stay readable.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    pub fn is_cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    /// Block until the request reaches a terminal state; returns it.
    pub fn wait_done(&self) -> Status {
        let mut inner = self.inner.lock().unwrap();
        while !matches!(inner.status, Status::Done | Status::Cancelled) {
            inner = self.done_cv.wait(inner).unwrap();
        }
        inner.status
    }

    /// Time-to-first-token, if the first token has landed.
    pub fn ttft_ms(&self) -> Option<f64> {
        let ns = self.ttft_ns.load(Ordering::Relaxed);
        (ns > 0).then(|| ns as f64 / 1e6)
    }

    // ---- scheduler-side mutators (crate-private) -----------------------

    pub(crate) fn mark_running(&self) {
        self.inner.lock().unwrap().status = Status::Running;
    }

    pub(crate) fn push_tokens(&self, new: &[u32]) {
        if new.is_empty() {
            return;
        }
        if self.ttft_ns.load(Ordering::Relaxed) == 0 {
            let ns = self.submitted_at.elapsed().as_nanos().max(1) as u64;
            self.ttft_ns.store(ns, Ordering::Relaxed);
        }
        self.inner.lock().unwrap().tokens.extend_from_slice(new);
    }

    pub(crate) fn finish(&self, status: Status, stats: Option<SpecStats>) {
        debug_assert!(matches!(status, Status::Done | Status::Cancelled));
        let mut inner = self.inner.lock().unwrap();
        inner.status = status;
        inner.stats = stats;
        drop(inner);
        self.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_lifecycle() {
        let h = RequestHandle::new(7);
        assert_eq!(h.snapshot(), (Status::Queued, vec![]));
        assert!(h.ttft_ms().is_none());
        h.mark_running();
        h.push_tokens(&[1, 2]);
        assert!(h.ttft_ms().is_some());
        h.push_tokens(&[3]);
        assert_eq!(h.snapshot(), (Status::Running, vec![1, 2, 3]));
        h.finish(Status::Done, None);
        assert_eq!(h.wait_done(), Status::Done);
    }

    #[test]
    fn cancel_flag_roundtrip() {
        let h = RequestHandle::new(1);
        assert!(!h.is_cancel_requested());
        h.cancel();
        assert!(h.is_cancel_requested());
    }
}
