//! Lock-free serving metrics: monotonic counters, gauges, and fixed-bucket
//! latency histograms.
//!
//! Every instrument is a plain `AtomicU64` (or a fixed array of them), so
//! worker threads record with relaxed stores and never contend on a lock —
//! the scheduler hot path pays a handful of atomic adds per block. The
//! registry renders two ways: a Prometheus-style text exposition for the
//! `METRICS` protocol command, and a JSON object (via the shared
//! `aasd-json` writer, the same one the bench harness uses) for the
//! `METRICS_JSON` command and the `perf_snapshot` serving section.
//!
//! Histograms are fixed-bucket by design: the bucket bounds are chosen at
//! construction, recording is O(#buckets) in the worst case (a linear scan
//! over ≤ 20 bounds), and quantiles are estimated by linear interpolation
//! inside the target bucket — the standard Prometheus-histogram trade-off,
//! which is exactly what a live serving endpoint wants (bounded memory, no
//! per-sample storage, mergeable across restarts).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge (queue depth, active sessions).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in milliseconds. Exponential-ish
/// coverage from sub-millisecond decode blocks up to multi-second queue
/// waits; values past the last bound land in the overflow bucket.
pub const DEFAULT_BOUNDS_MS: [f64; 16] = [
    0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
    5000.0,
];

/// Fixed-bucket latency histogram with lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    bounds_ms: Vec<f64>,
    /// `bounds_ms.len() + 1` buckets; the last one is overflow.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum in nanoseconds so sub-millisecond samples are not rounded away.
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new(&DEFAULT_BOUNDS_MS)
    }
}

impl Histogram {
    pub fn new(bounds_ms: &[f64]) -> Self {
        assert!(!bounds_ms.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds_ms.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        Self {
            bounds_ms: bounds_ms.to_vec(),
            buckets: (0..bounds_ms.len() + 1)
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record one latency sample. NaN, infinite, and negative inputs are
    /// **rejected** (dropped, not clamped): a clock that produced garbage
    /// must not silently deposit a zero into the sum and skew every mean
    /// and quantile derived from it.
    pub fn record_ms(&self, ms: f64) {
        if !ms.is_finite() || ms < 0.0 {
            return;
        }
        let idx = self
            .bounds_ms
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(self.bounds_ms.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns
            .fetch_add((ms * 1e6).round() as u64, Ordering::Relaxed);
    }

    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / 1e6 / n as f64
        }
    }

    /// Quantile estimate (`q` in `[0, 1]`), linearly interpolated inside the
    /// target bucket. Overflow-bucket hits are reported as the last bound
    /// (a floor, like Prometheus' `histogram_quantile`). An empty histogram
    /// returns the defined value 0.0 without scanning any bucket.
    ///
    /// The buckets are snapshotted first and the total derived from the
    /// snapshot, so a concurrent `record_ms` (bucket bumped, `count` not
    /// yet) can never send the scan hunting for a rank beyond the buckets'
    /// sum — the scan is self-consistent by construction.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if seen + c >= target {
                if i == self.bounds_ms.len() {
                    return self.bounds_ms[self.bounds_ms.len() - 1];
                }
                let lo = if i == 0 { 0.0 } else { self.bounds_ms[i - 1] };
                let hi = self.bounds_ms[i];
                return lo + (hi - lo) * (target - seen) as f64 / c as f64;
            }
            seen += c;
        }
        unreachable!("target rank {target} exceeds snapshot total {n}")
    }

    /// Per-bucket cumulative counts, Prometheus `le`-style.
    fn cumulative(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut acc = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            acc += bucket.load(Ordering::Relaxed);
            let label = if i == self.bounds_ms.len() {
                "+Inf".to_string()
            } else {
                format!("{}", self.bounds_ms[i])
            };
            out.push((label, acc));
        }
        out
    }
}

/// The serving metrics registry: one instance per engine, shared by every
/// worker and connection thread through `Arc`.
#[derive(Debug)]
pub struct Metrics {
    // Request lifecycle.
    pub requests_submitted: Counter,
    pub requests_rejected: Counter,
    pub requests_completed: Counter,
    pub requests_cancelled: Counter,
    // Token/engine throughput.
    pub tokens_generated: Counter,
    pub scheduler_ticks: Counter,
    // Speculation counters, merged from every finished session's SpecStats
    // (see `SpecStats::merge` for the τ convention).
    pub spec_blocks: Counter,
    pub spec_drafted: Counter,
    pub spec_accepted: Counter,
    pub spec_prefill_tokens: Counter,
    // Shared-prefix vision cache (multimodal engines; always 0 on text).
    pub vision_cache_hits: Counter,
    pub vision_cache_misses: Counter,
    // Async draft/target pipeline (always 0 under the sync scheduler).
    /// Rollbacks issued by the verify leg to a free-running draft.
    pub draft_rollbacks: Counter,
    /// Draft-worker park transitions: the ring reached the speculation
    /// depth cap (or the draft KV lease ran out) and the producer stalled.
    pub ring_full_stalls: Counter,
    /// Verify-leg stall transitions: a target worker found a session's
    /// ring empty and had to move on without a verify pass.
    pub verify_idle_stalls: Counter,
    // Live state.
    pub queue_depth: Gauge,
    pub active_sessions: Gauge,
    /// Free blocks in the target / draft KV pools after the last refill —
    /// the quantity admission control actually reasons in.
    pub kv_free_blocks_target: Gauge,
    pub kv_free_blocks_draft: Gauge,
    // Latency distributions.
    pub ttft_ms: Histogram,
    pub token_ms: Histogram,
    pub block_ms: Histogram,
    /// Proposals scored per verify pass under the async pipeline — the
    /// unitless distribution that shows how deep speculation actually ran
    /// (the [`Histogram`] machinery is reused; samples are token counts,
    /// not milliseconds, and the renderings drop the `_ms` suffix).
    pub speculation_depth: Histogram,
}

/// Bucket bounds for [`Metrics::speculation_depth`]: powers of two up to
/// `MAX_GAMMA`, so the distribution separates "sync-like γ" blocks from
/// the deep free-running ones the pipeline exists to create.
pub const DEPTH_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

impl Default for Metrics {
    fn default() -> Self {
        Self {
            requests_submitted: Counter::default(),
            requests_rejected: Counter::default(),
            requests_completed: Counter::default(),
            requests_cancelled: Counter::default(),
            tokens_generated: Counter::default(),
            scheduler_ticks: Counter::default(),
            spec_blocks: Counter::default(),
            spec_drafted: Counter::default(),
            spec_accepted: Counter::default(),
            spec_prefill_tokens: Counter::default(),
            vision_cache_hits: Counter::default(),
            vision_cache_misses: Counter::default(),
            draft_rollbacks: Counter::default(),
            ring_full_stalls: Counter::default(),
            verify_idle_stalls: Counter::default(),
            queue_depth: Gauge::default(),
            active_sessions: Gauge::default(),
            kv_free_blocks_target: Gauge::default(),
            kv_free_blocks_draft: Gauge::default(),
            ttft_ms: Histogram::default(),
            token_ms: Histogram::default(),
            block_ms: Histogram::default(),
            speculation_depth: Histogram::new(&DEPTH_BOUNDS),
        }
    }
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one finished session's speculation counters in.
    pub fn merge_spec_stats(&self, s: &aasd_specdec::SpecStats) {
        self.spec_blocks.add(s.blocks as u64);
        self.spec_drafted.add(s.drafted as u64);
        self.spec_accepted.add(s.accepted as u64);
        self.spec_prefill_tokens.add(s.prefill_tokens as u64);
    }

    /// Aggregate acceptance rate α across all completed sessions.
    pub fn alpha(&self) -> f64 {
        let d = self.spec_drafted.get();
        if d == 0 {
            0.0
        } else {
            self.spec_accepted.get() as f64 / d as f64
        }
    }

    /// Aggregate block efficiency τ across all completed sessions
    /// (prefill-decided tokens excluded, same convention as
    /// `SpecStats::block_efficiency`).
    pub fn tau(&self) -> f64 {
        let b = self.spec_blocks.get();
        if b == 0 {
            0.0
        } else {
            let gen = self
                .tokens_generated
                .get()
                .saturating_sub(self.spec_prefill_tokens.get());
            gen as f64 / b as f64
        }
    }

    /// Prometheus-style text exposition (the `METRICS` protocol command).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let counters: [(&str, &Counter); 15] = [
            ("aasd_requests_submitted_total", &self.requests_submitted),
            ("aasd_requests_rejected_total", &self.requests_rejected),
            ("aasd_requests_completed_total", &self.requests_completed),
            ("aasd_requests_cancelled_total", &self.requests_cancelled),
            ("aasd_tokens_generated_total", &self.tokens_generated),
            ("aasd_scheduler_ticks_total", &self.scheduler_ticks),
            ("aasd_spec_blocks_total", &self.spec_blocks),
            ("aasd_spec_drafted_total", &self.spec_drafted),
            ("aasd_spec_accepted_total", &self.spec_accepted),
            ("aasd_spec_prefill_tokens_total", &self.spec_prefill_tokens),
            ("aasd_vision_cache_hits_total", &self.vision_cache_hits),
            ("aasd_vision_cache_misses_total", &self.vision_cache_misses),
            ("aasd_draft_rollbacks_total", &self.draft_rollbacks),
            ("aasd_ring_full_stalls_total", &self.ring_full_stalls),
            ("aasd_verify_idle_stalls_total", &self.verify_idle_stalls),
        ];
        for (name, c) in counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
        }
        for (name, g) in [
            ("aasd_queue_depth", &self.queue_depth),
            ("aasd_active_sessions", &self.active_sessions),
            ("aasd_kv_free_blocks_target", &self.kv_free_blocks_target),
            ("aasd_kv_free_blocks_draft", &self.kv_free_blocks_draft),
        ] {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
        }
        for (name, v) in [("aasd_alpha", self.alpha()), ("aasd_tau", self.tau())] {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v:.6}\n"));
        }
        for (name, h) in [
            ("aasd_ttft_ms", &self.ttft_ms),
            ("aasd_token_ms", &self.token_ms),
            ("aasd_block_ms", &self.block_ms),
        ] {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (le, c) in h.cumulative() {
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {c}\n"));
            }
            out.push_str(&format!("{name}_count {}\n", h.count()));
            out.push_str(&format!("{name}_mean_ms {:.6}\n", h.mean_ms()));
            for q in [0.5, 0.95] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{q}\"}} {:.6}\n",
                    h.quantile_ms(q)
                ));
            }
        }
        // Unitless depth distribution: same exposition shape, no `_ms`.
        let h = &self.speculation_depth;
        out.push_str("# TYPE aasd_speculation_depth histogram\n");
        for (le, c) in h.cumulative() {
            out.push_str(&format!(
                "aasd_speculation_depth_bucket{{le=\"{le}\"}} {c}\n"
            ));
        }
        out.push_str(&format!("aasd_speculation_depth_count {}\n", h.count()));
        out.push_str(&format!("aasd_speculation_depth_mean {:.6}\n", h.mean_ms()));
        for q in [0.5, 0.95] {
            out.push_str(&format!(
                "aasd_speculation_depth{{quantile=\"{q}\"}} {:.6}\n",
                h.quantile_ms(q)
            ));
        }
        out
    }

    /// JSON rendering through the shared `aasd-json` writer — the same
    /// shape the `perf_snapshot` serving section embeds.
    pub fn render_json(&self) -> String {
        let hist = |h: &Histogram| {
            aasd_json::object(&[
                aasd_json::field("count", &h.count().to_string()),
                aasd_json::field("mean_ms", &aasd_json::num(h.mean_ms())),
                aasd_json::field("p50_ms", &aasd_json::num(h.quantile_ms(0.5))),
                aasd_json::field("p95_ms", &aasd_json::num(h.quantile_ms(0.95))),
            ])
        };
        aasd_json::object(&[
            aasd_json::field("submitted", &self.requests_submitted.get().to_string()),
            aasd_json::field("rejected", &self.requests_rejected.get().to_string()),
            aasd_json::field("completed", &self.requests_completed.get().to_string()),
            aasd_json::field("cancelled", &self.requests_cancelled.get().to_string()),
            aasd_json::field("tokens_generated", &self.tokens_generated.get().to_string()),
            aasd_json::field("scheduler_ticks", &self.scheduler_ticks.get().to_string()),
            aasd_json::field(
                "vision_cache_hits",
                &self.vision_cache_hits.get().to_string(),
            ),
            aasd_json::field(
                "vision_cache_misses",
                &self.vision_cache_misses.get().to_string(),
            ),
            aasd_json::field("draft_rollbacks", &self.draft_rollbacks.get().to_string()),
            aasd_json::field("ring_full_stalls", &self.ring_full_stalls.get().to_string()),
            aasd_json::field(
                "verify_idle_stalls",
                &self.verify_idle_stalls.get().to_string(),
            ),
            aasd_json::field("queue_depth", &self.queue_depth.get().to_string()),
            aasd_json::field(
                "kv_free_blocks_target",
                &self.kv_free_blocks_target.get().to_string(),
            ),
            aasd_json::field(
                "kv_free_blocks_draft",
                &self.kv_free_blocks_draft.get().to_string(),
            ),
            aasd_json::field("active_sessions", &self.active_sessions.get().to_string()),
            aasd_json::field("alpha", &aasd_json::num(self.alpha())),
            aasd_json::field("tau", &aasd_json::num(self.tau())),
            aasd_json::field("ttft_ms", &hist(&self.ttft_ms)),
            aasd_json::field("token_ms", &hist(&self.token_ms)),
            aasd_json::field("block_ms", &hist(&self.block_ms)),
            aasd_json::field(
                "speculation_depth",
                // Unitless: token counts per verify pass, no `_ms` keys.
                &aasd_json::object(&[
                    aasd_json::field("count", &self.speculation_depth.count().to_string()),
                    aasd_json::field("mean", &aasd_json::num(self.speculation_depth.mean_ms())),
                    aasd_json::field(
                        "p50",
                        &aasd_json::num(self.speculation_depth.quantile_ms(0.5)),
                    ),
                    aasd_json::field(
                        "p95",
                        &aasd_json::num(self.speculation_depth.quantile_ms(0.95)),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for _ in 0..50 {
            h.record_ms(0.5); // bucket (0, 1]
        }
        for _ in 0..50 {
            h.record_ms(3.0); // bucket (2, 4]
        }
        assert_eq!(h.count(), 100);
        // p50 falls exactly at the end of the first bucket.
        assert!((h.quantile_ms(0.5) - 1.0).abs() < 1e-9);
        // p95: rank 95 is the 45th of 50 samples in (2, 4] → 2 + 2*45/50.
        assert!((h.quantile_ms(0.95) - 3.8).abs() < 1e-9);
        assert!((h.mean_ms() - 1.75).abs() < 1e-9);
    }

    #[test]
    fn histogram_overflow_reports_last_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.record_ms(100.0);
        assert!((h.quantile_ms(0.5) - 2.0).abs() < 1e-9);
        assert_eq!(h.cumulative().last().unwrap().1, 1);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    /// Garbage samples are dropped, not zero-clamped: they must leave the
    /// count, sum, and every quantile exactly as they were.
    #[test]
    fn non_finite_and_negative_samples_are_rejected() {
        let h = Histogram::new(&[1.0]);
        h.record_ms(0.5);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0] {
            h.record_ms(bad);
        }
        assert_eq!(h.count(), 1);
        assert!((h.mean_ms() - 0.5).abs() < 1e-9);
        assert!((h.quantile_ms(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_tau_derive_from_merged_stats() {
        let m = Metrics::new();
        m.merge_spec_stats(&aasd_specdec::SpecStats {
            blocks: 4,
            drafted: 12,
            accepted: 9,
            generated: 13,
            prefill_tokens: 1,
        });
        m.tokens_generated.add(13);
        assert!((m.alpha() - 0.75).abs() < 1e-12);
        assert!((m.tau() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn renderings_contain_core_series() {
        let m = Metrics::new();
        m.requests_submitted.inc();
        m.ttft_ms.record_ms(3.0);
        let text = m.render_text();
        assert!(text.contains("aasd_requests_submitted_total 1"));
        assert!(text.contains("aasd_ttft_ms_count 1"));
        assert!(text.contains("quantile=\"0.95\""));
        let json = m.render_json();
        assert!(json.contains("\"submitted\": 1"));
        assert!(json.contains("\"p95_ms\""));
    }

    /// The async-pipeline series appear in both renderings — the depth
    /// histogram without any `_ms` suffix (its samples are token counts).
    #[test]
    fn pipeline_series_render_in_text_and_json() {
        let m = Metrics::new();
        m.draft_rollbacks.add(3);
        m.ring_full_stalls.add(2);
        m.verify_idle_stalls.inc();
        for depth in [1.0, 4.0, 9.0, 9.0] {
            m.speculation_depth.record_ms(depth);
        }
        let text = m.render_text();
        assert!(text.contains("aasd_draft_rollbacks_total 3"));
        assert!(text.contains("aasd_ring_full_stalls_total 2"));
        assert!(text.contains("aasd_verify_idle_stalls_total 1"));
        assert!(text.contains("aasd_speculation_depth_count 4"));
        assert!(text.contains("aasd_speculation_depth_bucket{le=\"16\"} 4"));
        assert!(text.contains("aasd_speculation_depth_mean 5.75"));
        assert!(!text.contains("aasd_speculation_depth_mean_ms"));
        let json = m.render_json();
        assert!(json.contains("\"draft_rollbacks\": 3"));
        assert!(json.contains("\"ring_full_stalls\": 2"));
        assert!(json.contains("\"verify_idle_stalls\": 1"));
        assert!(json.contains("\"speculation_depth\""));
        assert!(json.contains("\"p95\""));
    }
}
