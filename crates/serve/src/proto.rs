//! The wire protocol: length-prefixed UTF-8 text frames over TCP.
//!
//! Every frame is a big-endian `u32` byte length followed by that many bytes
//! of UTF-8. Requests and responses are single frames, so the protocol is
//! trivially implementable from any language with a socket (`printf`-style
//! clients included) while staying unambiguous about message boundaries —
//! no sentinel bytes inside payloads to escape.
//!
//! Commands (client → server):
//!
//! ```text
//! SUB mode=spec gamma=4 budget=32 prompt=3,7,1,9 [img=SEED]
//! SUB mode=ar budget=32 prompt=3,7,1,9 [img=SEED]
//! POLL <id>
//! CANCEL <id>
//! METRICS          # Prometheus-style text
//! METRICS_JSON     # same registry as JSON
//! SHUTDOWN
//! ```
//!
//! Responses (server → client):
//!
//! ```text
//! OK <id>                     # SUB accepted
//! BUSY                        # admission control rejected (retry later)
//! ERR <message>               # invalid request / unknown id / parse error
//! TOK <status> <n> t1,t2,..   # POLL: status ∈ queued|running|done|cancelled
//! ```

use std::io::{self, Read, Write};

use crate::request::{DecodeMode, Request, RequestId, Status};

/// Upper bound on a frame payload; anything larger is a protocol error
/// (guards the server against a hostile or confused client asking it to
/// buffer gigabytes).
pub const MAX_FRAME: usize = 1 << 20;

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, msg: &str) -> io::Result<()> {
    let bytes = msg.as_bytes();
    assert!(bytes.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME}"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Submit(Request),
    Poll(RequestId),
    Cancel(RequestId),
    Metrics,
    MetricsJson,
    Shutdown,
}

/// Parse one command frame.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or("empty command")?;
    match verb {
        "SUB" => parse_submit(parts).map(Command::Submit),
        "POLL" => parse_id(parts).map(Command::Poll),
        "CANCEL" => parse_id(parts).map(Command::Cancel),
        "METRICS" => Ok(Command::Metrics),
        "METRICS_JSON" => Ok(Command::MetricsJson),
        "SHUTDOWN" => Ok(Command::Shutdown),
        other => Err(format!("unknown command {other}")),
    }
}

fn parse_id<'a>(mut parts: impl Iterator<Item = &'a str>) -> Result<RequestId, String> {
    parts
        .next()
        .ok_or("missing request id")?
        .parse::<RequestId>()
        .map_err(|e| format!("bad request id: {e}"))
}

fn parse_submit<'a>(parts: impl Iterator<Item = &'a str>) -> Result<Request, String> {
    let mut mode: Option<&str> = None;
    let mut gamma: Option<usize> = None;
    let mut budget: Option<usize> = None;
    let mut prompt: Option<Vec<u32>> = None;
    let mut img: Option<u64> = None;
    for kv in parts {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("bad field {kv}"))?;
        match k {
            "mode" => mode = Some(v),
            "gamma" => gamma = Some(v.parse().map_err(|e| format!("bad gamma: {e}"))?),
            "budget" => budget = Some(v.parse().map_err(|e| format!("bad budget: {e}"))?),
            "img" => img = Some(v.parse().map_err(|e| format!("bad img seed: {e}"))?),
            "prompt" => {
                let toks: Result<Vec<u32>, _> = v.split(',').map(|t| t.parse::<u32>()).collect();
                prompt = Some(toks.map_err(|e| format!("bad prompt: {e}"))?);
            }
            other => return Err(format!("unknown field {other}")),
        }
    }
    let mode = match mode.ok_or("missing mode")? {
        "spec" => DecodeMode::Speculative {
            gamma: gamma.ok_or("mode=spec requires gamma")?,
        },
        "ar" => DecodeMode::Autoregressive,
        other => return Err(format!("unknown mode {other}")),
    };
    Ok(Request {
        prompt: prompt.ok_or("missing prompt")?,
        max_new: budget.ok_or("missing budget")?,
        mode,
        image_seed: img,
    })
}

/// Format a `TOK` poll response.
pub fn format_poll(status: Status, tokens: &[u32]) -> String {
    let status = match status {
        Status::Queued => "queued",
        Status::Running => "running",
        Status::Done => "done",
        Status::Cancelled => "cancelled",
    };
    let mut out = format!("TOK {status} {}", tokens.len());
    if !tokens.is_empty() {
        out.push(' ');
        for (i, t) in tokens.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_string());
        }
    }
    out
}

/// Parse a `TOK` response back into (status, tokens) — the client half.
pub fn parse_poll(line: &str) -> Result<(Status, Vec<u32>), String> {
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some("TOK") => {}
        other => return Err(format!("expected TOK, got {other:?}")),
    }
    let status = match parts.next().ok_or("missing status")? {
        "queued" => Status::Queued,
        "running" => Status::Running,
        "done" => Status::Done,
        "cancelled" => Status::Cancelled,
        other => return Err(format!("unknown status {other}")),
    };
    let n: usize = parts
        .next()
        .ok_or("missing count")?
        .parse()
        .map_err(|e| format!("bad count: {e}"))?;
    let tokens = match parts.next() {
        None => Vec::new(),
        Some(list) => list
            .split(',')
            .map(|t| t.parse::<u32>())
            .collect::<Result<Vec<u32>, _>>()
            .map_err(|e| format!("bad token: {e}"))?,
    };
    if tokens.len() != n {
        return Err(format!("count {n} != {} tokens", tokens.len()));
    }
    Ok((status, tokens))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello frames").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello frames"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "whole").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn submit_command_roundtrip() {
        let cmd = parse_command("SUB mode=spec gamma=4 budget=32 prompt=3,7,1,9").unwrap();
        assert_eq!(
            cmd,
            Command::Submit(Request {
                prompt: vec![3, 7, 1, 9],
                max_new: 32,
                mode: DecodeMode::Speculative { gamma: 4 },
                image_seed: None,
            })
        );
        let cmd = parse_command("SUB mode=ar budget=8 prompt=1 img=77").unwrap();
        assert_eq!(
            cmd,
            Command::Submit(Request {
                prompt: vec![1],
                max_new: 8,
                mode: DecodeMode::Autoregressive,
                image_seed: Some(77),
            })
        );
        assert_eq!(parse_command("POLL 12").unwrap(), Command::Poll(12));
        assert_eq!(parse_command("CANCEL 3").unwrap(), Command::Cancel(3));
        assert_eq!(parse_command("METRICS").unwrap(), Command::Metrics);
        assert_eq!(parse_command("METRICS_JSON").unwrap(), Command::MetricsJson);
        assert_eq!(parse_command("SHUTDOWN").unwrap(), Command::Shutdown);
    }

    #[test]
    fn bad_commands_are_errors() {
        for bad in [
            "",
            "NOPE",
            "SUB mode=spec budget=8 prompt=1", // spec without gamma
            "SUB mode=warp budget=8 prompt=1", // unknown mode
            "SUB mode=ar prompt=1",            // missing budget
            "SUB mode=ar budget=8",            // missing prompt
            "SUB mode=ar budget=8 prompt=1,x", // bad token
            "SUB mode=ar budget=8 prompt=1 z=2", // unknown field
            "POLL",
            "POLL abc",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn poll_response_roundtrip() {
        for (status, tokens) in [
            (Status::Queued, vec![]),
            (Status::Running, vec![5u32, 9, 2]),
            (Status::Done, vec![1]),
            (Status::Cancelled, vec![4, 4]),
        ] {
            let line = format_poll(status, &tokens);
            assert_eq!(parse_poll(&line).unwrap(), (status, tokens));
        }
        assert!(parse_poll("TOK done 2 1").is_err(), "count mismatch");
        assert!(parse_poll("OK 3").is_err());
    }
}
