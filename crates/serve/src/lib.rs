//! `aasd-serve` — a multi-session speculative-decoding server (std-only).
//!
//! The single-request story in `aasd-specdec`/`aasd-mm` proves AASD's
//! aligned draft is lossless and fast *in isolation*. This crate asks the
//! production question: does the speedup survive a server — multiple
//! concurrent sessions competing for compute, requests arriving while
//! others are mid-decode, latency measured at the socket?
//!
//! The answer is built from four pieces:
//!
//! * [`engine`] — a block-paged KV pool per model (sessions lease exactly
//!   the blocks their prompt + budget needs from one pre-allocated arena,
//!   and return them on completion), a FIFO admission queue that reasons
//!   in free blocks, an LRU shared-prefix vision cache keyed by image
//!   content hash (a hit maps the cached vision KV into the session
//!   copy-on-write and skips the ViT + connector + projector entirely),
//!   an optional per-session adaptive-γ controller, and a
//!   continuous-batching scheduler that advances every active session one
//!   speculative block per tick. Because each slot runs the *same*
//!   [`aasd_specdec::SpecSession`] state machine as the one-shot fused
//!   loops — on a lease sized so the capacity bound collapses onto the
//!   budget bound — every served completion is token-identical to a
//!   single-request run — losslessness survives scheduling and paging, by
//!   construction.
//! * [`request`] — the client-facing handle: status, streamed tokens, TTFT,
//!   cancellation.
//! * [`metrics`] — a lock-free registry (atomic counters/gauges +
//!   fixed-bucket histograms for TTFT, per-token latency and block time),
//!   rendered Prometheus-style or as JSON, including serving-level α/τ
//!   merged from every finished session.
//! * [`proto`]/[`server`] — a length-prefixed TCP line protocol
//!   (submit/poll/cancel/metrics) and the accept-loop front end with a
//!   dedicated scheduler thread.

pub mod engine;
pub mod metrics;
pub mod proto;
pub mod request;
pub mod server;

pub use engine::{Engine, EngineConfig, EngineModel, Rejection};
pub use metrics::{Counter, Gauge, Histogram, Metrics};
pub use request::{DecodeMode, Request, RequestHandle, RequestId, Status};
pub use server::{Client, Server};
