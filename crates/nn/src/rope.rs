//! Rotary position embeddings (Su et al. 2021), with the cos/sin tables
//! precomputed once per model so the hot decode path does no trig.

/// Precomputed rotary tables for every position up to `max_seq`.
#[derive(Debug, Clone)]
pub struct Rope {
    /// `[max_seq, head_dim/2]` each, row-major.
    cos: Vec<f32>,
    sin: Vec<f32>,
    half: usize,
}

impl Rope {
    pub fn new(max_seq: usize, head_dim: usize, theta: f32) -> Self {
        assert!(head_dim.is_multiple_of(2), "RoPE needs an even head dim");
        let half = head_dim / 2;
        let mut cos = Vec::with_capacity(max_seq * half);
        let mut sin = Vec::with_capacity(max_seq * half);
        for pos in 0..max_seq {
            for i in 0..half {
                let freq = theta.powf(-2.0 * i as f32 / head_dim as f32);
                let angle = pos as f32 * freq;
                cos.push(angle.cos());
                sin.push(angle.sin());
            }
        }
        Self { cos, sin, half }
    }

    /// Half the head dimension (pairs rotated per position).
    pub fn half(&self) -> usize {
        self.half
    }

    /// Copies of the cos/sin tables for positions `0..t` (`t × half`
    /// row-major each) — the format `aasd-autograd`'s `rope` op consumes
    /// when the training path replays this rotation on the tape.
    pub fn tables(&self, t: usize) -> (Vec<f32>, Vec<f32>) {
        self.tables_range(0, t)
    }

    /// Copies of the cos/sin tables for positions `start..start+t`. The
    /// hybrid-cache training path ropes text tokens at positions offset by
    /// the (un-rotated) vision-prefix length, matching what the inference
    /// path does when the draft cache is pre-seeded with projected KV rows.
    pub fn tables_range(&self, start: usize, t: usize) -> (Vec<f32>, Vec<f32>) {
        let (a, b) = (start * self.half, (start + t) * self.half);
        assert!(b <= self.cos.len(), "position range exceeds max_seq");
        (self.cos[a..b].to_vec(), self.sin[a..b].to_vec())
    }

    /// Rotate one head vector (`len == head_dim`, adjacent pairs) in place
    /// for absolute position `pos`.
    pub fn apply(&self, head: &mut [f32], pos: usize) {
        debug_assert_eq!(head.len(), 2 * self.half);
        let c = &self.cos[pos * self.half..(pos + 1) * self.half];
        let s = &self.sin[pos * self.half..(pos + 1) * self.half];
        for i in 0..self.half {
            let (x, y) = (head[2 * i], head[2 * i + 1]);
            head[2 * i] = x * c[i] - y * s[i];
            head[2 * i + 1] = x * s[i] + y * c[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aasd_tensor::{dot, Rng};

    #[test]
    fn position_zero_is_identity() {
        let rope = Rope::new(8, 16, 10_000.0);
        let mut rng = Rng::new(1);
        let orig: Vec<f32> = (0..16).map(|_| rng.normal()).collect();
        let mut v = orig.clone();
        rope.apply(&mut v, 0);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let rope = Rope::new(64, 32, 10_000.0);
        let mut rng = Rng::new(2);
        for pos in [1, 7, 63] {
            let orig: Vec<f32> = (0..32).map(|_| rng.normal()).collect();
            let mut v = orig.clone();
            rope.apply(&mut v, pos);
            let n0 = dot(&orig, &orig);
            let n1 = dot(&v, &v);
            assert!((n0 - n1).abs() / n0 < 1e-5);
        }
    }

    /// The defining RoPE property: ⟨R_p q, R_{p+d} k⟩ depends only on the
    /// offset d, not on the absolute position p.
    #[test]
    fn inner_product_is_relative() {
        let rope = Rope::new(128, 8, 10_000.0);
        let mut rng = Rng::new(3);
        let q: Vec<f32> = (0..8).map(|_| rng.normal()).collect();
        let k: Vec<f32> = (0..8).map(|_| rng.normal()).collect();
        let score = |p_q: usize, p_k: usize| {
            let (mut qq, mut kk) = (q.clone(), k.clone());
            rope.apply(&mut qq, p_q);
            rope.apply(&mut kk, p_k);
            dot(&qq, &kk)
        };
        let d = 5;
        let a = score(10, 10 + d);
        let b = score(90, 90 + d);
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }
}
