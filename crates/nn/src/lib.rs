//! `aasd-nn` — transformer building blocks for the AASD reproduction.
//!
//! The crate provides the decoder-only LM substrate that both the target
//! and draft models of the speculative-decoding engine are built from:
//!
//! * [`layers`] — `Linear`, `Embedding`, `RmsNorm`;
//! * [`quant`] — the [`quant::KernelPolicy`] switch and int8
//!   [`quant::QuantLinear`] shadow weights for the fused decode path;
//! * [`rope`] — rotary position embeddings with precomputed tables;
//! * [`cache`] — pre-allocated growable KV cache with O(1) rollback
//!   (the structure the AASD draft head will later attend over);
//! * [`attention`] — multi-head causal attention with an incremental cached
//!   path and a full-sequence matmul reference path;
//! * [`decoder`] — SwiGLU blocks and the [`decoder::Decoder`] model with
//!   `forward_infer` (prefill / decode / batched verify) and `forward_full`
//!   (stateless reference), both property-tested for agreement.
//!
//! Every inference layer additionally has a fused `_ws` variant that draws
//! scratch from an [`aasd_tensor::Workspace`] and folds the residual adds
//! into the output projections — `Decoder::forward_infer_ws` is the
//! zero-allocation decode path the speculative engine and benches run on.

pub mod attention;
pub mod cache;
pub mod decoder;
pub mod layers;
pub mod quant;
pub mod rope;

pub use attention::Attention;
pub use cache::{KvCache, KvCheckpoint, KvChunks, KvLayer, KvLayerMut, KvPool};
pub use decoder::{Decoder, DecoderBlock, DecoderConfig, Mlp};
pub use layers::{Embedding, Linear, RmsNorm};
pub use quant::{KernelPolicy, QuantLinear};
pub use rope::Rope;
