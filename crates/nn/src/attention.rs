//! Multi-head causal self-attention with two deliberately distinct paths:
//!
//! * [`Attention::forward_infer`] — the inference hot path. Projects the new
//!   token block, appends its K/V to the pre-allocated cache, then attends
//!   each query over the cached prefix with per-head dot products. One call
//!   handles prefill (`t = prompt`), decode (`t = 1`), and batched
//!   speculative verify (`t = γ`) uniformly — batching the γ verify tokens
//!   into a single call is what makes verification one weight pass instead
//!   of γ.
//! * [`Attention::forward_full`] — the full-sequence reference: materializes
//!   per-head `Q·Kᵀ` score matrices with the blocked matmul, applies an
//!   explicit causal mask, and never touches a cache. Kept as the semantic
//!   oracle the incremental path is property-tested against.

use crate::cache::KvLayerMut;
use crate::layers::Linear;
use crate::rope::Rope;
use aasd_tensor::simd::{attn_mix_with, attn_scores_with, softmax_row_with};
use aasd_tensor::{axpy, dot, softmax_row, Op, Rng, Tensor, Workspace};

#[derive(Debug, Clone)]
pub struct Attention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub n_heads: usize,
    pub head_dim: usize,
}

impl Attention {
    pub fn new(rng: &mut Rng, dim: usize, n_heads: usize) -> Self {
        assert!(dim.is_multiple_of(n_heads), "dim must divide into heads");
        Self {
            wq: Linear::new(rng, dim, dim),
            wk: Linear::new(rng, dim, dim),
            wv: Linear::new(rng, dim, dim),
            wo: Linear::new(rng, dim, dim),
            n_heads,
            head_dim: dim / n_heads,
        }
    }

    fn scale(&self) -> f32 {
        1.0 / (self.head_dim as f32).sqrt()
    }

    /// Incremental path. `x: [t, dim]` is the block of new token states whose
    /// absolute positions start at `cache.len()`; K/V for the block are
    /// appended to `cache` and each query attends causally over everything
    /// cached so far (prefix + earlier rows of this block).
    pub fn forward_infer(&self, x: &Tensor, rope: &Rope, mut cache: KvLayerMut<'_>) -> Tensor {
        let t = x.rows;
        let dim = x.cols;
        let pos0 = cache.len();
        let mut q = self.wq.forward(x);
        let mut k = self.wk.forward(x);
        let v = self.wv.forward(x);
        for i in 0..t {
            for h in 0..self.n_heads {
                let span = h * self.head_dim..(h + 1) * self.head_dim;
                rope.apply(&mut q.row_mut(i)[span.clone()], pos0 + i);
                rope.apply(&mut k.row_mut(i)[span], pos0 + i);
            }
        }
        for i in 0..t {
            cache.append(k.row(i), v.row(i));
        }

        let scale = self.scale();
        let mut ctx = Tensor::zeros(t, dim);
        // Scratch score buffer sized to the longest context this call sees.
        let mut scores = vec![0.0f32; pos0 + t];
        for i in 0..t {
            let ctx_len = pos0 + i + 1; // causal: positions 0..=pos0+i
            for h in 0..self.n_heads {
                let span = h * self.head_dim..(h + 1) * self.head_dim;
                let q_head = &q.row(i)[span.clone()];
                let scores = &mut scores[..ctx_len];
                for (j, s) in scores.iter_mut().enumerate() {
                    *s = dot(q_head, &cache.key(j)[span.clone()]) * scale;
                }
                softmax_row(scores);
                let out_head = &mut ctx.row_mut(i)[span.clone()];
                for (j, &w) in scores.iter().enumerate() {
                    axpy(out_head, w, &cache.value(j)[span.clone()]);
                }
            }
        }
        self.wo.forward(&ctx)
    }

    /// Fused workspace path: same semantics as [`Attention::forward_infer`],
    /// but every temporary comes from the [`Workspace`] pool and the output
    /// projection accumulates straight into the caller's residual stream
    /// (`resid += attn(norm_x)·Wo`), so steady-state decode touches the
    /// allocator zero times. `norm_x` is the already-normed block `[t, dim]`.
    ///
    /// The score scratch is sized to the cache **capacity**, not the current
    /// context, so the workspace sees an identical request size every step.
    pub fn forward_infer_ws(
        &self,
        norm_x: &[f32],
        t: usize,
        rope: &Rope,
        mut cache: KvLayerMut<'_>,
        ws: &mut Workspace,
        resid: &mut [f32],
    ) {
        let dim = self.n_heads * self.head_dim;
        debug_assert_eq!(norm_x.len(), t * dim);
        debug_assert_eq!(resid.len(), t * dim);
        let pos0 = cache.len();
        // Resolve the SIMD backend once per call instead of per score row.
        let bk = aasd_tensor::backend();

        let span = ws.prof.begin();
        let mut q = ws.take(t * dim);
        let mut k = ws.take(t * dim);
        let mut v = ws.take(t * dim);
        self.wq.forward_rows_into_ws(norm_x, t, ws, &mut q);
        self.wk.forward_rows_into_ws(norm_x, t, ws, &mut k);
        self.wv.forward_rows_into_ws(norm_x, t, ws, &mut v);
        for i in 0..t {
            for h in 0..self.n_heads {
                let hs = h * self.head_dim..(h + 1) * self.head_dim;
                rope.apply(&mut q[i * dim..][hs.clone()], pos0 + i);
                rope.apply(&mut k[i * dim..][hs], pos0 + i);
            }
        }
        for i in 0..t {
            cache.append(&k[i * dim..(i + 1) * dim], &v[i * dim..(i + 1) * dim]);
        }
        ws.prof.end(span, Op::Qkv);

        let scale = self.scale();
        let mut ctx = ws.take(t * dim);
        let mut scores = ws.take(cache.capacity());
        // One batched-kernel call per head **per cache block** instead of one
        // `dot`/`axpy` call per cached position. `attn_scores_with` computes
        // each position's score as an independent dot and `attn_mix_with`
        // accumulates element-wise in strict position order on every dispatch
        // tier, so splitting the position sweep at block boundaries is
        // bit-identical to one contiguous call — the paged cache costs
        // nothing numerically (a standalone cache is one block anyway).
        for i in 0..t {
            let ctx_len = pos0 + i + 1; // causal: positions 0..=pos0+i
            for h in 0..self.n_heads {
                let hs = h * self.head_dim..(h + 1) * self.head_dim;
                let q_head = &q[i * dim..][hs.clone()];
                let span = ws.prof.begin();
                let scores = &mut scores[..ctx_len];
                for (start, keys, _values) in cache.chunks(ctx_len) {
                    let filled = keys.len() / dim;
                    attn_scores_with(
                        bk,
                        &mut scores[start..start + filled],
                        q_head,
                        &keys[hs.start..],
                        dim,
                        scale,
                    );
                }
                softmax_row_with(bk, scores);
                ws.prof.end(span, Op::AttnScore);
                let span = ws.prof.begin();
                let out_head = &mut ctx[i * dim..][hs.clone()];
                for (start, _keys, values) in cache.chunks(ctx_len) {
                    let filled = values.len() / dim;
                    attn_mix_with(
                        bk,
                        out_head,
                        &scores[start..start + filled],
                        &values[hs.start..],
                        dim,
                    );
                }
                ws.prof.end(span, Op::AttnMix);
            }
        }

        let span = ws.prof.begin();
        self.wo.forward_rows_acc_ws(&ctx, t, ws, resid);
        ws.prof.end(span, Op::OProj);

        ws.give(q);
        ws.give(k);
        ws.give(v);
        ws.give(ctx);
        ws.give(scores);
    }

    /// Tree-attention verify path: the `t` rows of `norm_x` are a
    /// **flattened token tree** appended after the cached prefix, where row
    /// `i` sits at depth `depths[i]` below the prefix and `vis[i]` is its
    /// ancestor bitmask over the tree rows (bit `j` set ⇔ row `j` is on
    /// row `i`'s root path, self included; ancestors precede descendants in
    /// flat order). RoPE uses `pos0 + depths[i]` — the position the row
    /// would occupy if its root path were fed linearly — so sibling
    /// branches share positions and a committed path needs no re-encode.
    ///
    /// Numerically this is the SAME kernel sweep as
    /// [`Attention::forward_infer_ws`], restricted to contiguous runs of
    /// *visible* positions (the whole prefix + the ancestor rows), with the
    /// scores packed densely before the softmax. Because `attn_scores_with`
    /// computes an independent dot per position and `attn_mix_with`
    /// accumulates element-wise in position order, masking by skipping
    /// positions is bit-identical to attending over the compacted sequence
    /// — so each root-to-leaf path scores exactly as a linear feed of that
    /// path, and a full-visibility chain (branching factor 1) makes the
    /// identical kernel calls as the linear path, bit for bit.
    ///
    /// `vis_mass[i]` accumulates this layer's mean-over-heads attention
    /// mass on positions `0..vis_boundary` (the vision prefix) for row `i`
    /// — the modality signal the acceptance calibrator consumes. Pass
    /// `vis_boundary = 0` to skip the measurement.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_infer_tree_ws(
        &self,
        norm_x: &[f32],
        t: usize,
        rope: &Rope,
        mut cache: KvLayerMut<'_>,
        ws: &mut Workspace,
        resid: &mut [f32],
        depths: &[usize],
        vis: &[u64],
        vis_boundary: usize,
        vis_mass: &mut [f32],
    ) {
        let dim = self.n_heads * self.head_dim;
        debug_assert_eq!(norm_x.len(), t * dim);
        debug_assert_eq!(resid.len(), t * dim);
        debug_assert_eq!(depths.len(), t);
        debug_assert_eq!(vis.len(), t);
        debug_assert!(t <= 64, "tree wider than the visibility mask");
        let pos0 = cache.len();
        debug_assert!(vis_boundary <= pos0, "vision prefix must be cached");
        let bk = aasd_tensor::backend();

        let span = ws.prof.begin();
        let mut q = ws.take(t * dim);
        let mut k = ws.take(t * dim);
        let mut v = ws.take(t * dim);
        self.wq.forward_rows_into_ws(norm_x, t, ws, &mut q);
        self.wk.forward_rows_into_ws(norm_x, t, ws, &mut k);
        self.wv.forward_rows_into_ws(norm_x, t, ws, &mut v);
        for i in 0..t {
            for h in 0..self.n_heads {
                let hs = h * self.head_dim..(h + 1) * self.head_dim;
                rope.apply(&mut q[i * dim..][hs.clone()], pos0 + depths[i]);
                rope.apply(&mut k[i * dim..][hs], pos0 + depths[i]);
            }
        }
        for i in 0..t {
            cache.append(&k[i * dim..(i + 1) * dim], &v[i * dim..(i + 1) * dim]);
        }
        ws.prof.end(span, Op::Qkv);

        let scale = self.scale();
        let mut ctx = ws.take(t * dim);
        let mut scores = ws.take(cache.capacity());
        for i in 0..t {
            let ctx_len = pos0 + i + 1; // later flat rows are never visible
            let vm = vis[i];
            debug_assert!(vm & (1 << i) != 0, "row must see itself");
            // A cached position is visible iff it is prefix or an ancestor.
            let visible = |p: usize| p < pos0 || (vm >> (p - pos0)) & 1 == 1;
            for h in 0..self.n_heads {
                let hs = h * self.head_dim..(h + 1) * self.head_dim;
                let q_head = &q[i * dim..][hs.clone()];
                let span = ws.prof.begin();
                let mut n_vis = 0usize;
                for (start, keys, _values) in cache.chunks(ctx_len) {
                    let filled = keys.len() / dim;
                    let mut r = 0usize;
                    while r < filled {
                        if !visible(start + r) {
                            r += 1;
                            continue;
                        }
                        let mut e = r + 1;
                        while e < filled && visible(start + e) {
                            e += 1;
                        }
                        attn_scores_with(
                            bk,
                            &mut scores[n_vis..n_vis + (e - r)],
                            q_head,
                            &keys[r * dim + hs.start..],
                            dim,
                            scale,
                        );
                        n_vis += e - r;
                        r = e;
                    }
                }
                softmax_row_with(bk, &mut scores[..n_vis]);
                ws.prof.end(span, Op::AttnScore);
                if vis_boundary > 0 {
                    // Prefix positions are always visible and pack first.
                    vis_mass[i] += scores[..vis_boundary].iter().sum::<f32>() / self.n_heads as f32;
                }
                let span = ws.prof.begin();
                let out_head = &mut ctx[i * dim..][hs.clone()];
                let mut w_at = 0usize;
                for (start, _keys, values) in cache.chunks(ctx_len) {
                    let filled = values.len() / dim;
                    let mut r = 0usize;
                    while r < filled {
                        if !visible(start + r) {
                            r += 1;
                            continue;
                        }
                        let mut e = r + 1;
                        while e < filled && visible(start + e) {
                            e += 1;
                        }
                        attn_mix_with(
                            bk,
                            out_head,
                            &scores[w_at..w_at + (e - r)],
                            &values[r * dim + hs.start..],
                            dim,
                        );
                        w_at += e - r;
                        r = e;
                    }
                }
                ws.prof.end(span, Op::AttnMix);
            }
        }

        let span = ws.prof.begin();
        self.wo.forward_rows_acc_ws(&ctx, t, ws, resid);
        ws.prof.end(span, Op::OProj);

        ws.give(q);
        ws.give(k);
        ws.give(v);
        ws.give(ctx);
        ws.give(scores);
    }

    /// Full-sequence reference path: `x: [t, dim]` is the whole sequence at
    /// positions `0..t`. Stateless; builds explicit masked score matrices.
    pub fn forward_full(&self, x: &Tensor, rope: &Rope) -> Tensor {
        let t = x.rows;
        let dim = x.cols;
        let mut q = self.wq.forward(x);
        let mut k = self.wk.forward(x);
        let v = self.wv.forward(x);
        for i in 0..t {
            for h in 0..self.n_heads {
                let span = h * self.head_dim..(h + 1) * self.head_dim;
                rope.apply(&mut q.row_mut(i)[span.clone()], i);
                rope.apply(&mut k.row_mut(i)[span], i);
            }
        }
        let scale = self.scale();
        let mut ctx = Tensor::zeros(t, dim);
        for h in 0..self.n_heads {
            let span = |r: usize| r * dim + h * self.head_dim;
            // Gather this head's Q/K/V as compact [t, head_dim] matrices.
            let mut qh = Tensor::zeros(t, self.head_dim);
            let mut kh = Tensor::zeros(t, self.head_dim);
            let mut vh = Tensor::zeros(t, self.head_dim);
            for i in 0..t {
                qh.row_mut(i)
                    .copy_from_slice(&q.data[span(i)..span(i) + self.head_dim]);
                kh.row_mut(i)
                    .copy_from_slice(&k.data[span(i)..span(i) + self.head_dim]);
                vh.row_mut(i)
                    .copy_from_slice(&v.data[span(i)..span(i) + self.head_dim]);
            }
            let mut s = qh.matmul_transposed(&kh); // [t, t]
            for i in 0..t {
                let row = s.row_mut(i);
                for (j, sv) in row.iter_mut().enumerate() {
                    if j > i {
                        *sv = f32::NEG_INFINITY; // causal mask
                    } else {
                        *sv *= scale;
                    }
                }
            }
            s.softmax_rows_inplace();
            let oh = s.matmul(&vh); // [t, head_dim]
            for i in 0..t {
                ctx.data[span(i)..span(i) + self.head_dim].copy_from_slice(oh.row(i));
            }
        }
        self.wo.forward(&ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{KvCache, KvPool};

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    /// The incremental cached path must reproduce the stateless full path,
    /// regardless of how the sequence is chopped into blocks.
    #[test]
    fn incremental_matches_full_for_any_block_split() {
        let mut rng = Rng::new(42);
        let (dim, heads, t) = (32, 4, 13);
        let attn = Attention::new(&mut rng, dim, heads);
        let rope = Rope::new(64, dim / heads, 10_000.0);
        let x = Tensor::randn(&mut rng, t, dim, 1.0);

        let full = attn.forward_full(&x, &rope);

        for splits in [vec![t], vec![1; t], vec![5, 1, 4, 3]] {
            assert_eq!(splits.iter().sum::<usize>(), t);
            let mut cache = KvCache::new(1, 64, dim);
            let mut got = Vec::new();
            let mut at = 0;
            for blk in splits {
                let xs = Tensor::from_vec(x.data[at * dim..(at + blk) * dim].to_vec(), blk, dim);
                let y = attn.forward_infer(&xs, &rope, cache.layer_mut(0));
                got.extend_from_slice(&y.data);
                at += blk;
            }
            assert!(
                max_abs_diff(&got, &full.data) < 1e-4,
                "cached path diverged from full recompute"
            );
        }
    }

    /// The fused workspace path must agree with the allocating incremental
    /// path (plus the explicit residual add it folds in) for every block
    /// split, and must stop allocating once warmed up.
    #[test]
    fn workspace_path_matches_forward_infer() {
        let mut rng = Rng::new(42);
        let (dim, heads, t) = (32, 4, 13);
        let attn = Attention::new(&mut rng, dim, heads);
        let rope = Rope::new(64, dim / heads, 10_000.0);
        let x = Tensor::randn(&mut rng, t, dim, 1.0);
        let resid0 = Tensor::randn(&mut rng, t, dim, 1.0);

        let mut ws = Workspace::new();
        for splits in [vec![t], vec![1; t], vec![5, 1, 4, 3]] {
            let mut cache_a = KvCache::new(1, 64, dim);
            let mut cache_b = KvCache::new(1, 64, dim);
            let mut at = 0;
            for blk in splits {
                let xs = Tensor::from_vec(x.data[at * dim..(at + blk) * dim].to_vec(), blk, dim);
                let y = attn.forward_infer(&xs, &rope, cache_a.layer_mut(0));
                let mut want = resid0.data[at * dim..(at + blk) * dim].to_vec();
                for (w, p) in want.iter_mut().zip(&y.data) {
                    *w += p;
                }

                let mut got = resid0.data[at * dim..(at + blk) * dim].to_vec();
                attn.forward_infer_ws(
                    &xs.data,
                    blk,
                    &rope,
                    cache_b.layer_mut(0),
                    &mut ws,
                    &mut got,
                );
                assert!(
                    max_abs_diff(&got, &want) < 1e-4,
                    "fused attention diverged at block offset {at}"
                );
                at += blk;
            }
        }

        // Steady state: decoding one token at a time must not grow the pool.
        let mut cache = KvCache::new(1, 64, dim);
        let mut resid = vec![0.0f32; dim];
        attn.forward_infer_ws(x.row(0), 1, &rope, cache.layer_mut(0), &mut ws, &mut resid);
        let after_warmup = ws.fresh_allocs();
        for i in 1..t {
            attn.forward_infer_ws(x.row(i), 1, &rope, cache.layer_mut(0), &mut ws, &mut resid);
        }
        assert_eq!(ws.fresh_allocs(), after_warmup, "steady state allocated");
    }

    /// Causality: the output at position i must not change when the suffix
    /// after i changes.
    #[test]
    fn causal_outputs_ignore_future() {
        let mut rng = Rng::new(9);
        let (dim, heads, t) = (16, 2, 8);
        let attn = Attention::new(&mut rng, dim, heads);
        let rope = Rope::new(32, dim / heads, 10_000.0);
        let x1 = Tensor::randn(&mut rng, t, dim, 1.0);
        let mut x2 = x1.clone();
        for v in x2.row_mut(t - 1) {
            *v += 5.0; // perturb only the last position
        }
        let y1 = attn.forward_full(&x1, &rope);
        let y2 = attn.forward_full(&x2, &rope);
        for i in 0..t - 1 {
            assert!(max_abs_diff(y1.row(i), y2.row(i)) < 1e-6, "row {i} leaked");
        }
        assert!(max_abs_diff(y1.row(t - 1), y2.row(t - 1)) > 1e-3);
    }

    /// A full-visibility chain through the tree path must make the exact
    /// kernel calls of the linear path: bit-identical outputs, K/V, and no
    /// fresh allocations once warmed.
    #[test]
    fn tree_chain_is_bit_identical_to_linear() {
        let mut rng = Rng::new(11);
        let (dim, heads, t) = (32, 4, 6);
        let attn = Attention::new(&mut rng, dim, heads);
        let rope = Rope::new(64, dim / heads, 10_000.0);
        let prefix = Tensor::randn(&mut rng, 9, dim, 1.0);
        let x = Tensor::randn(&mut rng, t, dim, 1.0);

        let mut ws = Workspace::new();
        let pool = KvPool::new(1, dim, 4, 32);
        let mut lin = pool.try_lease(64).unwrap();
        let mut tree = pool.try_lease(64).unwrap();
        for c in [&mut lin, &mut tree] {
            let mut r = vec![0.0f32; 9 * dim];
            attn.forward_infer_ws(&prefix.data, 9, &rope, c.layer_mut(0), &mut ws, &mut r);
        }
        let mut a = vec![0.0f32; t * dim];
        let mut b = vec![0.0f32; t * dim];
        attn.forward_infer_ws(&x.data, t, &rope, lin.layer_mut(0), &mut ws, &mut a);
        let depths: Vec<usize> = (0..t).collect();
        let vis: Vec<u64> = (0..t).map(|i| (1u64 << (i + 1)) - 1).collect();
        let mut mass = vec![0.0f32; t];
        attn.forward_infer_tree_ws(
            &x.data,
            t,
            &rope,
            tree.layer_mut(0),
            &mut ws,
            &mut b,
            &depths,
            &vis,
            4,
            &mut mass,
        );
        let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb, "chain tree attention must equal linear bitwise");
        for p in 0..lin.len() {
            assert_eq!(
                lin.layer(0).key(p),
                tree.layer(0).key(p),
                "K row {p} diverged"
            );
        }
        assert!(
            mass.iter().all(|&m| m > 0.0 && m < 1.0),
            "visual mass must be a proper fraction: {mass:?}"
        );
    }

    /// Paging must cost nothing numerically: the same sequence decoded into
    /// a single-block cache and into a 4-position-block paged lease must
    /// produce **bit-identical** outputs, because the chunked kernel sweeps
    /// are exact splits of the contiguous ones.
    #[test]
    fn paged_cache_attention_is_bit_identical_to_contiguous() {
        let mut rng = Rng::new(7);
        let (dim, heads, t) = (32, 4, 13);
        let attn = Attention::new(&mut rng, dim, heads);
        let rope = Rope::new(64, dim / heads, 10_000.0);
        let x = Tensor::randn(&mut rng, t, dim, 1.0);

        let mut ws = Workspace::new();
        let mut contiguous = KvCache::new(1, 64, dim);
        let pool = KvPool::new(1, dim, 4, 16);
        let mut paged = pool.try_lease(64).unwrap();
        assert!(paged.n_blocks() > 1, "lease must actually span blocks");
        for i in 0..t {
            let mut a = vec![0.0f32; dim];
            let mut b = vec![0.0f32; dim];
            attn.forward_infer_ws(x.row(i), 1, &rope, contiguous.layer_mut(0), &mut ws, &mut a);
            attn.forward_infer_ws(x.row(i), 1, &rope, paged.layer_mut(0), &mut ws, &mut b);
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb, "paged attention diverged at step {i}");
        }
    }
}
