//! Kernel policy selection and the int8 quantized linear layer.
//!
//! [`KernelPolicy`] is a per-model switch: under `F32` every projection
//! runs the (SIMD-dispatched) f32 kernels; under `Int8` each `Linear`
//! carries a pre-quantized [`QuantLinear`] shadow of its weight
//! (quantize-once at policy-switch time) and the fused decode path streams
//! i8 codes instead of f32 — 4× less weight traffic in the memory-bound
//! decode regime the paper's speedups live in.
//!
//! Batched-verify consistency: the quantized forward processes each row of
//! a `t > 1` block through the identical per-row quantize + `vecmat_q8`
//! sequence a `t = 1` step uses, so single-token decode and batched
//! speculative verification produce bit-identical logits — the property
//! that keeps spec≡AR losslessness intact under `Int8` (draft and target
//! each stay self-consistent; they may even run different policies).

use aasd_tensor::quant::{quantize_row_i8, vecmat_q8_acc_into, QuantMatrix};
use aasd_tensor::{Op, Tensor, Workspace};

/// Which kernel family a model's projections run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// f32 weights through the SIMD-dispatched vecmat/blocked kernels.
    #[default]
    F32,
    /// int8 per-row absmax weights through the exact-i32 `vecmat_q8`
    /// kernels (embeddings and norms stay f32).
    Int8,
}

impl KernelPolicy {
    /// Stable lowercase name (used in bench snapshots and logs).
    pub fn name(self) -> &'static str {
        match self {
            KernelPolicy::F32 => "f32",
            KernelPolicy::Int8 => "int8",
        }
    }
}

/// Int8 shadow of a `Linear` weight: the `[k_in, n_out]` matrix quantized
/// per output row into the transposed, output-major [`QuantMatrix`] layout.
#[derive(Debug, Clone)]
pub struct QuantLinear {
    pub qm: QuantMatrix,
}

impl QuantLinear {
    /// Quantize a `Linear` weight (stored `[in, out]`). One-time cost at
    /// policy-switch; never runs in the decode loop.
    pub fn new(w: &Tensor) -> Self {
        Self {
            qm: QuantMatrix::from_kxn(&w.data, w.rows, w.cols),
        }
    }

    /// `out = x·Ŵ` for `rows` row-vectors, drawing the activation-code
    /// scratch from the workspace's i8 pool (zero-allocation in steady
    /// state).
    pub fn forward_rows_into(&self, x: &[f32], rows: usize, ws: &mut Workspace, out: &mut [f32]) {
        out.fill(0.0);
        self.forward_rows_acc(x, rows, ws, out);
    }

    /// `out += x·Ŵ` — the residual-folded variant. Each row is quantized
    /// and multiplied independently (identical math at any `rows`).
    pub fn forward_rows_acc(&self, x: &[f32], rows: usize, ws: &mut Workspace, out: &mut [f32]) {
        let (k, n) = (self.qm.cols, self.qm.rows);
        assert_eq!(x.len(), rows * k, "input must be rows×k_in");
        assert_eq!(out.len(), rows * n, "output must be rows×n_out");
        let mut qx = ws.take_i8(k);
        for r in 0..rows {
            let span = ws.prof.begin();
            let sx = quantize_row_i8(&x[r * k..(r + 1) * k], &mut qx);
            ws.prof.end(span, Op::Quantize);
            let span = ws.prof.begin();
            vecmat_q8_acc_into(&mut out[r * n..(r + 1) * n], &qx, sx, &self.qm);
            ws.prof.end(span, Op::Q8Vecmat);
        }
        ws.give_i8(qx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aasd_tensor::Rng;

    #[test]
    fn policy_names() {
        assert_eq!(KernelPolicy::F32.name(), "f32");
        assert_eq!(KernelPolicy::Int8.name(), "int8");
        assert_eq!(KernelPolicy::default(), KernelPolicy::F32);
    }

    /// The quantized forward tracks the f32 linear within the absmax error
    /// model, and batched rows are bit-identical to row-at-a-time calls.
    #[test]
    fn quant_linear_tracks_f32_and_batches_exactly() {
        let mut rng = Rng::new(0x9_1);
        let lin = crate::Linear::new(&mut rng, 48, 32);
        let q = QuantLinear::new(&lin.w);
        let mut ws = Workspace::new();
        let rows = 3usize;
        let x: Vec<f32> = (0..rows * 48).map(|_| rng.uniform(-1.0, 1.0)).collect();

        let mut batched = vec![0.0f32; rows * 32];
        q.forward_rows_into(&x, rows, &mut ws, &mut batched);

        let mut reference = vec![0.0f32; rows * 32];
        lin.forward_rows_into(&x, rows, &mut reference);

        for r in 0..rows {
            let mut single = vec![0.0f32; 32];
            q.forward_rows_into(&x[r * 48..(r + 1) * 48], 1, &mut ws, &mut single);
            assert_eq!(
                single,
                batched[r * 32..(r + 1) * 32],
                "row {r}: batched vs single must be bit-identical"
            );
        }
        for (a, b) in batched.iter().zip(&reference) {
            assert!(
                (a - b).abs() < 0.05,
                "quantized drifted too far: {a} vs {b}"
            );
        }
    }

    #[test]
    fn quant_linear_acc_folds_residual() {
        let mut rng = Rng::new(0x9_2);
        let lin = crate::Linear::new(&mut rng, 16, 24);
        let q = QuantLinear::new(&lin.w);
        let mut ws = Workspace::new();
        let x: Vec<f32> = (0..16).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let resid: Vec<f32> = (0..24).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut acc = resid.clone();
        q.forward_rows_acc(&x, 1, &mut ws, &mut acc);
        let mut prod = vec![0.0f32; 24];
        q.forward_rows_into(&x, 1, &mut ws, &mut prod);
        for ((a, r), p) in acc.iter().zip(&resid).zip(&prod) {
            assert_eq!(*a, r + p);
        }
    }
}
