//! Parameterized layers: linear projection, token embedding, RMS norm.

use aasd_tensor::{Rng, Tensor};

/// Bias-free linear layer. The weight is stored `[in, out]` so a batch of
/// row vectors multiplies it directly (`x: [t, in]` → `x·W: [t, out]`) with
/// unit-stride access in the blocked matmul kernel.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: Tensor,
}

impl Linear {
    pub fn new(rng: &mut Rng, fan_in: usize, fan_out: usize) -> Self {
        Self {
            w: Tensor::xavier(rng, fan_in, fan_out),
        }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.matmul(&self.w)
    }
}

/// Token embedding table `[vocab, dim]`.
#[derive(Debug, Clone)]
pub struct Embedding {
    pub table: Tensor,
}

impl Embedding {
    pub fn new(rng: &mut Rng, vocab: usize, dim: usize) -> Self {
        Self {
            table: Tensor::randn(rng, vocab, dim, 0.02),
        }
    }

    /// Gather rows for a token sequence → `[t, dim]`.
    pub fn forward(&self, tokens: &[u32]) -> Tensor {
        let dim = self.table.cols;
        let mut out = Tensor::zeros(tokens.len(), dim);
        for (i, &tok) in tokens.iter().enumerate() {
            let tok = tok as usize;
            assert!(tok < self.table.rows, "token {tok} out of vocabulary");
            out.row_mut(i).copy_from_slice(self.table.row(tok));
        }
        out
    }
}

/// RMSNorm (Zhang & Sennrich 2019): `x * gain / rms(x)`, no mean-centering.
#[derive(Debug, Clone)]
pub struct RmsNorm {
    pub gain: Vec<f32>,
    pub eps: f32,
}

impl RmsNorm {
    pub fn new(dim: usize) -> Self {
        Self {
            gain: vec![1.0; dim],
            eps: 1e-5,
        }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols, self.gain.len());
        let mut out = x.clone();
        for r in 0..out.rows {
            self.forward_row(out.row_mut(r));
        }
        out
    }

    pub fn forward_row(&self, row: &mut [f32]) {
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
        let inv = 1.0 / (ms + self.eps).sqrt();
        for (v, g) in row.iter_mut().zip(self.gain.iter()) {
            *v *= inv * *g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_gathers_rows() {
        let mut rng = Rng::new(1);
        let emb = Embedding::new(&mut rng, 10, 4);
        let out = emb.forward(&[3, 0, 3]);
        assert_eq!(out.row(0), emb.table.row(3));
        assert_eq!(out.row(1), emb.table.row(0));
        assert_eq!(out.row(0), out.row(2));
    }

    #[test]
    fn rmsnorm_unit_rms() {
        let mut rng = Rng::new(2);
        let norm = RmsNorm::new(32);
        let x = Tensor::randn(&mut rng, 5, 32, 3.0);
        let y = norm.forward(&x);
        for r in 0..y.rows {
            let ms: f32 = y.row(r).iter().map(|v| v * v).sum::<f32>() / 32.0;
            assert!((ms - 1.0).abs() < 1e-3, "row {r} rms² = {ms}");
        }
    }

    #[test]
    fn linear_shape() {
        let mut rng = Rng::new(3);
        let lin = Linear::new(&mut rng, 8, 16);
        let x = Tensor::randn(&mut rng, 3, 8, 1.0);
        let y = lin.forward(&x);
        assert_eq!((y.rows, y.cols), (3, 16));
    }
}
