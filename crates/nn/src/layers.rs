//! Parameterized layers: linear projection, token embedding, RMS norm.
//!
//! Each layer has two forward flavours: the original allocating API
//! (`forward`, returning a fresh [`Tensor`]) kept as the property-tested
//! reference, and `_into`/`_acc` variants that write into caller-provided
//! slices — the building blocks of the zero-allocation fused decode path.

use crate::quant::{KernelPolicy, QuantLinear};
use aasd_tensor::{
    matmul_blocked_acc_into, matmul_blocked_into, vecmat_acc_into, vecmat_into, Rng, Tensor,
    Workspace,
};

/// Bias-free linear layer. The weight is stored `[in, out]` so a batch of
/// row vectors multiplies it directly (`x: [t, in]` → `x·W: [t, out]`) with
/// unit-stride access in the blocked matmul kernel.
///
/// Under [`KernelPolicy::Int8`] the layer additionally carries a
/// [`QuantLinear`] shadow of the weight; only the fused `_ws` forwards
/// consult it — the allocating reference paths always run f32.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: Tensor,
    pub quant: Option<QuantLinear>,
}

impl Linear {
    pub fn new(rng: &mut Rng, fan_in: usize, fan_out: usize) -> Self {
        Self {
            w: Tensor::xavier(rng, fan_in, fan_out),
            quant: None,
        }
    }

    /// Switch this layer's fused-path kernel family. `Int8` quantizes the
    /// current weight once (re-call after any weight mutation — the shadow
    /// does not track training updates); `F32` drops the shadow.
    pub fn set_policy(&mut self, policy: KernelPolicy) {
        self.quant = match policy {
            KernelPolicy::F32 => None,
            KernelPolicy::Int8 => Some(QuantLinear::new(&self.w)),
        };
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.matmul(&self.w)
    }

    /// `out = x·W` for `rows` row-vectors of `fan_in` floats, no
    /// allocation. `rows == 1` (single-token decode) takes the unrolled
    /// [`vecmat_into`] fast path; larger blocks use the cache-blocked
    /// kernel. Both accumulate over the input dimension in the same order,
    /// so the two paths agree bit-for-bit.
    pub fn forward_rows_into(&self, x: &[f32], rows: usize, out: &mut [f32]) {
        let (k, n) = (self.w.rows, self.w.cols);
        if rows == 1 {
            vecmat_into(out, x, &self.w.data, k, n);
        } else {
            matmul_blocked_into(out, x, &self.w.data, rows, k, n);
        }
    }

    /// `out += x·W` — the projection with the residual-add folded in, so
    /// the residual stream is written exactly once.
    pub fn forward_rows_acc(&self, x: &[f32], rows: usize, out: &mut [f32]) {
        let (k, n) = (self.w.rows, self.w.cols);
        if rows == 1 {
            vecmat_acc_into(out, x, &self.w.data, k, n);
        } else {
            matmul_blocked_acc_into(out, x, &self.w.data, rows, k, n);
        }
    }

    /// Workspace-aware `out = x·W`: routes to the int8 kernels when a
    /// quantized shadow is installed, the f32 kernels otherwise. The fused
    /// decode path calls this so a single policy switch redirects every
    /// projection.
    pub fn forward_rows_into_ws(
        &self,
        x: &[f32],
        rows: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) {
        match &self.quant {
            Some(q) => q.forward_rows_into(x, rows, ws, out),
            None => self.forward_rows_into(x, rows, out),
        }
    }

    /// Workspace-aware `out += x·W` (residual-folded); see
    /// [`Linear::forward_rows_into_ws`].
    pub fn forward_rows_acc_ws(&self, x: &[f32], rows: usize, ws: &mut Workspace, out: &mut [f32]) {
        match &self.quant {
            Some(q) => q.forward_rows_acc(x, rows, ws, out),
            None => self.forward_rows_acc(x, rows, out),
        }
    }
}

/// Token embedding table `[vocab, dim]`.
#[derive(Debug, Clone)]
pub struct Embedding {
    pub table: Tensor,
}

impl Embedding {
    pub fn new(rng: &mut Rng, vocab: usize, dim: usize) -> Self {
        Self {
            table: Tensor::randn(rng, vocab, dim, 0.02),
        }
    }

    /// Gather rows for a token sequence → `[t, dim]`.
    pub fn forward(&self, tokens: &[u32]) -> Tensor {
        let dim = self.table.cols;
        let mut out = Tensor::zeros(tokens.len(), dim);
        self.forward_into(tokens, &mut out.data);
        out
    }

    /// Gather rows into a caller-provided `[t·dim]` slice, no allocation.
    pub fn forward_into(&self, tokens: &[u32], out: &mut [f32]) {
        let dim = self.table.cols;
        assert_eq!(out.len(), tokens.len() * dim);
        for (o_row, &tok) in out.chunks_exact_mut(dim).zip(tokens.iter()) {
            let tok = tok as usize;
            assert!(tok < self.table.rows, "token {tok} out of vocabulary");
            o_row.copy_from_slice(self.table.row(tok));
        }
    }
}

/// RMSNorm (Zhang & Sennrich 2019): `x * gain / rms(x)`, no mean-centering.
#[derive(Debug, Clone)]
pub struct RmsNorm {
    pub gain: Vec<f32>,
    pub eps: f32,
}

impl RmsNorm {
    pub fn new(dim: usize) -> Self {
        Self {
            gain: vec![1.0; dim],
            eps: 1e-5,
        }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols, self.gain.len());
        let mut out = x.clone();
        for r in 0..out.rows {
            self.forward_row(out.row_mut(r));
        }
        out
    }

    /// In-place row normalization. The mean-square reduction dispatches on
    /// the active SIMD backend; [`RmsNorm::forward_into`] uses the same
    /// reduction, so the two paths stay bit-identical on every tier.
    pub fn forward_row(&self, row: &mut [f32]) {
        let bk = aasd_tensor::backend();
        let ms = aasd_tensor::simd::sum_squares_with(bk, row) / row.len() as f32;
        let inv = 1.0 / (ms + self.eps).sqrt();
        for (v, g) in row.iter_mut().zip(self.gain.iter()) {
            *v *= inv * *g;
        }
    }

    /// Normalize `rows` rows of `x` into `out` in one fused pass — the
    /// read-only input stays untouched (it is the residual stream) and
    /// nothing is cloned. Rounding matches [`RmsNorm::forward_row`].
    pub fn forward_into(&self, x: &[f32], rows: usize, out: &mut [f32]) {
        let dim = self.gain.len();
        assert_eq!(x.len(), rows * dim);
        assert_eq!(out.len(), rows * dim);
        let bk = aasd_tensor::backend();
        for (x_row, o_row) in x.chunks_exact(dim).zip(out.chunks_exact_mut(dim)) {
            aasd_tensor::simd::rms_norm_row_with(bk, x_row, &self.gain, self.eps, o_row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_gathers_rows() {
        let mut rng = Rng::new(1);
        let emb = Embedding::new(&mut rng, 10, 4);
        let out = emb.forward(&[3, 0, 3]);
        assert_eq!(out.row(0), emb.table.row(3));
        assert_eq!(out.row(1), emb.table.row(0));
        assert_eq!(out.row(0), out.row(2));
    }

    #[test]
    fn rmsnorm_unit_rms() {
        let mut rng = Rng::new(2);
        let norm = RmsNorm::new(32);
        let x = Tensor::randn(&mut rng, 5, 32, 3.0);
        let y = norm.forward(&x);
        for r in 0..y.rows {
            let ms: f32 = y.row(r).iter().map(|v| v * v).sum::<f32>() / 32.0;
            assert!((ms - 1.0).abs() < 1e-3, "row {r} rms² = {ms}");
        }
    }

    #[test]
    fn linear_shape() {
        let mut rng = Rng::new(3);
        let lin = Linear::new(&mut rng, 8, 16);
        let x = Tensor::randn(&mut rng, 3, 8, 1.0);
        let y = lin.forward(&x);
        assert_eq!((y.rows, y.cols), (3, 16));
    }

    /// The into-paths (t = 1 vecmat and t > 1 blocked) must match the
    /// allocating reference exactly, and the acc variant must fold the
    /// residual.
    #[test]
    fn linear_into_matches_forward() {
        let mut rng = Rng::new(4);
        let lin = Linear::new(&mut rng, 24, 40);
        for rows in [1usize, 5] {
            let x = Tensor::randn(&mut rng, rows, 24, 1.0);
            let reference = lin.forward(&x);
            let mut out = vec![0.0f32; rows * 40];
            lin.forward_rows_into(&x.data, rows, &mut out);
            assert_eq!(out, reference.data, "rows={rows}");

            let resid: Vec<f32> = (0..rows * 40).map(|_| rng.normal()).collect();
            let mut acc = resid.clone();
            lin.forward_rows_acc(&x.data, rows, &mut acc);
            for ((a, r), p) in acc.iter().zip(&resid).zip(&reference.data) {
                assert!((a - (r + p)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn embedding_into_matches_forward() {
        let mut rng = Rng::new(5);
        let emb = Embedding::new(&mut rng, 12, 6);
        let toks = [7u32, 0, 11, 7];
        let reference = emb.forward(&toks);
        let mut out = vec![0.0f32; 4 * 6];
        emb.forward_into(&toks, &mut out);
        assert_eq!(out, reference.data);
    }

    #[test]
    fn rmsnorm_into_matches_forward() {
        let mut rng = Rng::new(6);
        let norm = RmsNorm::new(16);
        let x = Tensor::randn(&mut rng, 3, 16, 2.0);
        let reference = norm.forward(&x);
        let mut out = vec![0.0f32; 3 * 16];
        norm.forward_into(&x.data, 3, &mut out);
        assert_eq!(out, reference.data);
    }
}
