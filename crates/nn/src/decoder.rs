//! Decoder blocks and the full decoder-only transformer, with the same
//! dual-path structure as [`crate::attention`]: an incremental cached
//! inference path (`forward_infer`) and a stateless full-sequence reference
//! (`forward_full`).

use crate::attention::Attention;
use crate::cache::{KvCache, KvLayerMut};
use crate::layers::{Embedding, Linear, RmsNorm};
use crate::quant::KernelPolicy;
use crate::rope::Rope;
use aasd_autograd::{Tape, VarId};
use aasd_tensor::{add_assign, argmax, silu, silu_mul, Op, Rng, Tensor, Workspace};

/// Hyperparameters for a decoder-only transformer.
#[derive(Debug, Clone)]
pub struct DecoderConfig {
    pub vocab: usize,
    pub dim: usize,
    pub n_heads: usize,
    pub n_layers: usize,
    pub ff_hidden: usize,
    pub max_seq: usize,
    pub rope_theta: f32,
}

impl DecoderConfig {
    /// Smallest config that still exercises every code path; used by tests.
    pub fn tiny(vocab: usize) -> Self {
        Self {
            vocab,
            dim: 32,
            n_heads: 4,
            n_layers: 2,
            ff_hidden: 64,
            max_seq: 128,
            rope_theta: 10_000.0,
        }
    }

    /// A "target-sized" model for benches: big enough that its weights
    /// dwarf the cache hierarchy, so per-token weight traffic dominates —
    /// the regime where batched verification pays.
    pub fn bench_target(vocab: usize, max_seq: usize) -> Self {
        Self {
            vocab,
            dim: 256,
            n_heads: 8,
            n_layers: 4,
            ff_hidden: 512,
            max_seq,
            rope_theta: 10_000.0,
        }
    }

    /// A draft-sized model: ~an order of magnitude cheaper per token.
    pub fn bench_draft(vocab: usize, max_seq: usize) -> Self {
        Self {
            vocab,
            dim: 64,
            n_heads: 4,
            n_layers: 2,
            ff_hidden: 128,
            max_seq,
            rope_theta: 10_000.0,
        }
    }

    pub fn head_dim(&self) -> usize {
        self.dim / self.n_heads
    }
}

/// SwiGLU feed-forward: `(silu(x·W1) ⊙ x·W3)·W2`.
#[derive(Debug, Clone)]
pub struct Mlp {
    pub w1: Linear,
    pub w2: Linear,
    pub w3: Linear,
}

impl Mlp {
    pub fn new(rng: &mut Rng, dim: usize, hidden: usize) -> Self {
        Self {
            w1: Linear::new(rng, dim, hidden),
            w2: Linear::new(rng, hidden, dim),
            w3: Linear::new(rng, dim, hidden),
        }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut gate = self.w1.forward(x);
        let up = self.w3.forward(x);
        for (g, u) in gate.data.iter_mut().zip(up.data.iter()) {
            *g = silu(*g) * *u;
        }
        self.w2.forward(&gate)
    }

    /// Fused workspace path: gate and up live in pooled scratch, the
    /// `silu(gate) ⊙ up` product is written in place, and the down
    /// projection accumulates straight into the residual stream
    /// (`resid += mlp(norm_x)`). No intermediate tensors, no allocation.
    pub fn forward_ws(&self, norm_x: &[f32], t: usize, ws: &mut Workspace, resid: &mut [f32]) {
        let hidden = self.w1.w.cols;
        let span = ws.prof.begin();
        let mut gate = ws.take(t * hidden);
        let mut up = ws.take(t * hidden);
        self.w1.forward_rows_into_ws(norm_x, t, ws, &mut gate);
        self.w3.forward_rows_into_ws(norm_x, t, ws, &mut up);
        silu_mul(&mut gate, &up);
        self.w2.forward_rows_acc_ws(&gate, t, ws, resid);
        ws.prof.end(span, Op::Mlp);
        ws.give(gate);
        ws.give(up);
    }
}

/// Pre-norm decoder block: `x + attn(norm(x))`, then `x + mlp(norm(x))`.
#[derive(Debug, Clone)]
pub struct DecoderBlock {
    pub attn_norm: RmsNorm,
    pub attn: Attention,
    pub mlp_norm: RmsNorm,
    pub mlp: Mlp,
}

impl DecoderBlock {
    pub fn new(rng: &mut Rng, cfg: &DecoderConfig) -> Self {
        Self {
            attn_norm: RmsNorm::new(cfg.dim),
            attn: Attention::new(rng, cfg.dim, cfg.n_heads),
            mlp_norm: RmsNorm::new(cfg.dim),
            mlp: Mlp::new(rng, cfg.dim, cfg.ff_hidden),
        }
    }

    pub fn forward_infer(&self, x: &mut Tensor, rope: &Rope, cache: KvLayerMut<'_>) {
        let a = self
            .attn
            .forward_infer(&self.attn_norm.forward(x), rope, cache);
        add_assign(&mut x.data, &a.data);
        let m = self.mlp.forward(&self.mlp_norm.forward(x));
        add_assign(&mut x.data, &m.data);
    }

    pub fn forward_full(&self, x: &mut Tensor, rope: &Rope) {
        let a = self.attn.forward_full(&self.attn_norm.forward(x), rope);
        add_assign(&mut x.data, &a.data);
        let m = self.mlp.forward(&self.mlp_norm.forward(x));
        add_assign(&mut x.data, &m.data);
    }

    /// Fused workspace path: one normed-scratch buffer serves both
    /// sub-layers and each sub-layer accumulates into `x` directly, so the
    /// residual stream is never copied.
    pub fn forward_infer_ws(
        &self,
        x: &mut [f32],
        t: usize,
        rope: &Rope,
        cache: KvLayerMut<'_>,
        ws: &mut Workspace,
    ) {
        let dim = self.attn_norm.gain.len();
        let mut h = ws.take(t * dim);

        let span = ws.prof.begin();
        self.attn_norm.forward_into(x, t, &mut h);
        ws.prof.end(span, Op::RmsNorm);
        self.attn.forward_infer_ws(&h, t, rope, cache, ws, x);

        let span = ws.prof.begin();
        self.mlp_norm.forward_into(x, t, &mut h);
        ws.prof.end(span, Op::RmsNorm);
        self.mlp.forward_ws(&h, t, ws, x);

        ws.give(h);
    }

    /// Tree-verify variant of [`DecoderBlock::forward_infer_ws`]: identical
    /// structure, with the attention sub-layer routed through
    /// [`Attention::forward_infer_tree_ws`] (norms and MLP are per-row and
    /// position-free, so they need no tree awareness).
    #[allow(clippy::too_many_arguments)]
    pub fn forward_infer_tree_ws(
        &self,
        x: &mut [f32],
        t: usize,
        rope: &Rope,
        cache: KvLayerMut<'_>,
        ws: &mut Workspace,
        depths: &[usize],
        vis: &[u64],
        vis_boundary: usize,
        vis_mass: &mut [f32],
    ) {
        let dim = self.attn_norm.gain.len();
        let mut h = ws.take(t * dim);

        let span = ws.prof.begin();
        self.attn_norm.forward_into(x, t, &mut h);
        ws.prof.end(span, Op::RmsNorm);
        self.attn.forward_infer_tree_ws(
            &h,
            t,
            rope,
            cache,
            ws,
            x,
            depths,
            vis,
            vis_boundary,
            vis_mass,
        );

        let span = ws.prof.begin();
        self.mlp_norm.forward_into(x, t, &mut h);
        ws.prof.end(span, Op::RmsNorm);
        self.mlp.forward_ws(&h, t, ws, x);

        ws.give(h);
    }
}

/// Decoder-only transformer LM.
#[derive(Debug, Clone)]
pub struct Decoder {
    pub cfg: DecoderConfig,
    pub embed: Embedding,
    pub blocks: Vec<DecoderBlock>,
    pub final_norm: RmsNorm,
    pub lm_head: Linear,
    pub rope: Rope,
    /// Kernel family the fused decode path runs; set via
    /// [`Decoder::set_kernel_policy`].
    kernel_policy: KernelPolicy,
}

impl Decoder {
    /// Deterministic init from a seed; different seeds give independent
    /// models (used to make draft ≠ target in tests and benches).
    pub fn new(cfg: DecoderConfig, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let embed = Embedding::new(&mut rng, cfg.vocab, cfg.dim);
        let blocks = (0..cfg.n_layers)
            .map(|_| DecoderBlock::new(&mut rng.fork(), &cfg))
            .collect();
        let final_norm = RmsNorm::new(cfg.dim);
        let lm_head = Linear::new(&mut rng, cfg.dim, cfg.vocab);
        let rope = Rope::new(cfg.max_seq, cfg.head_dim(), cfg.rope_theta);
        Self {
            cfg,
            embed,
            blocks,
            final_norm,
            lm_head,
            rope,
            kernel_policy: KernelPolicy::F32,
        }
    }

    /// Fresh cache sized for this model.
    pub fn new_cache(&self) -> KvCache {
        KvCache::new(self.cfg.n_layers, self.cfg.max_seq, self.cfg.dim)
    }

    /// Switch every projection (per-block `wq`/`wk`/`wv`/`wo`/`w1`/`w2`/`w3`
    /// and the LM head) to the given kernel family. `Int8` quantizes each
    /// weight once, here; embeddings and norms stay f32 on either policy, as
    /// do the allocating reference paths (`forward_infer`, `forward_full`).
    ///
    /// The int8 shadows snapshot the weights at call time — if the model is
    /// subsequently trained, re-call this to refresh them.
    pub fn set_kernel_policy(&mut self, policy: KernelPolicy) {
        for block in &mut self.blocks {
            block.attn.wq.set_policy(policy);
            block.attn.wk.set_policy(policy);
            block.attn.wv.set_policy(policy);
            block.attn.wo.set_policy(policy);
            block.mlp.w1.set_policy(policy);
            block.mlp.w2.set_policy(policy);
            block.mlp.w3.set_policy(policy);
        }
        self.lm_head.set_policy(policy);
        self.kernel_policy = policy;
    }

    /// The kernel family the fused decode path currently runs.
    pub fn kernel_policy(&self) -> KernelPolicy {
        self.kernel_policy
    }

    /// Incremental forward: append `tokens` (absolute positions start at
    /// `cache.len()`) and return logits `[t, vocab]` — row `i` is the
    /// next-token distribution after `tokens[..=i]`. One call serves
    /// prefill, single-token decode, and batched γ-token verify.
    pub fn forward_infer(&self, tokens: &[u32], cache: &mut KvCache) -> Tensor {
        assert!(!tokens.is_empty(), "empty token block");
        assert!(
            cache.len() + tokens.len() <= self.cfg.max_seq.min(cache.capacity()),
            "sequence exceeds cache capacity = {}",
            self.cfg.max_seq.min(cache.capacity())
        );
        let mut x = self.embed.forward(tokens);
        for (l, block) in self.blocks.iter().enumerate() {
            block.forward_infer(&mut x, &self.rope, cache.layer_mut(l));
        }
        let x = self.final_norm.forward(&x);
        self.lm_head.forward(&x)
    }

    /// Fused zero-allocation forward: same semantics as
    /// [`Decoder::forward_infer`], but all scratch comes from `ws` and the
    /// `[t, vocab]` logits are written into the caller's `logits` slice.
    /// After one warm-up call at each block size, steady-state calls perform
    /// **zero heap allocations** (proven by `tests/zero_alloc.rs`).
    pub fn forward_infer_ws(
        &self,
        tokens: &[u32],
        cache: &mut KvCache,
        ws: &mut Workspace,
        logits: &mut [f32],
    ) {
        let t = tokens.len();
        assert!(!tokens.is_empty(), "empty token block");
        assert!(
            cache.len() + t <= self.cfg.max_seq.min(cache.capacity()),
            "sequence exceeds cache capacity = {}",
            self.cfg.max_seq.min(cache.capacity())
        );
        assert_eq!(logits.len(), t * self.cfg.vocab);

        let mut x = ws.take(t * self.cfg.dim);
        let span = ws.prof.begin();
        self.embed.forward_into(tokens, &mut x);
        ws.prof.end(span, Op::Embed);

        self.infer_tail_ws(x, t, cache, ws, logits);
    }

    /// Tree-verify forward: `tokens` is a **flattened token tree** (row `i`
    /// at depth `depths[i]`, ancestor bitmask `vis[i]`, self bit included)
    /// appended after the cached prefix; logits row `i` is the next-token
    /// distribution conditioned on exactly `i`'s root path. Every row of an
    /// entire speculation tree is scored in this ONE weight pass — commit
    /// the accepted root-to-leaf path with [`KvCache::gather_tail`].
    ///
    /// `vis_mass[i]` receives row `i`'s attention mass on cache positions
    /// `0..vis_boundary` (the vision prefix), averaged over heads and
    /// layers — the modality feature the acceptance calibrator consumes
    /// (pass `vis_boundary = 0` to skip). A chain (`depths[i] == i`, full
    /// visibility) reproduces [`Decoder::forward_infer_ws`] bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_infer_tree_ws(
        &self,
        tokens: &[u32],
        depths: &[usize],
        vis: &[u64],
        vis_boundary: usize,
        cache: &mut KvCache,
        ws: &mut Workspace,
        logits: &mut [f32],
        vis_mass: &mut [f32],
    ) {
        let t = tokens.len();
        assert!(!tokens.is_empty(), "empty token tree");
        assert_eq!(depths.len(), t);
        assert_eq!(vis.len(), t);
        assert_eq!(vis_mass.len(), t);
        assert!(
            cache.len() + t <= self.cfg.max_seq.min(cache.capacity()),
            "tree exceeds cache capacity = {}",
            self.cfg.max_seq.min(cache.capacity())
        );
        assert_eq!(logits.len(), t * self.cfg.vocab);

        let mut x = ws.take(t * self.cfg.dim);
        let span = ws.prof.begin();
        self.embed.forward_into(tokens, &mut x);
        ws.prof.end(span, Op::Embed);

        vis_mass.fill(0.0);
        for (l, block) in self.blocks.iter().enumerate() {
            block.forward_infer_tree_ws(
                &mut x,
                t,
                &self.rope,
                cache.layer_mut(l),
                ws,
                depths,
                vis,
                vis_boundary,
                vis_mass,
            );
        }
        let inv_layers = 1.0 / self.blocks.len() as f32;
        for m in vis_mass.iter_mut() {
            *m *= inv_layers;
        }

        let mut xn = ws.take(t * self.cfg.dim);
        let span = ws.prof.begin();
        self.final_norm.forward_into(&x, t, &mut xn);
        ws.prof.end(span, Op::RmsNorm);

        let span = ws.prof.begin();
        self.lm_head.forward_rows_into_ws(&xn, t, ws, logits);
        ws.prof.end(span, Op::LmHead);

        ws.give(x);
        ws.give(xn);
    }

    /// Fused forward over **pre-computed embedding rows** instead of token
    /// ids: `x` is `[t, dim]` row-major. This is how a vision prefix enters
    /// the decoder — the multimodal path (LlavaSim) projects image patches
    /// into text-embedding space and feeds the rows here, pre-seeding the
    /// cache before any text token arrives. Positions start at
    /// `cache.len()` exactly as in [`Decoder::forward_infer_ws`].
    pub fn forward_infer_embeds_ws(
        &self,
        x: &[f32],
        t: usize,
        cache: &mut KvCache,
        ws: &mut Workspace,
        logits: &mut [f32],
    ) {
        assert!(t > 0, "empty embedding block");
        assert_eq!(x.len(), t * self.cfg.dim);
        assert!(
            cache.len() + t <= self.cfg.max_seq.min(cache.capacity()),
            "sequence exceeds cache capacity = {}",
            self.cfg.max_seq.min(cache.capacity())
        );
        assert_eq!(logits.len(), t * self.cfg.vocab);
        let mut buf = ws.take(t * self.cfg.dim);
        buf.copy_from_slice(x);
        self.infer_tail_ws(buf, t, cache, ws, logits);
    }

    /// Shared post-embedding body of the fused forwards: blocks → final
    /// norm → LM head. Takes ownership of the pooled `[t, dim]` activation
    /// buffer and returns it to the pool.
    fn infer_tail_ws(
        &self,
        mut x: Vec<f32>,
        t: usize,
        cache: &mut KvCache,
        ws: &mut Workspace,
        logits: &mut [f32],
    ) {
        for (l, block) in self.blocks.iter().enumerate() {
            block.forward_infer_ws(&mut x, t, &self.rope, cache.layer_mut(l), ws);
        }

        let mut xn = ws.take(t * self.cfg.dim);
        let span = ws.prof.begin();
        self.final_norm.forward_into(&x, t, &mut xn);
        ws.prof.end(span, Op::RmsNorm);

        let span = ws.prof.begin();
        self.lm_head.forward_rows_into_ws(&xn, t, ws, logits);
        ws.prof.end(span, Op::LmHead);

        ws.give(x);
        ws.give(xn);
    }

    /// Allocating reference for [`Decoder::forward_infer_embeds_ws`]: append
    /// a block of embedding rows (positions start at `cache.len()`) and
    /// return the `[t, vocab]` logits.
    pub fn forward_infer_embeds(&self, x: &Tensor, cache: &mut KvCache) -> Tensor {
        assert!(x.rows > 0, "empty embedding block");
        assert_eq!(x.cols, self.cfg.dim, "embedding width mismatch");
        assert!(
            cache.len() + x.rows <= self.cfg.max_seq.min(cache.capacity()),
            "sequence exceeds cache capacity = {}",
            self.cfg.max_seq.min(cache.capacity())
        );
        let mut x = x.clone();
        for (l, block) in self.blocks.iter().enumerate() {
            block.forward_infer(&mut x, &self.rope, cache.layer_mut(l));
        }
        let x = self.final_norm.forward(&x);
        self.lm_head.forward(&x)
    }

    /// Stateless full-sequence recompute (reference path): logits for the
    /// whole sequence at positions `0..t`.
    pub fn forward_full(&self, tokens: &[u32]) -> Tensor {
        assert!(!tokens.is_empty() && tokens.len() <= self.cfg.max_seq);
        let mut x = self.embed.forward(tokens);
        for block in &self.blocks {
            block.forward_full(&mut x, &self.rope);
        }
        let x = self.final_norm.forward(&x);
        self.lm_head.forward(&x)
    }

    /// Greedy next token from the last row of a logits block.
    pub fn greedy_from_logits(logits: &Tensor) -> u32 {
        argmax(logits.row(logits.rows - 1)) as u32
    }

    /// Training forward: replay the full-sequence computation of
    /// [`Decoder::forward_full`] as an autograd graph on `tape`, binding
    /// every parameter as a leaf. Returns the `[t, vocab]` logits node and
    /// the parameter leaf ids **in the canonical order of
    /// [`Decoder::visit_params_mut`]**, so a trainer can walk gradients and
    /// live weights in lockstep. The tape is fresh per step; attach a loss
    /// (`cross_entropy` / `kl_div`) to the logits node and call `backward`.
    pub fn forward_train(&self, tape: &mut Tape, tokens: &[u32]) -> (VarId, Vec<VarId>) {
        assert!(!tokens.is_empty() && tokens.len() <= self.cfg.max_seq);
        let dim = self.cfg.dim;
        let (cos, sin) = self.rope.tables(tokens.len());

        let embed = tape.leaf(self.embed.table.clone());
        let mut params = vec![embed];
        let mut x = tape.embed_gather(embed, tokens);
        for block in &self.blocks {
            let attn_gain = tape.leaf(Tensor::from_vec(block.attn_norm.gain.clone(), 1, dim));
            let wq = tape.leaf(block.attn.wq.w.clone());
            let wk = tape.leaf(block.attn.wk.w.clone());
            let wv = tape.leaf(block.attn.wv.w.clone());
            let wo = tape.leaf(block.attn.wo.w.clone());
            let mlp_gain = tape.leaf(Tensor::from_vec(block.mlp_norm.gain.clone(), 1, dim));
            let w1 = tape.leaf(block.mlp.w1.w.clone());
            let w2 = tape.leaf(block.mlp.w2.w.clone());
            let w3 = tape.leaf(block.mlp.w3.w.clone());
            params.extend([attn_gain, wq, wk, wv, wo, mlp_gain, w1, w2, w3]);

            let h = tape.rms_norm(x, attn_gain, block.attn_norm.eps);
            let q = tape.matmul(h, wq);
            let k = tape.matmul(h, wk);
            let v = tape.matmul(h, wv);
            let q = tape.rope(q, self.cfg.n_heads, cos.clone(), sin.clone());
            let k = tape.rope(k, self.cfg.n_heads, cos.clone(), sin.clone());
            let a = tape.causal_attention(q, k, v, self.cfg.n_heads);
            let a = tape.matmul(a, wo);
            x = tape.add(x, a);

            let h = tape.rms_norm(x, mlp_gain, block.mlp_norm.eps);
            let gate = tape.matmul(h, w1);
            let up = tape.matmul(h, w3);
            let gate = tape.silu(gate);
            let gu = tape.mul(gate, up);
            let m = tape.matmul(gu, w2);
            x = tape.add(x, m);
        }
        let final_gain = tape.leaf(Tensor::from_vec(self.final_norm.gain.clone(), 1, dim));
        let head = tape.leaf(self.lm_head.w.clone());
        params.push(final_gain);
        params.push(head);
        let xn = tape.rms_norm(x, final_gain, self.final_norm.eps);
        let logits = tape.matmul(xn, head);
        (logits, params)
    }

    /// Visit every trainable parameter slice, in the **same canonical
    /// order** as the leaf ids returned by [`Decoder::forward_train`]:
    /// embedding table; per block `attn_norm.gain`, `wq`, `wk`, `wv`, `wo`,
    /// `mlp_norm.gain`, `w1`, `w2`, `w3`; `final_norm.gain`; `lm_head`.
    /// This is the update path optimizers use after `backward`.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut [f32])) {
        f("embed.table", &mut self.embed.table.data);
        for (l, block) in self.blocks.iter_mut().enumerate() {
            f(
                &format!("blocks.{l}.attn_norm.gain"),
                &mut block.attn_norm.gain,
            );
            f(&format!("blocks.{l}.attn.wq"), &mut block.attn.wq.w.data);
            f(&format!("blocks.{l}.attn.wk"), &mut block.attn.wk.w.data);
            f(&format!("blocks.{l}.attn.wv"), &mut block.attn.wv.w.data);
            f(&format!("blocks.{l}.attn.wo"), &mut block.attn.wo.w.data);
            f(
                &format!("blocks.{l}.mlp_norm.gain"),
                &mut block.mlp_norm.gain,
            );
            f(&format!("blocks.{l}.mlp.w1"), &mut block.mlp.w1.w.data);
            f(&format!("blocks.{l}.mlp.w2"), &mut block.mlp.w2.w.data);
            f(&format!("blocks.{l}.mlp.w3"), &mut block.mlp.w3.w.data);
        }
        f("final_norm.gain", &mut self.final_norm.gain);
        f("lm_head", &mut self.lm_head.w.data);
    }

    /// Number of parameter tensors [`Decoder::visit_params_mut`] yields.
    pub fn n_param_tensors(&self) -> usize {
        3 + 9 * self.blocks.len()
    }

    /// Parameter count (for cost accounting in benches).
    pub fn n_params(&self) -> usize {
        let e = self.embed.table.data.len();
        let b: usize = self
            .blocks
            .iter()
            .map(|blk| {
                blk.attn.wq.w.data.len()
                    + blk.attn.wk.w.data.len()
                    + blk.attn.wv.w.data.len()
                    + blk.attn.wo.w.data.len()
                    + blk.mlp.w1.w.data.len()
                    + blk.mlp.w2.w.data.len()
                    + blk.mlp.w3.w.data.len()
                    + blk.attn_norm.gain.len()
                    + blk.mlp_norm.gain.len()
            })
            .sum();
        e + b + self.final_norm.gain.len() + self.lm_head.w.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    /// KV-cache-incremental decode must reproduce the full-sequence
    /// recompute logits — token by token and in multi-token blocks.
    #[test]
    fn incremental_decode_matches_full_recompute() {
        let model = Decoder::new(DecoderConfig::tiny(50), 0xDEC0DE);
        let mut rng = Rng::new(77);
        let tokens: Vec<u32> = (0..17).map(|_| rng.below(50) as u32).collect();

        let full = model.forward_full(&tokens);

        // Token-by-token.
        let mut cache = model.new_cache();
        let mut inc = Vec::new();
        for &t in &tokens {
            let l = model.forward_infer(&[t], &mut cache);
            inc.extend_from_slice(&l.data);
        }
        assert!(
            max_abs_diff(&inc, &full.data) < 2e-3,
            "token-by-token decode diverged: {}",
            max_abs_diff(&inc, &full.data)
        );

        // Prefill + block decode (the speculative verify shape).
        let mut cache = model.new_cache();
        let pre = model.forward_infer(&tokens[..9], &mut cache);
        let rest = model.forward_infer(&tokens[9..], &mut cache);
        let mut blk = pre.data.clone();
        blk.extend_from_slice(&rest.data);
        assert!(max_abs_diff(&blk, &full.data) < 2e-3);
    }

    /// The fused workspace forward must track the allocating incremental
    /// path closely (they reassociate the residual add, hence tolerance,
    /// not equality) across decode and block-verify shapes, and must stop
    /// allocating in the steady state.
    #[test]
    fn forward_infer_ws_matches_forward_infer() {
        let model = Decoder::new(DecoderConfig::tiny(50), 0xDEC0DE);
        let mut rng = Rng::new(78);
        let tokens: Vec<u32> = (0..17).map(|_| rng.below(50) as u32).collect();
        let vocab = model.cfg.vocab;

        let mut ws = Workspace::new();
        for splits in [vec![17], vec![1; 17], vec![5, 1, 4, 3, 4]] {
            assert_eq!(splits.iter().sum::<usize>(), tokens.len());
            let mut cache_a = model.new_cache();
            let mut cache_b = model.new_cache();
            let mut at = 0;
            for blk in splits {
                let toks = &tokens[at..at + blk];
                let want = model.forward_infer(toks, &mut cache_a);
                let mut got = vec![0.0f32; blk * vocab];
                model.forward_infer_ws(toks, &mut cache_b, &mut ws, &mut got);
                assert!(
                    max_abs_diff(&got, &want.data) < 1e-4,
                    "fused decode diverged at offset {at}: {}",
                    max_abs_diff(&got, &want.data)
                );
                at += blk;
            }
        }

        // Steady-state single-token decode must not grow the pool.
        let mut cache = model.new_cache();
        let mut logits = vec![0.0f32; vocab];
        model.forward_infer_ws(&tokens[..1], &mut cache, &mut ws, &mut logits);
        let after_warmup = ws.fresh_allocs();
        for &t in &tokens[1..] {
            model.forward_infer_ws(&[t], &mut cache, &mut ws, &mut logits);
        }
        assert_eq!(ws.fresh_allocs(), after_warmup, "steady state allocated");
    }

    /// The per-op profiler carried by the workspace must attribute time to
    /// every pipeline stage with the expected call counts.
    #[test]
    fn profiler_covers_every_op() {
        let model = Decoder::new(DecoderConfig::tiny(50), 1);
        let mut ws = Workspace::new();
        let mut cache = model.new_cache();
        let mut logits = vec![0.0f32; model.cfg.vocab];
        ws.prof.enable();
        let steps = 4u64;
        for t in 0..steps {
            model.forward_infer_ws(&[t as u32], &mut cache, &mut ws, &mut logits);
        }
        use aasd_tensor::Op;
        assert_eq!(ws.prof.calls(Op::Embed), steps);
        assert_eq!(ws.prof.calls(Op::LmHead), steps);
        let layers = model.cfg.n_layers as u64;
        assert_eq!(ws.prof.calls(Op::Qkv), steps * layers);
        assert_eq!(ws.prof.calls(Op::OProj), steps * layers);
        assert_eq!(ws.prof.calls(Op::Mlp), steps * layers);
        // Two per-block norms + the final norm.
        assert_eq!(ws.prof.calls(Op::RmsNorm), steps * (2 * layers + 1));
        // Score/mix scopes are per head per token.
        let heads = model.cfg.n_heads as u64;
        assert_eq!(ws.prof.calls(Op::AttnScore), steps * layers * heads);
        assert_eq!(ws.prof.calls(Op::AttnMix), steps * layers * heads);
    }

    /// Feeding a token's embedding row through the embeds path must produce
    /// the same logits and cache state as feeding the token id — both in
    /// the allocating and the fused variants, and across a prefix/text
    /// split (the LlavaSim prefill shape).
    #[test]
    fn embeds_path_matches_token_path() {
        let model = Decoder::new(DecoderConfig::tiny(50), 0xE3B);
        let mut rng = Rng::new(81);
        let tokens: Vec<u32> = (0..11).map(|_| rng.below(50) as u32).collect();
        let vocab = model.cfg.vocab;

        let mut cache_tok = model.new_cache();
        let want = model.forward_infer(&tokens, &mut cache_tok);

        // Allocating embeds path: prefix of 4 rows, then the rest.
        let rows = model.embed.forward(&tokens);
        let prefix = Tensor::from_vec(rows.data[..4 * model.cfg.dim].to_vec(), 4, model.cfg.dim);
        let rest = Tensor::from_vec(
            rows.data[4 * model.cfg.dim..].to_vec(),
            tokens.len() - 4,
            model.cfg.dim,
        );
        let mut cache_emb = model.new_cache();
        let a = model.forward_infer_embeds(&prefix, &mut cache_emb);
        let b = model.forward_infer_embeds(&rest, &mut cache_emb);
        let mut got = a.data.clone();
        got.extend_from_slice(&b.data);
        assert!(
            max_abs_diff(&got, &want.data) < 1e-4,
            "embeds path diverged: {}",
            max_abs_diff(&got, &want.data)
        );
        assert_eq!(cache_emb.len(), cache_tok.len());

        // Fused embeds path.
        let mut ws = Workspace::new();
        let mut cache_ws = model.new_cache();
        let mut got_ws = vec![0.0f32; tokens.len() * vocab];
        model.forward_infer_embeds_ws(
            &rows.data[..4 * model.cfg.dim],
            4,
            &mut cache_ws,
            &mut ws,
            &mut got_ws[..4 * vocab],
        );
        model.forward_infer_embeds_ws(
            &rows.data[4 * model.cfg.dim..],
            tokens.len() - 4,
            &mut cache_ws,
            &mut ws,
            &mut got_ws[4 * vocab..],
        );
        assert!(
            max_abs_diff(&got_ws, &want.data) < 1e-4,
            "fused embeds path diverged: {}",
            max_abs_diff(&got_ws, &want.data)
        );

        // A text block fed AFTER an embeds prefix sees the same cache state
        // as the pure-token run: continue both caches with one token.
        let mut l1 = vec![0.0f32; vocab];
        model.forward_infer_ws(&[7], &mut cache_ws, &mut ws, &mut l1);
        let l2 = model.forward_infer(&[7], &mut cache_tok);
        assert!(max_abs_diff(&l1, l2.row(0)) < 1e-4);
    }

    /// Switching to the int8 policy must keep the fused logits close to the
    /// f32 path (per-row absmax quantization error only), attribute time to
    /// the nested quant profiler ops with the expected counts, and stay
    /// zero-allocation in steady state; switching back to f32 restores
    /// bit-identical logits.
    #[test]
    fn int8_policy_tracks_f32_and_profiles_quant_ops() {
        let f32_model = Decoder::new(DecoderConfig::tiny(50), 0x18);
        let mut q_model = f32_model.clone();
        assert_eq!(q_model.kernel_policy(), KernelPolicy::F32);
        q_model.set_kernel_policy(KernelPolicy::Int8);
        assert_eq!(q_model.kernel_policy(), KernelPolicy::Int8);

        let vocab = f32_model.cfg.vocab;
        let mut rng = Rng::new(83);
        let tokens: Vec<u32> = (0..12).map(|_| rng.below(50) as u32).collect();

        let mut ws_a = Workspace::new();
        let mut ws_b = Workspace::new();
        let mut cache_a = f32_model.new_cache();
        let mut cache_b = q_model.new_cache();
        let mut la = vec![0.0f32; vocab];
        let mut lb = vec![0.0f32; vocab];
        ws_b.prof.enable();
        let mut drift = 0.0f32;
        for &tok in &tokens {
            f32_model.forward_infer_ws(&[tok], &mut cache_a, &mut ws_a, &mut la);
            q_model.forward_infer_ws(&[tok], &mut cache_b, &mut ws_b, &mut lb);
            drift = drift.max(max_abs_diff(&la, &lb));
        }
        assert!(drift > 0.0, "int8 path suspiciously identical to f32");
        assert!(drift < 0.5, "int8 logits drifted too far: {drift}");

        // 7 projections per block + the LM head, one row each per step.
        let steps = tokens.len() as u64;
        let expect = steps * (7 * q_model.cfg.n_layers as u64 + 1);
        assert_eq!(ws_b.prof.calls(Op::Quantize), expect);
        assert_eq!(ws_b.prof.calls(Op::Q8Vecmat), expect);
        assert!(ws_b.prof.pipeline_total_ns() >= ws_b.prof.total_ns(Op::Q8Vecmat));

        // Steady state stays allocation-free on the int8 path too.
        let after_warmup = ws_b.fresh_allocs();
        for &tok in tokens.iter().rev().take(4) {
            q_model.forward_infer_ws(&[tok], &mut cache_b, &mut ws_b, &mut lb);
        }
        assert_eq!(ws_b.fresh_allocs(), after_warmup, "int8 decode allocated");

        // Back to f32: bit-identical to the never-quantized model.
        q_model.set_kernel_policy(KernelPolicy::F32);
        let mut cache_c = q_model.new_cache();
        let mut cache_d = f32_model.new_cache();
        let mut lc = vec![0.0f32; vocab];
        let mut ld = vec![0.0f32; vocab];
        for &tok in &tokens {
            q_model.forward_infer_ws(&[tok], &mut cache_c, &mut ws_b, &mut lc);
            f32_model.forward_infer_ws(&[tok], &mut cache_d, &mut ws_a, &mut ld);
        }
        assert_eq!(lc, ld, "restored f32 policy must be exact");
    }

    /// Chain bit-identity: a branching-factor-1 "tree" (depths `0..t`, full
    /// visibility) must make the identical kernel calls as the linear fused
    /// forward — logits and cache rows equal bit for bit, on a genuinely
    /// paged lease.
    #[test]
    fn tree_forward_chain_is_bit_identical_to_linear() {
        use crate::cache::KvPool;
        let model = Decoder::new(DecoderConfig::tiny(50), 0x73EE);
        let vocab = model.cfg.vocab;
        let mut rng = Rng::new(91);
        let prefix: Vec<u32> = (0..9).map(|_| rng.below(50) as u32).collect();
        let chain: Vec<u32> = (0..5).map(|_| rng.below(50) as u32).collect();

        let pool = KvPool::new(model.cfg.n_layers, model.cfg.dim, 4, 64);
        let mut lin = pool.try_lease(40).unwrap();
        let mut tree = pool.try_lease(40).unwrap();
        let mut ws = Workspace::new();
        let mut scratch = vec![0.0f32; prefix.len() * vocab];
        model.forward_infer_ws(&prefix, &mut lin, &mut ws, &mut scratch);
        model.forward_infer_ws(&prefix, &mut tree, &mut ws, &mut scratch);

        let t = chain.len();
        let mut la = vec![0.0f32; t * vocab];
        let mut lb = vec![0.0f32; t * vocab];
        model.forward_infer_ws(&chain, &mut lin, &mut ws, &mut la);
        let depths: Vec<usize> = (0..t).collect();
        let vis: Vec<u64> = (0..t).map(|i| (1u64 << (i + 1)) - 1).collect();
        let mut mass = vec![0.0f32; t];
        model.forward_infer_tree_ws(
            &chain, &depths, &vis, 0, &mut tree, &mut ws, &mut lb, &mut mass,
        );
        let ab: Vec<u32> = la.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = lb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb, "chain tree logits must equal linear bitwise");
        for l in 0..model.cfg.n_layers {
            for p in 0..lin.len() {
                assert_eq!(lin.layer(l).key(p), tree.layer(l).key(p));
                assert_eq!(lin.layer(l).value(p), tree.layer(l).value(p));
            }
        }
    }

    /// Exact losslessness of a branched tree: every root-to-leaf path's
    /// logits must equal feeding that path linearly, bit for bit, and the
    /// gathered commit must leave cache rows bit-identical to the linear
    /// feed's.
    #[test]
    fn tree_forward_path_matches_linear_feed_bitwise() {
        use crate::cache::KvPool;
        let model = Decoder::new(DecoderConfig::tiny(50), 0x73EF);
        let vocab = model.cfg.vocab;
        let mut rng = Rng::new(92);
        let prefix: Vec<u32> = (0..7).map(|_| rng.below(50) as u32).collect();

        //        0
        //       / \
        //      1   2
        //     /   / \
        //    3   4   5
        let toks: Vec<u32> = (0..6).map(|_| rng.below(50) as u32).collect();
        let parents = [usize::MAX, 0, 0, 1, 2, 2];
        let depths = [0usize, 1, 1, 2, 2, 2];
        let mut vis = [0u64; 6];
        for i in 0..6 {
            vis[i] = 1 << i;
            if parents[i] != usize::MAX {
                vis[i] |= vis[parents[i]];
            }
        }

        let pool = KvPool::new(model.cfg.n_layers, model.cfg.dim, 4, 64);
        let mut tree_cache = pool.try_lease(40).unwrap();
        let mut ws = Workspace::new();
        let mut scratch = vec![0.0f32; prefix.len() * vocab];
        model.forward_infer_ws(&prefix, &mut tree_cache, &mut ws, &mut scratch);
        let base = tree_cache.len();
        let mut tl = vec![0.0f32; 6 * vocab];
        let mut mass = vec![0.0f32; 6];
        model.forward_infer_tree_ws(
            &toks,
            &depths,
            &vis,
            3,
            &mut tree_cache,
            &mut ws,
            &mut tl,
            &mut mass,
        );
        assert!(
            mass.iter().all(|&m| m > 0.0 && m < 1.0),
            "bad mass {mass:?}"
        );

        for path in [vec![0usize, 1, 3], vec![0, 2, 4], vec![0, 2, 5]] {
            let mut lin = pool.try_lease(40).unwrap();
            model.forward_infer_ws(&prefix, &mut lin, &mut ws, &mut scratch);
            let path_toks: Vec<u32> = path.iter().map(|&i| toks[i]).collect();
            let mut ll = vec![0.0f32; path.len() * vocab];
            model.forward_infer_ws(&path_toks, &mut lin, &mut ws, &mut ll);
            for (j, &i) in path.iter().enumerate() {
                let a: Vec<u32> = tl[i * vocab..(i + 1) * vocab]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let b: Vec<u32> = ll[j * vocab..(j + 1) * vocab]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(a, b, "path {path:?} node {i} logits diverged");
            }
            // Commit this path into a fork of the tree cache and compare
            // the compacted rows against the linear feed's, bitwise.
            let mut committed = {
                let mut c = pool.try_lease(40).unwrap();
                model.forward_infer_ws(&prefix, &mut c, &mut ws, &mut scratch);
                let mut l2 = vec![0.0f32; 6 * vocab];
                let mut m2 = vec![0.0f32; 6];
                model.forward_infer_tree_ws(
                    &toks, &depths, &vis, 3, &mut c, &mut ws, &mut l2, &mut m2,
                );
                c
            };
            committed.gather_tail(base, &path);
            assert_eq!(committed.len(), lin.len());
            for l in 0..model.cfg.n_layers {
                for p in 0..lin.len() {
                    let a: Vec<u32> = committed
                        .layer(l)
                        .key(p)
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    let b: Vec<u32> = lin.layer(l).key(p).iter().map(|v| v.to_bits()).collect();
                    assert_eq!(a, b, "path {path:?} K row {p} layer {l}");
                    let a: Vec<u32> = committed
                        .layer(l)
                        .value(p)
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    let b: Vec<u32> = lin.layer(l).value(p).iter().map(|v| v.to_bits()).collect();
                    assert_eq!(a, b, "path {path:?} V row {p} layer {l}");
                }
            }
        }
    }

    #[test]
    fn deterministic_across_construction() {
        let cfg = DecoderConfig::tiny(30);
        let a = Decoder::new(cfg.clone(), 5);
        let b = Decoder::new(cfg, 5);
        let toks = [1u32, 2, 3];
        assert_eq!(a.forward_full(&toks).data, b.forward_full(&toks).data);
    }

    #[test]
    fn different_seeds_give_different_models() {
        let cfg = DecoderConfig::tiny(30);
        let a = Decoder::new(cfg.clone(), 1);
        let b = Decoder::new(cfg, 2);
        let toks = [4u32, 9, 2, 7];
        assert!(max_abs_diff(&a.forward_full(&toks).data, &b.forward_full(&toks).data) > 1e-3);
    }

    #[test]
    fn cache_rollback_replays_identically() {
        let model = Decoder::new(DecoderConfig::tiny(40), 3);
        let mut cache = model.new_cache();
        model.forward_infer(&[5, 6, 7], &mut cache);
        let keep = cache.len();
        let before = model.forward_infer(&[8, 9], &mut cache);
        cache.truncate(keep);
        let after = model.forward_infer(&[8, 9], &mut cache);
        assert_eq!(before.data, after.data, "rollback+replay must be exact");
    }

    /// Micro config for gradient tests: every architectural feature, few
    /// enough parameters that a full finite-difference sweep is cheap.
    fn micro() -> DecoderConfig {
        DecoderConfig {
            vocab: 6,
            dim: 4,
            n_heads: 2,
            n_layers: 1,
            ff_hidden: 8,
            max_seq: 8,
            rope_theta: 10_000.0,
        }
    }

    /// The tape-built training forward must reproduce the inference-path
    /// full-sequence logits (they share every kernel).
    #[test]
    fn forward_train_matches_forward_full() {
        let model = Decoder::new(DecoderConfig::tiny(30), 0x7EA1);
        let tokens = [4u32, 9, 17, 2, 21];
        let full = model.forward_full(&tokens);
        let mut tape = Tape::new();
        let (logits, _) = model.forward_train(&mut tape, &tokens);
        let got = tape.value(logits);
        assert_eq!((got.rows, got.cols), (full.rows, full.cols));
        assert!(
            max_abs_diff(&got.data, &full.data) < 1e-5,
            "train path diverged from forward_full: {}",
            max_abs_diff(&got.data, &full.data)
        );
    }

    /// The leaf ids returned by `forward_train` must bind the same tensors,
    /// in the same order, as `visit_params_mut` walks — optimizers rely on
    /// that lockstep to map gradients back onto live weights.
    #[test]
    fn forward_train_leaves_match_visitor_order() {
        let mut model = Decoder::new(micro(), 3);
        let mut tape = Tape::new();
        let (_, params) = model.forward_train(&mut tape, &[1, 4, 0]);
        assert_eq!(params.len(), model.n_param_tensors());
        let mut slot = 0;
        model.visit_params_mut(&mut |name, p| {
            let leaf = tape.value(params[slot]);
            assert_eq!(leaf.data.len(), p.len(), "slot {slot} ({name}) size");
            assert_eq!(leaf.data, p, "slot {slot} ({name}) contents");
            slot += 1;
        });
        assert_eq!(slot, params.len());
    }

    /// Whole-model finite-difference gradient check: the backward pass
    /// through the complete decoder graph (embed → blocks → head → CE loss)
    /// agrees with central differences on every parameter element.
    #[test]
    fn whole_decoder_gradients_pass_fd_check() {
        let mut model = Decoder::new(micro(), 0x6AD);
        let tokens = [1u32, 3, 0, 5];
        let targets = [2u32, 5, 1, 4];

        let loss_of = |m: &Decoder| -> f32 {
            let mut tape = Tape::new();
            let (logits, _) = m.forward_train(&mut tape, &tokens);
            let l = tape.cross_entropy(logits, &targets);
            tape.value(l).data[0]
        };
        let mut tape = Tape::new();
        let (logits, params) = model.forward_train(&mut tape, &tokens);
        let loss = tape.cross_entropy(logits, &targets);
        let grads = tape.backward(loss);

        let sizes: Vec<usize> = {
            let mut s = Vec::new();
            model.visit_params_mut(&mut |_, p| s.push(p.len()));
            s
        };
        let perturb = |m: &mut Decoder, slot: usize, elem: usize, delta: f32| {
            let mut i = 0;
            m.visit_params_mut(&mut |_, p| {
                if i == slot {
                    p[elem] += delta;
                }
                i += 1;
            });
        };
        // Much smaller step than the per-op checks: the composed graph has
        // far higher curvature (verified: fd converges quadratically to the
        // analytic value as eps shrinks), so eps = 1e-2 leaves visible
        // truncation error while f32 round-off is still negligible here.
        let eps = 3e-4f32;
        for (slot, &len) in sizes.iter().enumerate() {
            let g = tape.value(params[slot]).data.clone();
            assert_eq!(g.len(), len);
            let analytic = grads
                .get(params[slot])
                .expect("every param reaches the loss");
            for e in 0..len {
                perturb(&mut model, slot, e, eps);
                let up = loss_of(&model);
                perturb(&mut model, slot, e, -2.0 * eps);
                let down = loss_of(&model);
                perturb(&mut model, slot, e, eps);
                let fd = (up - down) / (2.0 * eps);
                let a = analytic.data[e];
                // Same relative-error convention as `aasd_autograd::check`:
                // the 1.0 floor turns the bar into an absolute tolerance for
                // sub-unit gradients, where f32 round-off dominates the fd.
                let rel = (a - fd).abs() / a.abs().max(fd.abs()).max(1.0);
                assert!(
                    rel < 1e-2,
                    "slot {slot} elem {e}: analytic {a} vs fd {fd} (rel {rel})"
                );
            }
        }
    }

    #[test]
    fn n_params_counts_everything() {
        let cfg = DecoderConfig::tiny(10);
        let model = Decoder::new(cfg.clone(), 0);
        // embed + lm_head + per-layer (4 attn + 3 mlp mats + 2 norms) + final norm
        let per_layer = 4 * cfg.dim * cfg.dim + 3 * cfg.dim * cfg.ff_hidden + 2 * cfg.dim;
        let expect = 2 * cfg.vocab * cfg.dim + cfg.n_layers * per_layer + cfg.dim;
        assert_eq!(model.n_params(), expect);
    }
}
